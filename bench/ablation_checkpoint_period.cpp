// Ablation: checkpoint-period sensitivity (the paper fixes 1 ms with a
// 256-cycle overhead and a 10 000-cycle rollback; this sweep justifies
// that choice under PSN-induced voltage emergencies).
//
// Short periods pay checkpoint overhead constantly but lose little work
// per rollback; long periods are nearly free until an emergency throws
// away several milliseconds of progress. We run the compute-intensive
// Fig. 6 scenario under HM+XY (the VE-heavy framework) across periods.
// Note the control epoch tracks the checkpoint period, so the VE lottery
// is evaluated per period as in the paper's model.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"

int main() {
  using namespace parm;
  std::cout << "Ablation — checkpoint period under a VE-heavy framework "
               "(HM+XY, compute workload, 20 apps, 0.1 s arrivals)\n\n";

  Table table({"period (ms)", "makespan (s)", "apps completed", "VEs",
               "checkpoint overhead (%)"});
  table.set_precision(2);

  for (double period_ms : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    sim::SimConfig cfg = exp::default_sim_config();
    cfg.framework.mapping = "HM";
    cfg.framework.routing = "XY";
    cfg.checkpoint.period_s = period_ms * 1e-3;
    cfg.epoch_s = period_ms * 1e-3;  // epoch == checkpoint period

    appmodel::SequenceConfig seq;
    seq.kind = appmodel::SequenceKind::Compute;
    seq.app_count = 20;
    seq.inter_arrival_s = 0.1;

    double makespan = 0, completed = 0, ves = 0;
    const std::vector<std::uint64_t> seeds{11, 23};
    for (std::uint64_t s : seeds) {
      seq.seed = s;
      sim::SystemSimulator simulator(cfg, appmodel::make_sequence(seq));
      const sim::SimResult r = simulator.run();
      makespan += r.makespan_s / static_cast<double>(seeds.size());
      completed += r.completed_count / static_cast<double>(seeds.size());
      ves += static_cast<double>(r.total_ve_count) /
             static_cast<double>(seeds.size());
    }
    // Steady checkpoint tax at 2 GHz (HM's nominal clock).
    const double overhead =
        cfg.checkpoint.checkpoint_cycles /
        (cfg.checkpoint.period_s * 2e9) * 100.0;
    table.add_row({period_ms, makespan, completed, ves, overhead});
  }
  table.print(std::cout);
  std::cout << "\nReading: the steady checkpoint tax is negligible at "
               "every period — what matters is the work lost per "
               "rollback, which grows with the period. 1 ms sits on the "
               "flat part of the curve before long-period rollback losses "
               "bite, matching the paper's choice.\n";
  return 0;
}
