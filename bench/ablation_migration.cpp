// Ablation: reactive thread migration vs PSN-aware management.
//
// Hu et al. [19] (and the paper's section 6 discussion) keep tile
// switching activity in check by migrating threads away from stressed
// tiles at runtime. This bench adds such a mechanism — after 3 epochs
// over the VE margin, the hottest task moves to the nearest free domain
// at a 50 k-cycle state-transfer cost — on top of HM+XY and PARM+PANR.
//
// Expected shape (mirrors the throttle ablation): migration patches HM's
// worst hotspots at a steady relocation cost, while PARM's placements
// rarely stay hot long enough to trigger it.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"

int main() {
  using namespace parm;
  const std::vector<std::uint64_t> seeds{11, 23};

  std::cout << "Ablation — reactive thread migration [19] vs PSN-aware "
               "management (compute workload, 20 apps, 0.1 s arrivals)\n\n";

  Table table({"configuration", "makespan (s)", "apps completed", "VEs",
               "migrations"});
  table.set_precision(2);

  for (const auto& [mapping, routing] :
       {std::pair{"HM", "XY"}, std::pair{"PARM", "PANR"}}) {
    for (bool migration : {false, true}) {
      sim::SimConfig cfg = exp::default_sim_config();
      cfg.framework.mapping = mapping;
      cfg.framework.routing = routing;
      cfg.enable_migration = migration;

      appmodel::SequenceConfig seq;
      seq.kind = appmodel::SequenceKind::Compute;
      seq.app_count = 20;
      seq.inter_arrival_s = 0.1;

      double makespan = 0, completed = 0, ves = 0, migrations = 0;
      for (std::uint64_t s : seeds) {
        seq.seed = s;
        sim::SystemSimulator simulator(cfg, appmodel::make_sequence(seq));
        const sim::SimResult r = simulator.run();
        const double n = static_cast<double>(seeds.size());
        makespan += r.makespan_s / n;
        completed += r.completed_count / n;
        ves += static_cast<double>(r.total_ve_count) / n;
        migrations += static_cast<double>(r.migration_count) / n;
      }
      table.add_row({cfg.framework.display_name() +
                         (migration ? " + migration" : ""),
                     makespan, completed, ves, migrations});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: migration relieves HM's persistent hotspots "
               "when free domains exist, but under load there is nowhere "
               "to run — PARM avoids creating the hotspots in the first "
               "place (paper section 6).\n";
  return 0;
}
