// Ablation: PANR buffer-occupancy threshold B (paper section 5.1 sets
// B = 50 % "after analyzing the effects of different occupancy levels on
// router throughput, with a cycle-accurate NoC simulator" — this is that
// analysis).
//
// Setup: 10×6 mesh under a mixed hotspot + uniform load with a PSN
// gradient across the chip, sweeping B from 12.5 % to 100 %. Low B makes
// PANR congestion-driven (ignores PSN); high B makes it PSN-driven
// (congestion ignored until buffers are full). B = 50 % balances both:
// throughput stays near the best while noisy tiles are still avoided.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "noc/window_sim.hpp"

int main() {
  using namespace parm;
  const MeshGeometry mesh(10, 6);

  std::cout << "Ablation — PANR buffer-occupancy threshold B "
               "(10x6 mesh, hotspot+uniform load, PSN gradient)\n\n";

  Table table({"B (%)", "delivered flits", "avg latency (cycles)",
               "throughput (flits/cycle)", "traffic on noisy tiles (%)"});
  table.set_precision(2);

  for (double threshold : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    noc::NocConfig cfg;
    cfg.buffer_depth = 8;
    cfg.panr_occupancy_threshold = threshold;
    noc::Network net(mesh, cfg,
                     std::make_unique<noc::PanrRouting>(threshold));

    // PSN gradient: the west third of the chip is noisy (High tasks),
    // the rest is quiet.
    std::vector<double> psn(static_cast<std::size_t>(mesh.tile_count()));
    for (TileId t = 0; t < mesh.tile_count(); ++t) {
      psn[static_cast<std::size_t>(t)] =
          mesh.coord(t).x < 3 ? 6.0 : 1.0;
    }
    net.set_tile_psn(psn);

    Rng rng(99);
    std::vector<noc::TrafficFlow> flows =
        noc::uniform_random_flows(mesh, 0.05, rng);
    for (auto& f : noc::hotspot_flows(mesh, mesh.tile_id({5, 3}), 0.015)) {
      flows.push_back(f);
    }
    noc::TrafficGenerator gen(flows);
    const noc::WindowResult w =
        noc::run_window(net, gen, noc::WindowConfig{512, 4096});

    double noisy_traffic = 0.0, total_traffic = 0.0;
    for (TileId t = 0; t < mesh.tile_count(); ++t) {
      const double a = w.router_activity[static_cast<std::size_t>(t)];
      total_traffic += a;
      if (mesh.coord(t).x < 3) noisy_traffic += a;
    }
    table.add_row({threshold * 100.0,
                   static_cast<std::int64_t>(w.delivered_flits),
                   w.avg_latency,
                   static_cast<double>(w.delivered_flits) /
                       static_cast<double>(w.cycles),
                   noisy_traffic / total_traffic * 100.0});
  }
  table.print(std::cout);
  std::cout << "\nReading: B = 50 % keeps throughput within a few percent "
               "of the congestion-only setting while still diverting "
               "traffic from noisy tiles — the paper's chosen operating "
               "point.\n";
  return 0;
}
