// Ablation: which of PARM's knobs buys what (DESIGN.md experiment index).
//
// PARM combines three mechanisms: (1) DVS — pick the lowest
// deadline-feasible Vdd; (2) adaptive DoP — trade thread count against
// voltage/tiles; (3) PSN-aware clustering/mapping. This ablation runs the
// Fig. 6 mixed-workload setup with each knob disabled in turn:
//   PARM full          — everything on (paper configuration)
//   PARM fixed-Vdd=0.8 — no DVS: nominal supply like HM
//   PARM fixed-DoP=16  — no DoP adaptation
// All variants keep the PSN-aware mapper and PANR routing.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"

int main() {
  using namespace parm;
  const std::vector<std::uint64_t> seeds{11, 23};
  const sim::SimConfig base = exp::default_sim_config();

  std::vector<core::FrameworkConfig> variants;
  {
    core::FrameworkConfig full;
    full.mapping = "PARM";
    full.routing = "PANR";
    variants.push_back(full);

    core::FrameworkConfig no_dvs = full;
    no_dvs.parm_adapt_vdd = false;
    no_dvs.parm_fixed_vdd = 0.8;
    variants.push_back(no_dvs);

    core::FrameworkConfig no_dop = full;
    no_dop.parm_adapt_dop = false;
    no_dop.parm_fixed_dop = 16;
    variants.push_back(no_dop);
  }
  const char* labels[] = {"PARM full", "PARM fixed-Vdd=0.8",
                          "PARM fixed-DoP=16"};

  std::cout << "Ablation — PARM knob contributions (mixed workload, 20 "
               "apps, 0.1 s arrivals, mean of "
            << seeds.size() << " seeds)\n\n";

  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 20;
  seq.inter_arrival_s = 0.1;
  const auto runs = exp::run_matrix_averaged(variants, seq, base, seeds);

  Table table({"variant", "makespan (s)", "peak PSN (%)", "avg PSN (%)",
               "apps completed", "VEs", "avg chip power (W)"});
  table.set_precision(2);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    table.add_row({std::string(labels[i]), r.makespan_s,
                   r.peak_psn_percent, r.avg_psn_percent, r.completed,
                   r.ve_count, r.avg_chip_power_w});
  }
  table.print(std::cout);
  std::cout << "\nReading: DVS is the dominant PSN lever (fixed 0.8 V "
               "explodes peak PSN and voltage emergencies even with "
               "PSN-aware mapping); DoP adaptation mainly buys admission "
               "capacity under oversubscription.\n";
  return 0;
}
