// Ablation: proactive sensor-guided throttling vs PSN-aware management.
//
// The paper argues (section 6) that PARM "minimizes the software overhead
// due to schemes such as thread migration / throttling employed to keep
// tile switching activity in check". This bench quantifies the claim: a
// reactive throttle (slow any tile whose sensor reads within 1 % of the
// VE margin to 60 % speed) is added on top of both HM+XY and PARM+PANR.
//
//  - Under HM, the throttle is the only defense: it fires on most active
//    tile-epochs and substitutes steady 40 % slowdowns for catastrophic
//    rollback storms — a big improvement that still leaves HM an order
//    of magnitude more emergencies than plain PARM.
//  - Under PARM, the mapping/DVS already keep PSN below the guard band:
//    the throttle fires ~5× less and changes the results marginally —
//    PSN-aware *proactive* management makes it largely redundant.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"

int main() {
  using namespace parm;
  const std::vector<std::uint64_t> seeds{11, 23};

  std::cout << "Ablation — reactive throttling vs PSN-aware management "
               "(compute workload, 20 apps, 0.1 s arrivals)\n\n";

  Table table({"configuration", "makespan (s)", "apps completed", "VEs",
               "throttle tile-epochs"});
  table.set_precision(2);

  for (const auto& [mapping, routing] :
       {std::pair{"HM", "XY"}, std::pair{"PARM", "PANR"}}) {
    for (bool throttle : {false, true}) {
      sim::SimConfig cfg = exp::default_sim_config();
      cfg.framework.mapping = mapping;
      cfg.framework.routing = routing;
      cfg.proactive_throttle = throttle;

      appmodel::SequenceConfig seq;
      seq.kind = appmodel::SequenceKind::Compute;
      seq.app_count = 20;
      seq.inter_arrival_s = 0.1;

      double makespan = 0, completed = 0, ves = 0, throttled = 0;
      for (std::uint64_t s : seeds) {
        seq.seed = s;
        sim::SystemSimulator simulator(cfg, appmodel::make_sequence(seq));
        const sim::SimResult r = simulator.run();
        const double n = static_cast<double>(seeds.size());
        makespan += r.makespan_s / n;
        completed += r.completed_count / n;
        ves += static_cast<double>(r.total_ve_count) / n;
        throttled += static_cast<double>(r.throttle_tile_epochs) / n;
      }
      table.add_row({cfg.framework.display_name() +
                         (throttle ? " + throttle" : ""),
                     makespan, completed, ves, throttled});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: reactive throttling rescues HM from its "
               "rollback storms yet still leaves it far above PARM's "
               "emergency level, while PARM triggers the throttle ~5x "
               "less and gains almost nothing from it — PSN-aware "
               "management largely subsumes the reactive mechanism "
               "(paper section 6).\n";
  return 0;
}
