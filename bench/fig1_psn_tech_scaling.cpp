// Figure 1 reproduction: peak supply noise percentage, relative to the
// nominal near-threshold supply voltage, across fabrication process nodes.
//
// Setup (paper section 1 / Fig. 1): worst-case inter-core interference in
// one power-supply domain — all four tiles running High-activity workloads
// with aligned (in-phase) switching ripple at the node's NTC operating
// point, cores plus fully loaded routers. The series should rise with
// scaling and cross the permissible noise margin (5 %, the VE threshold)
// near the 14/10 nm nodes.
#include <iostream>

#include "common/table.hpp"
#include "pdn/psn_estimator.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"
#include "power/vf_model.hpp"

int main() {
  using namespace parm;
  std::cout << "Fig. 1 — Peak PSN (% of nominal NTC supply) vs technology "
               "node\n"
               "Worst case: 4 High-activity tiles per domain, in-phase "
               "ripple, loaded routers, NTC Vdd.\n\n";

  Table table({"node", "NTC Vdd (V)", "fmax (GHz)", "tile I (A)",
               "peak PSN (%)", "above 5% margin"});
  table.set_precision(2);

  for (const auto& tech : power::all_technology_nodes()) {
    const power::VoltageFrequencyModel vf(tech);
    const power::CorePowerModel core(tech);
    const power::RouterPowerModel router(tech);
    const double vdd = tech.vdd_ntc;
    const double f = vf.fmax(vdd);
    // High-activity core plus a router forwarding ~0.4 flits/cycle.
    const double i_tile = core.supply_current(vdd, f, 0.95) +
                          router.supply_current(vdd, 0.4e9);

    pdn::PsnEstimator estimator(tech);
    std::array<pdn::TileLoad, 4> loads{};
    for (auto& l : loads) {
      l = pdn::TileLoad{i_tile, pdn::activity_to_modulation(0.95), 0.0};
    }
    const pdn::DomainPsn psn = estimator.estimate(vdd, loads);

    table.add_row({tech.name, vdd, f / 1e9, i_tile, psn.peak_percent,
                   std::string(psn.peak_percent > 5.0 ? "yes" : "no")});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: monotonically increasing, exceeding the "
               "permissible margin at deep-submicron nodes.\n";
  return 0;
}
