// Figure 3(a) reproduction: peak PSN (% of supply voltage) observed in a
// domain for communication- and compute-intensive workloads across the
// DVS range 0.4-0.8 V (7 nm node).
//
// Compute-intensive tiles: high core activity, light router traffic.
// Communication-intensive tiles: moderate core activity, heavy router
// traffic. Both series must rise with Vdd (supply current grows ~V·f while
// the margin grows only ~V) — the paper's motivation for PARM preferring
// the lowest deadline-feasible Vdd.
#include <iostream>

#include "common/table.hpp"
#include "pdn/psn_estimator.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"
#include "power/vf_model.hpp"

int main() {
  using namespace parm;
  const auto& tech = power::technology_node(7);
  const power::VoltageFrequencyModel vf(tech);
  const power::CorePowerModel core(tech);
  const power::RouterPowerModel router(tech);
  pdn::PsnEstimator estimator(tech);

  std::cout << "Fig. 3(a) — Peak PSN (% of Vdd) in one domain vs supply "
               "voltage (7 nm)\n\n";

  // Representative per-tile operating points for the two workload classes
  // (activities from the benchmark suite's group means; router load from
  // the classes' comm_intensity range).
  struct Profile {
    const char* name;
    double core_activity;
    double router_flits_per_cycle;
  };
  const Profile profiles[] = {{"compute-intensive", 0.85, 0.06},
                              {"communication-intensive", 0.55, 0.45}};

  Table table({"Vdd (V)", "fmax (GHz)", "compute peak PSN (%)",
               "comm peak PSN (%)"});
  table.set_precision(2);

  for (double vdd : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    const double f = vf.fmax(vdd);
    double peaks[2];
    for (int p = 0; p < 2; ++p) {
      const Profile& prof = profiles[p];
      std::array<pdn::TileLoad, 4> loads{};
      for (std::size_t k = 0; k < 4; ++k) {
        const double i_tile =
            core.supply_current(vdd, f, prof.core_activity) +
            router.supply_current(vdd,
                                  prof.router_flits_per_cycle * 1e9);
        // Staggered phases: a typical (not worst-case) alignment.
        loads[k] = pdn::TileLoad{
            i_tile, pdn::activity_to_modulation(prof.core_activity),
            0.25 * static_cast<double>(k)};
      }
      peaks[p] = estimator.estimate(vdd, loads).peak_percent;
    }
    table.add_row({vdd, f / 1e9, peaks[0], peaks[1]});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: peak PSN is directly proportional to the "
               "domain's operating voltage for both workload types.\n";
  return 0;
}
