// Figure 3(b) reproduction: normalized PSN due to interference between
// pairs of tasks of different switching activity (High or Low), separated
// by Manhattan distances of 1 and 2 hops within a power domain (7 nm,
// NTC supply).
//
// Metric: for a pair (A, B) on two tiles of one domain, the *interference
// ratio* at the victim is (peak PSN with both running) / (peak PSN with
// the victim alone); the reported value is the worse of the two victims.
// Paper findings to reproduce:
//   - H-L pairs interfere up to ~35 % more than H-H and L-L pairs;
//   - pairs mapped 2 hops apart interfere ~10 % less than at 1 hop.
#include <iostream>

#include "common/table.hpp"
#include "pdn/psn_estimator.hpp"
#include "power/core_power.hpp"
#include "power/vf_model.hpp"

namespace {

using namespace parm;

struct TaskSpec {
  double current;
  double modulation;
};

double pair_interference(const pdn::PsnEstimator& est, double vdd,
                         int slot_a, int slot_b, const TaskSpec& a,
                         const TaskSpec& b) {
  std::array<pdn::TileLoad, 4> both{}, only_a{}, only_b{};
  both[static_cast<std::size_t>(slot_a)] = {a.current, a.modulation, 0.0};
  both[static_cast<std::size_t>(slot_b)] = {b.current, b.modulation, 0.0};
  only_a[static_cast<std::size_t>(slot_a)] = {a.current, a.modulation, 0.0};
  only_b[static_cast<std::size_t>(slot_b)] = {b.current, b.modulation, 0.0};
  const auto pb = est.estimate(vdd, both);
  const auto pa = est.estimate(vdd, only_a);
  const auto pbb = est.estimate(vdd, only_b);
  const double ratio_a =
      pb.tiles[static_cast<std::size_t>(slot_a)].peak_percent /
      pa.tiles[static_cast<std::size_t>(slot_a)].peak_percent;
  const double ratio_b =
      pb.tiles[static_cast<std::size_t>(slot_b)].peak_percent /
      pbb.tiles[static_cast<std::size_t>(slot_b)].peak_percent;
  return std::max(ratio_a, ratio_b);
}

}  // namespace

int main() {
  const auto& tech = power::technology_node(7);
  const power::VoltageFrequencyModel vf(tech);
  const power::CorePowerModel core(tech);
  pdn::PsnEstimator est(tech);

  const double vdd = tech.vdd_ntc;
  const double f = vf.fmax(vdd);
  // Representative members of the two activity classes.
  const double act_high = 0.85, act_low = 0.45;
  const TaskSpec high{core.supply_current(vdd, f, act_high),
                      pdn::activity_to_modulation(act_high)};
  const TaskSpec low{core.supply_current(vdd, f, act_low),
                     pdn::activity_to_modulation(act_low)};

  std::cout << "Fig. 3(b) — Normalized PSN interference between task pairs "
               "(7 nm, Vdd = "
            << vdd << " V)\n"
            << "Interference = victim peak PSN with pair running / victim "
               "peak PSN alone.\n\n";

  // Domain slots: (0,1) are 1 hop apart, (0,3) is the 2-hop diagonal.
  struct Row {
    const char* pair;
    TaskSpec a, b;
  };
  const Row rows[] = {
      {"High-High", high, high},
      {"High-Low", high, low},
      {"Low-Low", low, low},
  };

  Table table({"pair", "interference @1 hop", "interference @2 hops",
               "2-hop reduction (%)"});
  table.set_precision(3);
  double hl1 = 0.0, hh1 = 0.0, ll1 = 0.0;
  for (const Row& r : rows) {
    const double d1 = pair_interference(est, vdd, 0, 1, r.a, r.b);
    const double d2 = pair_interference(est, vdd, 0, 3, r.a, r.b);
    table.add_row({std::string(r.pair), d1, d2,
                   (1.0 - (d2 - 1.0) / (d1 - 1.0)) * 100.0});
    if (r.pair[0] == 'H' && r.pair[5] == 'L') hl1 = d1;
    if (r.pair[0] == 'H' && r.pair[5] == 'H') hh1 = d1;
    if (r.pair[0] == 'L') ll1 = d1;
  }
  table.print(std::cout);
  std::cout << "\nH-L vs H-H interference excess: "
            << ((hl1 - 1.0) / (hh1 - 1.0) - 1.0) * 100.0
            << " % (paper: up to ~35 %)\n"
            << "H-L vs L-L interference excess: "
            << ((hl1 - 1.0) / (ll1 - 1.0) - 1.0) * 100.0 << " %\n"
            << "Paper shape: unlike-activity pairs interfere most; distance "
               "2 interferes ~10 % less than distance 1.\n";
  return 0;
}
