// Figure 6 reproduction: total time taken to execute a sequence of 20
// applications with the six frameworks (HM/PARM × XY/ICON/PANR) across
// the three workload types (compute-, communication-intensive, mixed).
//
// Arrival period 0.1 s, 60-core CMP at 7 nm, DsPB = 65 W; results are
// averaged over three sequence seeds. Alongside the makespan we print the
// number of applications each framework actually completed — frameworks
// that drop applications (Fig. 8) execute less work, so the two figures
// must be read together.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"

int main() {
  using namespace parm;
  const std::vector<std::uint64_t> seeds{11, 23, 47};
  const auto frameworks = core::paper_frameworks();
  const sim::SimConfig base = exp::default_sim_config();

  std::cout << "Fig. 6 — Total time (s) to execute 20 applications "
               "(0.1 s arrivals, mean of " << seeds.size()
            << " seeds)\n\n";

  for (auto kind : {appmodel::SequenceKind::Compute,
                    appmodel::SequenceKind::Communication,
                    appmodel::SequenceKind::Mixed}) {
    appmodel::SequenceConfig seq;
    seq.kind = kind;
    seq.app_count = 20;
    seq.inter_arrival_s = 0.1;
    const auto runs =
        exp::run_matrix_averaged(frameworks, seq, base, seeds);
    const double baseline = runs.front().makespan_s;  // HM+XY

    std::cout << "[" << to_string(kind) << " workload]\n";
    Table table({"framework", "total exec time (s)",
                 "vs HM+XY (%)", "apps completed", "VEs"});
    table.set_precision(3);
    for (const auto& r : runs) {
      table.add_row({r.framework, r.makespan_s,
                     (1.0 - r.makespan_s / baseline) * 100.0, r.completed,
                     r.ve_count});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Paper shape: PARM+PANR fastest (up to 25.4 % / 34.3 % / "
               "13.1 % better than HM+XY for compute / communication / "
               "mixed); PSN-aware routing helps most when combined with "
               "PSN-aware mapping.\n";
  return 0;
}
