// Figure 7 reproduction: peak and average PSN (% of supply voltage)
// observed with the six frameworks across workload types (same experiment
// as Fig. 6: 20 applications, 0.1 s arrivals, mean of three seeds).
//
// Paper headline: PARM+PANR reduces peak PSN by up to 4.15× (compute) /
// 4.5× (communication) versus HM+XY — driven by PARM's near-threshold
// Vdd selection, same-activity clustering, and PANR steering traffic away
// from stressed domains.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"

int main() {
  using namespace parm;
  const std::vector<std::uint64_t> seeds{11, 23, 47};
  const auto frameworks = core::paper_frameworks();
  const sim::SimConfig base = exp::default_sim_config();

  std::cout << "Fig. 7 — Peak and average PSN (% of Vdd) per framework "
               "(20 apps, 0.1 s arrivals, mean of "
            << seeds.size() << " seeds)\n\n";

  for (auto kind : {appmodel::SequenceKind::Compute,
                    appmodel::SequenceKind::Communication,
                    appmodel::SequenceKind::Mixed}) {
    appmodel::SequenceConfig seq;
    seq.kind = kind;
    seq.app_count = 20;
    seq.inter_arrival_s = 0.1;
    const auto runs =
        exp::run_matrix_averaged(frameworks, seq, base, seeds);
    const double base_peak = runs.front().peak_psn_percent;  // HM+XY
    const double base_avg = runs.front().avg_psn_percent;

    std::cout << "[" << to_string(kind) << " workload]\n";
    Table table({"framework", "peak PSN (%)", "avg PSN (%)",
                 "peak vs HM+XY (x)", "avg vs HM+XY (x)"});
    table.set_precision(2);
    for (const auto& r : runs) {
      table.add_row({r.framework, r.peak_psn_percent, r.avg_psn_percent,
                     base_peak / r.peak_psn_percent,
                     base_avg / r.avg_psn_percent});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Paper shape: every PARM variant sits far below every HM "
               "variant (up to 4.5×); PARM keeps peak PSN near the 5 % "
               "voltage-emergency margin while HM exceeds it heavily.\n";
  return 0;
}
