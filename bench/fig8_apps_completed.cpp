// Figure 8 reproduction: total number of applications successfully
// completed across workload types and inter-application arrival rates
// (0.2 / 0.1 / 0.05 s) for HM+XY, PARM+XY, PARM+ICON, PARM+PANR.
//
// Paper findings to reproduce:
//  - at 0.2 s all frameworks perform similarly (low subscription);
//  - as arrivals accelerate, HM drops far more applications than PARM
//    (fixed high-Vdd operating point exhausts the DsPB/tiles and VE
//    recovery slows service), with PARM+PANR mapping up to 38 % more.
#include <iostream>

#include "common/table.hpp"
#include "exp/experiments.hpp"

int main() {
  using namespace parm;
  const std::vector<std::uint64_t> seeds{11, 23};
  const auto frameworks = exp::fig8_frameworks();
  const sim::SimConfig base = exp::default_sim_config();

  std::cout << "Fig. 8 — Applications completed (of 20) per arrival rate "
               "(mean of " << seeds.size() << " seeds)\n\n";

  for (auto kind : {appmodel::SequenceKind::Compute,
                    appmodel::SequenceKind::Communication}) {
    std::cout << "[" << to_string(kind) << " workload]\n";
    Table table({"framework", "0.2 s arrivals", "0.1 s arrivals",
                 "0.05 s arrivals"});
    table.set_precision(1);

    // Collect one column per arrival rate.
    std::vector<std::vector<double>> columns;
    for (double arrival : {0.2, 0.1, 0.05}) {
      appmodel::SequenceConfig seq;
      seq.kind = kind;
      seq.app_count = 20;
      seq.inter_arrival_s = arrival;
      const auto runs =
          exp::run_matrix_averaged(frameworks, seq, base, seeds);
      std::vector<double> col;
      for (const auto& r : runs) col.push_back(r.completed);
      columns.push_back(std::move(col));
    }
    for (std::size_t f = 0; f < frameworks.size(); ++f) {
      table.add_row({frameworks[f].display_name(), columns[0][f],
                     columns[1][f], columns[2][f]});
    }
    table.print(std::cout);
    const double gain_01 =
        (columns[1].back() / columns[1].front() - 1.0) * 100.0;
    const double gain_005 =
        (columns[2].back() / columns[2].front() - 1.0) * 100.0;
    std::cout << "PARM+PANR vs HM+XY: +" << static_cast<int>(gain_01)
              << " % apps at 0.1 s, +" << static_cast<int>(gain_005)
              << " % at 0.05 s (paper: up to +38 %)\n\n";
  }
  std::cout << "Paper shape: all frameworks similar at 0.2 s; PARM "
               "variants complete clearly more as the CMP oversubscribes, "
               "because PARM adaptively lowers Vdd / DoP to fit the "
               "dark-silicon budget.\n";
  return 0;
}
