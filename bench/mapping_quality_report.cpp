// Mapping-quality report: the static properties behind Figs. 6/7.
//
// For every benchmark at a representative DoP, maps the application once
// with PARM (Algorithm 2) and once with HM onto an empty CMP and compares
// the three static quality measures the paper's arguments rest on:
//   - communication cost: Σ edge volume × Manhattan distance (HM's
//     scattering inflates NoC traffic — section 5.2);
//   - unlike-activity co-residence: count of H-L task pairs sharing a
//     power domain at 1 hop (the Fig. 3(b) interference driver PARM's
//     clustering avoids; domains are electrically isolated, so only
//     same-domain pairs interfere);
//   - region span: max pairwise hop distance among the app's tiles
//     (contiguity — PARM isolates apps in compact regions).
#include <iostream>

#include "appmodel/application.hpp"
#include "common/table.hpp"
#include "mapping/hm_mapper.hpp"
#include "mapping/parm_mapper.hpp"

namespace {

using namespace parm;

struct Quality {
  double comm_cost = 0.0;
  int hl_adjacent_pairs = 0;
  int region_span = 0;
};

Quality assess(const cmp::Platform& platform,
               const appmodel::DopVariant& variant,
               const mapping::Mapping& m) {
  Quality q;
  q.comm_cost = mapping::communication_cost(platform.mesh(), variant, m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = i + 1; j < m.size(); ++j) {
      const int dist = platform.mesh().hop_distance(m[i].tile, m[j].tile);
      q.region_span = std::max(q.region_span, dist);
      const bool same_domain = platform.mesh().domain_of(m[i].tile) ==
                               platform.mesh().domain_of(m[j].tile);
      if (dist == 1 && same_domain) {
        const auto ci = power::classify_activity(m[i].activity);
        const auto cj = power::classify_activity(m[j].activity);
        if (ci != cj) ++q.hl_adjacent_pairs;
      }
    }
  }
  return q;
}

}  // namespace

int main() {
  cmp::Platform platform{cmp::PlatformConfig{}};
  const mapping::ParmMapper parm_mapper;
  const mapping::HarmonicMapper hm_mapper;

  std::cout << "Mapping quality: PARM (Algorithm 2) vs HM [21] on an "
               "empty 10x6 CMP, per benchmark at DoP = min(16, max)\n\n";

  Table table({"benchmark", "comm cost PARM", "comm cost HM",
               "H-L adj PARM", "H-L adj HM", "span PARM", "span HM"});
  table.set_precision(0);

  double parm_cost_total = 0, hm_cost_total = 0;
  int parm_hl_total = 0, hm_hl_total = 0;
  for (const auto& bench : appmodel::benchmark_suite()) {
    const appmodel::ApplicationProfile profile(bench, 77);
    const int dop = std::min(16, bench.max_dop);
    const auto& variant = profile.variant(dop);
    const auto pm = parm_mapper.map(platform, variant);
    const auto hm = hm_mapper.map(platform, variant);
    if (!pm || !hm) continue;
    const Quality qp = assess(platform, variant, *pm);
    const Quality qh = assess(platform, variant, *hm);
    parm_cost_total += qp.comm_cost;
    hm_cost_total += qh.comm_cost;
    parm_hl_total += qp.hl_adjacent_pairs;
    hm_hl_total += qh.hl_adjacent_pairs;
    table.add_row({bench.name, qp.comm_cost, qh.comm_cost,
                   static_cast<std::int64_t>(qp.hl_adjacent_pairs),
                   static_cast<std::int64_t>(qh.hl_adjacent_pairs),
                   static_cast<std::int64_t>(qp.region_span),
                   static_cast<std::int64_t>(qh.region_span)});
  }
  table.print(std::cout);
  std::cout << "\nSuite totals: PARM carries "
            << (1.0 - parm_cost_total / hm_cost_total) * 100.0
            << " % less communication volume-distance and "
            << parm_hl_total << " vs " << hm_hl_total
            << " unlike-activity adjacent pairs — the two static levers "
               "behind PARM's PSN and latency advantages.\n";
  return 0;
}
