// Fleet scaling microbenchmark: N chips in parallel vs the same N chips
// run back to back.
//
// The fleet driver's promise is that chip simulations are embarrassingly
// parallel: each chip owns its engine, registry, and RNG, so wall-clock
// time should scale with the worker count while the merged result stays
// bit-identical. This bench runs one shared arrival stream on an 8-chip
// fleet twice — FleetConfig::threads = 1 (serial reference) and
// threads = 0 (shared pool, all cores) — and reports the speedup. Both
// runs disable per-chip parallel PSN so the comparison isolates
// chip-level parallelism.
//
// Emits BENCH_fleet_scaling.json (path overridable via argv[1]) for CI
// to archive, alongside a human-readable table on stdout.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "exp/experiments.hpp"
#include "fleet/fleet_sim.hpp"

namespace {

using namespace parm;
using Clock = std::chrono::steady_clock;

double run_once(const fleet::FleetConfig& cfg,
                const std::vector<appmodel::AppArrival>& arrivals,
                int* completed) {
  fleet::FleetSimulator sim(cfg, arrivals);
  const auto t0 = Clock::now();
  const fleet::FleetResult r = sim.run();
  const auto t1 = Clock::now();
  *completed = r.completed_count;
  return std::chrono::duration<double>(t1 - t0).count();
}

double median_of(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_fleet_scaling.json";
  constexpr int kChips = 8;
  constexpr int kRepeats = 3;

  fleet::FleetConfig cfg;
  cfg.chip = exp::default_sim_config();
  cfg.chip.framework.mapping = "PARM";
  cfg.chip.framework.routing = "PANR";
  cfg.chip.parallel_psn = false;  // isolate chip-level parallelism
  cfg.chip_count = kChips;
  cfg.dispatch = "round-robin";

  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 24;
  seq.inter_arrival_s = 0.05;
  seq.seed = 7;
  const auto arrivals = appmodel::make_sequence(seq);

  const std::size_t threads = ThreadPool::shared().thread_count() + 1;
  std::cout << "fleet scaling: " << kChips << " chips, " << arrivals.size()
            << " apps, " << threads << " thread(s), median of " << kRepeats
            << " runs\n\n";

  int completed_serial = 0, completed_parallel = 0;
  std::vector<double> serial_s, parallel_s;
  for (int rep = 0; rep < kRepeats; ++rep) {
    cfg.threads = 1;
    serial_s.push_back(run_once(cfg, arrivals, &completed_serial));
    cfg.threads = 0;
    parallel_s.push_back(run_once(cfg, arrivals, &completed_parallel));
  }
  const double serial_med = median_of(serial_s);
  const double parallel_med = median_of(parallel_s);
  const double speedup = serial_med / parallel_med;

  if (completed_serial != completed_parallel) {
    std::cerr << "DETERMINISM VIOLATION: serial completed "
              << completed_serial << ", parallel " << completed_parallel
              << "\n";
    return 1;
  }

  Table table({"mode", "wall (s)", "speedup"});
  table.set_precision(3);
  table.add_row({"serial (threads=1)", serial_med, 1.0});
  table.add_row({"parallel (shared pool)", parallel_med, speedup});
  table.print(std::cout);
  std::cout << "\ncompleted " << completed_parallel << " apps in both modes\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"fleet_scaling\",\n"
       << "  \"chips\": " << kChips << ",\n"
       << "  \"apps\": " << arrivals.size() << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"serial_s\": " << serial_med << ",\n"
       << "  \"parallel_s\": " << parallel_med << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"completed\": " << completed_parallel << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
