// Flight-recorder microbenchmark: what does leaving the recorder on cost?
//
// The recorder's pitch is "cheap enough for production runs": a disabled
// recorder is one branch, an enabled emit is a seq fetch_add plus one
// shard-lock ring store. This bench measures
//   disabled  — emit() on a disabled recorder (the default-run cost)
//   serial    — enabled single-thread emission (the engine's phase loop)
//   wrapping  — enabled emission into a full ring (steady-state overwrite)
//   contended — ThreadPool workers hammering one recorder, 1 vs 8 shards
//               (what sharding buys under contention)
//
// Emits BENCH_flight_recorder.json (path overridable via argv[1]) for CI
// to archive, alongside a human-readable table on stdout.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"

namespace {

using namespace parm;
using Clock = std::chrono::steady_clock;

obs::Event sample_event(int i) {
  obs::Event e;
  e.t = 0.01 * i;
  e.type = obs::EventType::kAppThrottle;
  e.app = i & 63;
  e.tile = i & 15;
  e.a = 5.0 + (i & 7);
  return e;
}

/// Median-of-repeats wall time per emit() call, in nanoseconds.
template <typename Fn>
double time_per_emit_ns(int emits, int repeats, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn(emits);
    const auto t1 = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() / emits);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_flight_recorder.json";

  constexpr int kEmits = 100000;
  constexpr int kRepeats = 9;
  constexpr std::size_t kCapacity = 16384;

  obs::FlightRecorder disabled(false, kCapacity);
  const double disabled_ns = time_per_emit_ns(kEmits, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) disabled.emit(sample_event(i));
  });

  obs::FlightRecorder serial(true, kCapacity);
  const double serial_ns = time_per_emit_ns(kEmits, kRepeats, [&](int n) {
    serial.clear();
    for (int i = 0; i < n; ++i) serial.emit(sample_event(i));
  });

  // Steady-state overwrite: the ring is already full, every emit drops.
  obs::FlightRecorder wrapping(true, 1024);
  for (int i = 0; i < 2048; ++i) wrapping.emit(sample_event(i));
  const double wrap_ns = time_per_emit_ns(kEmits, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) wrapping.emit(sample_event(i));
  });

  const std::size_t threads = ThreadPool::shared().thread_count() + 1;
  const auto contended_ns = [&](std::size_t shards) {
    obs::FlightRecorder rec(true, kCapacity, shards);
    return time_per_emit_ns(kEmits, kRepeats, [&](int n) {
      const auto per_worker = static_cast<std::size_t>(n) / threads;
      ThreadPool::shared().parallel_for(threads, [&](std::size_t w) {
        for (std::size_t i = 0; i < per_worker; ++i) {
          rec.emit(sample_event(static_cast<int>(w * per_worker + i)));
        }
      });
    });
  };
  const double contended_1shard_ns = contended_ns(1);
  const double contended_8shard_ns = contended_ns(8);

  std::cout << "Flight-recorder emit cost (" << kEmits
            << " emits/run, median of " << kRepeats << " runs, " << threads
            << " thread(s))\n\n";
  Table table({"path", "ns/emit"});
  table.set_precision(1);
  table.add_row({"disabled (default run)", disabled_ns});
  table.add_row({"enabled, serial", serial_ns});
  table.add_row({"enabled, ring full (overwrite)", wrap_ns});
  table.add_row({"enabled, contended, 1 shard", contended_1shard_ns});
  table.add_row({"enabled, contended, 8 shards", contended_8shard_ns});
  table.print(std::cout);
  std::cout << "\nretained " << serial.size() << "/" << serial.capacity()
            << " events, " << serial.dropped() << " overwritten in the "
            << "serial run\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"flight_recorder\",\n"
       << "  \"emits_per_run\": " << kEmits << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"capacity\": " << kCapacity << ",\n"
       << "  \"disabled_ns_per_emit\": " << disabled_ns << ",\n"
       << "  \"serial_ns_per_emit\": " << serial_ns << ",\n"
       << "  \"wrapping_ns_per_emit\": " << wrap_ns << ",\n"
       << "  \"contended_1shard_ns_per_emit\": " << contended_1shard_ns
       << ",\n"
       << "  \"contended_8shard_ns_per_emit\": " << contended_8shard_ns
       << ",\n"
       << "  \"shard_contention_speedup\": "
       << contended_1shard_ns / contended_8shard_ns << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
