// NoC cycle-engine scaling microbenchmark: serial stepping vs the sharded
// gang at 2/4/8 shards, at a low and a saturated injection rate on the
// paper's 10×6 mesh.
//
// The engine's promise is that sharding is a pure throughput knob: every
// shard count delivers bit-identical results (checked here via delivered
// flit counts; pinned byte-for-byte by tests/noc_parallel_test), so the
// only question is wall-clock. The saturated point is where parallelism
// pays — every router busy every cycle; the low-load point bounds the
// gang's overhead when there is little work to share.
//
// Emits BENCH_noc_scaling.json (path overridable via argv[1]) for CI to
// archive, alongside a human-readable table on stdout.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"

namespace {

using namespace parm;
using namespace parm::noc;
using Clock = std::chrono::steady_clock;

constexpr int kWidth = 10;
constexpr int kHeight = 6;
constexpr std::uint64_t kWarmup = 512;
constexpr std::uint64_t kMeasure = 8192;
constexpr int kRepeats = 3;

struct Point {
  double wall_s = 0.0;
  std::uint64_t delivered = 0;
};

Point run_once(int shards, double load_per_tile) {
  const MeshGeometry mesh(kWidth, kHeight);
  NocConfig cfg;
  cfg.buffer_depth = 8;
  cfg.flits_per_packet = 4;
  Network net(mesh, cfg, make_routing("PANR"));
  net.set_shards(shards);
  Rng rng(42);
  TrafficGenerator traffic(uniform_random_flows(mesh, load_per_tile, rng));
  const Network::CycleHook hook = [&traffic](Network& n) { traffic.tick(n); };
  net.step_cycles(kWarmup, hook);
  const auto t0 = Clock::now();
  net.step_cycles(kMeasure, hook);
  const auto t1 = Clock::now();
  Point p;
  p.wall_s = std::chrono::duration<double>(t1 - t0).count();
  p.delivered = net.total_delivered_flits();
  return p;
}

double median_of(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Median wall-clock over kRepeats runs; every run must deliver the same
/// flit count as the serial reference (bit-identity spot check).
double bench(int shards, double load, std::uint64_t expect_delivered,
             bool* ok) {
  std::vector<double> walls;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const Point p = run_once(shards, load);
    if (p.delivered != expect_delivered) *ok = false;
    walls.push_back(p.wall_s);
  }
  return median_of(walls);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_noc_scaling.json";
  constexpr double kLowLoad = 0.02;        // flits/cycle/tile, uncontended
  constexpr double kSaturatedLoad = 0.40;  // deep into saturation

  const std::size_t threads = ThreadPool::shared().thread_count() + 1;
  const int routers = kWidth * kHeight;
  std::cout << "noc scaling: " << kWidth << "x" << kHeight << " mesh, "
            << kMeasure << " measured cycles, " << threads
            << " thread(s), median of " << kRepeats << " runs\n\n";

  bool ok = true;
  const std::uint64_t low_ref = run_once(1, kLowLoad).delivered;
  const std::uint64_t sat_ref = run_once(1, kSaturatedLoad).delivered;

  Table table({"shards", "low wall (s)", "low speedup", "sat wall (s)",
               "sat speedup"});
  table.set_precision(3);
  std::vector<int> shard_counts{1, 2, 4, 8};
  std::vector<double> low_wall, sat_wall;
  for (int s : shard_counts) {
    low_wall.push_back(bench(s, kLowLoad, low_ref, &ok));
    sat_wall.push_back(bench(s, kSaturatedLoad, sat_ref, &ok));
    table.add_row({static_cast<std::int64_t>(s), low_wall.back(),
                   low_wall.front() / low_wall.back(), sat_wall.back(),
                   sat_wall.front() / sat_wall.back()});
  }
  table.print(std::cout);

  if (!ok) {
    std::cerr << "DETERMINISM VIOLATION: a sharded run delivered a "
                 "different flit count than serial\n";
    return 1;
  }

  // Serial grind rate: the SoA baseline CI asserts a ceiling on.
  const double serial_ns_per_router_cycle =
      sat_wall.front() * 1e9 /
      (static_cast<double>(kMeasure) * static_cast<double>(routers));
  std::cout << "\nserial saturated: " << serial_ns_per_router_cycle
            << " ns per router-cycle\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"noc_scaling\",\n"
       << "  \"mesh\": \"" << kWidth << "x" << kHeight << "\",\n"
       << "  \"measure_cycles\": " << kMeasure << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"low_load\": " << kLowLoad << ",\n"
       << "  \"saturated_load\": " << kSaturatedLoad << ",\n"
       << "  \"saturated_serial_ns_per_router_cycle\": "
       << serial_ns_per_router_cycle << ",\n";
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    json << "  \"low_wall_s_" << shard_counts[i] << "\": " << low_wall[i]
         << ",\n"
         << "  \"sat_wall_s_" << shard_counts[i] << "\": " << sat_wall[i]
         << ",\n";
  }
  json << "  \"speedup_low_4\": " << low_wall[0] / low_wall[2] << ",\n"
       << "  \"speedup_sat_2\": " << sat_wall[0] / sat_wall[1] << ",\n"
       << "  \"speedup_sat_4\": " << sat_wall[0] / sat_wall[2] << ",\n"
       << "  \"speedup_sat_8\": " << sat_wall[0] / sat_wall[3] << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
