// Microbenchmarks for PARM's runtime complexity (paper section 4.3).
//
// The paper argues PARM runs in O(V·D·max(Ʈ, T²)): clustering is linear
// in APG edges (≤ T(T+1)/2), cluster-to-domain mapping linear in tiles,
// and Vdd/DoP selection iterates a small V×D grid. These
// google-benchmark fixtures measure:
//   BM_Clustering/T        — Algorithm 2 clustering vs task count
//   BM_ParmMapping/T       — full mapping heuristic vs task count
//   BM_HmMapping/T         — harmonic baseline vs task count
//   BM_Admission/mesh      — full Algorithm 1 admission vs CMP size
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "appmodel/application.hpp"
#include "core/admission.hpp"
#include "mapping/clustering.hpp"
#include "mapping/hm_mapper.hpp"
#include "mapping/parm_mapper.hpp"

namespace {

using namespace parm;

const appmodel::ApplicationProfile& profile_for(const char* bench) {
  static std::map<std::string, std::unique_ptr<appmodel::ApplicationProfile>>
      cache;
  auto& slot = cache[bench];
  if (!slot) {
    slot = std::make_unique<appmodel::ApplicationProfile>(
        appmodel::benchmark_by_name(bench), 42);
  }
  return *slot;
}

void BM_Clustering(benchmark::State& state) {
  const int dop = static_cast<int>(state.range(0));
  const auto& variant = profile_for("fft").variant(dop);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::cluster_tasks(variant));
  }
  state.SetComplexityN(dop);
}
BENCHMARK(BM_Clustering)->RangeMultiplier(2)->Range(4, 32)->Complexity();

void BM_ParmMapping(benchmark::State& state) {
  const int dop = static_cast<int>(state.range(0));
  const auto& variant = profile_for("fft").variant(dop);
  cmp::Platform platform{cmp::PlatformConfig{}};
  const mapping::ParmMapper mapper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(platform, variant));
  }
  state.SetComplexityN(dop);
}
BENCHMARK(BM_ParmMapping)->RangeMultiplier(2)->Range(4, 32)->Complexity();

void BM_HmMapping(benchmark::State& state) {
  const int dop = static_cast<int>(state.range(0));
  const auto& variant = profile_for("fft").variant(dop);
  cmp::Platform platform{cmp::PlatformConfig{}};
  const mapping::HarmonicMapper mapper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(platform, variant));
  }
  state.SetComplexityN(dop);
}
BENCHMARK(BM_HmMapping)->RangeMultiplier(2)->Range(4, 32)->Complexity();

void BM_Admission(benchmark::State& state) {
  // Scale the CMP mesh (tiles Ʈ) and run the full Algorithm 1 admission.
  const int width = static_cast<int>(state.range(0));
  cmp::PlatformConfig cfg;
  cfg.mesh_width = width;
  cfg.mesh_height = 6;
  cfg.dark_silicon_budget_w = 65.0 * width / 10.0;
  cmp::Platform platform{cfg};
  const core::ParmAdmissionPolicy policy;

  appmodel::AppArrival app;
  app.id = 0;
  app.bench = &appmodel::benchmark_by_name("fft");
  app.profile =
      std::make_shared<appmodel::ApplicationProfile>(*app.bench, 42);
  app.arrival_s = 0.0;
  app.deadline_s = 100.0;

  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.try_admit(app, 0.0, platform));
  }
  state.SetComplexityN(width * 6);
}
BENCHMARK(BM_Admission)
    ->Arg(6)
    ->Arg(10)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Complexity();

}  // namespace
