// PDN hot-path microbenchmark: cold rebuild vs cached factorization vs
// PsnCache memoization vs thread-pool fan-out.
//
// The simulator calls PsnEstimator::estimate once per active domain per
// epoch with the same topology every time — only vdd and the tile loads
// change, and those are RHS-only (see transient.hpp). This bench
// quantifies each layer of the hot-path overhaul:
//   cold      — rebuild the netlist and LU-factorize per call (old path)
//   cached    — shared LU factorizations, rebound sources, reused scratch
//   memoized  — cached engines behind the quantized-key PsnCache, on the
//               repeating load signatures an epoch loop actually produces
//   parallel  — independent cached estimates fanned out on the pool
//
// Emits BENCH_pdn_hotpath.json (path overridable via argv[1]) for CI to
// archive, alongside a human-readable table on stdout.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "pdn/psn_cache.hpp"
#include "pdn/psn_estimator.hpp"
#include "power/technology.hpp"

namespace {

using namespace parm;
using Clock = std::chrono::steady_clock;

/// Load signatures mimicking an epoch loop: a small working set of
/// quantized operating points that recurs epoch after epoch.
struct Workload {
  double vdd;
  std::array<pdn::TileLoad, 4> loads;
};

std::vector<Workload> make_working_set() {
  std::vector<Workload> ws;
  const double vdds[] = {0.4, 0.55, 0.7, 0.8};
  const double currents[] = {0.1, 0.4, 0.9};
  for (double vdd : vdds) {
    for (double i : currents) {
      Workload w;
      w.vdd = vdd;
      w.loads = {pdn::TileLoad{i, 0.7, 0.0}, pdn::TileLoad{i * 0.5, 0.25, 0.3},
                 pdn::TileLoad{0.0, 0.0, 0.0}, pdn::TileLoad{i * 1.3, 0.7, 0.6}};
      ws.push_back(w);
    }
  }
  return ws;
}

/// Median-of-repeats wall time per estimate() call, in microseconds.
template <typename Fn>
double time_per_call_us(int calls, int repeats, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn(calls);
    const auto t1 = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count() / calls);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_pdn_hotpath.json";
  const auto& tech = power::technology_node(7);
  const auto ws = make_working_set();
  double sink = 0.0;  // defeat dead-code elimination

  constexpr int kCalls = 48;  // one "epoch" worth of estimates
  constexpr int kRepeats = 9;

  pdn::PsnEstimator est(tech);
  // Warm the factorization cache and the thread pool once up front.
  sink += est.estimate(ws[0].vdd, ws[0].loads).peak_percent;

  const double cold_us = time_per_call_us(kCalls, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) {
      const Workload& w = ws[static_cast<std::size_t>(i) % ws.size()];
      sink += est.estimate_cold(w.vdd, w.loads).peak_percent;
    }
  });

  const double cached_us = time_per_call_us(kCalls, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) {
      const Workload& w = ws[static_cast<std::size_t>(i) % ws.size()];
      sink += est.estimate(w.vdd, w.loads).peak_percent;
    }
  });

  pdn::PsnCache memo;
  const double memo_us = time_per_call_us(kCalls, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) {
      const Workload& w = ws[static_cast<std::size_t>(i) % ws.size()];
      const std::uint64_t key = pdn::PsnCache::key(w.vdd, w.loads);
      pdn::DomainPsn psn;
      if (!memo.get(key, psn)) {
        psn = est.estimate(w.vdd, pdn::PsnCache::quantize(w.loads));
        memo.put(key, psn);
      }
      sink += psn.peak_percent;
    }
  });

  std::vector<double> peaks(static_cast<std::size_t>(kCalls));
  const double parallel_us = time_per_call_us(kCalls, kRepeats, [&](int n) {
    ThreadPool::shared().parallel_for(
        static_cast<std::size_t>(n), [&](std::size_t i) {
          const Workload& w = ws[i % ws.size()];
          peaks[i] = est.estimate(w.vdd, w.loads).peak_percent;
        });
    for (int i = 0; i < n; ++i) sink += peaks[static_cast<std::size_t>(i)];
  });

  const std::size_t threads = ThreadPool::shared().thread_count() + 1;

  std::cout << "PDN hot-path throughput (" << kCalls
            << " estimates/run, median of " << kRepeats << " runs, "
            << threads << " thread(s))\n\n";
  Table table({"path", "us/call", "speedup vs cold"});
  table.set_precision(2);
  table.add_row({"cold (rebuild + refactorize)", cold_us, 1.0});
  table.add_row({"cached factorization", cached_us, cold_us / cached_us});
  table.add_row({"cached + PsnCache memo", memo_us, cold_us / memo_us});
  table.add_row({"cached + thread pool", parallel_us, cold_us / parallel_us});
  table.print(std::cout);
  std::cout << "\n(sink " << sink << ")\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"pdn_hotpath\",\n"
       << "  \"calls_per_run\": " << kCalls << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"cold_us_per_call\": " << cold_us << ",\n"
       << "  \"cached_us_per_call\": " << cached_us << ",\n"
       << "  \"memoized_us_per_call\": " << memo_us << ",\n"
       << "  \"parallel_us_per_call\": " << parallel_us << ",\n"
       << "  \"cached_speedup\": " << cold_us / cached_us << ",\n"
       << "  \"memoized_speedup\": " << cold_us / memo_us << ",\n"
       << "  \"parallel_speedup\": " << cold_us / parallel_us << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
