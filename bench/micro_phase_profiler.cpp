// Phase-profiler microbenchmark: what does the built-in self-profiler
// cost the engine's epoch loop?
//
// The profiler's pitch is that it can stay on under a live workload
// (--serve turns it on implicitly), so its cost has to be measured
// against the thing it instruments. This bench measures
//   disabled scope — Scope construct/destroy on a disabled profiler
//                    (the default-run cost: a branch, no clock reads)
//   enabled scope  — Scope construct/destroy + histogram observe (two
//                    steady_clock reads per phase)
//   epoch          — median wall time per epoch of a real PARM+PANR
//                    simulation (the denominator)
// and derives the headline figure: six enabled scopes per epoch as a
// percentage of the epoch itself.
//
// Emits BENCH_phase_profiler.json (path overridable via argv[1]) for CI
// to archive; CI asserts overhead_percent <= 2.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "sim/system_sim.hpp"

namespace {

using namespace parm;
using Clock = std::chrono::steady_clock;

/// Median-of-repeats wall time per iteration, in nanoseconds.
template <typename Fn>
double time_per_iter_ns(int iters, int repeats, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn(iters);
    const auto t1 = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

appmodel::SequenceConfig bench_sequence() {
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 8;
  seq.inter_arrival_s = 0.05;
  seq.seed = 42;
  return seq;
}

/// Median ns/epoch of a full simulation run under `cfg`.
double epoch_ns(const sim::SimConfig& cfg, int repeats,
                std::uint64_t* epochs_out) {
  const auto seq = appmodel::make_sequence(bench_sequence());
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  std::uint64_t epochs = 0;
  for (int r = 0; r < repeats; ++r) {
    sim::SystemSimulator simulator(cfg, seq);
    const auto t0 = Clock::now();
    (void)simulator.run();
    const auto t1 = Clock::now();
    epochs = simulator.metrics().counter_value("sim.epochs");
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(epochs));
  }
  std::sort(samples.begin(), samples.end());
  if (epochs_out != nullptr) *epochs_out = epochs;
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_phase_profiler.json";

  constexpr int kScopes = 1000000;
  constexpr int kRepeats = 9;
  constexpr int kSimRepeats = 5;

  // Scope cost, disabled: the price every default (non---serve) run pays.
  obs::Registry off_reg;
  obs::PhaseProfiler off(false, &off_reg);
  const double disabled_ns = time_per_iter_ns(kScopes, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) {
      obs::PhaseProfiler::Scope scope(off, obs::PhaseProfiler::kNoc);
    }
  });

  // Scope cost, enabled: two clock reads plus a histogram observe.
  obs::Registry on_reg;
  obs::PhaseProfiler on(true, &on_reg);
  const double enabled_ns = time_per_iter_ns(kScopes, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) {
      obs::PhaseProfiler::Scope scope(on, obs::PhaseProfiler::kNoc);
    }
  });

  // The denominator: a real epoch, measured on the same workload with the
  // profiler off and (as a cross-check) with it on.
  sim::SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  std::uint64_t epochs = 0;
  const double epoch_off_ns = epoch_ns(cfg, kSimRepeats, &epochs);
  sim::SimConfig profiled = cfg;
  profiled.profile_phases = true;
  const double epoch_on_ns = epoch_ns(profiled, kSimRepeats, nullptr);

  // Headline: six instrumented phases (+ the epoch counter, folded into
  // the same figure by charging one extra scope) against the epoch.
  const double per_epoch_cost_ns = 7.0 * enabled_ns;
  const double overhead_percent = 100.0 * per_epoch_cost_ns / epoch_off_ns;

  std::cout << "Phase-profiler cost (" << kScopes << " scopes/run, median of "
            << kRepeats << " runs; epoch cost from " << kSimRepeats
            << " full runs of " << epochs << " epochs)\n\n";
  Table table({"path", "ns"});
  table.set_precision(1);
  table.add_row({"scope, disabled (default run)", disabled_ns});
  table.add_row({"scope, enabled", enabled_ns});
  table.add_row({"epoch, profiler off", epoch_off_ns});
  table.add_row({"epoch, profiler on", epoch_on_ns});
  table.print(std::cout);
  std::cout << "\nprofiling cost per epoch: " << per_epoch_cost_ns
            << " ns (6 phases + epoch counter) = " << overhead_percent
            << " % of an epoch\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"phase_profiler\",\n"
       << "  \"scopes_per_run\": " << kScopes << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"sim_repeats\": " << kSimRepeats << ",\n"
       << "  \"epochs_per_sim\": " << epochs << ",\n"
       << "  \"disabled_scope_ns\": " << disabled_ns << ",\n"
       << "  \"enabled_scope_ns\": " << enabled_ns << ",\n"
       << "  \"epoch_off_ns\": " << epoch_off_ns << ",\n"
       << "  \"epoch_on_ns\": " << epoch_on_ns << ",\n"
       << "  \"per_epoch_cost_ns\": " << per_epoch_cost_ns << ",\n"
       << "  \"overhead_percent\": " << overhead_percent << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
