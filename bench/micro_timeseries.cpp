// Time-series capture microbenchmark: what does leaving capture on cost?
//
// The store's pitch mirrors the flight recorder's: observe-only capture
// cheap enough to stay on for production runs. A disabled store is one
// branch; an enabled append is a ring store plus amortised downsample
// folds. This bench measures
//   disabled  — append() on a disabled store (the default-run cost)
//   by-name   — enabled append through the store's name lookup
//   handle    — enabled append through a pre-resolved TimeSeries* (the
//               engine's phase hot path)
//   wrapping  — enabled append into full rings at every level
//               (steady-state eviction)
//   deep      — handle append with 5 downsample levels instead of 3
//
// Emits BENCH_timeseries.json (path overridable via argv[1]) for CI to
// archive; CI asserts a ceiling on the hot-path ns/append figure.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "obs/timeseries.hpp"

namespace {

using namespace parm;
using Clock = std::chrono::steady_clock;

/// Median-of-repeats wall time per append() call, in nanoseconds.
template <typename Fn>
double time_per_append_ns(int appends, int repeats, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn(appends);
    const auto t1 = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() / appends);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double value_at(int i) { return 5.0 + static_cast<double>(i & 7); }

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_timeseries.json";

  constexpr int kAppends = 100000;
  constexpr int kRepeats = 9;
  obs::TimeSeriesConfig cfg;  // capacity 512, 3 levels, downsample 8

  obs::TimeSeriesStore disabled(false, cfg);
  const double disabled_ns = time_per_append_ns(kAppends, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) {
      disabled.append("psn.chip.peak_percent", 0.001 * i, value_at(i));
    }
  });

  obs::TimeSeriesStore by_name(true, cfg);
  const double by_name_ns = time_per_append_ns(kAppends, kRepeats, [&](int n) {
    for (int i = 0; i < n; ++i) {
      by_name.append("psn.chip.peak_percent", 0.001 * i, value_at(i));
    }
  });

  // The engine's phase hot path: the series handle is resolved once, then
  // every epoch appends through it and folds the accounting in one call.
  obs::TimeSeriesStore handle_store(true, cfg);
  obs::TimeSeries* handle = &handle_store.series("psn.chip.peak_percent");
  const double handle_ns = time_per_append_ns(kAppends, kRepeats, [&](int n) {
    std::size_t evicted = 0;
    for (int i = 0; i < n; ++i) {
      evicted += handle->append(0.001 * i, value_at(i));
    }
    handle_store.note_appends(static_cast<std::size_t>(n), evicted);
  });

  // Steady-state eviction: every ring (all levels) is already full, so
  // each append overwrites and the accounting takes the evicted branch.
  obs::TimeSeriesStore wrapping(true, cfg);
  obs::TimeSeries* wrap = &wrapping.series("psn.chip.peak_percent");
  for (int i = 0; i < 1 << 20; ++i) wrap->append(0.001 * i, value_at(i));
  double wrap_t = 0.001 * (1 << 20);
  const double wrap_ns = time_per_append_ns(kAppends, kRepeats, [&](int n) {
    std::size_t evicted = 0;
    for (int i = 0; i < n; ++i) {
      evicted += wrap->append(wrap_t, value_at(i));
      wrap_t += 0.001;
    }
    wrapping.note_appends(static_cast<std::size_t>(n), evicted);
  });

  obs::TimeSeriesConfig deep_cfg;
  deep_cfg.levels = 5;
  obs::TimeSeriesStore deep_store(true, deep_cfg);
  obs::TimeSeries* deep = &deep_store.series("psn.chip.peak_percent");
  const double deep_ns = time_per_append_ns(kAppends, kRepeats, [&](int n) {
    std::size_t evicted = 0;
    for (int i = 0; i < n; ++i) {
      evicted += deep->append(0.001 * i, value_at(i));
    }
    deep_store.note_appends(static_cast<std::size_t>(n), evicted);
  });

  std::cout << "Time-series append cost (" << kAppends
            << " appends/run, median of " << kRepeats << " runs, capacity "
            << cfg.capacity << ", " << cfg.levels << " levels, downsample "
            << cfg.downsample << ")\n\n";
  Table table({"path", "ns/append"});
  table.set_precision(1);
  table.add_row({"disabled (default run)", disabled_ns});
  table.add_row({"enabled, by-name lookup", by_name_ns});
  table.add_row({"enabled, resolved handle", handle_ns});
  table.add_row({"enabled, rings full (evicting)", wrap_ns});
  table.add_row({"enabled, 5 levels", deep_ns});
  table.print(std::cout);
  std::cout << "\nretained " << handle->samples(0).size() << "/"
            << cfg.capacity << " raw samples across " << handle->level_count()
            << " levels; " << handle_store.evictions_total()
            << " evictions in the handle run\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"timeseries\",\n"
       << "  \"appends_per_run\": " << kAppends << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"capacity\": " << cfg.capacity << ",\n"
       << "  \"levels\": " << cfg.levels << ",\n"
       << "  \"downsample\": " << cfg.downsample << ",\n"
       << "  \"disabled_ns_per_append\": " << disabled_ns << ",\n"
       << "  \"by_name_ns_per_append\": " << by_name_ns << ",\n"
       << "  \"handle_ns_per_append\": " << handle_ns << ",\n"
       << "  \"wrapping_ns_per_append\": " << wrap_ns << ",\n"
       << "  \"deep_levels_ns_per_append\": " << deep_ns << ",\n"
       << "  \"name_lookup_overhead\": " << by_name_ns / handle_ns << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
