// Topology routing-table microbenchmark: construction cost (BFS + CDG
// proof) and per-route lookup cost of the generated tables on every
// built-in topology kind at the paper's 10x6 scale.
//
// The tables are the hot lookup path of every non-mesh run (TableRouting
// consults candidate_mask/next_port once per head flit per hop), so the
// walk cost must stay flat-array cheap. The bench walks full src->dst
// routes by chasing next_port through link_dst and asserts a ns/route
// ceiling — a regression to pointer-chasing or per-lookup allocation
// fails CI, not just slows it.
//
// Emits BENCH_topology.json (path overridable via argv[1]) for CI to
// archive, alongside a human-readable table on stdout. Exit code 1 when
// any topology exceeds the ceiling or a walked route disagrees with
// table_hops (self-check).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "noc/routing_table.hpp"
#include "noc/topology.hpp"

namespace {

using namespace parm;
using namespace parm::noc;
using Clock = std::chrono::steady_clock;

// Generous bound: a route is <= ~20 flat-array lookups at a few ns each;
// CI machines are noisy, so the ceiling only catches order-of-magnitude
// regressions (pointer chasing, allocation on the lookup path).
constexpr double kNsPerRouteCeiling = 2000.0;
constexpr int kRepeats = 3;
constexpr int kRoutePairs = 200000;

struct Result {
  std::string name;
  int tiles = 0;
  const char* mode = nullptr;
  double build_ms = 0.0;
  double ns_per_route = 0.0;
  double avg_hops = 0.0;
};

double median_of(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

Result bench_topology(const std::string& spec, bool* ok) {
  const auto topo = Topology::make(spec, 10, 6);
  Result r;
  r.name = spec;
  r.tiles = topo->tile_count();

  std::vector<double> build_ms;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto t0 = Clock::now();
    const RoutingTable table = RoutingTable::build(*topo);
    const auto t1 = Clock::now();
    build_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  r.build_ms = median_of(build_ms);

  const RoutingTable table = RoutingTable::build(*topo);
  r.mode = table.mode_name();

  // Pre-draw random pairs so the timed loop is lookups only.
  Rng rng(42);
  std::vector<std::pair<TileId, TileId>> pairs;
  pairs.reserve(kRoutePairs);
  const auto n = static_cast<std::uint64_t>(topo->tile_count());
  while (pairs.size() < kRoutePairs) {
    const TileId a = static_cast<TileId>(rng.next_below(n));
    const TileId b = static_cast<TileId>(rng.next_below(n));
    if (a != b) pairs.emplace_back(a, b);
  }

  std::vector<double> walk_ns;
  std::uint64_t total_hops = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    total_hops = 0;
    const auto t0 = Clock::now();
    for (const auto& [src, dst] : pairs) {
      TileId at = src;
      std::uint64_t hops = 0;
      while (at != dst) {
        const int port = table.next_port(at, dst);
        at = topo->link_dst(at, port);
        ++hops;
      }
      total_hops += hops;
    }
    const auto t1 = Clock::now();
    walk_ns.push_back(std::chrono::duration<double, std::nano>(t1 - t0)
                          .count() /
                      static_cast<double>(pairs.size()));
    // Self-check on the first repeat: the walked length of the last pair
    // batch must match the table's own accounting.
    if (rep == 0) {
      std::uint64_t expect = 0;
      for (const auto& [src, dst] : pairs) {
        expect += static_cast<std::uint64_t>(table.table_hops(src, dst));
      }
      if (expect != total_hops) {
        std::cerr << spec << ": walked hops " << total_hops
                  << " != table_hops sum " << expect << "\n";
        *ok = false;
      }
    }
  }
  r.ns_per_route = median_of(walk_ns);
  r.avg_hops =
      static_cast<double>(total_hops) / static_cast<double>(pairs.size());
  if (r.ns_per_route > kNsPerRouteCeiling) {
    std::cerr << spec << ": " << r.ns_per_route
              << " ns/route exceeds the " << kNsPerRouteCeiling
              << " ns ceiling\n";
    *ok = false;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_topology.json";
  const std::vector<std::string> specs = {"mesh", "cmesh", "torus",
                                          "butterfly", "mesh3d:4x4x4"};

  std::cout << "topology routing tables: build + route-walk cost, median "
               "of "
            << kRepeats << " runs over " << kRoutePairs << " pairs\n\n";

  bool ok = true;
  std::vector<Result> results;
  for (const auto& spec : specs) results.push_back(bench_topology(spec, &ok));

  Table table({"topology", "tiles", "mode", "build (ms)", "ns/route",
               "avg hops"});
  table.set_precision(3);
  for (const Result& r : results) {
    table.add_row({r.name, static_cast<std::int64_t>(r.tiles),
                   std::string(r.mode), r.build_ms, r.ns_per_route,
                   r.avg_hops});
  }
  table.print(std::cout);
  std::cout << "\nceiling: " << kNsPerRouteCeiling << " ns/route\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"topology_routing\",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"route_pairs\": " << kRoutePairs << ",\n"
       << "  \"ns_per_route_ceiling\": " << kNsPerRouteCeiling << ",\n"
       << "  \"topologies\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"spec\": \"" << r.name << "\", \"tiles\": " << r.tiles
         << ", \"mode\": \"" << r.mode << "\", \"build_ms\": " << r.build_ms
         << ", \"ns_per_route\": " << r.ns_per_route
         << ", \"avg_hops\": " << r.avg_hops << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "json written to " << json_path << "\n";
  return ok ? 0 : 1;
}
