// Section 4.4 overhead report: PANR's additional routing logic and the
// digital PSN-sensor network, relative to the baseline 7 nm router/core.
//
// Paper numbers: PANR logic ~1 mW (~3 % of router power) and ~115 µm²
// (~0.5 % of the 71 300 µm² router); the sensor network is ~413 µm²,
// negligible next to the ~4 mm² core. Hop selection takes one cycle at
// 1 GHz, masked by running in parallel with route computation.
#include <iostream>

#include "common/table.hpp"
#include "power/router_power.hpp"
#include "power/technology.hpp"

int main() {
  using namespace parm;
  const auto& tech = power::technology_node(7);
  const power::RouterPowerModel router(tech);

  // Representative busy router at nominal supply.
  const double vdd = tech.vdd_nominal;
  const double flit_rate = 0.1e9;  // 0.1 flits/cycle at 1 GHz
  const double base_power = router.total_power(vdd, flit_rate, false);
  const double panr_power = router.panr_overhead_power();

  std::cout << "Section 4.4 — PANR and sensor overheads at 7 nm\n\n";
  Table table({"quantity", "value", "relative"});
  table.set_precision(3);
  table.add_row({std::string("baseline router power (W)"), base_power,
                 std::string("-")});
  table.add_row({std::string("PANR logic power (W)"), panr_power,
                 std::to_string(panr_power / base_power * 100.0) + " %"});
  table.add_row({std::string("baseline router area (um^2)"),
                 tech.router_area_um2, std::string("-")});
  table.add_row(
      {std::string("PANR logic area (um^2)"), tech.panr_logic_area_um2,
       std::to_string(router.panr_area_overhead_fraction() * 100.0) +
           " %"});
  table.add_row({std::string("PSN sensor network area (um^2)"),
                 tech.sensor_network_area_um2,
                 std::to_string(tech.sensor_network_area_um2 /
                                tech.core_area_um2 * 100.0) +
                     " % of core"});
  table.add_row({std::string("core area (um^2)"), tech.core_area_um2,
                 std::string("-")});
  table.print(std::cout);
  std::cout << "\nPaper: ~1 mW (3 %) power and ~115 um^2 (0.5 %) area over "
               "the baseline router; 413 um^2 of sensors vs a ~4 mm^2 "
               "core. Hop selection takes 1 cycle at 1 GHz, masked by "
               "parallel route computation (modeled as zero added "
               "latency in the NoC).\n";
  return 0;
}
