// PDN impedance profile per technology node (extension analysis).
//
// The AC view of the Fig. 1 story: for each node, sweep the input
// impedance a tile sees looking into its domain PDN and locate the
// anti-resonance peak of the bump-inductance / decap tank. Scaling
// shrinks the decap and stiffens nothing else, so the peak grows and
// drifts toward the workload ripple band — quantifying *why* peak PSN
// rises across nodes. The last column compares the node's dominant
// workload ripple frequency with the resonance.
#include <iostream>

#include "common/table.hpp"
#include "pdn/ac_analysis.hpp"
#include "pdn/pdn_netlist.hpp"
#include "power/technology.hpp"

int main() {
  using namespace parm;
  std::cout << "PDN input impedance per technology node (AC analysis of "
               "the domain netlist, probe = tile 0)\n\n";

  Table table({"node", "Z @10 MHz (mOhm)", "peak |Z| (mOhm)",
               "anti-resonance (MHz)", "ripple freq (MHz)",
               "ripple/resonance"});
  table.set_precision(2);

  for (const auto& tech : power::all_technology_nodes()) {
    std::array<pdn::TileLoad, 4> no_loads{};
    const pdn::DomainCircuit dom =
        build_domain_circuit(tech, tech.vdd_ntc, no_loads);
    const pdn::AcAnalysis ac(dom.circuit);
    const auto sweep = ac.sweep(dom.tile_nodes[0], 1e6, 5e9, 160);
    const pdn::ImpedancePoint peak = pdn::AcAnalysis::peak(sweep);
    const double z10m =
        std::abs(ac.input_impedance(dom.tile_nodes[0], 10e6));

    table.add_row({tech.name, z10m * 1e3, peak.magnitude() * 1e3,
                   peak.freq_hz / 1e6, tech.ripple_freq_hz / 1e6,
                   tech.ripple_freq_hz / peak.freq_hz});
  }
  table.print(std::cout);
  std::cout << "\nReading: with scaling, the anti-resonance peak impedance "
               "rises (less decap, more wire resistance) while workload "
               "ripple climbs toward it — the frequency-domain mechanism "
               "behind the Fig. 1 PSN growth.\n";
  return 0;
}
