// Sensitivity analysis: how much does the paper's domain-isolation
// assumption matter?
//
// Paper section 3.3 assumes power domains are physically separated with
// independent VRMs ("no interference between tiles from different
// domains"). This bench solves a 4-domain chip as ONE circuit, sweeping
// the impedance of a shared package rail upstream of the VRMs:
//   - one "aggressor" domain runs 4 High-activity tiles in phase;
//   - three "victim" domains run quiet Low-activity workloads.
// With an ideal (zero-impedance) rail the victims see exactly their
// isolated PSN; as the shared impedance grows, aggressor droop leaks into
// the victims — the cross-domain interference the paper's architecture is
// designed to exclude.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "pdn/chip_pdn.hpp"
#include "power/core_power.hpp"
#include "power/vf_model.hpp"

int main() {
  using namespace parm;
  const auto& tech = power::technology_node(7);
  const power::VoltageFrequencyModel vf(tech);
  const power::CorePowerModel core(tech);
  const double vdd = tech.vdd_ntc;
  const double f = vf.fmax(vdd);

  const double i_high = core.supply_current(vdd, f, 0.95);
  const double i_low = core.supply_current(vdd, f, 0.25);

  std::vector<std::array<pdn::TileLoad, 4>> loads(4);
  for (std::size_t k = 0; k < 4; ++k) {
    loads[0][k] = {i_high, pdn::activity_to_modulation(0.95), 0.0};
    for (std::size_t d = 1; d < 4; ++d) {
      loads[d][k] = {i_low, pdn::activity_to_modulation(0.25),
                     0.25 * static_cast<double>(k)};
    }
  }

  std::cout << "Shared-rail sensitivity (7 nm, 4 domains: 1 aggressor + 3 "
               "victims at " << vdd << " V)\n\n";

  Table table({"rail R (mOhm) / L (pH)", "aggressor peak PSN (%)",
               "victim peak PSN (%)", "victim vs isolated (x)"});
  table.set_precision(2);

  double isolated_victim = 0.0;
  for (const auto& [r_mohm, l_ph] :
       {std::pair{0.0, 0.0}, std::pair{0.25, 1.5}, std::pair{0.5, 3.0},
        std::pair{1.0, 6.0}, std::pair{2.0, 12.0}}) {
    pdn::PackageRail rail;
    rail.resistance = r_mohm * 1e-3;
    rail.inductance = l_ph * 1e-12;
    const pdn::ChipPdnModel chip(tech, 4, rail);
    const pdn::ChipPsn psn = chip.estimate(vdd, loads);

    double victim_peak = 0.0;
    for (std::size_t d = 1; d < 4; ++d) {
      victim_peak = std::max(victim_peak, psn.domains[d].peak_percent);
    }
    if (r_mohm == 0.0) isolated_victim = victim_peak;

    std::ostringstream label;
    label << std::fixed << std::setprecision(2) << r_mohm << " / "
          << std::setprecision(1) << l_ph;
    table.add_row({label.str(), psn.domains[0].peak_percent, victim_peak,
                   victim_peak / isolated_victim});
  }
  table.print(std::cout);
  std::cout << "\nReading: with independent VRMs (zero shared impedance) "
               "victims only see their own noise — the paper's isolation "
               "assumption. A realistic shared rail leaks aggressor droop "
               "into every domain, growing victim PSN and coupling the "
               "mapping problem chip-wide; per-domain VRMs are what make "
               "PARM's domain-local reasoning sound.\n";
  return 0;
}
