file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoint_period.dir/ablation_checkpoint_period.cpp.o"
  "CMakeFiles/ablation_checkpoint_period.dir/ablation_checkpoint_period.cpp.o.d"
  "ablation_checkpoint_period"
  "ablation_checkpoint_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoint_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
