# Empty dependencies file for ablation_checkpoint_period.
# This may be replaced when dependencies are built.
