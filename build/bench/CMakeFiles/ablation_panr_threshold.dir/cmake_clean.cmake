file(REMOVE_RECURSE
  "CMakeFiles/ablation_panr_threshold.dir/ablation_panr_threshold.cpp.o"
  "CMakeFiles/ablation_panr_threshold.dir/ablation_panr_threshold.cpp.o.d"
  "ablation_panr_threshold"
  "ablation_panr_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_panr_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
