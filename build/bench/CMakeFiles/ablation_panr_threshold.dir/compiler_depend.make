# Empty compiler generated dependencies file for ablation_panr_threshold.
# This may be replaced when dependencies are built.
