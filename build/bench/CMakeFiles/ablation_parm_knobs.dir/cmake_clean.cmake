file(REMOVE_RECURSE
  "CMakeFiles/ablation_parm_knobs.dir/ablation_parm_knobs.cpp.o"
  "CMakeFiles/ablation_parm_knobs.dir/ablation_parm_knobs.cpp.o.d"
  "ablation_parm_knobs"
  "ablation_parm_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parm_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
