# Empty compiler generated dependencies file for ablation_parm_knobs.
# This may be replaced when dependencies are built.
