file(REMOVE_RECURSE
  "CMakeFiles/ablation_throttle.dir/ablation_throttle.cpp.o"
  "CMakeFiles/ablation_throttle.dir/ablation_throttle.cpp.o.d"
  "ablation_throttle"
  "ablation_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
