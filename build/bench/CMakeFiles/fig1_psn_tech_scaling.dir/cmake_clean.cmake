file(REMOVE_RECURSE
  "CMakeFiles/fig1_psn_tech_scaling.dir/fig1_psn_tech_scaling.cpp.o"
  "CMakeFiles/fig1_psn_tech_scaling.dir/fig1_psn_tech_scaling.cpp.o.d"
  "fig1_psn_tech_scaling"
  "fig1_psn_tech_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_psn_tech_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
