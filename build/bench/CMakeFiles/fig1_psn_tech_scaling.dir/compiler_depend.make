# Empty compiler generated dependencies file for fig1_psn_tech_scaling.
# This may be replaced when dependencies are built.
