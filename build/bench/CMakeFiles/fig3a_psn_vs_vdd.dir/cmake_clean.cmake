file(REMOVE_RECURSE
  "CMakeFiles/fig3a_psn_vs_vdd.dir/fig3a_psn_vs_vdd.cpp.o"
  "CMakeFiles/fig3a_psn_vs_vdd.dir/fig3a_psn_vs_vdd.cpp.o.d"
  "fig3a_psn_vs_vdd"
  "fig3a_psn_vs_vdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_psn_vs_vdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
