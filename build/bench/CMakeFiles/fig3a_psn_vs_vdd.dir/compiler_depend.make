# Empty compiler generated dependencies file for fig3a_psn_vs_vdd.
# This may be replaced when dependencies are built.
