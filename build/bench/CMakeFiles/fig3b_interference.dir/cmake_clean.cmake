file(REMOVE_RECURSE
  "CMakeFiles/fig3b_interference.dir/fig3b_interference.cpp.o"
  "CMakeFiles/fig3b_interference.dir/fig3b_interference.cpp.o.d"
  "fig3b_interference"
  "fig3b_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
