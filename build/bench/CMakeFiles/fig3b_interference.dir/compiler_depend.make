# Empty compiler generated dependencies file for fig3b_interference.
# This may be replaced when dependencies are built.
