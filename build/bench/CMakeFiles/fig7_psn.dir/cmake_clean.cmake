file(REMOVE_RECURSE
  "CMakeFiles/fig7_psn.dir/fig7_psn.cpp.o"
  "CMakeFiles/fig7_psn.dir/fig7_psn.cpp.o.d"
  "fig7_psn"
  "fig7_psn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_psn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
