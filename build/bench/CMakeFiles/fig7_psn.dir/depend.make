# Empty dependencies file for fig7_psn.
# This may be replaced when dependencies are built.
