file(REMOVE_RECURSE
  "CMakeFiles/fig8_apps_completed.dir/fig8_apps_completed.cpp.o"
  "CMakeFiles/fig8_apps_completed.dir/fig8_apps_completed.cpp.o.d"
  "fig8_apps_completed"
  "fig8_apps_completed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_apps_completed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
