# Empty compiler generated dependencies file for fig8_apps_completed.
# This may be replaced when dependencies are built.
