file(REMOVE_RECURSE
  "CMakeFiles/mapping_quality_report.dir/mapping_quality_report.cpp.o"
  "CMakeFiles/mapping_quality_report.dir/mapping_quality_report.cpp.o.d"
  "mapping_quality_report"
  "mapping_quality_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_quality_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
