# Empty compiler generated dependencies file for mapping_quality_report.
# This may be replaced when dependencies are built.
