file(REMOVE_RECURSE
  "CMakeFiles/micro_parm_runtime.dir/micro_parm_runtime.cpp.o"
  "CMakeFiles/micro_parm_runtime.dir/micro_parm_runtime.cpp.o.d"
  "micro_parm_runtime"
  "micro_parm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
