# Empty dependencies file for micro_parm_runtime.
# This may be replaced when dependencies are built.
