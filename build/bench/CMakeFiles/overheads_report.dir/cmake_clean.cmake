file(REMOVE_RECURSE
  "CMakeFiles/overheads_report.dir/overheads_report.cpp.o"
  "CMakeFiles/overheads_report.dir/overheads_report.cpp.o.d"
  "overheads_report"
  "overheads_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overheads_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
