# Empty dependencies file for overheads_report.
# This may be replaced when dependencies are built.
