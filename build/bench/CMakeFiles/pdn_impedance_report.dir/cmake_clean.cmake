file(REMOVE_RECURSE
  "CMakeFiles/pdn_impedance_report.dir/pdn_impedance_report.cpp.o"
  "CMakeFiles/pdn_impedance_report.dir/pdn_impedance_report.cpp.o.d"
  "pdn_impedance_report"
  "pdn_impedance_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdn_impedance_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
