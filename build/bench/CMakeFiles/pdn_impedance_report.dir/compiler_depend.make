# Empty compiler generated dependencies file for pdn_impedance_report.
# This may be replaced when dependencies are built.
