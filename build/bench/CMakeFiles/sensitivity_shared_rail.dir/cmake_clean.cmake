file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_shared_rail.dir/sensitivity_shared_rail.cpp.o"
  "CMakeFiles/sensitivity_shared_rail.dir/sensitivity_shared_rail.cpp.o.d"
  "sensitivity_shared_rail"
  "sensitivity_shared_rail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_shared_rail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
