# Empty dependencies file for sensitivity_shared_rail.
# This may be replaced when dependencies are built.
