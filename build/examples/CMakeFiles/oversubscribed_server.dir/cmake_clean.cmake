file(REMOVE_RECURSE
  "CMakeFiles/oversubscribed_server.dir/oversubscribed_server.cpp.o"
  "CMakeFiles/oversubscribed_server.dir/oversubscribed_server.cpp.o.d"
  "oversubscribed_server"
  "oversubscribed_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversubscribed_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
