# Empty compiler generated dependencies file for oversubscribed_server.
# This may be replaced when dependencies are built.
