file(REMOVE_RECURSE
  "CMakeFiles/parm_runner.dir/parm_runner.cpp.o"
  "CMakeFiles/parm_runner.dir/parm_runner.cpp.o.d"
  "parm_runner"
  "parm_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
