# Empty compiler generated dependencies file for parm_runner.
# This may be replaced when dependencies are built.
