file(REMOVE_RECURSE
  "CMakeFiles/pdn_playground.dir/pdn_playground.cpp.o"
  "CMakeFiles/pdn_playground.dir/pdn_playground.cpp.o.d"
  "pdn_playground"
  "pdn_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdn_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
