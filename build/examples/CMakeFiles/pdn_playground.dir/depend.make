# Empty dependencies file for pdn_playground.
# This may be replaced when dependencies are built.
