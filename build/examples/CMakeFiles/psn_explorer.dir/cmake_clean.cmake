file(REMOVE_RECURSE
  "CMakeFiles/psn_explorer.dir/psn_explorer.cpp.o"
  "CMakeFiles/psn_explorer.dir/psn_explorer.cpp.o.d"
  "psn_explorer"
  "psn_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psn_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
