# Empty dependencies file for psn_explorer.
# This may be replaced when dependencies are built.
