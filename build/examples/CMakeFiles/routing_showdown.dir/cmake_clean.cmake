file(REMOVE_RECURSE
  "CMakeFiles/routing_showdown.dir/routing_showdown.cpp.o"
  "CMakeFiles/routing_showdown.dir/routing_showdown.cpp.o.d"
  "routing_showdown"
  "routing_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
