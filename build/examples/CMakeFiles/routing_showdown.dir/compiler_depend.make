# Empty compiler generated dependencies file for routing_showdown.
# This may be replaced when dependencies are built.
