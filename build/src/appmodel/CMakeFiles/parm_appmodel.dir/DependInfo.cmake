
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appmodel/application.cpp" "src/appmodel/CMakeFiles/parm_appmodel.dir/application.cpp.o" "gcc" "src/appmodel/CMakeFiles/parm_appmodel.dir/application.cpp.o.d"
  "/root/repo/src/appmodel/benchmarks.cpp" "src/appmodel/CMakeFiles/parm_appmodel.dir/benchmarks.cpp.o" "gcc" "src/appmodel/CMakeFiles/parm_appmodel.dir/benchmarks.cpp.o.d"
  "/root/repo/src/appmodel/profile_io.cpp" "src/appmodel/CMakeFiles/parm_appmodel.dir/profile_io.cpp.o" "gcc" "src/appmodel/CMakeFiles/parm_appmodel.dir/profile_io.cpp.o.d"
  "/root/repo/src/appmodel/task_graph.cpp" "src/appmodel/CMakeFiles/parm_appmodel.dir/task_graph.cpp.o" "gcc" "src/appmodel/CMakeFiles/parm_appmodel.dir/task_graph.cpp.o.d"
  "/root/repo/src/appmodel/workload.cpp" "src/appmodel/CMakeFiles/parm_appmodel.dir/workload.cpp.o" "gcc" "src/appmodel/CMakeFiles/parm_appmodel.dir/workload.cpp.o.d"
  "/root/repo/src/appmodel/workload_io.cpp" "src/appmodel/CMakeFiles/parm_appmodel.dir/workload_io.cpp.o" "gcc" "src/appmodel/CMakeFiles/parm_appmodel.dir/workload_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/parm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
