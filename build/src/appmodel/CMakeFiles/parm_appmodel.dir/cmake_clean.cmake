file(REMOVE_RECURSE
  "CMakeFiles/parm_appmodel.dir/application.cpp.o"
  "CMakeFiles/parm_appmodel.dir/application.cpp.o.d"
  "CMakeFiles/parm_appmodel.dir/benchmarks.cpp.o"
  "CMakeFiles/parm_appmodel.dir/benchmarks.cpp.o.d"
  "CMakeFiles/parm_appmodel.dir/profile_io.cpp.o"
  "CMakeFiles/parm_appmodel.dir/profile_io.cpp.o.d"
  "CMakeFiles/parm_appmodel.dir/task_graph.cpp.o"
  "CMakeFiles/parm_appmodel.dir/task_graph.cpp.o.d"
  "CMakeFiles/parm_appmodel.dir/workload.cpp.o"
  "CMakeFiles/parm_appmodel.dir/workload.cpp.o.d"
  "CMakeFiles/parm_appmodel.dir/workload_io.cpp.o"
  "CMakeFiles/parm_appmodel.dir/workload_io.cpp.o.d"
  "libparm_appmodel.a"
  "libparm_appmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_appmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
