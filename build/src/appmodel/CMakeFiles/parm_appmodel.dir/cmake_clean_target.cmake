file(REMOVE_RECURSE
  "libparm_appmodel.a"
)
