# Empty compiler generated dependencies file for parm_appmodel.
# This may be replaced when dependencies are built.
