file(REMOVE_RECURSE
  "CMakeFiles/parm_cmp.dir/platform.cpp.o"
  "CMakeFiles/parm_cmp.dir/platform.cpp.o.d"
  "libparm_cmp.a"
  "libparm_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
