file(REMOVE_RECURSE
  "libparm_cmp.a"
)
