# Empty dependencies file for parm_cmp.
# This may be replaced when dependencies are built.
