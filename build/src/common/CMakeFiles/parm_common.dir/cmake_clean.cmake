file(REMOVE_RECURSE
  "CMakeFiles/parm_common.dir/geometry.cpp.o"
  "CMakeFiles/parm_common.dir/geometry.cpp.o.d"
  "CMakeFiles/parm_common.dir/rng.cpp.o"
  "CMakeFiles/parm_common.dir/rng.cpp.o.d"
  "CMakeFiles/parm_common.dir/stats.cpp.o"
  "CMakeFiles/parm_common.dir/stats.cpp.o.d"
  "CMakeFiles/parm_common.dir/table.cpp.o"
  "CMakeFiles/parm_common.dir/table.cpp.o.d"
  "libparm_common.a"
  "libparm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
