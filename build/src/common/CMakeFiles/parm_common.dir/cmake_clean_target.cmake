file(REMOVE_RECURSE
  "libparm_common.a"
)
