# Empty compiler generated dependencies file for parm_common.
# This may be replaced when dependencies are built.
