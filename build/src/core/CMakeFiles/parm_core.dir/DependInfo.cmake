
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/parm_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/parm_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/parm_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/parm_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/service_queue.cpp" "src/core/CMakeFiles/parm_core.dir/service_queue.cpp.o" "gcc" "src/core/CMakeFiles/parm_core.dir/service_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/parm_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/appmodel/CMakeFiles/parm_appmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/parm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/parm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
