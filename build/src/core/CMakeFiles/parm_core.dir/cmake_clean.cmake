file(REMOVE_RECURSE
  "CMakeFiles/parm_core.dir/admission.cpp.o"
  "CMakeFiles/parm_core.dir/admission.cpp.o.d"
  "CMakeFiles/parm_core.dir/framework.cpp.o"
  "CMakeFiles/parm_core.dir/framework.cpp.o.d"
  "CMakeFiles/parm_core.dir/service_queue.cpp.o"
  "CMakeFiles/parm_core.dir/service_queue.cpp.o.d"
  "libparm_core.a"
  "libparm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
