file(REMOVE_RECURSE
  "libparm_core.a"
)
