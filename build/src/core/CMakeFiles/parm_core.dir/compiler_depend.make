# Empty compiler generated dependencies file for parm_core.
# This may be replaced when dependencies are built.
