file(REMOVE_RECURSE
  "CMakeFiles/parm_exp.dir/experiments.cpp.o"
  "CMakeFiles/parm_exp.dir/experiments.cpp.o.d"
  "libparm_exp.a"
  "libparm_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
