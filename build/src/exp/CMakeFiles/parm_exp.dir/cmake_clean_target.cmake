file(REMOVE_RECURSE
  "libparm_exp.a"
)
