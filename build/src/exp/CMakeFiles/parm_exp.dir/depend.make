# Empty dependencies file for parm_exp.
# This may be replaced when dependencies are built.
