
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/clustering.cpp" "src/mapping/CMakeFiles/parm_mapping.dir/clustering.cpp.o" "gcc" "src/mapping/CMakeFiles/parm_mapping.dir/clustering.cpp.o.d"
  "/root/repo/src/mapping/hm_mapper.cpp" "src/mapping/CMakeFiles/parm_mapping.dir/hm_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/parm_mapping.dir/hm_mapper.cpp.o.d"
  "/root/repo/src/mapping/mapper.cpp" "src/mapping/CMakeFiles/parm_mapping.dir/mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/parm_mapping.dir/mapper.cpp.o.d"
  "/root/repo/src/mapping/parm_mapper.cpp" "src/mapping/CMakeFiles/parm_mapping.dir/parm_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/parm_mapping.dir/parm_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/parm_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/appmodel/CMakeFiles/parm_appmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/parm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
