file(REMOVE_RECURSE
  "CMakeFiles/parm_mapping.dir/clustering.cpp.o"
  "CMakeFiles/parm_mapping.dir/clustering.cpp.o.d"
  "CMakeFiles/parm_mapping.dir/hm_mapper.cpp.o"
  "CMakeFiles/parm_mapping.dir/hm_mapper.cpp.o.d"
  "CMakeFiles/parm_mapping.dir/mapper.cpp.o"
  "CMakeFiles/parm_mapping.dir/mapper.cpp.o.d"
  "CMakeFiles/parm_mapping.dir/parm_mapper.cpp.o"
  "CMakeFiles/parm_mapping.dir/parm_mapper.cpp.o.d"
  "libparm_mapping.a"
  "libparm_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
