file(REMOVE_RECURSE
  "libparm_mapping.a"
)
