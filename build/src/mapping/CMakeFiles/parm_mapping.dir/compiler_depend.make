# Empty compiler generated dependencies file for parm_mapping.
# This may be replaced when dependencies are built.
