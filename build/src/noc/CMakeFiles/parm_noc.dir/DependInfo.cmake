
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/load_sweep.cpp" "src/noc/CMakeFiles/parm_noc.dir/load_sweep.cpp.o" "gcc" "src/noc/CMakeFiles/parm_noc.dir/load_sweep.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/parm_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/parm_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/noc/CMakeFiles/parm_noc.dir/routing.cpp.o" "gcc" "src/noc/CMakeFiles/parm_noc.dir/routing.cpp.o.d"
  "/root/repo/src/noc/traffic.cpp" "src/noc/CMakeFiles/parm_noc.dir/traffic.cpp.o" "gcc" "src/noc/CMakeFiles/parm_noc.dir/traffic.cpp.o.d"
  "/root/repo/src/noc/window_sim.cpp" "src/noc/CMakeFiles/parm_noc.dir/window_sim.cpp.o" "gcc" "src/noc/CMakeFiles/parm_noc.dir/window_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
