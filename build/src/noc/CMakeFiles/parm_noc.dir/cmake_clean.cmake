file(REMOVE_RECURSE
  "CMakeFiles/parm_noc.dir/load_sweep.cpp.o"
  "CMakeFiles/parm_noc.dir/load_sweep.cpp.o.d"
  "CMakeFiles/parm_noc.dir/network.cpp.o"
  "CMakeFiles/parm_noc.dir/network.cpp.o.d"
  "CMakeFiles/parm_noc.dir/routing.cpp.o"
  "CMakeFiles/parm_noc.dir/routing.cpp.o.d"
  "CMakeFiles/parm_noc.dir/traffic.cpp.o"
  "CMakeFiles/parm_noc.dir/traffic.cpp.o.d"
  "CMakeFiles/parm_noc.dir/window_sim.cpp.o"
  "CMakeFiles/parm_noc.dir/window_sim.cpp.o.d"
  "libparm_noc.a"
  "libparm_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
