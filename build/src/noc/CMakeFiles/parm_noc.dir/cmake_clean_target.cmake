file(REMOVE_RECURSE
  "libparm_noc.a"
)
