# Empty dependencies file for parm_noc.
# This may be replaced when dependencies are built.
