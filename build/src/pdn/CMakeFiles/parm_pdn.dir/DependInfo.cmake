
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdn/ac_analysis.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/ac_analysis.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/ac_analysis.cpp.o.d"
  "/root/repo/src/pdn/chip_pdn.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/chip_pdn.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/chip_pdn.cpp.o.d"
  "/root/repo/src/pdn/circuit.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/circuit.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/circuit.cpp.o.d"
  "/root/repo/src/pdn/linalg.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/linalg.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/linalg.cpp.o.d"
  "/root/repo/src/pdn/pdn_netlist.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/pdn_netlist.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/pdn_netlist.cpp.o.d"
  "/root/repo/src/pdn/psn_estimator.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/psn_estimator.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/psn_estimator.cpp.o.d"
  "/root/repo/src/pdn/spice_export.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/spice_export.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/spice_export.cpp.o.d"
  "/root/repo/src/pdn/transient.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/transient.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/transient.cpp.o.d"
  "/root/repo/src/pdn/waveform.cpp" "src/pdn/CMakeFiles/parm_pdn.dir/waveform.cpp.o" "gcc" "src/pdn/CMakeFiles/parm_pdn.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/parm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
