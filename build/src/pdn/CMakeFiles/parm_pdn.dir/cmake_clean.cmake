file(REMOVE_RECURSE
  "CMakeFiles/parm_pdn.dir/ac_analysis.cpp.o"
  "CMakeFiles/parm_pdn.dir/ac_analysis.cpp.o.d"
  "CMakeFiles/parm_pdn.dir/chip_pdn.cpp.o"
  "CMakeFiles/parm_pdn.dir/chip_pdn.cpp.o.d"
  "CMakeFiles/parm_pdn.dir/circuit.cpp.o"
  "CMakeFiles/parm_pdn.dir/circuit.cpp.o.d"
  "CMakeFiles/parm_pdn.dir/linalg.cpp.o"
  "CMakeFiles/parm_pdn.dir/linalg.cpp.o.d"
  "CMakeFiles/parm_pdn.dir/pdn_netlist.cpp.o"
  "CMakeFiles/parm_pdn.dir/pdn_netlist.cpp.o.d"
  "CMakeFiles/parm_pdn.dir/psn_estimator.cpp.o"
  "CMakeFiles/parm_pdn.dir/psn_estimator.cpp.o.d"
  "CMakeFiles/parm_pdn.dir/spice_export.cpp.o"
  "CMakeFiles/parm_pdn.dir/spice_export.cpp.o.d"
  "CMakeFiles/parm_pdn.dir/transient.cpp.o"
  "CMakeFiles/parm_pdn.dir/transient.cpp.o.d"
  "CMakeFiles/parm_pdn.dir/waveform.cpp.o"
  "CMakeFiles/parm_pdn.dir/waveform.cpp.o.d"
  "libparm_pdn.a"
  "libparm_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
