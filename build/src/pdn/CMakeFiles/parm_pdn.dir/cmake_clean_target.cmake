file(REMOVE_RECURSE
  "libparm_pdn.a"
)
