# Empty dependencies file for parm_pdn.
# This may be replaced when dependencies are built.
