
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/chip_power.cpp" "src/power/CMakeFiles/parm_power.dir/chip_power.cpp.o" "gcc" "src/power/CMakeFiles/parm_power.dir/chip_power.cpp.o.d"
  "/root/repo/src/power/core_power.cpp" "src/power/CMakeFiles/parm_power.dir/core_power.cpp.o" "gcc" "src/power/CMakeFiles/parm_power.dir/core_power.cpp.o.d"
  "/root/repo/src/power/router_power.cpp" "src/power/CMakeFiles/parm_power.dir/router_power.cpp.o" "gcc" "src/power/CMakeFiles/parm_power.dir/router_power.cpp.o.d"
  "/root/repo/src/power/technology.cpp" "src/power/CMakeFiles/parm_power.dir/technology.cpp.o" "gcc" "src/power/CMakeFiles/parm_power.dir/technology.cpp.o.d"
  "/root/repo/src/power/vf_model.cpp" "src/power/CMakeFiles/parm_power.dir/vf_model.cpp.o" "gcc" "src/power/CMakeFiles/parm_power.dir/vf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
