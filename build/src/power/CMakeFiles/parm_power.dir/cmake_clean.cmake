file(REMOVE_RECURSE
  "CMakeFiles/parm_power.dir/chip_power.cpp.o"
  "CMakeFiles/parm_power.dir/chip_power.cpp.o.d"
  "CMakeFiles/parm_power.dir/core_power.cpp.o"
  "CMakeFiles/parm_power.dir/core_power.cpp.o.d"
  "CMakeFiles/parm_power.dir/router_power.cpp.o"
  "CMakeFiles/parm_power.dir/router_power.cpp.o.d"
  "CMakeFiles/parm_power.dir/technology.cpp.o"
  "CMakeFiles/parm_power.dir/technology.cpp.o.d"
  "CMakeFiles/parm_power.dir/vf_model.cpp.o"
  "CMakeFiles/parm_power.dir/vf_model.cpp.o.d"
  "libparm_power.a"
  "libparm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
