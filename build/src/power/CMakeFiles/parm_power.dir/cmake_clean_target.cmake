file(REMOVE_RECURSE
  "libparm_power.a"
)
