# Empty dependencies file for parm_power.
# This may be replaced when dependencies are built.
