file(REMOVE_RECURSE
  "CMakeFiles/parm_sched.dir/checkpoint.cpp.o"
  "CMakeFiles/parm_sched.dir/checkpoint.cpp.o.d"
  "CMakeFiles/parm_sched.dir/edf.cpp.o"
  "CMakeFiles/parm_sched.dir/edf.cpp.o.d"
  "libparm_sched.a"
  "libparm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
