file(REMOVE_RECURSE
  "libparm_sched.a"
)
