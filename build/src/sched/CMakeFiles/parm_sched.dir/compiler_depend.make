# Empty compiler generated dependencies file for parm_sched.
# This may be replaced when dependencies are built.
