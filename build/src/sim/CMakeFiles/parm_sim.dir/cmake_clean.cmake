file(REMOVE_RECURSE
  "CMakeFiles/parm_sim.dir/system_sim.cpp.o"
  "CMakeFiles/parm_sim.dir/system_sim.cpp.o.d"
  "CMakeFiles/parm_sim.dir/telemetry.cpp.o"
  "CMakeFiles/parm_sim.dir/telemetry.cpp.o.d"
  "libparm_sim.a"
  "libparm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
