file(REMOVE_RECURSE
  "libparm_sim.a"
)
