# Empty compiler generated dependencies file for parm_sim.
# This may be replaced when dependencies are built.
