file(REMOVE_RECURSE
  "CMakeFiles/appmodel_test.dir/appmodel_test.cpp.o"
  "CMakeFiles/appmodel_test.dir/appmodel_test.cpp.o.d"
  "appmodel_test"
  "appmodel_test.pdb"
  "appmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
