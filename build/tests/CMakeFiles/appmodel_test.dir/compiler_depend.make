# Empty compiler generated dependencies file for appmodel_test.
# This may be replaced when dependencies are built.
