file(REMOVE_RECURSE
  "CMakeFiles/chip_pdn_test.dir/chip_pdn_test.cpp.o"
  "CMakeFiles/chip_pdn_test.dir/chip_pdn_test.cpp.o.d"
  "chip_pdn_test"
  "chip_pdn_test.pdb"
  "chip_pdn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_pdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
