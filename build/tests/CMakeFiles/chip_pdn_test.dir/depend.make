# Empty dependencies file for chip_pdn_test.
# This may be replaced when dependencies are built.
