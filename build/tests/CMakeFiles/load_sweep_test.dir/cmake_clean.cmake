file(REMOVE_RECURSE
  "CMakeFiles/load_sweep_test.dir/load_sweep_test.cpp.o"
  "CMakeFiles/load_sweep_test.dir/load_sweep_test.cpp.o.d"
  "load_sweep_test"
  "load_sweep_test.pdb"
  "load_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
