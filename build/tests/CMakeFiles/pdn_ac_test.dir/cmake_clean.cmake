file(REMOVE_RECURSE
  "CMakeFiles/pdn_ac_test.dir/pdn_ac_test.cpp.o"
  "CMakeFiles/pdn_ac_test.dir/pdn_ac_test.cpp.o.d"
  "pdn_ac_test"
  "pdn_ac_test.pdb"
  "pdn_ac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdn_ac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
