# Empty dependencies file for pdn_ac_test.
# This may be replaced when dependencies are built.
