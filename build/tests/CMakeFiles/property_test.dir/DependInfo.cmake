
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/parm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/parm_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/parm_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/parm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/parm_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/parm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/appmodel/CMakeFiles/parm_appmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/parm_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/parm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
