file(REMOVE_RECURSE
  "CMakeFiles/transient_physics_test.dir/transient_physics_test.cpp.o"
  "CMakeFiles/transient_physics_test.dir/transient_physics_test.cpp.o.d"
  "transient_physics_test"
  "transient_physics_test.pdb"
  "transient_physics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_physics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
