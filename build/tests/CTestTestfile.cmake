# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/pdn_test[1]_include.cmake")
include("/root/repo/build/tests/appmodel_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/cmp_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pdn_ac_test[1]_include.cmake")
include("/root/repo/build/tests/profile_io_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/load_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/workload_io_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/chip_pdn_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/transient_physics_test[1]_include.cmake")
include("/root/repo/build/tests/scaling_test[1]_include.cmake")
