// fleet_runner: multi-chip fleet driver front end.
//
// Shards one arrival stream across N simulated chips with a dispatch
// policy, runs every chip's epoch-phase engine in parallel, and prints
// the merged fleet report plus a per-chip breakdown.
//
// Usage:
//   fleet_runner [--chips N] [--dispatch round-robin|least-loaded]
//                [--threads N] [--mapping PARM|HM]
//                [--routing XY|ICON|PANR|WestFirst]
//                [--topology mesh|cmesh|torus|butterfly|mesh3d:XxYxZ|file:PATH]
//                [--workload compute|comm|mixed] [--apps N]
//                [--arrival SECONDS] [--seed N] [--max-time SECONDS]
//                [--metrics FILE.json] [--events FILE.jsonl]
//                [--prom FILE.prom] [--spans FILE.json] [--health]
//                [--timeseries FILE.jsonl] [--timeseries-csv FILE.csv]
//                [--serve PORT] [--selfcheck]
//
// --threads bounds the chips simulated concurrently (0 = shared pool,
//   1 = serial); the results are bit-identical for every setting.
// --topology selects every chip's interconnect (all chips in a fleet are
//   identical); see examples/parm_runner.cpp for the spec grammar.
// --metrics writes the merged fleet metrics registry as JSON.
// --events enables every chip's flight recorder and writes the merged
//   fleet event log (chip-stamped, app ids rewritten to global stream
//   ids) as JSONL.
// --prom writes the merged registry in Prometheus text exposition format.
// --spans derives per-app lifecycle spans from the merged event log into
//   a Chrome trace (one process per chip, one track per app).
// --timeseries enables every chip's bounded time-series capture and
//   writes the merged store ("chip<k>."-prefixed droop/congestion/queue
//   waveforms) as JSONL — parm_blackbox consumes it with --events.
// --timeseries-csv writes the same merged samples as CSV with a header
//   row (the plot-me export).
// --serve PORT starts the embedded observability server on
//   127.0.0.1:PORT (0 = ephemeral; the bound port is printed) with
//   fleet-wide rollups behind every endpoint: /metrics and /profilez
//   merge every chip's registry per scrape, /slo merges the chips'
//   burn-rate windows (raw sums added, admit p99 = max over chips),
//   /healthz evaluates the merged registry + merged SLO report, /eventz
//   is the chip-stamped union of every chip's flight recorder, /seriesz
//   serves the "chip<k>."-prefixed merged waveforms, and /varz dumps the
//   per-chip config template. Implies every chip's self-observation
//   (profiler, SLO engine, recorder, time-series); all observe-only, so
//   fleet results are bit-identical with the server on or off.
// --health prints the per-chip health rollup and the fleet-wide report;
//   exit code 1 when any chip (or the fleet) is critical — CI fails on
//   that.
// --selfcheck re-runs every chip's shard on a standalone SystemSimulator
//   and verifies the merged fleet counts equal the sum of those reference
//   runs (exit code 1 on mismatch) — the CI fleet smoke job runs this.
//
// Example:
//   fleet_runner --chips 4 --events ev.jsonl --prom metrics.prom --health
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "exp/experiments.hpp"
#include "fleet/fleet_sim.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/prometheus.hpp"
#include "obs/server.hpp"
#include "obs/spans.hpp"
#include "obs/timeseries.hpp"
#include "serve_util.hpp"
#include "sim/config_json.hpp"
#include "sim/system_sim.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::cerr << "error: " << msg << "\n"
            << "see the header of examples/fleet_runner.cpp for usage\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parm;

  fleet::FleetConfig cfg;
  cfg.chip = exp::default_sim_config();
  cfg.chip.framework.mapping = "PARM";
  cfg.chip.framework.routing = "PANR";
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 32;
  seq.inter_arrival_s = 0.05;
  seq.seed = 1;
  std::string metrics_file, events_file, prom_file, spans_file;
  std::string timeseries_file, timeseries_csv_file;
  bool health = false;
  bool selfcheck = false;
  int serve_port = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--chips") {
      cfg.chip_count = std::stoi(value());
    } else if (arg == "--dispatch") {
      cfg.dispatch = value();
    } else if (arg == "--threads") {
      cfg.threads = std::stoi(value());
    } else if (arg == "--mapping") {
      cfg.chip.framework.mapping = value();
    } else if (arg == "--routing") {
      cfg.chip.framework.routing = value();
    } else if (arg == "--topology") {
      cfg.chip.platform.topology = value();
    } else if (arg == "--workload") {
      const std::string w = value();
      if (w == "compute") {
        seq.kind = appmodel::SequenceKind::Compute;
      } else if (w == "comm") {
        seq.kind = appmodel::SequenceKind::Communication;
      } else if (w == "mixed") {
        seq.kind = appmodel::SequenceKind::Mixed;
      } else {
        usage("unknown workload kind");
      }
    } else if (arg == "--apps") {
      seq.app_count = std::stoi(value());
    } else if (arg == "--arrival") {
      seq.inter_arrival_s = std::stod(value());
    } else if (arg == "--seed") {
      seq.seed = std::stoull(value());
      cfg.chip.seed = seq.seed;
    } else if (arg == "--max-time") {
      cfg.chip.max_sim_time_s = std::stod(value());
    } else if (arg == "--metrics") {
      metrics_file = value();
    } else if (arg == "--events") {
      events_file = value();
    } else if (arg == "--prom") {
      prom_file = value();
    } else if (arg == "--spans") {
      spans_file = value();
    } else if (arg == "--timeseries") {
      timeseries_file = value();
    } else if (arg == "--timeseries-csv") {
      timeseries_csv_file = value();
    } else if (arg == "--serve") {
      serve_port = std::stoi(value());
      if (serve_port < 0 || serve_port > 65535) {
        usage("--serve port must be in [0, 65535] (0 = ephemeral)");
      }
    } else if (arg == "--health") {
      health = true;
    } else if (arg == "--selfcheck") {
      selfcheck = true;
    } else {
      usage(("unknown argument: " + arg).c_str());
    }
  }
  cfg.chip.record_events = !events_file.empty() || !spans_file.empty();
  cfg.chip.record_timeseries =
      !timeseries_file.empty() || !timeseries_csv_file.empty();
  if (serve_port >= 0) {
    // --serve implies every chip's self-observation so the fleet
    // endpoints have live data behind them. All observe-only.
    cfg.chip.profile_phases = true;
    cfg.chip.track_slo = true;
    cfg.chip.record_events = true;
    cfg.chip.record_timeseries = true;
  }
  try {
    cfg.validate();
  } catch (const CheckError& e) {
    usage(e.what());
  }

  const auto arrivals = appmodel::make_sequence(seq);
  std::cout << "fleet: " << cfg.chip_count << " chips, " << arrivals.size()
            << " apps, dispatch " << cfg.dispatch << "\n";

  fleet::FleetSimulator fleet_sim(cfg, arrivals);

  // Live observability: every endpoint serves a fleet-wide rollup built
  // per scrape from the chips' instance-scoped stores (each read under
  // that chip's obs mutex, so running chips are quiescent while their
  // tables are walked).
  obs::HttpServer server;
  if (serve_port >= 0) {
    obs::EndpointHooks hooks;
    hooks.metrics = [&fleet_sim](std::ostream& os) {
      obs::Registry merged;
      fleet_sim.merge_live_metrics(merged);
      merged.write_prometheus(os);
    };
    hooks.health = [&fleet_sim]() {
      obs::Registry merged;
      fleet_sim.merge_live_metrics(merged);
      return obs::HealthMonitor().evaluate(merged,
                                           fleet_sim.live_slo_report());
    };
    hooks.slo = [&fleet_sim]() { return fleet_sim.live_slo_report(); };
    hooks.events = [&fleet_sim, &cfg](std::ostream& os, std::size_t limit) {
      // Chip-stamped, globally re-id'ed union of every chip's recorder —
      // the live counterpart of FleetSimulator::dump_events_jsonl.
      std::vector<obs::Event> events;
      for (int c = 0; c < cfg.chip_count; ++c) {
        for (obs::Event e : fleet_sim.chip_sim(c).recorder().collect()) {
          e.chip = static_cast<std::int16_t>(c);
          if (e.app >= 0) e.app = fleet_sim.global_id(c, e.app);
          events.push_back(e);
        }
      }
      std::sort(events.begin(), events.end(),
                [](const obs::Event& a, const obs::Event& b) {
                  if (a.t != b.t) return a.t < b.t;
                  if (a.chip != b.chip) return a.chip < b.chip;
                  return a.seq < b.seq;
                });
      serve::write_events_tail(os, events, limit);
    };
    hooks.series = [&fleet_sim, &cfg](std::ostream& os,
                                      const std::string& name, int level) {
      obs::Registry scratch;
      obs::TimeSeriesStore merged(
          true,
          obs::TimeSeriesConfig{cfg.chip.timeseries_capacity,
                                cfg.chip.timeseries_levels,
                                cfg.chip.timeseries_downsample},
          &scratch);
      for (int c = 0; c < cfg.chip_count; ++c) {
        const sim::SystemSimulator& chip = fleet_sim.chip_sim(c);
        std::lock_guard<std::mutex> lock(chip.obs_mutex());
        merged.merge_from(chip.timeseries(), c);
      }
      serve::write_series(os, merged, name, level);
    };
    hooks.varz = [&cfg](std::ostream& os) {
      sim::write_config_json(os, cfg.chip);
    };
    hooks.profile = [&fleet_sim](std::ostream& os) {
      obs::Registry merged;
      fleet_sim.merge_live_metrics(merged);
      obs::write_profile_json(os, merged, ThreadPool::shared().stats());
    };
    obs::register_endpoints(server, std::move(hooks));
    const std::uint16_t bound =
        server.start(static_cast<std::uint16_t>(serve_port));
    std::cout << "serving fleet observability on http://127.0.0.1:" << bound
              << "/ (metrics healthz slo eventz seriesz varz profilez)\n"
              << std::flush;
  }

  const fleet::FleetResult r = fleet_sim.run();

  std::cout << "fleet makespan      " << r.makespan_s << " s"
            << (r.timed_out ? " (TIMED OUT)" : "") << "\n"
            << "completed / dropped " << r.completed_count << " / "
            << r.dropped_count << "\n"
            << "peak PSN            " << r.peak_psn_percent << " %\n"
            << "voltage emergencies " << r.total_ve_count << "\n"
            << "total energy        " << r.total_energy_j << " J\n";
  for (int c = 0; c < cfg.chip_count; ++c) {
    const sim::SimResult& chip = r.chips[static_cast<std::size_t>(c)];
    std::cout << "  chip " << c << ": "
              << fleet_sim.chip_arrivals(c).size() << " apps, completed "
              << chip.completed_count << ", dropped " << chip.dropped_count
              << ", makespan " << chip.makespan_s << " s\n";
  }

  if (!metrics_file.empty()) {
    std::ofstream out(metrics_file);
    if (!out) usage("cannot open metrics file for writing");
    fleet_sim.metrics().write_json(out);
    out << '\n';
    std::cout << "merged metrics written to " << metrics_file << "\n";
  }
  if (!events_file.empty()) {
    std::ofstream out(events_file);
    if (!out) usage("cannot open events file for writing");
    fleet_sim.dump_events_jsonl(out);
    std::cout << "fleet event log (" << fleet_sim.events().size()
              << " events) written to " << events_file << "\n";
  }
  if (!prom_file.empty()) {
    std::ofstream out(prom_file);
    if (!out) usage("cannot open prometheus file for writing");
    obs::prometheus_text(fleet_sim.metrics(), out);
    std::cout << "prometheus exposition written to " << prom_file << "\n";
  }
  if (!spans_file.empty()) {
    std::ofstream out(spans_file);
    if (!out) usage("cannot open spans file for writing");
    obs::write_span_trace(out, fleet_sim.events());
    std::cout << "app lifecycle spans written to " << spans_file
              << " (open in Perfetto or chrome://tracing)\n";
  }
  if (!timeseries_file.empty()) {
    std::ofstream out(timeseries_file);
    if (!out) usage("cannot open timeseries file for writing");
    fleet_sim.dump_timeseries_jsonl(out);
    std::cout << "fleet time series ("
              << fleet_sim.timeseries().series_count() << " series, "
              << fleet_sim.timeseries().samples_total()
              << " samples) written to " << timeseries_file << "\n";
  }
  if (!timeseries_csv_file.empty()) {
    std::ofstream out(timeseries_csv_file);
    if (!out) usage("cannot open timeseries CSV file for writing");
    fleet_sim.timeseries().write_csv(out);
    std::cout << "fleet time series CSV written to " << timeseries_csv_file
              << "\n";
  }

  bool any_crit = false;
  if (health) {
    for (int c = 0; c < cfg.chip_count; ++c) {
      const obs::HealthReport& rep =
          r.chip_health[static_cast<std::size_t>(c)];
      std::cout << "chip " << c << " ";
      obs::write_health_report(std::cout, rep);
      any_crit = any_crit || rep.critical();
    }
    std::cout << "fleet ";
    obs::write_health_report(std::cout, r.fleet_health);
    any_crit = any_crit || r.fleet_health.critical();
  }

  if (selfcheck) {
    // Reference: each chip's shard on a standalone simulator, serially.
    // The fleet merge must equal the sum of these independent runs.
    int ref_completed = 0, ref_dropped = 0;
    std::uint64_t ref_ves = 0;
    for (int c = 0; c < cfg.chip_count; ++c) {
      sim::SimConfig chip_cfg = cfg.chip;
      chip_cfg.seed = cfg.chip.seed + static_cast<std::uint64_t>(c);
      sim::SystemSimulator ref(chip_cfg, fleet_sim.chip_arrivals(c));
      const sim::SimResult rr = ref.run();
      ref_completed += rr.completed_count;
      ref_dropped += rr.dropped_count;
      ref_ves += rr.total_ve_count;
    }
    const bool ok = ref_completed == r.completed_count &&
                    ref_dropped == r.dropped_count &&
                    ref_ves == r.total_ve_count &&
                    r.apps.size() == arrivals.size();
    std::cout << "selfcheck: fleet " << r.completed_count << "/"
              << r.dropped_count << "/" << r.total_ve_count
              << " vs reference " << ref_completed << "/" << ref_dropped
              << "/" << ref_ves << " -> " << (ok ? "OK" : "MISMATCH")
              << "\n";
    if (!ok) return 1;
  }
  return any_crit ? 1 : 0;
}
