// Oversubscribed-server scenario: the workload of the paper's Fig. 8.
//
// A 60-core CMP receives 20 mixed applications every 50 ms — twice as
// fast as it can comfortably serve. We run the full-system simulation
// once with the state-of-the-art baseline (HM mapping + XY routing) and
// once with PARM + PANR, then print a per-application timeline showing
// who got admitted at which operating point, who was dropped, and the
// resulting PSN/VE statistics.
//
// Build & run:  ./build/examples/oversubscribed_server [seed] [telemetry.csv]
//                                                      [snapshot-dir]
//                                                      [events.jsonl]
//                                                      [spans.json]
//                                                      [timeseries.jsonl]
//                                                      [serve-port]
//
// Per-epoch telemetry is recorded for both runs; pass a CSV path as the
// second argument to dump the PARM+PANR time series for plotting. The
// run ends with the metrics-registry summary (solver/mapper/NoC counters
// and latency percentiles) accumulated over both configurations.
//
// Pass a directory as the third argument to snapshot the PARM+PANR run
// every 50 epochs (crash-safe epoch_<N>.parmsnap files, restorable with
// parm_runner --resume given the same workload/configuration).
//
// Pass a fourth/fifth argument to turn on the PARM+PANR run's flight
// recorder and dump its structured events as JSONL (fourth) and the
// derived per-app lifecycle span trace (fifth, Perfetto-loadable) — the
// walkthrough in EXPERIMENTS.md uses these to dissect a deadline miss.
// Pass a sixth argument to also capture the PARM+PANR run's bounded
// time-series store (droop/congestion/queue waveforms) and dump it as
// JSONL — feed it to parm_blackbox together with the events file for a
// post-mortem incident report. Use "-" to skip an argument position.
//
// Pass a seventh argument (a port; 0 = ephemeral) to serve the live
// observability endpoints (see examples/parm_runner.cpp, --serve) for
// whichever configuration is currently running — the demo runs two
// back-to-back, so a scraper watches the baseline first and PARM+PANR
// second. Between runs the endpoints serve empty-but-well-formed
// documents.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>

#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "obs/spans.hpp"
#include "serve_util.hpp"

namespace {

void report(const char* title, const parm::sim::SimResult& r) {
  using parm::Table;
  std::cout << "=== " << title << " ===\n";
  Table table({"app", "bench", "arrive (s)", "outcome", "Vdd", "DoP",
               "finish (s)", "VEs"});
  table.set_precision(2);
  for (const auto& o : r.apps) {
    std::string outcome = o.dropped     ? "DROPPED"
                          : o.completed ? "completed"
                          : o.admitted  ? "running(cutoff)"
                                        : "queued(cutoff)";
    table.add_row({static_cast<std::int64_t>(o.id), o.bench, o.arrival_s,
                   outcome, o.admitted ? o.vdd : 0.0,
                   static_cast<std::int64_t>(o.admitted ? o.dop : 0),
                   o.completed ? o.finish_s : 0.0,
                   static_cast<std::int64_t>(o.ve_count)});
  }
  table.print(std::cout);
  std::cout << "completed " << r.completed_count << "/20, dropped "
            << r.dropped_count << ", makespan " << std::fixed
            << std::setprecision(3) << r.makespan_s << " s, peak PSN "
            << std::setprecision(1) << r.peak_psn_percent
            << " %, voltage emergencies " << r.total_ve_count << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parm;
  const auto arg_or = [&](int idx) -> std::string {
    // "-" skips a positional argument so later ones stay addressable.
    if (argc <= idx) return "";
    const std::string v = argv[idx];
    return v == "-" ? "" : v;
  };
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  const std::string telemetry_file = arg_or(2);
  const std::string snapshot_dir = arg_or(3);
  const std::string events_file = arg_or(4);
  const std::string spans_file = arg_or(5);
  const std::string timeseries_file = arg_or(6);
  const std::string serve_port_arg = arg_or(7);

  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 20;
  seq.inter_arrival_s = 0.05;  // heavy oversubscription
  seq.seed = seed;

  std::cout << "Oversubscribed server: 20 mixed apps, one every 50 ms "
               "(seed " << seed << ")\n\n";

  // Live observability across the two back-to-back runs: the endpoints
  // follow a mutex-guarded pointer to whichever simulator is currently
  // alive (null between runs — the hooks then serve well-formed empty
  // documents). Lock order is current_mu, then the sim's obs_mutex();
  // the engine thread only ever takes the latter, so this cannot
  // deadlock.
  std::mutex current_mu;
  sim::SystemSimulator* current_sim = nullptr;
  sim::SimConfig current_cfg = exp::default_sim_config();
  obs::HttpServer server;
  if (!serve_port_arg.empty()) {
    obs::EndpointHooks hooks;
    hooks.metrics = [&](std::ostream& os) {
      std::lock_guard<std::mutex> lock(current_mu);
      if (current_sim != nullptr) current_sim->metrics().write_prometheus(os);
    };
    hooks.health = [&]() {
      std::lock_guard<std::mutex> lock(current_mu);
      if (current_sim == nullptr) return obs::HealthReport{};
      std::lock_guard<std::mutex> obs_lock(current_sim->obs_mutex());
      return obs::HealthMonitor().evaluate(current_sim->metrics(),
                                           current_sim->slo().report());
    };
    hooks.slo = [&]() {
      std::lock_guard<std::mutex> lock(current_mu);
      if (current_sim == nullptr) return obs::SloReport{};
      std::lock_guard<std::mutex> obs_lock(current_sim->obs_mutex());
      return current_sim->slo().report();
    };
    hooks.events = [&](std::ostream& os, std::size_t limit) {
      std::lock_guard<std::mutex> lock(current_mu);
      if (current_sim == nullptr) return;
      serve::write_events_tail(os, current_sim->recorder().collect(), limit);
    };
    hooks.series = [&](std::ostream& os, const std::string& name,
                       int level) {
      std::lock_guard<std::mutex> lock(current_mu);
      if (current_sim == nullptr) {
        os << "{\"series\":[]}";
        return;
      }
      std::lock_guard<std::mutex> obs_lock(current_sim->obs_mutex());
      serve::write_series(os, current_sim->timeseries(), name, level);
    };
    hooks.varz = [&](std::ostream& os) {
      std::lock_guard<std::mutex> lock(current_mu);
      sim::write_config_json(os, current_cfg);
    };
    hooks.profile = [&](std::ostream& os) {
      std::lock_guard<std::mutex> lock(current_mu);
      obs::Registry scratch;
      const obs::Registry& reg =
          current_sim != nullptr ? current_sim->metrics() : scratch;
      obs::write_profile_json(os, reg, parm::ThreadPool::shared().stats());
    };
    obs::register_endpoints(server, std::move(hooks));
    const auto bound = server.start(static_cast<std::uint16_t>(
        std::strtoul(serve_port_arg.c_str(), nullptr, 10)));
    std::cout << "serving observability on http://127.0.0.1:" << bound
              << "/\n\n" << std::flush;
  }

  obs::Registry metrics_total;  // merged over both configurations
  for (const auto& [mapping, routing] :
       {std::pair{"HM", "XY"}, std::pair{"PARM", "PANR"}}) {
    core::FrameworkConfig fw;
    fw.mapping = mapping;
    fw.routing = routing;
    sim::SimConfig cfg = exp::default_sim_config();
    cfg.framework = fw;
    cfg.record_telemetry = true;
    cfg.record_events = fw.routing == std::string("PANR") &&
                        (!events_file.empty() || !spans_file.empty());
    cfg.record_timeseries =
        fw.routing == std::string("PANR") && !timeseries_file.empty();
    if (!serve_port_arg.empty()) {
      // Serving implies self-observation (all observe-only) so the live
      // endpoints have data for both configurations.
      cfg.profile_phases = true;
      cfg.track_slo = true;
      cfg.record_events = true;
      cfg.record_timeseries = true;
    }
    sim::SystemSimulator simulator(cfg, appmodel::make_sequence(seq));
    if (fw.routing == std::string("PANR") && !snapshot_dir.empty()) {
      simulator.enable_periodic_snapshots(50, snapshot_dir);
    }
    {
      std::lock_guard<std::mutex> lock(current_mu);
      current_sim = &simulator;
      current_cfg = cfg;
    }
    const sim::SimResult result = simulator.run();
    metrics_total.merge_from(simulator.metrics());
    report(fw.display_name().c_str(), result);
    if (fw.routing == std::string("PANR") && !telemetry_file.empty()) {
      std::ofstream out(telemetry_file);
      if (out) {
        result.telemetry.write_csv(out);
        std::cout << "PARM+PANR telemetry ("
                  << result.telemetry.samples().size()
                  << " epochs) written to " << telemetry_file << "\n\n";
      } else {
        std::cerr << "cannot open " << telemetry_file << " for writing\n";
      }
    }
    if (fw.routing == std::string("PANR") && cfg.record_events &&
        !events_file.empty()) {
      std::ofstream out(events_file);
      if (out) {
        simulator.recorder().dump_jsonl(out);
        std::cout << "PARM+PANR events (" << simulator.recorder().size()
                  << " retained) written to " << events_file << "\n\n";
      } else {
        std::cerr << "cannot open " << events_file << " for writing\n";
      }
    }
    if (fw.routing == std::string("PANR") && cfg.record_events &&
        !spans_file.empty()) {
      std::ofstream out(spans_file);
      if (out) {
        obs::write_span_trace(out, simulator.recorder().collect());
        std::cout << "PARM+PANR lifecycle spans written to " << spans_file
                  << " (open in Perfetto)\n\n";
      } else {
        std::cerr << "cannot open " << spans_file << " for writing\n";
      }
    }
    if (fw.routing == std::string("PANR") && cfg.record_timeseries &&
        !timeseries_file.empty()) {
      std::ofstream out(timeseries_file);
      if (out) {
        simulator.timeseries().dump_jsonl(out);
        std::cout << "PARM+PANR time series ("
                  << simulator.timeseries().series_count() << " series, "
                  << simulator.timeseries().samples_total()
                  << " samples) written to " << timeseries_file << "\n\n";
      } else {
        std::cerr << "cannot open " << timeseries_file << " for writing\n";
      }
    }
    {
      // The simulator dies with this loop iteration; unpublish it first.
      std::lock_guard<std::mutex> lock(current_mu);
      current_sim = nullptr;
    }
  }

  std::cout << "Reading: HM admits at a fixed nominal 0.8 V — its domains "
               "run far above the 5 % noise margin, every emergency costs "
               "a rollback, and the queue overflows into drops. PARM "
               "admits at near-threshold voltages with adapted DoP, so "
               "more of the same workload completes.\n";

  std::cout << "\n--- metrics summary (both runs) ---\n";
  metrics_total.write_text(std::cout);
  return 0;
}
