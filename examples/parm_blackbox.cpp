// parm_blackbox: post-mortem incident analyzer for PARM runs.
//
// Loads the two blackbox artifacts a run leaves behind — a flight
// recorder JSONL dump and a time-series export — and produces an
// incident report: for every VE onset and deadline miss, the causal
// timeline around it (droop trajectory of the affected domain, the apps
// co-resident in it, concurrent NoC congestion, VE rollbacks, and the
// throttle/migration responses with their measured effect).
//
// Usage:
//   parm_blackbox --events FILE.jsonl [--timeseries FILE.jsonl]
//                 [--app N] [--domain N] [--window SECONDS]
//                 [--limit N] [--json FILE.json]
//
// --events      flight-recorder dump (parm_runner --events,
//               fleet_runner --events, or oversubscribed_server arg 4).
//               Required.
// --timeseries  time-series export (the matching --timeseries flag of
//               the same run). Optional: without it incidents carry no
//               droop trajectory, only the event timeline.
// --app N       only incidents involving app N (global stream id).
// --domain N    only incidents in voltage domain N.
// --window S    timeline half-width in seconds (default 0.05 — one
//               admission period of the oversubscribed scenario).
// --limit N     keep at most N incidents (0 = all).
// --json FILE   also write the report as a JSON artifact.
//
// The loaders are deliberately forgiving: malformed JSONL lines are
// skipped (and counted on stderr), shuffled dumps are re-sorted. The
// report itself is deterministic — the same artifacts produce the same
// bytes, which CI exploits to pin the seed-3 incident report.
//
// Example (reproduce the EXPERIMENTS.md walkthrough):
//   oversubscribed_server 3 - - events.jsonl - ts.jsonl
//   parm_blackbox --events events.jsonl --timeseries ts.jsonl --app 17
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/blackbox.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::cerr << "error: " << msg << "\n"
            << "see the header of examples/parm_blackbox.cpp for usage\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parm;

  std::string events_file, timeseries_file, json_file;
  obs::IncidentQuery query;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--events") {
      events_file = value();
    } else if (arg == "--timeseries") {
      timeseries_file = value();
    } else if (arg == "--app") {
      query.app = std::stoi(value());
    } else if (arg == "--domain") {
      query.domain = std::stoi(value());
    } else if (arg == "--window") {
      query.window_s = std::stod(value());
      if (!(query.window_s > 0.0)) usage("--window must be positive");
    } else if (arg == "--limit") {
      query.limit = std::stoul(value());
    } else if (arg == "--json") {
      json_file = value();
    } else {
      usage(("unknown argument: " + arg).c_str());
    }
  }
  if (events_file.empty()) usage("--events is required");

  std::ifstream events_in(events_file);
  if (!events_in) usage("cannot open events file");
  obs::BlackboxLoadStats event_stats;
  std::vector<obs::Event> events =
      obs::load_events_jsonl(events_in, &event_stats);
  if (event_stats.skipped != 0 || event_stats.out_of_order != 0) {
    std::cerr << "note: " << events_file << ": " << event_stats.skipped
              << " of " << event_stats.lines << " lines skipped, "
              << event_stats.out_of_order
              << " out-of-order records re-sorted\n";
  }

  obs::TsArchive ts;
  if (!timeseries_file.empty()) {
    std::ifstream ts_in(timeseries_file);
    if (!ts_in) usage("cannot open timeseries file");
    obs::BlackboxLoadStats ts_stats;
    ts = obs::load_timeseries_jsonl(ts_in, &ts_stats);
    if (ts_stats.skipped != 0) {
      std::cerr << "note: " << timeseries_file << ": " << ts_stats.skipped
                << " of " << ts_stats.lines << " lines skipped\n";
    }
  }

  const obs::IncidentReport report =
      obs::analyze_incidents(std::move(events), ts, query);
  obs::write_incident_text(std::cout, report);

  if (!json_file.empty()) {
    std::ofstream out(json_file);
    if (!out) usage("cannot open JSON output file for writing");
    obs::write_incident_json(out, report);
    std::cout << "incident report JSON written to " << json_file << "\n";
  }
  return 0;
}
