// parm_campaign: Monte Carlo statistical verification campaign front end.
//
// Fans one experiment (workload + config + fault scenario) across many
// seeds on the fleet driver's replicate mode, evaluates the declared
// properties on every run, and writes a verdict report with Wilson and
// Clopper-Pearson confidence intervals on each property's failure
// probability. The JSON report is deterministic: a repeat campaign with
// the same flags produces byte-identical output (the CI campaign-smoke
// job relies on this; see tools/check_campaign_smoke.py).
//
// Usage:
//   parm_campaign [--runs N] [--first-seed N] [--batch N] [--threads N]
//                 [--confidence 0.90|0.95|0.99]
//                 [--mapping PARM|HM] [--routing XY|ICON|PANR|WestFirst]
//                 [--topology mesh|cmesh|torus|butterfly|mesh3d:XxYxZ|file:PATH]
//                 [--workload compute|comm|mixed] [--apps N]
//                 [--arrival SECONDS] [--workload-seed N]
//                 [--max-time SECONDS]
//                 [--faults FILE] [--fault-links N] [--fault-routers N]
//                 [--fault-window S] [--repair-after S]
//                 [--sensor-dropout P] [--bit-error-base P]
//                 [--bit-error-slope P]
//                 [--deadline-bound P] [--delivery-floor X]
//                 [--delivery-bound P]
//                 [--json FILE] [--text FILE] [--quiet]
//
// --runs seeds run in batches of --batch chips (default 16); --threads
//   bounds the chips simulated concurrently inside a batch (0 = shared
//   pool). Results are bit-identical across batch and thread settings.
// Properties (all three always evaluated):
//   deadline_miss   P(any app misses its deadline)  <= --deadline-bound
//                   (default 1.0 = report-only)
//   no_deadlock     zero runs with a deadlocked NoC window (bound 0:
//                   a single observed deadlock fails the campaign)
//   delivery_floor  P(worst window delivery ratio < --delivery-floor)
//                   <= --delivery-bound (defaults 0.5 / 1.0)
// Exit code: 0 when every property passes, 1 otherwise.
//
// Example (the CI smoke campaign):
//   parm_campaign --runs 200 --apps 6 --max-time 3 --fault-links 2 \
//     --repair-after 1 --sensor-dropout 0.01 --bit-error-slope 0.002 \
//     --json report.json
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "common/check.hpp"
#include "noc/topology.hpp"
#include "exp/experiments.hpp"
#include "fault/fault_model.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::cerr << "error: " << msg << "\n"
            << "see the header of examples/parm_campaign.cpp for usage\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parm;

  campaign::CampaignConfig cfg;
  cfg.fleet.chip = exp::default_sim_config();
  cfg.fleet.chip.framework.mapping = "PARM";
  cfg.fleet.chip.framework.routing = "PANR";
  cfg.fleet.chip.max_sim_time_s = 5.0;
  cfg.fleet.chip_count = 16;
  cfg.fleet.dispatch = "replicate";
  cfg.runs = 1000;

  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 8;
  seq.inter_arrival_s = 0.05;
  seq.seed = 1;

  std::string faults_file;
  double deadline_bound = 1.0;
  double delivery_floor = 0.5;
  double delivery_bound = 1.0;
  std::string json_file, text_file;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--runs") {
      cfg.runs = std::stoi(value());
    } else if (arg == "--first-seed") {
      cfg.first_seed = std::stoull(value());
    } else if (arg == "--batch") {
      cfg.fleet.chip_count = std::stoi(value());
    } else if (arg == "--threads") {
      cfg.fleet.threads = std::stoi(value());
    } else if (arg == "--confidence") {
      cfg.confidence = std::stod(value());
    } else if (arg == "--mapping") {
      cfg.fleet.chip.framework.mapping = value();
    } else if (arg == "--routing") {
      cfg.fleet.chip.framework.routing = value();
    } else if (arg == "--topology") {
      cfg.fleet.chip.platform.topology = value();
    } else if (arg == "--workload") {
      const std::string w = value();
      if (w == "compute") {
        seq.kind = appmodel::SequenceKind::Compute;
      } else if (w == "comm") {
        seq.kind = appmodel::SequenceKind::Communication;
      } else if (w == "mixed") {
        seq.kind = appmodel::SequenceKind::Mixed;
      } else {
        usage("unknown workload kind");
      }
    } else if (arg == "--apps") {
      seq.app_count = std::stoi(value());
    } else if (arg == "--arrival") {
      seq.inter_arrival_s = std::stod(value());
    } else if (arg == "--workload-seed") {
      seq.seed = std::stoull(value());
    } else if (arg == "--max-time") {
      cfg.fleet.chip.max_sim_time_s = std::stod(value());
    } else if (arg == "--faults") {
      faults_file = value();
    } else if (arg == "--fault-links") {
      cfg.fleet.chip.faults.enabled = true;
      cfg.fleet.chip.faults.random_link_failures = std::stoi(value());
    } else if (arg == "--fault-routers") {
      cfg.fleet.chip.faults.enabled = true;
      cfg.fleet.chip.faults.random_router_failures = std::stoi(value());
    } else if (arg == "--fault-window") {
      cfg.fleet.chip.faults.random_fail_window_s = std::stod(value());
    } else if (arg == "--repair-after") {
      cfg.fleet.chip.faults.repair_after_s = std::stod(value());
    } else if (arg == "--sensor-dropout") {
      cfg.fleet.chip.faults.enabled = true;
      cfg.fleet.chip.faults.sensor_dropout_per_epoch = std::stod(value());
    } else if (arg == "--bit-error-base") {
      cfg.fleet.chip.faults.enabled = true;
      cfg.fleet.chip.faults.bit_error_base = std::stod(value());
    } else if (arg == "--bit-error-slope") {
      cfg.fleet.chip.faults.enabled = true;
      cfg.fleet.chip.faults.bit_error_psn_slope = std::stod(value());
    } else if (arg == "--deadline-bound") {
      deadline_bound = std::stod(value());
    } else if (arg == "--delivery-floor") {
      delivery_floor = std::stod(value());
    } else if (arg == "--delivery-bound") {
      delivery_bound = std::stod(value());
    } else if (arg == "--json") {
      json_file = value();
    } else if (arg == "--text") {
      text_file = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(("unknown argument: " + arg).c_str());
    }
  }

  if (!faults_file.empty()) {
    std::ifstream in(faults_file);
    if (!in) usage("cannot open fault schedule file");
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      // Parse the schedule against the campaign's topology so direction
      // tokens are the right port names and tile ids are range-checked.
      const auto topo =
          noc::Topology::make(cfg.fleet.chip.platform.topology,
                              cfg.fleet.chip.platform.mesh_width,
                              cfg.fleet.chip.platform.mesh_height);
      cfg.fleet.chip.faults.schedule =
          fault::schedule_from_text(buf.str(), *topo);
      cfg.fleet.chip.faults.enabled = true;
    } catch (const CheckError& e) {
      usage(e.what());
    }
  }
  try {
    cfg.validate();
  } catch (const CheckError& e) {
    usage(e.what());
  }

  const auto arrivals = appmodel::make_sequence(seq);
  const std::vector<campaign::PropertySpec> properties = {
      campaign::deadline_miss_property(deadline_bound),
      campaign::no_deadlock_property(),
      campaign::delivery_floor_property(delivery_floor, delivery_bound),
  };

  if (!quiet) {
    std::cout << "campaign: " << cfg.runs << " runs (seeds "
              << cfg.first_seed << ".."
              << cfg.first_seed + static_cast<std::uint64_t>(cfg.runs) - 1
              << "), batches of " << cfg.fleet.chip_count << ", "
              << arrivals.size() << " apps per run\n";
  }

  const campaign::CampaignReport report =
      campaign::run_campaign(cfg, arrivals, properties);

  const std::string text = campaign::report_to_text(report);
  if (!quiet) std::cout << text;
  if (!text_file.empty()) {
    std::ofstream out(text_file);
    if (!out) usage("cannot open text report file for writing");
    out << text;
  }
  if (!json_file.empty()) {
    std::ofstream out(json_file);
    if (!out) usage("cannot open JSON report file for writing");
    out << campaign::report_to_json(report) << '\n';
    if (!quiet) std::cout << "verdict JSON written to " << json_file << "\n";
  }
  return report.all_pass ? 0 : 1;
}
