// parm_runner: command-line front end for single experiments.
//
// Runs one full-system simulation from command-line parameters and prints
// the headline metrics; optionally dumps per-epoch telemetry as CSV and
// saves/loads the exact workload schedule for replay.
//
// Usage:
//   parm_runner [--mapping PARM|HM] [--routing XY|ICON|PANR|WestFirst]
//               [--topology mesh|cmesh|torus|butterfly|mesh3d:XxYxZ|file:PATH]
//               [--workload compute|comm|mixed] [--apps N]
//               [--arrival SECONDS] [--seed N]
//               [--save-workload FILE | --load-workload FILE]
//               [--telemetry FILE.csv] [--throttle]
//               [--metrics FILE.json] [--trace FILE.json]
//               [--trace-jsonl FILE.jsonl]
//               [--events FILE.jsonl] [--events-on-ve FILE.jsonl]
//               [--spans FILE.json] [--health]
//               [--timeseries FILE.jsonl] [--timeseries-csv FILE.csv]
//               [--snapshot-every N --snapshot-dir DIR]
//               [--resume FILE.parmsnap] [--max-time SECONDS]
//               [--noc-shards N] [--serve PORT]
//               [--faults FILE] [--fault-links N] [--fault-routers N]
//               [--fault-window S] [--repair-after S]
//               [--sensor-dropout P] [--bit-error-base P]
//               [--bit-error-slope P]
//
// Topology (noc/topology.hpp):
//   --topology selects the on-chip interconnect. Grid kinds (mesh, cmesh,
//   torus, butterfly) default to the platform's mesh_width x mesh_height
//   and accept an explicit ":WxH" suffix; mesh3d needs ":XxYxZ"; "file:"
//   loads an irregular point-to-point graph from a "tiles N" / "link a b"
//   text file. Every topology gets construction-verified deadlock-free
//   routing tables; the default "mesh" keeps the hand-written mesh
//   algorithms and stays bit-identical to earlier releases.
//
// Fault injection (fault/fault_model.hpp):
//   --faults loads a line-oriented fault schedule ("link <t> <tile> <dir>
//   <down|up>" / "router <t> <tile> <down|up>"); --fault-links /
//   --fault-routers add that many randomly placed failures drawn from a
//   dedicated seed-keyed RNG stream inside --fault-window seconds
//   (default 10). --repair-after pairs every failure with a repair that
//   many seconds later. --sensor-dropout is the per-tile-epoch
//   probability of a stale PSN sensor reading; --bit-error-base /
//   --bit-error-slope set the droop-dependent flit corruption
//   probability. Any of these flags enables the fault phase; the run
//   summary then includes the fault counters.
//
// Snapshot & resume:
//   --snapshot-every N writes a crash-safe snapshot of the complete
//   simulator state to --snapshot-dir (default ".") after every N-th
//   epoch as epoch_<N>.parmsnap. --resume restores one of those files
//   (the run must use the identical workload and configuration flags —
//   enforced by an embedded fingerprint) and continues it; the resumed
//   run's summary, telemetry, and metrics deltas are bit-identical to
//   the uninterrupted run's.
//
// Observability:
//   --metrics writes the simulator's instance metrics registry
//   (solver/mapper/NoC counters and latency percentiles) as JSON and
//   prints the text report after the run; --trace writes a Chrome trace-event file (open in
//   Perfetto or chrome://tracing); --trace-jsonl streams the same events
//   one JSON object per line. --events enables the flight recorder and
//   dumps the retained structured events (app lifecycle, VE-margin
//   crossings, NoC congestion) as JSONL at run end; --events-on-ve dumps
//   them at the first voltage emergency instead; --spans derives per-app
//   lifecycle spans from the same events into a Chrome trace (one track
//   per app). --health evaluates threshold rules (VE rate, deadline-miss
//   rate, PSN-cache hit rate, queue depth) over the run's metrics and
//   exits 1 when any rule is critical. --timeseries enables the bounded
//   time-series store (droop/congestion/queue waveforms with RRD-style
//   downsampling) and dumps it as JSONL at run end; --timeseries-csv
//   writes the same samples as CSV. The JSONL feeds parm_blackbox
//   together with --events for a post-mortem incident report. Both
//   captures are observe-only and snapshot-safe: a resumed run continues
//   its waveform history exactly.
//
// Live observability (--serve):
//   --serve PORT starts the embedded HTTP telemetry server on
//   127.0.0.1:PORT (0 picks an ephemeral port; the bound port is
//   printed) and enables the per-phase self-profiler, the rolling SLO
//   engine, the flight recorder, and the time-series store so every
//   endpoint has live data. Endpoints: /metrics (Prometheus text
//   exposition), /healthz (threshold + SLO burn rules; HTTP 503 when
//   critical), /slo (multi-window burn-rate report), /eventz?limit=N
//   (flight-recorder tail as JSONL), /seriesz?name=S&level=L
//   (time-series export), /varz (resolved config + build info), and
//   /profilez (per-phase wall-clock + thread-pool stats). All endpoints
//   are observe-only: results are bit-identical with the server on or
//   off, even under active scraping (tests/obs_server_test.cpp). The
//   server stays up until the process exits so post-run scrapes see the
//   final state.
//
// Examples:
//   parm_runner --mapping PARM --routing PANR --workload comm --arrival 0.05
//   parm_runner --load-workload run.wl --telemetry run.csv
//   parm_runner --trace run.json --metrics metrics.json
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "appmodel/workload_io.hpp"
#include "common/check.hpp"
#include "exp/experiments.hpp"
#include "fault/fault_model.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "serve_util.hpp"
#include "snapshot/serializer.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::cerr << "error: " << msg << "\n"
            << "see the header of examples/parm_runner.cpp for usage\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parm;

  core::FrameworkConfig framework;
  framework.mapping = "PARM";
  framework.routing = "PANR";
  std::string topology_spec = "mesh";
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 20;
  seq.inter_arrival_s = 0.1;
  seq.seed = 1;
  std::string save_workload, load_workload, telemetry_file;
  std::string metrics_file, trace_file, trace_jsonl_file;
  std::string events_file, events_on_ve_file, spans_file;
  std::string timeseries_file, timeseries_csv_file;
  bool health = false;
  bool throttle = false;
  std::uint64_t snapshot_every = 0;
  std::string snapshot_dir = ".";
  std::string resume_file;
  double max_time_s = -1.0;
  int noc_shards = -1;
  int serve_port = -1;
  std::string faults_file;
  int fault_links = 0;
  int fault_routers = 0;
  double fault_window = -1.0;
  double repair_after = -1.0;
  double sensor_dropout = 0.0;
  double bit_error_base = 0.0;
  double bit_error_slope = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--mapping") {
      framework.mapping = value();
    } else if (arg == "--routing") {
      framework.routing = value();
    } else if (arg == "--topology") {
      topology_spec = value();
    } else if (arg == "--workload") {
      const std::string w = value();
      if (w == "compute") {
        seq.kind = appmodel::SequenceKind::Compute;
      } else if (w == "comm") {
        seq.kind = appmodel::SequenceKind::Communication;
      } else if (w == "mixed") {
        seq.kind = appmodel::SequenceKind::Mixed;
      } else {
        usage("unknown workload kind");
      }
    } else if (arg == "--apps") {
      seq.app_count = std::stoi(value());
    } else if (arg == "--arrival") {
      seq.inter_arrival_s = std::stod(value());
    } else if (arg == "--seed") {
      seq.seed = std::stoull(value());
    } else if (arg == "--save-workload") {
      save_workload = value();
    } else if (arg == "--load-workload") {
      load_workload = value();
    } else if (arg == "--telemetry") {
      telemetry_file = value();
    } else if (arg == "--metrics") {
      metrics_file = value();
    } else if (arg == "--trace") {
      trace_file = value();
    } else if (arg == "--trace-jsonl") {
      trace_jsonl_file = value();
    } else if (arg == "--events") {
      events_file = value();
    } else if (arg == "--events-on-ve") {
      events_on_ve_file = value();
    } else if (arg == "--spans") {
      spans_file = value();
    } else if (arg == "--timeseries") {
      timeseries_file = value();
    } else if (arg == "--timeseries-csv") {
      timeseries_csv_file = value();
    } else if (arg == "--health") {
      health = true;
    } else if (arg == "--throttle") {
      throttle = true;
    } else if (arg == "--snapshot-every") {
      snapshot_every = std::stoull(value());
    } else if (arg == "--snapshot-dir") {
      snapshot_dir = value();
    } else if (arg == "--resume") {
      resume_file = value();
    } else if (arg == "--max-time") {
      max_time_s = std::stod(value());
    } else if (arg == "--noc-shards") {
      // Shard count for the parallel NoC cycle engine: 0 = auto, 1 =
      // serial. Results are bit-identical for every value (throughput
      // knob only, so it needn't match across a save/resume pair).
      noc_shards = std::stoi(value());
    } else if (arg == "--serve") {
      serve_port = std::stoi(value());
      if (serve_port < 0 || serve_port > 65535) {
        usage("--serve port must be in [0, 65535] (0 = ephemeral)");
      }
    } else if (arg == "--faults") {
      faults_file = value();
    } else if (arg == "--fault-links") {
      fault_links = std::stoi(value());
    } else if (arg == "--fault-routers") {
      fault_routers = std::stoi(value());
    } else if (arg == "--fault-window") {
      fault_window = std::stod(value());
    } else if (arg == "--repair-after") {
      repair_after = std::stod(value());
    } else if (arg == "--sensor-dropout") {
      sensor_dropout = std::stod(value());
    } else if (arg == "--bit-error-base") {
      bit_error_base = std::stod(value());
    } else if (arg == "--bit-error-slope") {
      bit_error_slope = std::stod(value());
    } else {
      usage(("unknown argument: " + arg).c_str());
    }
  }

  // Build or load the workload schedule.
  std::vector<appmodel::AppArrival> arrivals;
  if (!load_workload.empty()) {
    std::ifstream in(load_workload);
    if (!in) usage("cannot open workload file");
    std::stringstream buf;
    buf << in.rdbuf();
    arrivals = appmodel::workload_from_text(buf.str());
  } else {
    arrivals = appmodel::make_sequence(seq);
  }
  if (!save_workload.empty()) {
    std::ofstream out(save_workload);
    if (!out) usage("cannot open workload file for writing");
    out << appmodel::workload_to_text(arrivals);
    std::cout << "workload saved to " << save_workload << "\n";
  }

  sim::SimConfig cfg = exp::default_sim_config();
  cfg.framework = framework;
  cfg.platform.topology = topology_spec;
  cfg.proactive_throttle = throttle;
  cfg.record_telemetry = !telemetry_file.empty();
  cfg.record_events = !events_file.empty() || !events_on_ve_file.empty() ||
                      !spans_file.empty();
  cfg.events_dump_on_ve = events_on_ve_file;
  cfg.record_timeseries =
      !timeseries_file.empty() || !timeseries_csv_file.empty();
  if (serve_port >= 0) {
    // A live scrape surface without data behind it is useless, so --serve
    // implies self-observation. All four captures are observe-only (the
    // engine-equivalence tests pin bit-identity with them enabled), so
    // this cannot change the run's results.
    cfg.profile_phases = true;
    cfg.track_slo = true;
    cfg.record_events = true;
    cfg.record_timeseries = true;
  }
  if (max_time_s > 0.0) cfg.max_sim_time_s = max_time_s;
  if (noc_shards >= 0) {
    cfg.parallel_noc = noc_shards != 1;
    cfg.noc_shards = noc_shards;
  }
  if (!faults_file.empty() || fault_links > 0 || fault_routers > 0 ||
      sensor_dropout > 0.0 || bit_error_base > 0.0 ||
      bit_error_slope > 0.0) {
    cfg.faults.enabled = true;
    cfg.faults.random_link_failures = fault_links;
    cfg.faults.random_router_failures = fault_routers;
    if (fault_window > 0.0) cfg.faults.random_fail_window_s = fault_window;
    if (repair_after > 0.0) cfg.faults.repair_after_s = repair_after;
    cfg.faults.sensor_dropout_per_epoch = sensor_dropout;
    cfg.faults.bit_error_base = bit_error_base;
    cfg.faults.bit_error_psn_slope = bit_error_slope;
    if (!faults_file.empty()) {
      std::ifstream in(faults_file);
      if (!in) usage("cannot open fault schedule file");
      std::stringstream buf;
      buf << in.rdbuf();
      try {
        // Directions in the schedule are port names of the selected
        // topology (E/W/N/S on grids, U/D for the mesh3d z axis, p<k>
        // on irregular graphs).
        const auto topo =
            noc::Topology::make(cfg.platform.topology,
                                cfg.platform.mesh_width,
                                cfg.platform.mesh_height);
        cfg.faults.schedule = fault::schedule_from_text(buf.str(), *topo);
      } catch (const CheckError& e) {
        usage(e.what());
      }
    }
  }
  try {
    cfg.validate();
  } catch (const CheckError& e) {
    usage(e.what());
  }

  // Open trace sinks before the simulator exists so construction-time
  // events (first factorizations) are captured too.
  obs::Tracer& tracer = obs::Tracer::instance();
  if (!trace_file.empty() && !tracer.open_chrome(trace_file)) {
    usage("cannot open trace file for writing");
  }
  if (!trace_jsonl_file.empty() && !tracer.open_jsonl(trace_jsonl_file)) {
    usage("cannot open trace JSONL file for writing");
  }

  std::cout << "running " << framework.display_name() << " on "
            << arrivals.size() << " apps...\n";
  sim::SystemSimulator simulator(cfg, std::move(arrivals));

  // Live observability: start the scrape surface before run() so CI (or
  // an operator) can watch the simulation in flight. The server thread
  // only ever reads — see examples/serve_util.hpp for the locking.
  obs::HttpServer server;
  if (serve_port >= 0) {
    obs::register_endpoints(server, serve::hooks_for_simulator(simulator, cfg));
    const std::uint16_t bound =
        server.start(static_cast<std::uint16_t>(serve_port));
    std::cout << "serving observability on http://127.0.0.1:" << bound
              << "/ (metrics healthz slo eventz seriesz varz profilez)\n"
              << std::flush;
  }

  if (snapshot_every > 0) {
    simulator.enable_periodic_snapshots(snapshot_every, snapshot_dir);
    std::cout << "snapshotting every " << snapshot_every << " epoch(s) to "
              << snapshot_dir << "\n";
  }
  if (!resume_file.empty()) {
    try {
      simulator.restore_snapshot(resume_file);
    } catch (const snapshot::SnapshotError& e) {
      std::cerr << "error: cannot resume from " << resume_file << ": "
                << e.what() << "\n";
      return 1;
    }
    std::cout << "resumed from " << resume_file << " (epoch "
              << simulator.epoch() << ")\n";
  }
  const sim::SimResult r = simulator.run();

  std::cout << "makespan            " << r.makespan_s << " s"
            << (r.timed_out ? " (TIMED OUT)" : "") << "\n"
            << "completed / dropped " << r.completed_count << " / "
            << r.dropped_count << "\n"
            << "peak / avg PSN      " << r.peak_psn_percent << " % / "
            << r.avg_psn_percent << " %\n"
            << "voltage emergencies " << r.total_ve_count << "\n"
            << "avg NoC latency     " << r.avg_noc_latency_cycles
            << " cycles\n"
            << "chip power peak/avg " << r.peak_chip_power_w << " / "
            << r.avg_chip_power_w << " W\n";
  if (cfg.faults.enabled) {
    std::cout << "fault events        " << r.link_fault_events
              << " link / " << r.router_fault_events << " router\n"
              << "flits lost/corrupt  " << r.fault_dropped_flits << " / "
              << r.corrupt_packets << " (" << r.retransmitted_packets
              << " retransmitted)\n"
              << "sensor dropouts     " << r.sensor_dropout_epochs
              << " tile-epochs\n"
              << "fault remaps        " << r.fault_task_remaps << " ("
              << r.fault_stranded_tasks << " stranded)\n"
              << "min delivery ratio  " << r.min_delivery_ratio << "\n"
              << "deadlock windows    " << r.deadlock_windows << "\n";
  }

  if (!telemetry_file.empty()) {
    std::ofstream out(telemetry_file);
    if (!out) usage("cannot open telemetry file for writing");
    r.telemetry.write_csv(out);
    std::cout << "telemetry (" << r.telemetry.samples().size()
              << " epochs) written to " << telemetry_file << "\n";
  }

  tracer.close();
  if (!trace_file.empty()) {
    std::cout << "trace written to " << trace_file
              << " (open in Perfetto or chrome://tracing)\n";
  }
  if (!trace_jsonl_file.empty()) {
    std::cout << "trace events streamed to " << trace_jsonl_file << "\n";
  }
  if (!metrics_file.empty()) {
    std::ofstream out(metrics_file);
    if (!out) usage("cannot open metrics file for writing");
    simulator.metrics().write_json(out);
    out << '\n';
    std::cout << "metrics written to " << metrics_file << "\n";
    std::cout << "\n--- metrics summary ---\n";
    simulator.metrics().write_text(std::cout);
  }
  if (!events_file.empty()) {
    std::ofstream out(events_file);
    if (!out) usage("cannot open events file for writing");
    simulator.recorder().dump_jsonl(out);
    std::cout << "events (" << simulator.recorder().size() << " retained, "
              << simulator.recorder().dropped() << " dropped) written to "
              << events_file << "\n";
  }
  if (!spans_file.empty()) {
    std::ofstream out(spans_file);
    if (!out) usage("cannot open spans file for writing");
    obs::write_span_trace(out, simulator.recorder().collect());
    std::cout << "app lifecycle spans written to " << spans_file
              << " (open in Perfetto or chrome://tracing)\n";
  }
  if (!timeseries_file.empty()) {
    std::ofstream out(timeseries_file);
    if (!out) usage("cannot open timeseries file for writing");
    simulator.timeseries().dump_jsonl(out);
    std::cout << "time series (" << simulator.timeseries().series_count()
              << " series, " << simulator.timeseries().samples_total()
              << " samples, " << simulator.timeseries().evictions_total()
              << " evicted) written to " << timeseries_file << "\n";
  }
  if (!timeseries_csv_file.empty()) {
    std::ofstream out(timeseries_csv_file);
    if (!out) usage("cannot open timeseries CSV file for writing");
    simulator.timeseries().write_csv(out);
    std::cout << "time series CSV written to " << timeseries_csv_file
              << "\n";
  }
  if (health) {
    const obs::HealthReport report =
        obs::HealthMonitor().evaluate(simulator.metrics());
    obs::write_health_report(std::cout, report);
    if (report.critical()) return 1;
  }
  return 0;
}
