// PDN playground: drive the circuit-analysis substrate directly.
//
// Builds one 7 nm power-supply domain, then demonstrates the three
// analyses the library offers on it:
//   1. SPICE export  — dump the netlist for external cross-checking;
//   2. AC analysis   — impedance sweep with the anti-resonance peak;
//   3. transient     — PSN waveform under a two-task workload, printed
//                      as an ASCII strip chart plus CSV-ready samples.
//
// Build & run:  ./build/examples/pdn_playground
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "pdn/ac_analysis.hpp"
#include "pdn/psn_estimator.hpp"
#include "pdn/spice_export.hpp"
#include "pdn/transient.hpp"
#include "power/core_power.hpp"
#include "power/technology.hpp"
#include "power/vf_model.hpp"

int main() {
  using namespace parm;
  const auto& tech = power::technology_node(7);
  const power::VoltageFrequencyModel vf(tech);
  const power::CorePowerModel core(tech);
  const double vdd = tech.vdd_ntc;
  const double f = vf.fmax(vdd);

  // A High task on tile 0 and a Low task on its 1-hop neighbor, tile 1.
  std::array<pdn::TileLoad, 4> loads{};
  loads[0] = {core.supply_current(vdd, f, 0.9),
              pdn::activity_to_modulation(0.9), 0.0};
  loads[1] = {core.supply_current(vdd, f, 0.3),
              pdn::activity_to_modulation(0.3), 0.4};
  const pdn::DomainCircuit dom = build_domain_circuit(tech, vdd, loads);

  // 1. SPICE deck.
  std::cout << "--- SPICE netlist ------------------------------------\n"
            << to_spice(dom.circuit, "7nm domain, H+L pair") << "\n";

  // 2. Impedance sweep.
  const pdn::AcAnalysis ac(dom.circuit);
  const auto sweep = ac.sweep(dom.tile_nodes[0], 1e6, 5e9, 60);
  const auto peak = pdn::AcAnalysis::peak(sweep);
  std::cout << "--- AC analysis --------------------------------------\n"
            << "anti-resonance: " << peak.freq_hz / 1e6 << " MHz, |Z| = "
            << peak.magnitude() * 1e3 << " mOhm (workload ripple at "
            << tech.ripple_freq_hz / 1e6 << " MHz)\n\n";

  // 3. Transient PSN waveform at the High tile.
  const double period = 1.0 / tech.ripple_freq_hz;
  pdn::TransientSolver solver(dom.circuit, period / 128.0);
  const auto trace =
      solver.run(4.0 * period, {dom.tile_nodes[0], dom.tile_nodes[1]},
                 2.0 * period);

  std::cout << "--- Transient (2 ripple periods) ---------------------\n"
            << "PSN at the High tile, one '#' per 0.05 % of Vdd:\n";
  const auto& v_high = trace.of(dom.tile_nodes[0]);
  for (std::size_t i = 0; i < v_high.size(); i += 8) {
    const double psn = (vdd - v_high[i]) / vdd * 100.0;
    // Overshoot above Vdd (negative PSN) renders as an empty bar.
    const std::size_t bar = static_cast<std::size_t>(
        std::clamp(psn / 0.05, 0.0, 80.0));
    std::cout << std::setw(7) << std::fixed << std::setprecision(2)
              << trace.times[i] * 1e9 << " ns |" << std::setw(5) << psn
              << "% " << std::string(bar, '#') << "\n";
  }

  pdn::PsnEstimator estimator(tech);
  const pdn::DomainPsn psn = estimator.estimate(vdd, loads);
  std::cout << "\nsummary: High tile peak " << psn.tiles[0].peak_percent
            << " %, Low tile peak " << psn.tiles[1].peak_percent
            << " % (coupled noise from its neighbor), domain average "
            << psn.avg_percent << " %\n";
  return 0;
}
