// PSN explorer: interactive-style sweep of one power domain.
//
// For a chosen benchmark this example sweeps the (Vdd, DoP) grid exactly
// like PARM's Algorithm 1 would, printing for each point the estimated
// WCET, application power, and the peak PSN a fully packed domain would
// observe — the trade-off surface PARM navigates at runtime.
//
// Build & run:  ./build/examples/psn_explorer [benchmark]
#include <iostream>

#include "appmodel/application.hpp"
#include "common/table.hpp"
#include "pdn/psn_estimator.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"
#include "power/vf_model.hpp"

int main(int argc, char** argv) {
  using namespace parm;
  const std::string bench_name = argc > 1 ? argv[1] : "cholesky";
  const auto& bench = appmodel::benchmark_by_name(bench_name);
  const appmodel::ApplicationProfile profile(bench, 99);

  const auto& tech = power::technology_node(7);
  const power::VoltageFrequencyModel vf(tech);
  const power::CorePowerModel core(tech);
  const power::RouterPowerModel router(tech);
  pdn::PsnEstimator estimator(tech);

  std::cout << "PSN explorer — " << bench.name << " ("
            << to_string(bench.kind) << ", APG shape "
            << to_string(bench.shape) << ", max DoP " << bench.max_dop
            << ")\n\n";

  Table table({"Vdd (V)", "DoP", "WCET (s)", "app power (W)",
               "domain peak PSN (%)", "VE risk"});
  table.set_precision(3);

  for (double vdd : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    for (int dop : profile.dops()) {
      const double wcet = profile.wcet_seconds(vdd, dop, vf);
      const double power =
          profile.estimated_power_w(vdd, dop, vf, core, router);

      // Peak PSN of a domain packed with this app's four most active
      // tasks (staggered phases — a typical runtime alignment).
      const auto& variant = profile.variant(dop);
      std::array<pdn::TileLoad, 4> loads{};
      const double f = vf.fmax(vdd);
      const double inj = profile.task_injection_rate(vdd, dop, vf);
      for (std::size_t k = 0; k < 4; ++k) {
        const double act =
            variant.tasks[k % variant.tasks.size()].activity;
        loads[k] = pdn::TileLoad{
            core.supply_current(vdd, f, act) +
                router.supply_current(vdd, inj * 2.5),
            pdn::activity_to_modulation(act),
            0.25 * static_cast<double>(k)};
      }
      const double psn = estimator.estimate(vdd, loads).peak_percent;
      table.add_row({vdd, static_cast<std::int64_t>(dop), wcet, power,
                     psn,
                     std::string(psn > 5.0   ? "HIGH"
                                 : psn > 4.0 ? "near margin"
                                             : "safe")});
    }
  }
  table.print(std::cout);
  std::cout << "\nPARM walks this table bottom-left first (lowest Vdd, "
               "highest DoP): the first row that meets the deadline, fits "
               "the DsPB, and maps is the admitted operating point.\n";
  return 0;
}
