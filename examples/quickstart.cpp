// Quickstart: admit one application onto the CMP with PARM.
//
// Shows the core public API end to end:
//   1. build the paper's 60-core platform (10×6 mesh, 7 nm, DsPB 65 W);
//   2. load an offline application profile (the fft benchmark);
//   3. run PARM's Algorithm 1 to pick (Vdd, DoP) and a PSN-aware mapping;
//   4. commit the admission and render the resulting tile map.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "appmodel/workload.hpp"
#include "cmp/platform.hpp"
#include "core/admission.hpp"

int main() {
  using namespace parm;

  // 1. The paper's platform: 10×6 tiles, 2×2-tile voltage domains,
  //    Vdd ∈ {0.4..0.8 V}, dark-silicon budget 65 W.
  cmp::Platform platform{cmp::PlatformConfig{}};
  std::cout << "Platform: " << platform.mesh().width() << "x"
            << platform.mesh().height() << " tiles, "
            << platform.mesh().domain_count() << " power domains, DsPB "
            << platform.ledger().budget() << " W\n";

  // 2. An arriving application: fft with a deadline 2.5× its reference
  //    service time (0.6 V, DoP 16).
  appmodel::AppArrival app;
  app.id = 0;
  app.bench = &appmodel::benchmark_by_name("fft");
  app.profile =
      std::make_shared<appmodel::ApplicationProfile>(*app.bench, 2024);
  app.arrival_s = 0.0;
  app.deadline_s =
      2.5 * app.profile->wcet_seconds(0.6, 16, platform.vf_model());
  std::cout << "Application: " << app.bench->name << " (max DoP "
            << app.bench->max_dop << "), deadline " << app.deadline_s
            << " s\n\n";

  // 3. PARM Algorithm 1: lowest Vdd, highest DoP that meets the deadline,
  //    fits the DsPB, and maps with the PSN-aware heuristic.
  core::ParmAdmissionPolicy parm;
  const core::AdmissionResult result = parm.try_admit(app, 0.0, platform);
  if (!result.admitted()) {
    std::cout << "Admission failed ("
              << (result.failure == core::AdmissionFailure::Stall
                      ? "stall: retry on next app exit"
                      : "drop: deadline infeasible")
              << ")\n";
    return 1;
  }
  const core::AdmissionDecision& d = *result.decision;
  std::cout << "PARM decision: Vdd = " << d.vdd << " V, DoP = " << d.dop
            << ", estimated power " << d.estimated_power_w
            << " W, WCET " << d.wcet_s << " s\n";

  // 4. Commit and draw the map (task index per tile, '.' = dark tile).
  platform.ledger().reserve(1, d.estimated_power_w);
  platform.occupy(1, d.mapping, d.vdd);

  const auto& variant = app.profile->variant(d.dop);
  std::cout << "\nTile map (H = High-activity task, L = Low):\n";
  for (std::int32_t y = platform.mesh().height() - 1; y >= 0; --y) {
    for (std::int32_t x = 0; x < platform.mesh().width(); ++x) {
      const auto& tile = platform.tile(platform.mesh().tile_id({x, y}));
      if (tile.app == cmp::kNoApp) {
        std::cout << " . ";
      } else {
        const auto cls =
            variant.tasks[static_cast<std::size_t>(tile.task_index)]
                .activity_class();
        std::cout << (cls == power::ActivityClass::High ? " H " : " L ");
      }
    }
    std::cout << '\n';
  }
  std::cout << "\nNote how same-activity tasks share 2x2 power domains and "
               "the whole region is contiguous — both choices minimize "
               "the supply-noise interference of Fig. 3(b).\n";
  return 0;
}
