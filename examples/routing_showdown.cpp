// Routing showdown: drive the cycle-level NoC directly.
//
// A synthetic scenario built for eyeballing routing behaviour: the west
// third of the chip is electrically noisy (as if High-activity tasks run
// there) while a hotspot of traffic sits in the quiet east. Each routing
// policy (XY, WestFirst, ICON, PANR) serves the same offered load; we
// report latency, throughput, and how much traffic each policy pushed
// through the noisy region.
//
// Build & run:  ./build/examples/routing_showdown
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "noc/window_sim.hpp"

int main() {
  using namespace parm;
  const MeshGeometry mesh(10, 6);

  std::cout << "Routing showdown on a 10x6 mesh: noisy west third "
               "(PSN 6.5 %), quiet east; uniform traffic + east hotspot.\n\n";

  Table table({"routing", "avg latency (cycles)", "delivered flits",
               "delivery ratio", "noisy-region traffic (%)"});
  table.set_precision(2);

  for (const char* algo : {"XY", "WestFirst", "ICON", "PANR"}) {
    noc::NocConfig cfg;
    cfg.buffer_depth = 8;
    noc::Network net(mesh, cfg, noc::make_routing(algo));

    std::vector<double> psn(static_cast<std::size_t>(mesh.tile_count()));
    for (TileId t = 0; t < mesh.tile_count(); ++t) {
      psn[static_cast<std::size_t>(t)] = mesh.coord(t).x < 3 ? 6.5 : 0.8;
    }
    net.set_tile_psn(psn);

    Rng rng(7);
    auto flows = noc::uniform_random_flows(mesh, 0.035, rng);
    for (auto& f : noc::hotspot_flows(mesh, mesh.tile_id({7, 3}), 0.012)) {
      flows.push_back(f);
    }
    noc::TrafficGenerator gen(flows);
    const noc::WindowResult w =
        noc::run_window(net, gen, noc::WindowConfig{512, 4096});

    double noisy = 0.0, total = 0.0;
    for (TileId t = 0; t < mesh.tile_count(); ++t) {
      const double a = w.router_activity[static_cast<std::size_t>(t)];
      total += a;
      if (mesh.coord(t).x < 3) noisy += a;
    }
    table.add_row({std::string(algo), w.avg_latency,
                   static_cast<std::int64_t>(w.delivered_flits),
                   w.delivery_ratio, noisy / total * 100.0});
  }
  table.print(std::cout);
  std::cout << "\nPANR keeps traffic out of the noisy region whenever a "
               "west-first-legal alternative exists, without giving up "
               "latency; ICON balances load but is blind to the noise.\n";
  return 0;
}
