// Shared --serve plumbing for the example runners.
//
// Each runner that grows a --serve flag binds the standard observability
// endpoint surface (obs/server.hpp) to its own data sources; this header
// holds the pieces they share: the single-simulator hook set and the
// /eventz + /seriesz body writers the fleet runner reuses with its own
// merged sources. Header-only on purpose — the runners are separate
// binaries and this is presentation glue, not library code.
#pragma once

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/server.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/config_json.hpp"
#include "sim/system_sim.hpp"

namespace parm::serve {

/// /eventz body: the newest `limit` events as JSONL (`limit` 0 = every
/// retained event). `events` must already be in emission order, which is
/// what FlightRecorder::collect() returns.
inline void write_events_tail(std::ostream& os,
                              const std::vector<obs::Event>& events,
                              std::size_t limit) {
  std::size_t first = 0;
  if (limit != 0 && events.size() > limit) first = events.size() - limit;
  for (std::size_t i = first; i < events.size(); ++i) {
    obs::write_event_json(os, events[i]);
    os << '\n';
  }
}

/// /seriesz body: an empty `name` lists the store's series names as one
/// JSON object; otherwise the named series' retained samples as JSONL in
/// TimeSeriesStore::dump_jsonl's line format. `level` < 0 means every
/// downsample level; an unknown name yields an {"error":...} object (the
/// endpoint still returns 200 — the scrape itself succeeded).
inline void write_series(std::ostream& os, const obs::TimeSeriesStore& store,
                         const std::string& name, int level) {
  if (name.empty()) {
    os << "{\"series\":[";
    bool first = true;
    for (const std::string& n : store.series_names()) {
      if (!first) os << ',';
      first = false;
      obs::json_string(os, n);
    }
    os << "]}";
    return;
  }
  const obs::TimeSeries* series = store.find(name);
  if (series == nullptr) {
    os << "{\"error\":\"unknown series\",\"name\":";
    obs::json_string(os, name);
    os << '}';
    return;
  }
  const auto old_precision = os.precision(15);
  for (std::size_t lv = 0; lv < series->level_count(); ++lv) {
    if (level >= 0 && static_cast<std::size_t>(level) != lv) continue;
    for (const obs::TsSample& s : series->samples(lv)) {
      os << "{\"series\":";
      obs::json_string(os, name);
      os << ",\"level\":" << lv << ",\"t_start\":" << s.t_start
         << ",\"t_end\":" << s.t_end << ",\"min\":" << s.min
         << ",\"max\":" << s.max << ",\"mean\":" << s.mean()
         << ",\"count\":" << s.count << "}\n";
    }
  }
  os.precision(old_precision);
}

/// The full endpoint surface of one SystemSimulator. Hooks that read
/// non-thread-safe engine state (SLO engine, time-series store) lock
/// sim.obs_mutex() so scrapes land on epoch boundaries; Registry,
/// FlightRecorder, and pool-stats reads are thread-safe as-is. `sim` and
/// `cfg` must outlive the server the hooks are registered on.
inline obs::EndpointHooks hooks_for_simulator(sim::SystemSimulator& sim,
                                              const sim::SimConfig& cfg) {
  obs::EndpointHooks hooks;
  hooks.metrics = [&sim](std::ostream& os) {
    sim.metrics().write_prometheus(os);
  };
  hooks.health = [&sim]() {
    std::lock_guard<std::mutex> lock(sim.obs_mutex());
    return obs::HealthMonitor().evaluate(sim.metrics(), sim.slo().report());
  };
  hooks.slo = [&sim]() {
    std::lock_guard<std::mutex> lock(sim.obs_mutex());
    return sim.slo().report();
  };
  hooks.events = [&sim](std::ostream& os, std::size_t limit) {
    write_events_tail(os, sim.recorder().collect(), limit);
  };
  hooks.series = [&sim](std::ostream& os, const std::string& name,
                        int level) {
    std::lock_guard<std::mutex> lock(sim.obs_mutex());
    write_series(os, sim.timeseries(), name, level);
  };
  hooks.varz = [&cfg](std::ostream& os) { sim::write_config_json(os, cfg); };
  hooks.profile = [&sim](std::ostream& os) {
    obs::write_profile_json(os, sim.metrics(), ThreadPool::shared().stats());
  };
  return hooks;
}

}  // namespace parm::serve
