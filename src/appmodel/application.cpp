#include "appmodel/application.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace parm::appmodel {

namespace {
/// Average task-separation hops assumed by the offline profile when it
/// measured communication stalls (tasks of a well-mapped app sit a few
/// hops apart).
constexpr double kProfiledAvgHops = 2.5;
}  // namespace

std::vector<int> permitted_dops(int max_dop) {
  PARM_CHECK(max_dop >= 4 && max_dop <= 32 && max_dop % 4 == 0,
             "max_dop must be a multiple of 4 in [4, 32]");
  std::vector<int> d;
  for (int v = 4; v <= max_dop; v += 4) d.push_back(v);
  return d;
}

double DopVariant::high_activity_fraction() const {
  if (tasks.empty()) return 0.0;
  std::size_t high = 0;
  for (const auto& t : tasks) {
    if (t.activity_class() == power::ActivityClass::High) ++high;
  }
  return static_cast<double>(high) / static_cast<double>(tasks.size());
}

ApplicationProfile::ApplicationProfile(const BenchmarkProfile& bench,
                                       std::uint64_t seed)
    : bench_(&bench), dops_(permitted_dops(bench.max_dop)) {
  Rng rng(seed);
  const double total_work_cycles = bench.parallel_work_gcycles * 1e9;

  variants_.reserve(dops_.size());
  for (int dop : dops_) {
    DopVariant v;
    v.dop = dop;
    v.critical_path_cycles =
        total_work_cycles * (bench.serial_fraction +
                             (1.0 - bench.serial_fraction) / dop +
                             bench.sync_overhead * dop);

    // Per-task compute work: equal split of the parallel portion with ±10 %
    // variation; the serial portion lands on task 0 (the "main" thread).
    const double parallel_share =
        total_work_cycles * (1.0 - bench.serial_fraction) / dop;
    double total_task_work = 0.0;
    v.tasks.resize(static_cast<std::size_t>(dop));
    for (int t = 0; t < dop; ++t) {
      auto& task = v.tasks[static_cast<std::size_t>(t)];
      task.work_cycles = parallel_share * rng.uniform(0.9, 1.1);
      if (t == 0) {
        task.work_cycles += total_work_cycles * bench.serial_fraction;
      }
      task.activity = std::clamp(
          rng.uniform(bench.base_activity - bench.activity_spread,
                      bench.base_activity + bench.activity_spread),
          0.05, 0.98);
      total_task_work += task.work_cycles;
    }

    // APG: generate the shape, then rescale edge volumes so the total
    // matches comm_intensity flits per kilocycle of aggregate task work.
    TaskGraph raw = TaskGraph::generate(bench.shape,
                                        static_cast<TaskIndex>(dop), 1.0,
                                        rng);
    const double target_volume =
        total_task_work * bench.comm_intensity / 1000.0;
    const double factor = target_volume / raw.total_volume();
    std::vector<ApgEdge> edges = raw.edges();
    for (auto& e : edges) e.volume_flits *= factor;
    v.graph = TaskGraph(static_cast<TaskIndex>(dop), std::move(edges));

    variants_.push_back(std::move(v));
  }
}

ApplicationProfile ApplicationProfile::from_parts(
    const BenchmarkProfile& bench, std::vector<DopVariant> variants) {
  PARM_CHECK(!variants.empty(), "profile needs at least one DoP variant");
  std::sort(variants.begin(), variants.end(),
            [](const DopVariant& a, const DopVariant& b) {
              return a.dop < b.dop;
            });
  ApplicationProfile profile(bench);
  for (const DopVariant& v : variants) {
    PARM_CHECK(static_cast<int>(v.tasks.size()) == v.dop,
               "variant task count must equal its DoP");
    PARM_CHECK(v.graph.task_count() == v.dop,
               "variant graph size must equal its DoP");
    PARM_CHECK(v.critical_path_cycles > 0.0,
               "variant needs a positive critical path");
    PARM_CHECK(profile.dops_.empty() || profile.dops_.back() != v.dop,
               "duplicate DoP variant");
    profile.dops_.push_back(v.dop);
  }
  profile.variants_ = std::move(variants);
  return profile;
}

const DopVariant& ApplicationProfile::variant(int dop) const {
  for (std::size_t i = 0; i < dops_.size(); ++i) {
    if (dops_[i] == dop) return variants_[i];
  }
  PARM_CHECK(false, "unsupported DoP: " + std::to_string(dop));
}

double ApplicationProfile::wcet_seconds(
    double vdd, int dop, const power::VoltageFrequencyModel& vf) const {
  const DopVariant& v = variant(dop);
  const double f = vf.fmax(vdd);
  const double stall =
      1.0 + bench_->comm_stall_sensitivity * kProfiledAvgHops;
  return v.critical_path_cycles / f * stall;
}

double ApplicationProfile::estimated_power_w(
    double vdd, int dop, const power::VoltageFrequencyModel& vf,
    const power::CorePowerModel& core,
    const power::RouterPowerModel& router) const {
  const DopVariant& v = variant(dop);
  const double f = vf.fmax(vdd);
  const double inj = task_injection_rate(vdd, dop, vf);
  double total = 0.0;
  for (const auto& t : v.tasks) {
    total += core.total_power(vdd, f, t.activity);
    // Each flit traverses kProfiledAvgHops routers on average; attribute
    // that traffic to the injecting task's tile router plus downstream
    // routers it keeps busy.
    total += router.total_power(vdd, inj * kProfiledAvgHops);
  }
  return total;
}

double ApplicationProfile::task_injection_rate(
    double vdd, int dop, const power::VoltageFrequencyModel& vf) const {
  (void)dop;  // rate is per task; DoP only changes the task count
  return bench_->comm_intensity / 1000.0 * vf.fmax(vdd);
}

}  // namespace parm::appmodel
