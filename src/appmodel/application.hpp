// Offline application profile: the per-(Vdd, DoP) data PARM's Algorithm 1
// consumes (paper section 4, "offline profiling information").
//
// For each permitted DoP the profile instantiates a task graph and per-task
// work/activity figures from the benchmark's workload model:
//
//   critical-path cycles(D) = W·1e9 · (serial + (1−serial)/D + sync·D)
//
// (Amdahl serial term, parallel term, synchronization overhead that makes
// DoPs beyond 32 unprofitable — paper section 5.1). WCET at a Vdd divides
// by fmax(Vdd) and applies the profiled communication-stall allowance.
#pragma once

#include <cstdint>
#include <vector>

#include "appmodel/benchmarks.hpp"
#include "appmodel/task_graph.hpp"
#include "common/rng.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"
#include "power/vf_model.hpp"

namespace parm::appmodel {

/// Permitted DoP values: multiples of 4 from 4 to `max_dop` (paper
/// sections 3.3 and 5.1). Multiples of 4 guarantee whole-domain occupancy
/// so tasks of different applications never share a power domain.
std::vector<int> permitted_dops(int max_dop = 32);

/// Offline-profiled figures of one task at one DoP.
struct TaskProfile {
  double work_cycles = 0.0;  ///< Compute demand in reference-clock cycles.
  double activity = 0.5;     ///< Core switching-activity factor [0, 1].

  power::ActivityClass activity_class() const {
    return power::classify_activity(activity);
  }
};

/// Profile data of one application at one DoP.
struct DopVariant {
  int dop = 4;
  TaskGraph graph;                  ///< APG over the `dop` tasks.
  std::vector<TaskProfile> tasks;   ///< size == dop
  double critical_path_cycles = 0.0;

  /// Fraction of High-activity tasks (for tests/analysis).
  double high_activity_fraction() const;
};

/// The complete offline profile of one benchmark across all DoPs.
///
/// Construction is deterministic in (benchmark, seed): the same seed yields
/// the same graphs and activities, which stands in for "the profiling run".
class ApplicationProfile {
 public:
  ApplicationProfile(const BenchmarkProfile& bench, std::uint64_t seed);

  /// Reassembles a profile from externally produced variant data — the
  /// deserialization path used by profile_io (normal construction
  /// synthesizes variants from a seed). Variants must be non-empty with
  /// consistent task counts; they are sorted by DoP.
  static ApplicationProfile from_parts(const BenchmarkProfile& bench,
                                       std::vector<DopVariant> variants);

  const BenchmarkProfile& benchmark() const { return *bench_; }

  const std::vector<int>& dops() const { return dops_; }
  const DopVariant& variant(int dop) const;

  /// Worst-case execution time (seconds) at a (Vdd, DoP) point, including
  /// the profiled communication-stall allowance. This is what Algorithm 1
  /// line 5 calls EstimateExecutionTime.
  double wcet_seconds(double vdd, int dop,
                      const power::VoltageFrequencyModel& vf) const;

  /// Estimated steady-state power (W) of the whole application at a
  /// (Vdd, DoP) point: per-task core power plus the NoC power its traffic
  /// induces. This is what Algorithm 2 line 1 checks against the DsPB.
  double estimated_power_w(double vdd, int dop,
                           const power::VoltageFrequencyModel& vf,
                           const power::CorePowerModel& core,
                           const power::RouterPowerModel& router) const;

  /// Average NoC injection rate of one task (flits/second) when the app
  /// runs at `vdd`: comm_intensity flits per kilocycle at fmax(vdd).
  double task_injection_rate(double vdd, int dop,
                             const power::VoltageFrequencyModel& vf) const;

 private:
  explicit ApplicationProfile(const BenchmarkProfile& bench)
      : bench_(&bench) {}

  const BenchmarkProfile* bench_;
  std::vector<int> dops_;
  std::vector<DopVariant> variants_;
};

}  // namespace parm::appmodel
