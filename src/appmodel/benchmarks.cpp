#include "appmodel/benchmarks.hpp"

#include "common/check.hpp"

namespace parm::appmodel {

const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::ComputeIntensive:
      return "compute";
    case WorkloadKind::CommunicationIntensive:
      return "communication";
    case WorkloadKind::Both:
      return "both";
  }
  return "?";
}

namespace {

BenchmarkProfile make(std::string name, WorkloadKind kind, GraphShape shape,
                      double work_g, double serial, double sync,
                      double activity, double spread, double comm,
                      double stall_sens, int max_dop) {
  BenchmarkProfile p;
  p.name = std::move(name);
  p.kind = kind;
  p.shape = shape;
  p.parallel_work_gcycles = work_g;
  p.serial_fraction = serial;
  p.sync_overhead = sync;
  p.base_activity = activity;
  p.activity_spread = spread;
  p.comm_intensity = comm;
  p.comm_stall_sensitivity = stall_sens;
  p.max_dop = max_dop;
  return p;
}

std::vector<BenchmarkProfile> make_suite() {
  using K = WorkloadKind;
  using S = GraphShape;
  std::vector<BenchmarkProfile> v;
  // --- communication-intensive group (paper section 5.1) ---
  // Lower core activity (cores stall on the network), heavy APG edges.
  v.push_back(make("cholesky", K::CommunicationIntensive, S::Random, 1.4, 0.06, 0.0012, 0.60, 0.24, 220.0, 0.045, 16));
  v.push_back(make("fft", K::CommunicationIntensive, S::Butterfly, 0.9, 0.03, 0.0008, 0.64, 0.22, 280.0, 0.055, 32));
  v.push_back(make("raytrace", K::CommunicationIntensive, S::Random, 2.0, 0.05, 0.0010, 0.56, 0.26, 180.0, 0.040, 16));
  v.push_back(make("dedup", K::CommunicationIntensive, S::Pipeline, 1.2, 0.08, 0.0015, 0.54, 0.24, 240.0, 0.050, 12));
  v.push_back(make("canneal", K::CommunicationIntensive, S::Random, 1.6, 0.04, 0.0010, 0.56, 0.22, 260.0, 0.055, 16));
  v.push_back(make("vips", K::CommunicationIntensive, S::Pipeline, 1.1, 0.07, 0.0012, 0.58, 0.24, 200.0, 0.045, 12));
  // --- both groups (paper: "radix has properties of both") ---
  v.push_back(make("radix", K::Both, S::Tree, 1.0, 0.04, 0.0009, 0.62, 0.26, 160.0, 0.035, 16));
  // --- compute-intensive group ---
  // High core activity, light communication.
  v.push_back(make("swaptions", K::ComputeIntensive, S::Random, 1.8, 0.02, 0.0006, 0.88, 0.10, 24.0, 0.010, 32));
  v.push_back(make("fluidanimate", K::ComputeIntensive, S::Pipeline, 1.5, 0.05, 0.0010, 0.78, 0.16, 60.0, 0.018, 16));
  v.push_back(make("streamcluster", K::ComputeIntensive, S::Pipeline, 1.3, 0.06, 0.0011, 0.72, 0.18, 70.0, 0.020, 16));
  v.push_back(make("blackscholes", K::ComputeIntensive, S::Tree, 0.8, 0.02, 0.0005, 0.92, 0.07, 16.0, 0.008, 32));
  v.push_back(make("bodytrack", K::ComputeIntensive, S::Random, 1.6, 0.07, 0.0012, 0.74, 0.18, 50.0, 0.016, 16));
  v.push_back(make("radiosity", K::ComputeIntensive, S::Tree, 2.2, 0.05, 0.0009, 0.80, 0.14, 40.0, 0.014, 32));
  return v;
}

}  // namespace

const std::vector<BenchmarkProfile>& benchmark_suite() {
  static const std::vector<BenchmarkProfile> suite = make_suite();
  return suite;
}

std::vector<const BenchmarkProfile*> benchmarks_of_kind(WorkloadKind kind) {
  std::vector<const BenchmarkProfile*> out;
  for (const auto& b : benchmark_suite()) {
    if (kind == WorkloadKind::Both || b.kind == kind ||
        b.kind == WorkloadKind::Both) {
      out.push_back(&b);
    }
  }
  return out;
}

const BenchmarkProfile& benchmark_by_name(const std::string& name) {
  for (const auto& b : benchmark_suite()) {
    if (b.name == name) return b;
  }
  PARM_CHECK(false, "unknown benchmark: " + name);
}

}  // namespace parm::appmodel
