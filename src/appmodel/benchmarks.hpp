// The 13-benchmark suite of the paper (SPLASH-2 + PARSEC), as synthetic
// profiles.
//
// The paper profiles these applications offline with gem5/McPAT; here each
// benchmark is a parameterized workload model whose constants are chosen to
// match the paper's categorization (section 5.1):
//   communication-intensive: cholesky, fft, radix, raytrace, dedup,
//                            canneal, vips
//   compute-intensive:       swaptions, fluidanimate, streamcluster,
//                            blackscholes, radix, bodytrack, radiosity
// (radix has properties of both groups and appears in both.)
#pragma once

#include <string>
#include <vector>

#include "appmodel/task_graph.hpp"

namespace parm::appmodel {

/// Workload category used to assemble the paper's sequences.
enum class WorkloadKind { ComputeIntensive, CommunicationIntensive, Both };

const char* to_string(WorkloadKind k);

/// Static characterization of one benchmark (the "offline profile" inputs).
struct BenchmarkProfile {
  std::string name;
  WorkloadKind kind = WorkloadKind::ComputeIntensive;
  GraphShape shape = GraphShape::Random;

  /// Total parallelizable work in reference-clock gigacycles (1 GHz).
  double parallel_work_gcycles = 1.0;
  /// Amdahl serial fraction of the work.
  double serial_fraction = 0.05;
  /// Per-thread synchronization overhead: each DoP step adds
  /// sync_overhead × parallel work to the critical path.
  double sync_overhead = 0.001;

  /// Mean core switching-activity factor of the tasks ([0, 1]).
  double base_activity = 0.8;
  /// Half-width of the per-task activity spread around the mean.
  double activity_spread = 0.1;

  /// Flits injected into the NoC per kilocycle of a task's compute work
  /// (drives both APG edge weights and the runtime NoC injection rate).
  /// ~160-280 for communication-intensive apps, ~16-70 for compute ones.
  double comm_intensity = 40.0;

  /// Fraction added to the WCET estimate per average hop of task
  /// separation (offline-profiled communication stall sensitivity).
  double comm_stall_sensitivity = 0.02;

  /// Largest useful thread count for this benchmark (multiple of 4, up to
  /// 32); beyond it synchronization overheads win (paper section 5.1).
  int max_dop = 32;
};

/// The full 13-benchmark suite in a stable order.
const std::vector<BenchmarkProfile>& benchmark_suite();

/// Benchmarks belonging to a sequence category (paper section 5.1).
/// `Both` returns the whole suite. Radix is included in both groups.
std::vector<const BenchmarkProfile*> benchmarks_of_kind(WorkloadKind kind);

/// Finds a benchmark by name; throws CheckError if absent.
const BenchmarkProfile& benchmark_by_name(const std::string& name);

}  // namespace parm::appmodel
