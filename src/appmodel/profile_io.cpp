#include "appmodel/profile_io.hpp"

#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace parm::appmodel {

std::string to_text(const ApplicationProfile& profile) {
  std::ostringstream os;
  os << "parm-profile v1\n";
  os << "benchmark " << profile.benchmark().name << "\n";
  os << std::setprecision(17);
  for (int dop : profile.dops()) {
    const DopVariant& v = profile.variant(dop);
    os << "variant " << v.dop << " " << v.critical_path_cycles << "\n";
    for (std::size_t t = 0; t < v.tasks.size(); ++t) {
      os << "task " << t << " " << v.tasks[t].work_cycles << " "
         << v.tasks[t].activity << "\n";
    }
    for (const auto& e : v.graph.edges()) {
      os << "edge " << e.src << " " << e.dst << " " << e.volume_flits
         << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

ApplicationProfile from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;

  PARM_CHECK(static_cast<bool>(std::getline(is, line)) &&
                 line == "parm-profile v1",
             "missing/unsupported parm-profile header");
  PARM_CHECK(static_cast<bool>(std::getline(is, line)) &&
                 line.rfind("benchmark ", 0) == 0,
             "missing benchmark line");
  const BenchmarkProfile& bench =
      benchmark_by_name(line.substr(std::string("benchmark ").size()));

  std::vector<DopVariant> variants;
  // In-progress variant state.
  bool open = false;
  int dop = 0;
  double critical = 0.0;
  std::vector<TaskProfile> tasks;
  std::vector<ApgEdge> edges;
  bool saw_end = false;

  auto flush = [&] {
    if (!open) return;
    DopVariant v;
    v.dop = dop;
    v.critical_path_cycles = critical;
    v.tasks = std::move(tasks);
    v.graph = TaskGraph(static_cast<TaskIndex>(dop), std::move(edges));
    variants.push_back(std::move(v));
    tasks = {};
    edges = {};
    open = false;
  };

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "variant") {
      flush();
      PARM_CHECK(static_cast<bool>(ls >> dop >> critical),
                 "malformed variant line: " + line);
      open = true;
    } else if (kind == "task") {
      PARM_CHECK(open, "task line outside a variant");
      std::size_t index = 0;
      TaskProfile t;
      PARM_CHECK(
          static_cast<bool>(ls >> index >> t.work_cycles >> t.activity),
          "malformed task line: " + line);
      PARM_CHECK(index == tasks.size(), "task indices must be dense");
      PARM_CHECK(t.activity >= 0.0 && t.activity <= 1.0,
                 "task activity out of range");
      tasks.push_back(t);
    } else if (kind == "edge") {
      PARM_CHECK(open, "edge line outside a variant");
      ApgEdge e;
      PARM_CHECK(
          static_cast<bool>(ls >> e.src >> e.dst >> e.volume_flits),
          "malformed edge line: " + line);
      edges.push_back(e);
    } else if (kind == "end") {
      flush();
      saw_end = true;
      break;
    } else {
      PARM_CHECK(false, "unknown profile line: " + line);
    }
  }
  PARM_CHECK(saw_end, "profile not terminated with 'end'");
  return ApplicationProfile::from_parts(bench, std::move(variants));
}

}  // namespace parm::appmodel
