// Offline-profile serialization.
//
// In the paper the application profiles are produced by a separate
// gem5/McPAT profiling campaign and handed to the runtime manager as
// data. This module gives the profile that artifact form: a plain-text,
// line-oriented format that is diff-able, versioned, and stable across
// platforms, so profiles can be generated once and shipped with a
// deployment.
//
//   parm-profile v1
//   benchmark <name>
//   variant <dop> <critical_path_cycles>
//   task <index> <work_cycles> <activity>
//   edge <src> <dst> <volume_flits>
//   end
//
// `from_text` validates structure, benchmark existence, and graph
// well-formedness (via TaskGraph's own checks).
#pragma once

#include <iosfwd>
#include <string>

#include "appmodel/application.hpp"

namespace parm::appmodel {

/// Renders a profile in the parm-profile v1 text format.
std::string to_text(const ApplicationProfile& profile);

/// Parses a parm-profile v1 document. Throws CheckError on malformed
/// input, unknown benchmarks, or invalid graphs.
ApplicationProfile from_text(const std::string& text);

}  // namespace parm::appmodel
