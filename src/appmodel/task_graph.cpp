#include "appmodel/task_graph.hpp"

#include <algorithm>
#include <functional>

namespace parm::appmodel {

const char* to_string(GraphShape s) {
  switch (s) {
    case GraphShape::Pipeline:
      return "pipeline";
    case GraphShape::Butterfly:
      return "butterfly";
    case GraphShape::Tree:
      return "tree";
    case GraphShape::Random:
      return "random";
  }
  return "?";
}

TaskGraph::TaskGraph(TaskIndex task_count, std::vector<ApgEdge> edges)
    : task_count_(task_count), edges_(std::move(edges)) {
  PARM_CHECK(task_count >= 1, "graph needs at least one task");
  PARM_CHECK(validate(), "invalid task graph (ids/cycles/volumes)");
}

double TaskGraph::total_volume() const {
  double acc = 0.0;
  for (const auto& e : edges_) acc += e.volume_flits;
  return acc;
}

std::vector<ApgEdge> TaskGraph::edges_by_decreasing_volume() const {
  std::vector<ApgEdge> sorted = edges_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ApgEdge& a, const ApgEdge& b) {
                     return a.volume_flits > b.volume_flits;
                   });
  return sorted;
}

double TaskGraph::incident_volume(TaskIndex t) const {
  double acc = 0.0;
  for (const auto& e : edges_) {
    if (e.src == t || e.dst == t) acc += e.volume_flits;
  }
  return acc;
}

bool TaskGraph::validate() const {
  // Range + self-loop + volume checks.
  for (const auto& e : edges_) {
    if (e.src < 0 || e.src >= task_count_) return false;
    if (e.dst < 0 || e.dst >= task_count_) return false;
    if (e.src == e.dst) return false;
    if (e.volume_flits < 0.0) return false;
  }
  // Cycle check via iterative DFS coloring (generators emit src < dst, but
  // hand-built graphs may not).
  enum class Color : std::uint8_t { White, Gray, Black };
  std::vector<std::vector<TaskIndex>> adj(
      static_cast<std::size_t>(task_count_));
  for (const auto& e : edges_)
    adj[static_cast<std::size_t>(e.src)].push_back(e.dst);
  std::vector<Color> color(static_cast<std::size_t>(task_count_),
                           Color::White);
  for (TaskIndex start = 0; start < task_count_; ++start) {
    if (color[static_cast<std::size_t>(start)] != Color::White) continue;
    // Stack of (node, next-child-index).
    std::vector<std::pair<TaskIndex, std::size_t>> stack{{start, 0}};
    color[static_cast<std::size_t>(start)] = Color::Gray;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto& children = adj[static_cast<std::size_t>(node)];
      if (idx < children.size()) {
        const TaskIndex child = children[idx++];
        Color& c = color[static_cast<std::size_t>(child)];
        if (c == Color::Gray) return false;  // back edge → cycle
        if (c == Color::White) {
          c = Color::Gray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[static_cast<std::size_t>(node)] = Color::Black;
        stack.pop_back();
      }
    }
  }
  return true;
}

TaskGraph TaskGraph::generate(GraphShape shape, TaskIndex tasks,
                              double volume_scale, Rng& rng) {
  PARM_CHECK(tasks >= 2, "generated graphs need at least two tasks");
  PARM_CHECK(volume_scale > 0.0, "volume scale must be positive");
  std::vector<ApgEdge> edges;
  auto vol = [&] { return volume_scale * rng.uniform(0.5, 1.5); };

  switch (shape) {
    case GraphShape::Pipeline: {
      for (TaskIndex i = 0; i + 1 < tasks; ++i) {
        edges.push_back({i, i + 1, vol()});
      }
      // A few skip connections to make edge weights non-uniform.
      for (TaskIndex i = 0; i + 2 < tasks; i += 3) {
        edges.push_back({i, i + 2, 0.3 * vol()});
      }
      break;
    }
    case GraphShape::Butterfly: {
      // log2(tasks) stages of stride exchanges (FFT-style); partner pairs
      // only kept with src < dst to stay acyclic.
      for (TaskIndex stride = 1; stride < tasks; stride *= 2) {
        for (TaskIndex i = 0; i < tasks; ++i) {
          const TaskIndex partner = i ^ stride;
          if (partner > i && partner < tasks) {
            edges.push_back({i, partner, vol()});
          }
        }
      }
      break;
    }
    case GraphShape::Tree: {
      for (TaskIndex i = 1; i < tasks; ++i) {
        const TaskIndex parent = (i - 1) / 2;
        edges.push_back({parent, i, vol()});
      }
      break;
    }
    case GraphShape::Random: {
      // Connected backbone + sparse extra edges.
      for (TaskIndex i = 1; i < tasks; ++i) {
        const TaskIndex src =
            static_cast<TaskIndex>(rng.uniform_int(0, i - 1));
        edges.push_back({src, i, vol()});
      }
      const double p_extra = 0.15;
      for (TaskIndex i = 0; i < tasks; ++i) {
        for (TaskIndex j = static_cast<TaskIndex>(i + 2); j < tasks; ++j) {
          if (rng.bernoulli(p_extra)) edges.push_back({i, j, 0.5 * vol()});
        }
      }
      break;
    }
  }
  return TaskGraph(tasks, std::move(edges));
}

}  // namespace parm::appmodel
