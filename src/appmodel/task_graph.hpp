// Application graph (APG): a directed acyclic graph whose vertices are the
// threads/tasks of an application and whose edges carry the communication
// volume between them (paper section 3.2).
//
// Task ids are dense [0, task_count). Generators only produce edges with
// src < dst, which guarantees acyclicity; `validate()` re-checks the DAG
// property for graphs built by hand.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace parm::appmodel {

using TaskIndex = std::int32_t;

/// One communication edge of the APG.
struct ApgEdge {
  TaskIndex src = 0;
  TaskIndex dst = 0;
  double volume_flits = 0.0;  ///< Total flits exchanged over the app's life.
};

/// Structural shape of a generated APG, loosely matching how the paper's
/// benchmarks communicate.
enum class GraphShape {
  Pipeline,   ///< chain with stage-to-stage streams (streamcluster, dedup)
  Butterfly,  ///< FFT-style log-stage exchange
  Tree,       ///< reduction/scatter tree (radix, radiosity)
  Random,     ///< sparse random DAG (canneal, raytrace)
};

const char* to_string(GraphShape s);

class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(TaskIndex task_count, std::vector<ApgEdge> edges);

  TaskIndex task_count() const { return task_count_; }
  const std::vector<ApgEdge>& edges() const { return edges_; }

  /// Sum of all edge volumes (flits).
  double total_volume() const;

  /// Edges sorted by decreasing volume — the order Algorithm 2 consumes.
  std::vector<ApgEdge> edges_by_decreasing_volume() const;

  /// Communication volume incident to a task (in + out).
  double incident_volume(TaskIndex t) const;

  /// True if every edge satisfies src < dst (generator invariant) or, more
  /// generally, if the graph is acyclic and all ids are in range.
  bool validate() const;

  /// Generates an APG of `tasks` vertices with the given shape. Edge
  /// volumes are `volume_scale` flits modulated per-edge by the RNG.
  static TaskGraph generate(GraphShape shape, TaskIndex tasks,
                            double volume_scale, Rng& rng);

 private:
  TaskIndex task_count_ = 0;
  std::vector<ApgEdge> edges_;
};

}  // namespace parm::appmodel
