#include "appmodel/workload.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "power/technology.hpp"

namespace parm::appmodel {

const char* to_string(SequenceKind k) {
  switch (k) {
    case SequenceKind::Compute:
      return "compute-intensive";
    case SequenceKind::Communication:
      return "communication-intensive";
    case SequenceKind::Mixed:
      return "mixed";
  }
  return "?";
}

std::vector<AppArrival> make_sequence(const SequenceConfig& cfg) {
  PARM_CHECK(cfg.app_count > 0, "sequence needs at least one app");
  PARM_CHECK(cfg.inter_arrival_s > 0.0, "arrival period must be positive");
  PARM_CHECK(cfg.deadline_slack_min > 1.0 &&
                 cfg.deadline_slack_max >= cfg.deadline_slack_min,
             "deadline slack range invalid");

  Rng rng(cfg.seed);
  std::vector<const BenchmarkProfile*> pool;
  switch (cfg.kind) {
    case SequenceKind::Compute:
      pool = benchmarks_of_kind(WorkloadKind::ComputeIntensive);
      break;
    case SequenceKind::Communication:
      pool = benchmarks_of_kind(WorkloadKind::CommunicationIntensive);
      break;
    case SequenceKind::Mixed:
      pool = benchmarks_of_kind(WorkloadKind::Both);
      break;
  }
  PARM_CHECK(!pool.empty(), "empty benchmark pool");

  // Reference service level for deadlines: mid Vdd, mid DoP at 7 nm.
  const power::VoltageFrequencyModel vf(power::technology_node(7));
  constexpr double kRefVdd = 0.6;
  constexpr int kRefDop = 16;

  std::vector<AppArrival> seq;
  seq.reserve(static_cast<std::size_t>(cfg.app_count));
  for (int i = 0; i < cfg.app_count; ++i) {
    AppArrival a;
    a.id = i;
    a.bench = pool[rng.pick_index(pool.size())];
    a.profile_seed = rng.next_u64();
    a.profile =
        std::make_shared<ApplicationProfile>(*a.bench, a.profile_seed);
    a.arrival_s = static_cast<double>(i) * cfg.inter_arrival_s;
    const double slack =
        rng.uniform(cfg.deadline_slack_min, cfg.deadline_slack_max);
    const int ref_dop = std::min(kRefDop, a.bench->max_dop);
    a.deadline_s =
        a.arrival_s + slack * a.profile->wcet_seconds(kRefVdd, ref_dop, vf);
    seq.push_back(std::move(a));
  }
  return seq;
}

}  // namespace parm::appmodel
