// Workload-sequence generation (paper section 5.1).
//
// A sequence is up to 20 applications picked randomly from one of the two
// benchmark groups (or both, for "mixed"), arriving at a fixed
// inter-application period (0.2 / 0.1 / 0.05 s in the paper). Each arrival
// carries an absolute performance deadline derived from a reference WCET
// (0.6 V, DoP 16) times a random slack factor, so deadlines are demanding
// but feasible for an adaptive framework.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "appmodel/application.hpp"
#include "appmodel/benchmarks.hpp"

namespace parm::appmodel {

/// Category of a generated sequence.
enum class SequenceKind { Compute, Communication, Mixed };

const char* to_string(SequenceKind k);

/// One application arrival in a sequence.
struct AppArrival {
  int id = 0;                             ///< Position in the sequence.
  const BenchmarkProfile* bench = nullptr;
  std::shared_ptr<const ApplicationProfile> profile;  ///< Offline profile.
  std::uint64_t profile_seed = 0;         ///< Seed the profile came from
                                          ///< (for serialization).
  double arrival_s = 0.0;                 ///< Absolute arrival time.
  double deadline_s = 0.0;                ///< Absolute completion deadline.
};

struct SequenceConfig {
  SequenceKind kind = SequenceKind::Mixed;
  int app_count = 20;
  double inter_arrival_s = 0.1;
  /// Deadline = arrival + slack × WCET(0.6 V, DoP 16); slack is drawn
  /// uniformly from this range (covers queueing time too).
  double deadline_slack_min = 2.8;
  double deadline_slack_max = 4.2;
  std::uint64_t seed = 1;
};

/// Generates a deterministic sequence for the given configuration.
std::vector<AppArrival> make_sequence(const SequenceConfig& cfg);

}  // namespace parm::appmodel
