#include "appmodel/workload_io.hpp"

#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace parm::appmodel {

std::string workload_to_text(const std::vector<AppArrival>& sequence) {
  std::ostringstream os;
  os << "parm-workload v1\n";
  os << std::setprecision(17);
  for (const AppArrival& a : sequence) {
    PARM_CHECK(a.bench != nullptr, "arrival without a benchmark");
    os << "app " << a.id << " " << a.bench->name << " " << a.profile_seed
       << " " << a.arrival_s << " " << a.deadline_s << "\n";
  }
  os << "end\n";
  return os.str();
}

std::vector<AppArrival> workload_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  PARM_CHECK(static_cast<bool>(std::getline(is, line)) &&
                 line == "parm-workload v1",
             "missing/unsupported parm-workload header");

  std::vector<AppArrival> out;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "end") {
      saw_end = true;
      break;
    }
    PARM_CHECK(kind == "app", "unknown workload line: " + line);
    AppArrival a;
    std::string bench_name;
    PARM_CHECK(static_cast<bool>(ls >> a.id >> bench_name >>
                                 a.profile_seed >> a.arrival_s >>
                                 a.deadline_s),
               "malformed app line: " + line);
    PARM_CHECK(a.deadline_s > a.arrival_s,
               "deadline must lie after arrival: " + line);
    a.bench = &benchmark_by_name(bench_name);
    a.profile =
        std::make_shared<ApplicationProfile>(*a.bench, a.profile_seed);
    out.push_back(std::move(a));
  }
  PARM_CHECK(saw_end, "workload not terminated with 'end'");
  for (std::size_t i = 1; i < out.size(); ++i) {
    PARM_CHECK(out[i].arrival_s >= out[i - 1].arrival_s,
               "arrivals must be sorted by time");
  }
  return out;
}

}  // namespace parm::appmodel
