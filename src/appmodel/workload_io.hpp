// Workload-schedule serialization (parm-workload v1 text format).
//
// A serialized sequence pins the exact experiment input — benchmark mix,
// arrival instants, deadlines, and the per-application profile seeds —
// so a run can be archived, shared, and replayed bit-for-bit:
//
//   parm-workload v1
//   app <id> <benchmark> <profile_seed> <arrival_s> <deadline_s>
//   end
//
// Profiles are reconstructed deterministically from (benchmark, seed) on
// load, so files stay small regardless of profile size.
#pragma once

#include <string>
#include <vector>

#include "appmodel/workload.hpp"

namespace parm::appmodel {

/// Renders a sequence in the parm-workload v1 format.
std::string workload_to_text(const std::vector<AppArrival>& sequence);

/// Parses a parm-workload v1 document, rebuilding every profile. Throws
/// CheckError on malformed input, unknown benchmarks, or unsorted
/// arrivals.
std::vector<AppArrival> workload_from_text(const std::string& text);

}  // namespace parm::appmodel
