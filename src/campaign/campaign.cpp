#include "campaign/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace parm::campaign {

namespace {

/// Normal quantile for the supported two-sided confidence levels. Table-
/// derived rather than computed: campaigns are verification artifacts, so
/// the z value itself must be reproducible to the last bit.
double z_for_confidence(double confidence) {
  const auto near = [confidence](double level) {
    return std::fabs(confidence - level) < 1e-12;
  };
  if (near(0.90)) return 1.6448536269514722;
  if (near(0.95)) return 1.959963984540054;
  if (near(0.99)) return 2.5758293035489004;
  PARM_CHECK(false, "campaign confidence must be 0.90, 0.95, or 0.99");
  return 0.0;
}

/// Shortest round-trippable decimal rendering (%.17g): the same double
/// always serializes to the same bytes, which is what makes the report
/// diffable across repeat campaigns.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_interval(std::ostream& os, const Interval& iv) {
  os << "{\"lower\":" << fmt_double(iv.lower)
     << ",\"upper\":" << fmt_double(iv.upper) << '}';
}

}  // namespace

void CampaignConfig::validate() const {
  fleet.validate();
  PARM_CHECK(runs >= 1, "CampaignConfig: runs must be >= 1");
  z_for_confidence(confidence);  // throws on an unsupported level
}

CampaignReport run_campaign(const CampaignConfig& cfg,
                            const std::vector<appmodel::AppArrival>& arrivals,
                            const std::vector<PropertySpec>& properties) {
  CampaignConfig campaign_cfg = cfg;
  campaign_cfg.fleet.dispatch = "replicate";
  campaign_cfg.validate();
  PARM_CHECK(!properties.empty(),
             "run_campaign: at least one property is required");
  for (const PropertySpec& p : properties) {
    PARM_CHECK(static_cast<bool>(p.failed),
               "run_campaign: property '" + p.name + "' has no predicate");
    PARM_CHECK(p.max_failure_probability >= 0.0 &&
                   p.max_failure_probability <= 1.0,
               "run_campaign: property '" + p.name +
                   "' bound must be in [0, 1]");
  }

  const double z = z_for_confidence(campaign_cfg.confidence);
  CampaignReport report;
  report.first_seed = campaign_cfg.first_seed;
  report.runs = campaign_cfg.runs;
  report.confidence = campaign_cfg.confidence;
  report.properties.resize(properties.size());
  for (std::size_t p = 0; p < properties.size(); ++p) {
    PropertyResult& pr = report.properties[p];
    pr.name = properties[p].name;
    pr.description = properties[p].description;
    pr.runs = static_cast<std::uint64_t>(campaign_cfg.runs);
    pr.max_failure_probability = properties[p].max_failure_probability;
  }

  double makespan_sum = 0.0;
  const int width = campaign_cfg.fleet.chip_count;
  for (int base = 0; base < campaign_cfg.runs; base += width) {
    const int batch = std::min(width, campaign_cfg.runs - base);
    fleet::FleetConfig fcfg = campaign_cfg.fleet;
    fcfg.chip_count = batch;
    fcfg.chip.seed =
        campaign_cfg.first_seed + static_cast<std::uint64_t>(base);
    fleet::FleetSimulator fleet_sim(std::move(fcfg), arrivals);
    const fleet::FleetResult out = fleet_sim.run();

    for (int c = 0; c < batch; ++c) {
      const sim::SimResult& r = out.chips[static_cast<std::size_t>(c)];
      const std::uint64_t seed =
          campaign_cfg.first_seed + static_cast<std::uint64_t>(base + c);
      for (std::size_t p = 0; p < properties.size(); ++p) {
        if (!properties[p].failed(r)) continue;
        PropertyResult& pr = report.properties[p];
        ++pr.failures;
        if (pr.failing_seeds.size() < kMaxFailingSeeds) {
          pr.failing_seeds.push_back(seed);
        }
      }
      report.completed_apps += static_cast<std::uint64_t>(r.completed_count);
      report.dropped_apps += static_cast<std::uint64_t>(r.dropped_count);
      for (const sim::AppOutcome& o : r.apps) {
        if (o.missed_deadline) ++report.deadline_miss_apps;
      }
      report.total_ve_count += r.total_ve_count;
      report.deadlock_windows += r.deadlock_windows;
      report.fault_dropped_flits += r.fault_dropped_flits;
      report.corrupt_packets += r.corrupt_packets;
      report.retransmitted_packets += r.retransmitted_packets;
      report.link_fault_events += r.link_fault_events;
      report.router_fault_events += r.router_fault_events;
      report.sensor_dropout_epochs += r.sensor_dropout_epochs;
      report.fault_task_remaps += r.fault_task_remaps;
      report.fault_stranded_tasks += r.fault_stranded_tasks;
      report.min_delivery_ratio =
          std::min(report.min_delivery_ratio, r.min_delivery_ratio);
      makespan_sum += r.makespan_s;
    }
    report.recorder_dropped_events +=
        fleet_sim.metrics().counter_value("recorder.events_dropped");
  }
  report.avg_makespan_s = makespan_sum / campaign_cfg.runs;

  for (PropertyResult& pr : report.properties) {
    pr.failure_rate =
        static_cast<double>(pr.failures) / static_cast<double>(pr.runs);
    pr.wilson = wilson_interval(pr.failures, pr.runs, z);
    pr.clopper_pearson =
        clopper_pearson_interval(pr.failures, pr.runs,
                                 campaign_cfg.confidence);
    // A bound of 0 means "zero observed failures": the Wilson upper bound
    // is strictly positive at finite n, so comparing against it would make
    // the criterion unsatisfiable.
    pr.pass = pr.max_failure_probability == 0.0
                  ? pr.failures == 0
                  : pr.wilson.upper <= pr.max_failure_probability;
    report.all_pass = report.all_pass && pr.pass;
  }
  return report;
}

std::string report_to_json(const CampaignReport& report) {
  std::ostringstream os;
  os << "{\"campaign\":{\"first_seed\":" << report.first_seed
     << ",\"runs\":" << report.runs
     << ",\"confidence\":" << fmt_double(report.confidence)
     << ",\"all_pass\":" << (report.all_pass ? "true" : "false") << '}';
  os << ",\"properties\":[";
  for (std::size_t p = 0; p < report.properties.size(); ++p) {
    const PropertyResult& pr = report.properties[p];
    if (p > 0) os << ',';
    os << "{\"name\":";
    json_escape(os, pr.name);
    os << ",\"description\":";
    json_escape(os, pr.description);
    os << ",\"runs\":" << pr.runs << ",\"failures\":" << pr.failures
       << ",\"failure_rate\":" << fmt_double(pr.failure_rate)
       << ",\"wilson\":";
    write_interval(os, pr.wilson);
    os << ",\"clopper_pearson\":";
    write_interval(os, pr.clopper_pearson);
    os << ",\"max_failure_probability\":"
       << fmt_double(pr.max_failure_probability)
       << ",\"pass\":" << (pr.pass ? "true" : "false")
       << ",\"failing_seeds\":[";
    for (std::size_t s = 0; s < pr.failing_seeds.size(); ++s) {
      if (s > 0) os << ',';
      os << pr.failing_seeds[s];
    }
    os << "]}";
  }
  os << ']';
  os << ",\"aggregates\":{"
     << "\"completed_apps\":" << report.completed_apps
     << ",\"dropped_apps\":" << report.dropped_apps
     << ",\"deadline_miss_apps\":" << report.deadline_miss_apps
     << ",\"total_ve_count\":" << report.total_ve_count
     << ",\"deadlock_windows\":" << report.deadlock_windows
     << ",\"fault_dropped_flits\":" << report.fault_dropped_flits
     << ",\"corrupt_packets\":" << report.corrupt_packets
     << ",\"retransmitted_packets\":" << report.retransmitted_packets
     << ",\"link_fault_events\":" << report.link_fault_events
     << ",\"router_fault_events\":" << report.router_fault_events
     << ",\"sensor_dropout_epochs\":" << report.sensor_dropout_epochs
     << ",\"fault_task_remaps\":" << report.fault_task_remaps
     << ",\"fault_stranded_tasks\":" << report.fault_stranded_tasks
     << ",\"recorder_dropped_events\":" << report.recorder_dropped_events
     << ",\"min_delivery_ratio\":" << fmt_double(report.min_delivery_ratio)
     << ",\"avg_makespan_s\":" << fmt_double(report.avg_makespan_s) << "}}";
  return os.str();
}

std::string report_to_text(const CampaignReport& report) {
  std::ostringstream os;
  os << "Monte Carlo campaign: " << report.runs << " runs, seeds "
     << report.first_seed << ".."
     << report.first_seed + static_cast<std::uint64_t>(report.runs) - 1
     << ", confidence " << fmt_double(report.confidence * 100.0) << "%\n";
  for (const PropertyResult& pr : report.properties) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  [%s] %-24s failures %llu/%llu  rate %.5f  "
                  "wilson [%.5f, %.5f]  exact [%.5f, %.5f]  bound %.5f\n",
                  pr.pass ? "PASS" : "FAIL", pr.name.c_str(),
                  static_cast<unsigned long long>(pr.failures),
                  static_cast<unsigned long long>(pr.runs), pr.failure_rate,
                  pr.wilson.lower, pr.wilson.upper, pr.clopper_pearson.lower,
                  pr.clopper_pearson.upper, pr.max_failure_probability);
    os << line;
    if (!pr.failing_seeds.empty()) {
      os << "         failing seeds:";
      for (const std::uint64_t s : pr.failing_seeds) os << ' ' << s;
      if (pr.failures > pr.failing_seeds.size()) os << " ...";
      os << '\n';
    }
  }
  os << "  aggregates: completed " << report.completed_apps << ", dropped "
     << report.dropped_apps << ", deadline misses "
     << report.deadline_miss_apps << ", VEs " << report.total_ve_count
     << ", deadlock windows " << report.deadlock_windows << '\n';
  os << "  faults: link events " << report.link_fault_events
     << ", router events " << report.router_fault_events
     << ", dropped flits " << report.fault_dropped_flits
     << ", corrupt packets " << report.corrupt_packets
     << ", retransmits " << report.retransmitted_packets
     << ", sensor dropouts " << report.sensor_dropout_epochs
     << ", remaps " << report.fault_task_remaps << ", stranded "
     << report.fault_stranded_tasks << '\n';
  os << "  min delivery ratio " << fmt_double(report.min_delivery_ratio)
     << ", avg makespan " << fmt_double(report.avg_makespan_s)
     << " s, recorder drops " << report.recorder_dropped_events << '\n';
  os << "VERDICT: " << (report.all_pass ? "PASS" : "FAIL") << '\n';
  return os.str();
}

PropertySpec deadline_miss_property(double max_failure_probability) {
  PropertySpec spec;
  spec.name = "deadline_miss";
  spec.description = "no admitted application misses its deadline";
  spec.max_failure_probability = max_failure_probability;
  spec.failed = [](const sim::SimResult& r) {
    for (const sim::AppOutcome& o : r.apps) {
      if (o.missed_deadline) return true;
    }
    return false;
  };
  return spec;
}

PropertySpec no_deadlock_property() {
  PropertySpec spec;
  spec.name = "no_deadlock";
  spec.description = "no measured NoC window deadlocks";
  spec.max_failure_probability = 0.0;
  spec.failed = [](const sim::SimResult& r) {
    return r.deadlock_windows > 0;
  };
  return spec;
}

PropertySpec delivery_floor_property(double floor,
                                     double max_failure_probability) {
  PropertySpec spec;
  spec.name = "delivery_floor";
  std::ostringstream desc;
  desc << "worst NoC window delivery ratio stays >= " << floor;
  spec.description = desc.str();
  spec.max_failure_probability = max_failure_probability;
  spec.failed = [floor](const sim::SimResult& r) {
    return r.min_delivery_ratio < floor;
  };
  return spec;
}

}  // namespace parm::campaign
