// Monte Carlo statistical verification campaigns.
//
// A campaign fans a single experiment (one SimConfig + one arrival
// stream) across many seeds, evaluates user-declared properties on every
// run, and reports each property's observed failure rate with Wilson and
// Clopper-Pearson 95 % confidence intervals — the statistical
// model-checking view of the PARM simulator: instead of proving "no
// deadline miss under faults", bound P(miss) with defensible coverage.
//
// Execution rides on fleet::FleetSimulator in "replicate" dispatch mode:
// each batch of `fleet.chip_count` seeds runs as one fleet whose chips
// all execute the full stream, differing only in seed. Batching in fixed
// seed order with pre-sized result slots makes the whole campaign — and
// its serialized report — byte-identical across repeats and across
// thread counts.
//
// The report has a deterministic JSON form (consumed by the CI
// campaign-smoke job; see tools/check_campaign_smoke.py) and a human
// text form (EXPERIMENTS.md walks one).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "appmodel/workload.hpp"
#include "campaign/stats.hpp"
#include "fleet/fleet_sim.hpp"
#include "sim/sim_config.hpp"

namespace parm::campaign {

/// One verifiable property, evaluated per run.
struct PropertySpec {
  std::string name;         ///< stable identifier ("no_deadlock", ...)
  std::string description;  ///< one-line human statement
  /// Returns true when the property was VIOLATED in this run.
  std::function<bool(const sim::SimResult&)> failed;
  /// Verdict criterion: the property passes when the Wilson upper bound
  /// on its failure probability is <= this. A bound of exactly 0 demands
  /// zero observed failures (the Wilson upper bound at k = 0 is z²/(n+z²),
  /// which is never 0 at finite n — an impossible bar by construction).
  double max_failure_probability = 1.0;
};

/// Per-property campaign outcome.
struct PropertyResult {
  std::string name;
  std::string description;
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  double failure_rate = 0.0;
  Interval wilson;           ///< Wilson score CI on P(failure)
  Interval clopper_pearson;  ///< exact CI on P(failure)
  double max_failure_probability = 1.0;
  bool pass = true;
  /// First seeds whose run violated the property (reproduction handles;
  /// capped at kMaxFailingSeeds).
  std::vector<std::uint64_t> failing_seeds;
};

inline constexpr std::size_t kMaxFailingSeeds = 32;

struct CampaignConfig {
  /// Per-run simulation template plus batching width/threads. The
  /// dispatch policy is forced to "replicate" and chip.seed is rewritten
  /// per batch; everything else is taken verbatim.
  fleet::FleetConfig fleet;
  /// Run i (0-based) executes with SimConfig::seed = first_seed + i.
  std::uint64_t first_seed = 1;
  int runs = 1000;
  /// Two-sided confidence level for both interval families. Supported:
  /// 0.90, 0.95, 0.99 (the matching normal quantile is table-derived).
  double confidence = 0.95;

  void validate() const;
};

/// Aggregated campaign outcome: verdicts plus run-level aggregates.
struct CampaignReport {
  std::uint64_t first_seed = 0;
  int runs = 0;
  double confidence = 0.95;
  std::vector<PropertyResult> properties;
  bool all_pass = true;

  // Fleet-wide aggregates over all runs (deterministic seed-order sums).
  std::uint64_t completed_apps = 0;
  std::uint64_t dropped_apps = 0;
  std::uint64_t deadline_miss_apps = 0;
  std::uint64_t total_ve_count = 0;
  std::uint64_t deadlock_windows = 0;
  std::uint64_t fault_dropped_flits = 0;
  std::uint64_t corrupt_packets = 0;
  std::uint64_t retransmitted_packets = 0;
  std::uint64_t link_fault_events = 0;
  std::uint64_t router_fault_events = 0;
  std::uint64_t sensor_dropout_epochs = 0;
  std::uint64_t fault_task_remaps = 0;
  std::uint64_t fault_stranded_tasks = 0;
  /// recorder.events_dropped summed over every run's registry (0 means
  /// no run lost a black-box event — a CI gate).
  std::uint64_t recorder_dropped_events = 0;
  double min_delivery_ratio = 1.0;
  double avg_makespan_s = 0.0;
};

/// Runs the campaign: `cfg.runs` seeds in batches of
/// `cfg.fleet.chip_count`, evaluating `properties` on every run.
/// Byte-identical across repeats with the same config and across
/// `cfg.fleet.threads` settings.
CampaignReport run_campaign(const CampaignConfig& cfg,
                            const std::vector<appmodel::AppArrival>& arrivals,
                            const std::vector<PropertySpec>& properties);

/// Deterministic JSON rendering (%.17g doubles, fixed key order) — the
/// machine verdict CI parses and archives.
std::string report_to_json(const CampaignReport& report);

/// Human-readable verdict table.
std::string report_to_text(const CampaignReport& report);

// --- Canonical property constructors (the paper-level questions) ---

/// Violated when any admitted app misses its deadline.
PropertySpec deadline_miss_property(double max_failure_probability);

/// Violated when any measured NoC window deadlocks. A bound of 0 makes
/// the verdict demand zero observed deadlocks.
PropertySpec no_deadlock_property();

/// Violated when the run's worst window delivery ratio falls below
/// `floor`.
PropertySpec delivery_floor_property(double floor,
                                     double max_failure_probability);

}  // namespace parm::campaign
