#include "campaign/stats.hpp"

#include <cmath>

#include "common/check.hpp"

namespace parm::campaign {

namespace {

/// Continued-fraction kernel of the incomplete beta (Lentz's algorithm,
/// cf. Numerical Recipes betacf). Converges quickly for
/// x < (a + 1) / (a + b + 2); the caller routes via the symmetry
/// I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Quantile of the Beta(a, b) distribution by bisection on the monotone
/// CDF. 200 halvings of [0,1] reach ~6e-61, far below double precision;
/// bisection is chosen over Newton for unconditional robustness.
double beta_quantile(double a, double b, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_incomplete_beta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  PARM_CHECK(a > 0.0 && b > 0.0, "incomplete beta needs a, b > 0");
  PARM_CHECK(x >= 0.0 && x <= 1.0, "incomplete beta needs x in [0, 1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

Interval wilson_interval(std::uint64_t k, std::uint64_t n, double z) {
  PARM_CHECK(k <= n, "wilson_interval: k must not exceed n");
  PARM_CHECK(z > 0.0, "wilson_interval: z must be positive");
  if (n == 0) return {0.0, 1.0};
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(k) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = p + z2 / (2.0 * nn);
  const double spread =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  Interval out;
  out.lower = (center - spread) / denom;
  out.upper = (center + spread) / denom;
  if (out.lower < 0.0) out.lower = 0.0;
  if (out.upper > 1.0) out.upper = 1.0;
  // Pin the exact edges: float residue must not report a nonzero lower
  // bound on a never-observed event (or the mirror image at k = n).
  if (k == 0) out.lower = 0.0;
  if (k == n) out.upper = 1.0;
  return out;
}

Interval clopper_pearson_interval(std::uint64_t k, std::uint64_t n,
                                  double confidence) {
  PARM_CHECK(k <= n, "clopper_pearson_interval: k must not exceed n");
  PARM_CHECK(confidence > 0.0 && confidence < 1.0,
             "clopper_pearson_interval: confidence must be in (0, 1)");
  if (n == 0) return {0.0, 1.0};
  const double alpha = 1.0 - confidence;
  const double kk = static_cast<double>(k);
  const double nn = static_cast<double>(n);
  Interval out;
  out.lower = k == 0 ? 0.0
                     : beta_quantile(kk, nn - kk + 1.0, alpha / 2.0);
  out.upper = k == n ? 1.0
                     : beta_quantile(kk + 1.0, nn - kk, 1.0 - alpha / 2.0);
  return out;
}

}  // namespace parm::campaign
