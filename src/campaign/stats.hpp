// Binomial confidence intervals for Monte Carlo verification campaigns.
//
// A campaign observes k property failures in n independent runs and needs
// a defensible bound on the true failure probability p. Two standard
// intervals are provided:
//
//  - Wilson score interval: the inversion of the normal-approximate score
//    test. Well-behaved at the extremes (never leaves [0,1], nonzero
//    upper bound at k = 0) and the usual choice for CI dashboards.
//  - Clopper-Pearson "exact" interval: inverts the binomial CDF via the
//    regularized incomplete beta function. Conservative (coverage >= the
//    nominal level), the usual choice for certification-style claims.
//
// Both are deterministic, closed-form (plus a bisection for the beta
// quantile), and dependency-free — verifiable against published tables
// (tests/campaign_test.cpp pins several).
#pragma once

#include <cstdint>

namespace parm::campaign {

/// A two-sided confidence interval on a probability.
struct Interval {
  double lower = 0.0;
  double upper = 1.0;
};

/// Wilson score interval for k successes in n trials at normal quantile
/// `z` (default: two-sided 95 %). n == 0 returns the vacuous [0, 1].
Interval wilson_interval(std::uint64_t k, std::uint64_t n,
                         double z = 1.959963984540054);

/// Clopper-Pearson exact interval for k successes in n trials at
/// two-sided confidence level `confidence` (default 95 %). n == 0 returns
/// the vacuous [0, 1].
Interval clopper_pearson_interval(std::uint64_t k, std::uint64_t n,
                                  double confidence = 0.95);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1] (continued-fraction evaluation; exposed for tests).
double regularized_incomplete_beta(double a, double b, double x);

}  // namespace parm::campaign
