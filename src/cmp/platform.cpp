#include "cmp/platform.hpp"

#include <algorithm>

namespace parm::cmp {

Platform::Platform(PlatformConfig cfg)
    : cfg_(std::move(cfg)),
      topo_(noc::Topology::make(cfg_.topology, cfg_.mesh_width,
                                cfg_.mesh_height)),
      tech_(power::technology_node(cfg_.technology_nm)),
      vf_(tech_),
      ledger_(cfg_.dark_silicon_budget_w) {
  PARM_CHECK(!cfg_.vdd_levels.empty(), "platform needs DVS levels");
  PARM_CHECK(std::is_sorted(cfg_.vdd_levels.begin(), cfg_.vdd_levels.end()),
             "vdd levels must be sorted increasing");
  for (double v : cfg_.vdd_levels) {
    PARM_CHECK(v > tech_.vth, "vdd level at or below threshold voltage");
  }
  tiles_.assign(static_cast<std::size_t>(topo_->tile_count()), {});
  domain_vdd_.assign(static_cast<std::size_t>(topo_->domain_count()), 0.0);
  domain_occupancy_.assign(static_cast<std::size_t>(topo_->domain_count()),
                           0);
  tile_psn_.assign(static_cast<std::size_t>(topo_->tile_count()), 0.0);
  tile_faulty_.assign(static_cast<std::size_t>(topo_->tile_count()), 0);
}

std::int32_t Platform::free_tile_count() const {
  std::int32_t n = 0;
  for (TileId t = 0; t < topo_->tile_count(); ++t) {
    if (tile_free(t)) ++n;
  }
  return n;
}

std::vector<TileId> Platform::free_tiles() const {
  std::vector<TileId> out;
  for (TileId t = 0; t < topo_->tile_count(); ++t) {
    if (tile_free(t)) out.push_back(t);
  }
  return out;
}

bool Platform::domain_free(DomainId d) const {
  return domain_occupancy_[static_cast<std::size_t>(d)] == 0;
}

bool Platform::domain_usable(DomainId d) const {
  if (!domain_free(d)) return false;
  for (const TileId t : topo_->domain_tiles(d)) {
    if (t == kInvalidTile) continue;  // short domain (irregular topology)
    if (tile_faulty_[static_cast<std::size_t>(t)]) return false;
  }
  return true;
}

std::vector<DomainId> Platform::free_domains() const {
  std::vector<DomainId> out;
  for (DomainId d = 0; d < topo_->domain_count(); ++d) {
    if (domain_usable(d)) out.push_back(d);
  }
  return out;
}

std::int32_t Platform::free_domain_count() const {
  std::int32_t n = 0;
  for (DomainId d = 0; d < topo_->domain_count(); ++d) {
    if (domain_usable(d)) ++n;
  }
  return n;
}

void Platform::set_tile_faulty(TileId t, bool faulty) {
  PARM_CHECK(t >= 0 && t < topo_->tile_count(), "faulty tile out of range");
  tile_faulty_[static_cast<std::size_t>(t)] = faulty ? 1 : 0;
}

std::int32_t Platform::faulty_tile_count() const {
  std::int32_t n = 0;
  for (const char f : tile_faulty_) {
    if (f) ++n;
  }
  return n;
}

std::optional<double> Platform::domain_vdd(DomainId d) const {
  const double v = domain_vdd_[static_cast<std::size_t>(d)];
  if (v <= 0.0) return std::nullopt;
  return v;
}

void Platform::occupy(AppInstanceId app,
                      const std::vector<Placement>& placements, double vdd) {
  PARM_CHECK(app != kNoApp, "invalid app instance id");
  PARM_CHECK(!placements.empty(), "empty placement list");
  PARM_CHECK(std::find(cfg_.vdd_levels.begin(), cfg_.vdd_levels.end(),
                       vdd) != cfg_.vdd_levels.end(),
             "vdd is not a permitted DVS level");
  // Validate before mutating (strong exception guarantee).
  for (const auto& p : placements) {
    PARM_CHECK(p.tile >= 0 && p.tile < topo_->tile_count(),
               "placement tile out of range");
    PARM_CHECK(tile_free(p.tile), "placement tile already occupied");
    const DomainId d = topo_->domain_of(p.tile);
    if (!domain_free(d)) {
      PARM_CHECK(domain_vdd_[static_cast<std::size_t>(d)] == vdd,
                 "domain already powered at a different vdd");
    }
  }
  // Reject duplicate tiles within the request.
  std::vector<TileId> seen;
  for (const auto& p : placements) {
    PARM_CHECK(std::find(seen.begin(), seen.end(), p.tile) == seen.end(),
               "duplicate tile in placement list");
    seen.push_back(p.tile);
  }
  for (const auto& p : placements) {
    auto& t = tiles_[static_cast<std::size_t>(p.tile)];
    t.app = app;
    t.task_index = p.task_index;
    t.activity = p.activity;
    const DomainId d = topo_->domain_of(p.tile);
    domain_vdd_[static_cast<std::size_t>(d)] = vdd;
    ++domain_occupancy_[static_cast<std::size_t>(d)];
  }
}

void Platform::release(AppInstanceId app) {
  for (TileId t = 0; t < topo_->tile_count(); ++t) {
    auto& tile = tiles_[static_cast<std::size_t>(t)];
    if (tile.app != app) continue;
    tile = TileAssignment{};
    const DomainId d = topo_->domain_of(t);
    if (--domain_occupancy_[static_cast<std::size_t>(d)] == 0) {
      domain_vdd_[static_cast<std::size_t>(d)] = 0.0;  // power-gate
    }
  }
}

void Platform::migrate(AppInstanceId app, TileId from, TileId to) {
  PARM_CHECK(from >= 0 && from < topo_->tile_count(), "bad source tile");
  PARM_CHECK(to >= 0 && to < topo_->tile_count(), "bad target tile");
  auto& src = tiles_[static_cast<std::size_t>(from)];
  PARM_CHECK(src.app == app, "source tile not owned by this app");
  PARM_CHECK(tile_free(to), "target tile occupied");

  const DomainId from_d = topo_->domain_of(from);
  const DomainId to_d = topo_->domain_of(to);
  const double vdd = domain_vdd_[static_cast<std::size_t>(from_d)];
  if (!domain_free(to_d)) {
    PARM_CHECK(domain_vdd_[static_cast<std::size_t>(to_d)] == vdd,
               "target domain powered at a different vdd");
  }

  tiles_[static_cast<std::size_t>(to)] = src;
  src = TileAssignment{};
  domain_vdd_[static_cast<std::size_t>(to_d)] = vdd;
  ++domain_occupancy_[static_cast<std::size_t>(to_d)];
  if (--domain_occupancy_[static_cast<std::size_t>(from_d)] == 0) {
    domain_vdd_[static_cast<std::size_t>(from_d)] = 0.0;  // power-gate
  }
}

std::vector<TileId> Platform::tiles_of(AppInstanceId app) const {
  std::vector<TileId> out;
  for (TileId t = 0; t < topo_->tile_count(); ++t) {
    if (tiles_[static_cast<std::size_t>(t)].app == app) out.push_back(t);
  }
  return out;
}

void Platform::set_tile_psn(std::vector<double> peak_percent) {
  PARM_CHECK(peak_percent.size() ==
                 static_cast<std::size_t>(topo_->tile_count()),
             "sensor vector size mismatch");
  tile_psn_ = std::move(peak_percent);
}

void Platform::save(snapshot::Writer& w) const {
  w.begin_section("PLAT");
  w.i32(topo_->tile_count());
  w.i32(topo_->domain_count());
  for (const TileAssignment& t : tiles_) {
    w.i64(t.app);
    w.i32(t.task_index);
    w.f64(t.activity);
  }
  w.vec_f64(domain_vdd_);
  w.u64(domain_occupancy_.size());
  for (std::int32_t o : domain_occupancy_) w.i32(o);
  w.vec_f64(tile_psn_);
  std::vector<bool> faulty(tile_faulty_.size());
  for (std::size_t i = 0; i < tile_faulty_.size(); ++i) {
    faulty[i] = tile_faulty_[i] != 0;
  }
  w.vec_bool(faulty);
  ledger_.save(w);
}

void Platform::restore(snapshot::Reader& r) {
  r.expect_section("PLAT");
  const std::int32_t tiles = r.i32();
  const std::int32_t domains = r.i32();
  if (tiles != topo_->tile_count() || domains != topo_->domain_count()) {
    throw snapshot::SnapshotError(
        "platform mesh mismatch: snapshot was taken on a " +
        std::to_string(tiles) + "-tile/" + std::to_string(domains) +
        "-domain mesh, this platform has " +
        std::to_string(topo_->tile_count()) + "/" +
        std::to_string(topo_->domain_count()));
  }
  for (TileAssignment& t : tiles_) {
    t.app = r.i64();
    t.task_index = r.i32();
    t.activity = r.f64();
  }
  domain_vdd_ = r.vec_f64();
  const std::uint64_t n_occ = r.count(4);
  if (domain_vdd_.size() != static_cast<std::size_t>(domains) ||
      n_occ != static_cast<std::uint64_t>(domains)) {
    throw snapshot::SnapshotError("platform domain vector size corrupt");
  }
  for (std::int32_t& o : domain_occupancy_) o = r.i32();
  tile_psn_ = r.vec_f64();
  if (tile_psn_.size() != static_cast<std::size_t>(tiles)) {
    throw snapshot::SnapshotError("platform sensor vector size corrupt");
  }
  const std::vector<bool> faulty = r.vec_bool();
  if (faulty.size() != static_cast<std::size_t>(tiles)) {
    throw snapshot::SnapshotError("platform fault mask size corrupt");
  }
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    tile_faulty_[i] = faulty[i] ? 1 : 0;
  }
  ledger_.restore(r);
}

}  // namespace parm::cmp
