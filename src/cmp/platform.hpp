// CMP platform model: a tile fabric (default: the paper's 10×6 mesh)
// partitioned into power-supply domains, per-domain DVS, tile occupancy,
// on-die PSN sensors, and the dark-silicon power ledger (paper sections
// 3.1, 3.3 and 5.1).
//
// The tile fabric is described by a noc::Topology, so the same platform
// bookkeeping runs on meshes, tori, concentrated meshes, butterflies,
// 3D meshes, and irregular graphs loaded from files. Mappers and phases
// consume the topology's domain/distance model through the forwarding
// accessors here; mesh() remains for grid-only call sites and throws on
// topologies without a grid view.
//
// The Platform owns bookkeeping only; execution dynamics live in
// parm::sim. Mappers and the runtime manager query it for free resources
// and commit admissions through occupy()/release().
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "noc/topology.hpp"
#include "power/chip_power.hpp"
#include "power/technology.hpp"
#include "power/vf_model.hpp"
#include "snapshot/serializer.hpp"

namespace parm::cmp {

/// Identifier of an admitted application instance (unique per run).
using AppInstanceId = std::int64_t;
inline constexpr AppInstanceId kNoApp = -1;

struct PlatformConfig {
  std::int32_t mesh_width = 10;
  std::int32_t mesh_height = 6;
  /// Topology spec ("mesh", "torus:8x8", "cmesh", "butterfly:4x4",
  /// "mesh3d:4x4x2", "file:<path>" — see noc::Topology::make). A bare
  /// grid kind defaults its dimensions to mesh_width × mesh_height.
  std::string topology = "mesh";
  int technology_nm = 7;
  /// Permissible DVS levels, increasing (paper: 0.4-0.8 V in 0.1 steps).
  std::vector<double> vdd_levels = {0.4, 0.5, 0.6, 0.7, 0.8};
  double dark_silicon_budget_w = 65.0;
  double ve_threshold_percent = 5.0;  ///< PSN above this is an emergency.
};

/// Per-tile occupancy record.
struct TileAssignment {
  AppInstanceId app = kNoApp;
  std::int32_t task_index = -1;
  double activity = 0.0;  ///< Switching-activity factor of the task.
};

class Platform {
 public:
  explicit Platform(PlatformConfig cfg);

  const PlatformConfig& config() const { return cfg_; }
  /// Grid view of the fabric; throws CheckError on topologies that have
  /// no 2D grid interpretation (mesh3d, file). Prefer the forwarding
  /// accessors below for topology-agnostic code.
  const MeshGeometry& mesh() const {
    const MeshGeometry* view = topo_->mesh_view();
    PARM_CHECK(view != nullptr,
               "topology " + topo_->spec() + " has no mesh view");
    return *view;
  }
  const noc::Topology& topology() const { return *topo_; }
  std::shared_ptr<const noc::Topology> topology_ptr() const { return topo_; }

  // --- Topology forwards (work on every fabric, grid or not) ---
  std::int32_t tile_count() const { return topo_->tile_count(); }
  std::int32_t domain_count() const { return topo_->domain_count(); }
  DomainId domain_of(TileId t) const { return topo_->domain_of(t); }
  /// Tiles of a domain, kInvalidTile-padded when the domain holds fewer
  /// than four tiles (irregular topologies).
  std::array<TileId, 4> domain_tiles(DomainId d) const {
    return topo_->domain_tiles(d);
  }
  int domain_capacity(DomainId d) const { return topo_->domain_capacity(d); }
  std::int32_t domain_distance(DomainId a, DomainId b) const {
    return topo_->domain_distance(a, b);
  }
  std::int32_t hop_distance(TileId a, TileId b) const {
    return topo_->hop_distance(a, b);
  }
  std::int32_t center_distance(TileId t) const {
    return topo_->center_distance(t);
  }

  const power::TechnologyNode& technology() const { return tech_; }
  const power::VoltageFrequencyModel& vf_model() const { return vf_; }

  power::PowerLedger& ledger() { return ledger_; }
  const power::PowerLedger& ledger() const { return ledger_; }

  // --- Occupancy ---
  /// Unoccupied AND not marked faulty: every mapper/migration free-resource
  /// query filters through this, which is what makes region selection
  /// fault-aware without any mapper changes.
  bool tile_free(TileId t) const {
    return tiles_[static_cast<std::size_t>(t)].app == kNoApp &&
           !tile_faulty_[static_cast<std::size_t>(t)];
  }
  const TileAssignment& tile(TileId t) const {
    return tiles_[static_cast<std::size_t>(t)];
  }
  std::int32_t free_tile_count() const;
  std::vector<TileId> free_tiles() const;

  /// True if no tile of the domain is occupied. Occupancy-only — a
  /// faulty domain with no app is still "free" here because occupy()'s
  /// vdd bookkeeping depends on it; use domain_usable() (or
  /// free_domains(), which filters) for placement decisions.
  bool domain_free(DomainId d) const;
  /// domain_free() AND no tile of the domain is faulty.
  bool domain_usable(DomainId d) const;
  /// Free *and usable* domains (fault-aware, see domain_free()).
  std::vector<DomainId> free_domains() const;
  std::int32_t free_domain_count() const;

  // --- Hardware faults (set by the fault phase; sticky until repaired) ---
  /// Marks a tile's core unusable: tile_free()/free_tiles()/free_domains()
  /// stop offering it, so mappers and migration route around it. Tasks
  /// already resident are the fault phase's problem (re-map or strand) —
  /// the platform only tracks the mask.
  void set_tile_faulty(TileId t, bool faulty);
  bool tile_faulty(TileId t) const {
    return tile_faulty_[static_cast<std::size_t>(t)];
  }
  std::int32_t faulty_tile_count() const;

  /// Supply voltage of a domain. Free domains are power-gated and report
  /// nullopt.
  std::optional<double> domain_vdd(DomainId d) const;

  /// One (task_index, tile, activity) placement of an admission.
  struct Placement {
    std::int32_t task_index = -1;
    TileId tile = kInvalidTile;
    double activity = 0.0;
  };

  /// Commits an admission: marks tiles occupied by `app` and sets the
  /// supply of every touched domain to `vdd`. Preconditions (checked):
  /// all tiles free; any partially-occupied domain touched must already
  /// run at `vdd` (different apps may share a domain only at the same
  /// supply — PARM's mapper never shares, HM's may).
  void occupy(AppInstanceId app, const std::vector<Placement>& placements,
              double vdd);

  /// Releases every tile held by `app` (no-op if it holds none); domains
  /// left empty are power-gated.
  void release(AppInstanceId app);

  /// Moves one of `app`'s tasks from `from` to the free tile `to`,
  /// keeping its supply voltage (thread migration, cf. [19]). The target
  /// domain must be free or already powered at the same Vdd; the source
  /// domain is power-gated if the move empties it. Preconditions checked.
  void migrate(AppInstanceId app, TileId from, TileId to);

  /// Tiles currently held by `app`.
  std::vector<TileId> tiles_of(AppInstanceId app) const;

  // --- PSN sensors (written by the simulator each sample interval) ---
  void set_tile_psn(std::vector<double> peak_percent);
  const std::vector<double>& tile_psn() const { return tile_psn_; }
  double tile_psn_of(TileId t) const {
    return tile_psn_[static_cast<std::size_t>(t)];
  }

  /// True when a tile's sensor reads above the voltage-emergency
  /// threshold.
  bool in_emergency(TileId t) const {
    return tile_psn_of(t) > cfg_.ve_threshold_percent;
  }

  // --- Snapshot hooks ---
  /// Serializes occupancy, domain supplies, sensor values, and the power
  /// ledger. The config/mesh/technology are NOT serialized — they are
  /// construction inputs the restoring process must already agree on
  /// (validated by tile/domain counts here and the config fingerprint at
  /// the simulator level).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  PlatformConfig cfg_;
  std::shared_ptr<const noc::Topology> topo_;
  power::TechnologyNode tech_;
  power::VoltageFrequencyModel vf_;
  power::PowerLedger ledger_;
  std::vector<TileAssignment> tiles_;
  std::vector<double> domain_vdd_;  ///< <= 0 when power-gated.
  std::vector<std::int32_t> domain_occupancy_;  ///< occupied tiles/domain
  std::vector<double> tile_psn_;
  std::vector<char> tile_faulty_;  ///< hardware-fault mask (all healthy
                                   ///< by default)
};

}  // namespace parm::cmp
