// CMP platform model: the 10×6-tile mesh with 2×2-tile power-supply
// domains, per-domain DVS, tile occupancy, on-die PSN sensors, and the
// dark-silicon power ledger (paper sections 3.1, 3.3 and 5.1).
//
// The Platform owns bookkeeping only; execution dynamics live in
// parm::sim. Mappers and the runtime manager query it for free resources
// and commit admissions through occupy()/release().
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "power/chip_power.hpp"
#include "power/technology.hpp"
#include "power/vf_model.hpp"
#include "snapshot/serializer.hpp"

namespace parm::cmp {

/// Identifier of an admitted application instance (unique per run).
using AppInstanceId = std::int64_t;
inline constexpr AppInstanceId kNoApp = -1;

struct PlatformConfig {
  std::int32_t mesh_width = 10;
  std::int32_t mesh_height = 6;
  int technology_nm = 7;
  /// Permissible DVS levels, increasing (paper: 0.4-0.8 V in 0.1 steps).
  std::vector<double> vdd_levels = {0.4, 0.5, 0.6, 0.7, 0.8};
  double dark_silicon_budget_w = 65.0;
  double ve_threshold_percent = 5.0;  ///< PSN above this is an emergency.
};

/// Per-tile occupancy record.
struct TileAssignment {
  AppInstanceId app = kNoApp;
  std::int32_t task_index = -1;
  double activity = 0.0;  ///< Switching-activity factor of the task.
};

class Platform {
 public:
  explicit Platform(PlatformConfig cfg);

  const PlatformConfig& config() const { return cfg_; }
  const MeshGeometry& mesh() const { return mesh_; }
  const power::TechnologyNode& technology() const { return tech_; }
  const power::VoltageFrequencyModel& vf_model() const { return vf_; }

  power::PowerLedger& ledger() { return ledger_; }
  const power::PowerLedger& ledger() const { return ledger_; }

  // --- Occupancy ---
  /// Unoccupied AND not marked faulty: every mapper/migration free-resource
  /// query filters through this, which is what makes region selection
  /// fault-aware without any mapper changes.
  bool tile_free(TileId t) const {
    return tiles_[static_cast<std::size_t>(t)].app == kNoApp &&
           !tile_faulty_[static_cast<std::size_t>(t)];
  }
  const TileAssignment& tile(TileId t) const {
    return tiles_[static_cast<std::size_t>(t)];
  }
  std::int32_t free_tile_count() const;
  std::vector<TileId> free_tiles() const;

  /// True if no tile of the domain is occupied. Occupancy-only — a
  /// faulty domain with no app is still "free" here because occupy()'s
  /// vdd bookkeeping depends on it; use domain_usable() (or
  /// free_domains(), which filters) for placement decisions.
  bool domain_free(DomainId d) const;
  /// domain_free() AND no tile of the domain is faulty.
  bool domain_usable(DomainId d) const;
  /// Free *and usable* domains (fault-aware, see domain_free()).
  std::vector<DomainId> free_domains() const;
  std::int32_t free_domain_count() const;

  // --- Hardware faults (set by the fault phase; sticky until repaired) ---
  /// Marks a tile's core unusable: tile_free()/free_tiles()/free_domains()
  /// stop offering it, so mappers and migration route around it. Tasks
  /// already resident are the fault phase's problem (re-map or strand) —
  /// the platform only tracks the mask.
  void set_tile_faulty(TileId t, bool faulty);
  bool tile_faulty(TileId t) const {
    return tile_faulty_[static_cast<std::size_t>(t)];
  }
  std::int32_t faulty_tile_count() const;

  /// Supply voltage of a domain. Free domains are power-gated and report
  /// nullopt.
  std::optional<double> domain_vdd(DomainId d) const;

  /// One (task_index, tile, activity) placement of an admission.
  struct Placement {
    std::int32_t task_index = -1;
    TileId tile = kInvalidTile;
    double activity = 0.0;
  };

  /// Commits an admission: marks tiles occupied by `app` and sets the
  /// supply of every touched domain to `vdd`. Preconditions (checked):
  /// all tiles free; any partially-occupied domain touched must already
  /// run at `vdd` (different apps may share a domain only at the same
  /// supply — PARM's mapper never shares, HM's may).
  void occupy(AppInstanceId app, const std::vector<Placement>& placements,
              double vdd);

  /// Releases every tile held by `app` (no-op if it holds none); domains
  /// left empty are power-gated.
  void release(AppInstanceId app);

  /// Moves one of `app`'s tasks from `from` to the free tile `to`,
  /// keeping its supply voltage (thread migration, cf. [19]). The target
  /// domain must be free or already powered at the same Vdd; the source
  /// domain is power-gated if the move empties it. Preconditions checked.
  void migrate(AppInstanceId app, TileId from, TileId to);

  /// Tiles currently held by `app`.
  std::vector<TileId> tiles_of(AppInstanceId app) const;

  // --- PSN sensors (written by the simulator each sample interval) ---
  void set_tile_psn(std::vector<double> peak_percent);
  const std::vector<double>& tile_psn() const { return tile_psn_; }
  double tile_psn_of(TileId t) const {
    return tile_psn_[static_cast<std::size_t>(t)];
  }

  /// True when a tile's sensor reads above the voltage-emergency
  /// threshold.
  bool in_emergency(TileId t) const {
    return tile_psn_of(t) > cfg_.ve_threshold_percent;
  }

  // --- Snapshot hooks ---
  /// Serializes occupancy, domain supplies, sensor values, and the power
  /// ledger. The config/mesh/technology are NOT serialized — they are
  /// construction inputs the restoring process must already agree on
  /// (validated by tile/domain counts here and the config fingerprint at
  /// the simulator level).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  PlatformConfig cfg_;
  MeshGeometry mesh_;
  power::TechnologyNode tech_;
  power::VoltageFrequencyModel vf_;
  power::PowerLedger ledger_;
  std::vector<TileAssignment> tiles_;
  std::vector<double> domain_vdd_;  ///< <= 0 when power-gated.
  std::vector<std::int32_t> domain_occupancy_;  ///< occupied tiles/domain
  std::vector<double> tile_psn_;
  std::vector<char> tile_faulty_;  ///< hardware-fault mask (all healthy
                                   ///< by default)
};

}  // namespace parm::cmp
