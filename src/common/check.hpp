// Runtime-checked preconditions and invariants for the PARM libraries.
//
// PARM_CHECK(cond, msg)   — always-on check; throws parm::CheckError.
// PARM_DCHECK(cond, msg)  — debug-only check (compiled out in NDEBUG builds).
//
// The libraries use exceptions for contract violations (bad user input,
// broken invariants) and return values / status enums for expected runtime
// outcomes (e.g. "no mapping region available").
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace parm {

/// Thrown when a PARM_CHECK precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PARM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace parm

#define PARM_CHECK(cond, msg)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::parm::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define PARM_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#else
#define PARM_DCHECK(cond, msg) PARM_CHECK(cond, msg)
#endif
