#include "common/geometry.hpp"

#include <ostream>
#include <string>

namespace parm {

Direction opposite(Direction d) {
  switch (d) {
    case Direction::East:
      return Direction::West;
    case Direction::West:
      return Direction::East;
    case Direction::North:
      return Direction::South;
    case Direction::South:
      return Direction::North;
    case Direction::Local:
      return Direction::Local;
  }
  PARM_CHECK(false, "invalid direction");
}

const char* to_string(Direction d) {
  switch (d) {
    case Direction::East:
      return "E";
    case Direction::West:
      return "W";
    case Direction::North:
      return "N";
    case Direction::South:
      return "S";
    case Direction::Local:
      return "L";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const TileCoord& c) {
  return os << "(" << c.x << "," << c.y << ")";
}

std::int32_t manhattan_distance(TileCoord a, TileCoord b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

MeshGeometry::MeshGeometry(std::int32_t width, std::int32_t height)
    : width_(width), height_(height) {
  PARM_CHECK(width >= 2 && height >= 2,
             "mesh must be at least 2x2, got " + std::to_string(width) +
                 "x" + std::to_string(height));
  PARM_CHECK(width % 2 == 0 && height % 2 == 0,
             "mesh dimensions must be even (2x2 power domains), got " +
                 std::to_string(width) + "x" + std::to_string(height));
}

std::array<TileId, 4> MeshGeometry::domain_tiles(DomainId d) const {
  const TileCoord dc = domain_coord(d);
  const std::int32_t x0 = dc.x * 2;
  const std::int32_t y0 = dc.y * 2;
  return {tile_id({x0, y0}), tile_id({x0 + 1, y0}), tile_id({x0, y0 + 1}),
          tile_id({x0 + 1, y0 + 1})};
}

TileId MeshGeometry::neighbor(TileId id, Direction d) const {
  TileCoord c = coord(id);
  switch (d) {
    case Direction::East:
      ++c.x;
      break;
    case Direction::West:
      --c.x;
      break;
    case Direction::North:
      ++c.y;
      break;
    case Direction::South:
      --c.y;
      break;
    case Direction::Local:
      return id;
  }
  return contains(c) ? tile_id(c) : kInvalidTile;
}

std::vector<TileId> MeshGeometry::neighbors(TileId id) const {
  std::vector<TileId> out;
  out.reserve(4);
  for (Direction d : kCardinalDirections) {
    const TileId n = neighbor(id, d);
    if (n != kInvalidTile) out.push_back(n);
  }
  return out;
}

std::vector<Direction> MeshGeometry::productive_directions(
    TileCoord src, TileCoord dst) const {
  PARM_DCHECK(contains(src) && contains(dst), "coordinates must be on mesh");
  std::vector<Direction> out;
  if (dst.x > src.x) out.push_back(Direction::East);
  if (dst.x < src.x) out.push_back(Direction::West);
  if (dst.y > src.y) out.push_back(Direction::North);
  if (dst.y < src.y) out.push_back(Direction::South);
  return out;
}

}  // namespace parm
