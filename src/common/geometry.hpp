// Mesh geometry for the 2D NoC-based CMP.
//
// Tiles are laid out in a W×H mesh; a TileCoord is an (x, y) pair with
// x ∈ [0, W) growing east and y ∈ [0, H) growing north. Tile ids are
// row-major: id = y*W + x. Power-supply domains are 2×2 tile blocks
// (paper §3.3), so the mesh dimensions must be even.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/check.hpp"

namespace parm {

/// Identifier of a tile on the mesh (row-major index).
using TileId = std::int32_t;
/// Identifier of a 2×2 power-supply domain (row-major over domain grid).
using DomainId = std::int32_t;

inline constexpr TileId kInvalidTile = -1;
inline constexpr DomainId kInvalidDomain = -1;

/// Cardinal hop directions on the mesh plus "Local" (ejection port).
enum class Direction : std::uint8_t { East = 0, West, North, South, Local };

inline constexpr std::array<Direction, 4> kCardinalDirections = {
    Direction::East, Direction::West, Direction::North, Direction::South};

/// Returns the opposite cardinal direction (East<->West, North<->South).
Direction opposite(Direction d);

/// Short human-readable name ("E", "W", "N", "S", "L").
const char* to_string(Direction d);

/// An (x, y) coordinate on the tile mesh.
struct TileCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

std::ostream& operator<<(std::ostream& os, const TileCoord& c);

/// Manhattan (hop) distance between two coordinates.
std::int32_t manhattan_distance(TileCoord a, TileCoord b);

/// Geometry of a W×H tile mesh partitioned into 2×2 power domains.
///
/// The class is immutable after construction and provides all id/coordinate
/// conversions used by the platform, mapping, and NoC layers.
class MeshGeometry {
 public:
  /// Creates a mesh of `width` × `height` tiles. Both must be even and >= 2
  /// so the mesh tiles exactly into 2×2 power domains.
  MeshGeometry(std::int32_t width, std::int32_t height);

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  std::int32_t tile_count() const { return width_ * height_; }

  /// Number of 2×2 power domains ((W/2) × (H/2)).
  std::int32_t domain_count() const {
    return (width_ / 2) * (height_ / 2);
  }
  std::int32_t domain_grid_width() const { return width_ / 2; }
  std::int32_t domain_grid_height() const { return height_ / 2; }

  bool contains(TileCoord c) const {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

  TileId tile_id(TileCoord c) const {
    PARM_DCHECK(contains(c), "coordinate out of mesh");
    return c.y * width_ + c.x;
  }

  TileCoord coord(TileId id) const {
    PARM_DCHECK(id >= 0 && id < tile_count(), "tile id out of range");
    return TileCoord{id % width_, id / width_};
  }

  /// Domain that owns a tile (2×2 blocks, row-major over the domain grid).
  DomainId domain_of(TileId id) const {
    const TileCoord c = coord(id);
    return (c.y / 2) * domain_grid_width() + (c.x / 2);
  }

  /// The four tiles of a domain in row-major order (SW, SE, NW, NE).
  std::array<TileId, 4> domain_tiles(DomainId d) const;

  /// Coordinate of a domain on the domain grid.
  TileCoord domain_coord(DomainId d) const {
    PARM_DCHECK(d >= 0 && d < domain_count(), "domain id out of range");
    return TileCoord{d % domain_grid_width(), d / domain_grid_width()};
  }

  /// Manhattan distance between two domains on the domain grid.
  std::int32_t domain_distance(DomainId a, DomainId b) const {
    return manhattan_distance(domain_coord(a), domain_coord(b));
  }

  /// Manhattan (hop) distance between two tiles.
  std::int32_t hop_distance(TileId a, TileId b) const {
    return manhattan_distance(coord(a), coord(b));
  }

  /// Neighbor of a tile in direction `d`, or kInvalidTile at the mesh edge.
  TileId neighbor(TileId id, Direction d) const;

  /// All valid cardinal neighbors of a tile.
  std::vector<TileId> neighbors(TileId id) const;

  /// Direction(s) that make progress from `src` toward `dst` (0, 1 or 2
  /// cardinal directions; empty when src == dst).
  std::vector<Direction> productive_directions(TileCoord src,
                                               TileCoord dst) const;

 private:
  std::int32_t width_;
  std::int32_t height_;
};

}  // namespace parm
