#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace parm {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PARM_CHECK(bound > 0, "bound must be positive");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PARM_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1ULL;  // hi-lo < 2^63
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PARM_CHECK(lo <= hi, "uniform requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double rate) {
  PARM_CHECK(rate > 0.0, "exponential rate must be positive");
  return -std::log(1.0 - uniform01()) / rate;
}

bool Rng::bernoulli(double p) {
  PARM_CHECK(p >= 0.0 && p <= 1.0, "probability must be in [0,1]");
  return uniform01() < p;
}

std::size_t Rng::pick_index(std::size_t size) {
  PARM_CHECK(size > 0, "cannot pick from empty range");
  return static_cast<std::size_t>(next_below(size));
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xda3e39cb94b95bdbULL); }

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[static_cast<std::size_t>(i)] = s_[i];
  st.have_cached_normal = have_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::restore(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[static_cast<std::size_t>(i)];
  have_cached_normal_ = st.have_cached_normal;
  cached_normal_ = st.cached_normal;
}

}  // namespace parm
