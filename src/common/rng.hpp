// Deterministic pseudo-random number generation for PARM.
//
// All stochastic model inputs (task phases, graph shapes, arrival jitter)
// are drawn from an explicitly seeded Xoshiro256** generator so that every
// experiment is reproducible bit-for-bit across runs and platforms.
// SplitMix64 is used to expand a single 64-bit seed into generator state and
// to derive independent child streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace parm {

/// SplitMix64: tiny, high-quality seed expander (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** PRNG (Blackman & Vigna) with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also drive <random>
/// distributions if ever needed; the members below cover PARM's needs
/// without libstdc++'s cross-platform distribution variance.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator state via SplitMix64 from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) via Lemire's unbiased method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic pair caching).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate parameter λ (> 0).
  double exponential(double rate);

  /// Bernoulli trial with probability p of success.
  bool bernoulli(double p);

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t pick_index(std::size_t size);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng fork();

  /// Complete generator state — the Xoshiro words plus the Box–Muller
  /// pair cache — for snapshot/resume. restore() makes the stream
  /// continue exactly where state() was taken.
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const;
  void restore(const State& st);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace parm
