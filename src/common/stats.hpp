// Streaming statistics accumulators used by the simulator and benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace parm {

/// Online accumulator for min / max / mean / variance (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;

  /// Raw accumulator state for snapshot/resume. restore() reproduces the
  /// accumulator bit-for-bit (min/max keep their ±inf empty sentinels).
  struct State {
    std::uint64_t n = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
  };
  State state() const { return {n_, min_, max_, mean_, m2_}; }
  void restore(const State& st) {
    n_ = st.n;
    min_ = st.min;
    max_ = st.max;
    mean_ = st.mean;
    m2_ = st.m2;
  }

 private:
  std::uint64_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace parm
