#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace parm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PARM_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::set_precision(int digits) {
  PARM_CHECK(digits >= 0 && digits <= 17, "precision out of range");
  precision_ = digits;
}

void Table::add_row(std::vector<Cell> row) {
  PARM_CHECK(row.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c))
    return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    std::vector<std::string> f;
    f.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      f.push_back(format_cell(row[i]));
      widths[i] = std::max(widths[i], f.back().size());
    }
    formatted.push_back(std::move(f));
  }

  auto hline = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  hline();
  os << '|';
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << ' ' << std::setw(static_cast<int>(widths[i])) << std::left
       << headers_[i] << " |";
  os << '\n';
  hline();
  for (std::size_t r = 0; r < formatted.size(); ++r) {
    os << '|';
    for (std::size_t i = 0; i < formatted[r].size(); ++i) {
      const bool numeric = !std::holds_alternative<std::string>(rows_[r][i]);
      os << ' ' << std::setw(static_cast<int>(widths[i]))
         << (numeric ? std::right : std::left) << formatted[r][i] << " |";
    }
    os << '\n';
  }
  hline();
}

void Table::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << (i ? "," : "") << escape(headers_[i]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      os << (i ? "," : "") << escape(format_cell(row[i]));
    os << '\n';
  }
}

}  // namespace parm
