// ASCII table / CSV emitter used by the bench harnesses to print the rows
// and series of the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace parm {

/// A simple column-aligned table that can render as ASCII art or CSV.
///
/// Cells are strings, integers, or doubles (formatted with a configurable
/// precision). Used by every bench binary so figure output is uniform.
class Table {
 public:
  using Cell = std::variant<std::string, std::int64_t, double>;

  explicit Table(std::vector<std::string> headers);

  /// Number of digits after the decimal point for double cells (default 3).
  void set_precision(int digits);

  void add_row(std::vector<Cell> row);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

  /// Renders with box-drawing separators and right-aligned numbers.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace parm
