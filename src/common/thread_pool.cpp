#include "common/thread_pool.hpp"

#include <cstdlib>

namespace parm {

namespace {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("PARM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0 && v <= 1024) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t thread_count) {
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_available_.wait(lk, [&] {
        // Drop batches whose indices are all claimed; they finish on the
        // threads already running them.
        while (!pending_.empty() &&
               pending_.front()->next.load(std::memory_order_relaxed) >=
                   pending_.front()->n) {
          pending_.pop_front();
        }
        return stop_ || !pending_.empty();
      });
      if (pending_.empty()) return;  // stop_ set and nothing left to claim
      batch = pending_.front();
    }
    run_batch(*batch);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.threads = workers_.size();
  s.parallel_fors = stat_parallel_fors_.load(std::memory_order_relaxed);
  s.items = stat_items_.load(std::memory_order_relaxed);
  s.pooled_batches = stat_pooled_batches_.load(std::memory_order_relaxed);
  s.queue_wait_ns = stat_queue_wait_ns_.load(std::memory_order_relaxed);
  s.batch_ns = stat_batch_ns_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    if (i == 0) {
      // Whoever claims the first index (a worker or the caller itself)
      // stamps the queue-wait figure for this batch.
      batch.first_claim_ns.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - batch.enqueued)
              .count(),
          std::memory_order_relaxed);
    }
    try {
      (*batch.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(batch.mu);
      if (!batch.error) batch.error = std::current_exception();
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.n) {
      std::lock_guard<std::mutex> lk(batch.mu);
      batch.finished.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  stat_parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  stat_items_.fetch_add(n, std::memory_order_relaxed);
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  batch->enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.push_back(batch);
  }
  work_available_.notify_all();
  run_batch(*batch);  // the caller works too
  {
    std::unique_lock<std::mutex> lk(batch->mu);
    batch->finished.wait(lk, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
  }
  stat_pooled_batches_.fetch_add(1, std::memory_order_relaxed);
  stat_batch_ns_.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - batch->enqueued)
              .count()),
      std::memory_order_relaxed);
  const std::int64_t wait =
      batch->first_claim_ns.load(std::memory_order_relaxed);
  if (wait > 0) {
    stat_queue_wait_ns_.fetch_add(static_cast<std::uint64_t>(wait),
                                  std::memory_order_relaxed);
  }
  {
    // Retire the batch eagerly; `fn` dies with this call frame.
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->get() == batch.get()) {
        pending_.erase(it);
        break;
      }
    }
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace parm
