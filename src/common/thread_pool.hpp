// Fixed-size worker pool for the PDN hot path.
//
// The PARM stack's parallelism is simple fork/join over small, independent
// work items: per-domain PSN estimates within one epoch, (Vdd, DoP)
// admission candidates for one arrival, benchmark sweeps. parallel_for
// covers all of them: indices are claimed from a shared atomic counter, the
// *calling* thread participates in the work (so a busy or single-core pool
// degrades gracefully to serial execution and nested calls cannot
// deadlock), and the call blocks until every index has completed.
//
// Determinism contract: parallel_for guarantees each index runs exactly
// once but says nothing about order or thread assignment. Callers that
// need reproducible aggregates (the simulator's PSN statistics, admission
// winner selection) must write per-index results into pre-sized slots and
// reduce them serially afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace parm {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers. Zero is allowed: every parallel_for
  /// then runs entirely on the calling thread.
  explicit ThreadPool(std::size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware (at least one worker).
  /// Override the size with the PARM_THREADS environment variable.
  static ThreadPool& shared();

  /// Runs fn(0), …, fn(n-1), distributing indices across the workers and
  /// the calling thread, and returns once all have completed. The first
  /// exception thrown by `fn` is rethrown in the caller (remaining
  /// indices still run so the batch always drains).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Lifetime utilization counters, maintained with three steady_clock
  /// reads per *pooled* parallel_for (enqueue, first index claim, batch
  /// completion) and relaxed atomics — cheap enough to stay always-on.
  /// The observability server's /profilez endpoint reports them.
  struct Stats {
    std::size_t threads = 0;          ///< worker count (excludes caller)
    std::uint64_t parallel_fors = 0;  ///< total invocations (any path)
    std::uint64_t items = 0;          ///< indices executed, all paths
    std::uint64_t pooled_batches = 0; ///< invocations that used workers
    /// Enqueue → first index claim, summed over pooled batches (ns).
    /// High values mean the pool is saturated and work is waiting.
    std::uint64_t queue_wait_ns = 0;
    /// Enqueue → last index done, summed over pooled batches (ns).
    std::uint64_t batch_ns = 0;
  };
  /// Relaxed snapshot of the counters (fields may be skewed by in-flight
  /// batches; each is individually consistent).
  Stats stats() const;

 private:
  /// One parallel_for invocation: indices are claimed via `next`; the
  /// batch is finished when `done` reaches `n`.
  struct Batch {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable finished;
    std::exception_ptr error;  ///< first failure, guarded by `mu`
    /// Instrumentation: set by parallel_for at enqueue; the claimer of
    /// index 0 stamps first_claim (one clock read on one thread).
    std::chrono::steady_clock::time_point enqueued;
    std::atomic<std::int64_t> first_claim_ns{-1};  ///< since `enqueued`
  };

  void worker_loop();
  static void run_batch(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Batch>> pending_;
  bool stop_ = false;

  // Utilization counters (see Stats); relaxed, always-on.
  std::atomic<std::uint64_t> stat_parallel_fors_{0};
  std::atomic<std::uint64_t> stat_items_{0};
  std::atomic<std::uint64_t> stat_pooled_batches_{0};
  std::atomic<std::uint64_t> stat_queue_wait_ns_{0};
  std::atomic<std::uint64_t> stat_batch_ns_{0};
};

}  // namespace parm
