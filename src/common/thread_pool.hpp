// Fixed-size worker pool for the PDN hot path.
//
// The PARM stack's parallelism is simple fork/join over small, independent
// work items: per-domain PSN estimates within one epoch, (Vdd, DoP)
// admission candidates for one arrival, benchmark sweeps. parallel_for
// covers all of them: indices are claimed from a shared atomic counter, the
// *calling* thread participates in the work (so a busy or single-core pool
// degrades gracefully to serial execution and nested calls cannot
// deadlock), and the call blocks until every index has completed.
//
// Determinism contract: parallel_for guarantees each index runs exactly
// once but says nothing about order or thread assignment. Callers that
// need reproducible aggregates (the simulator's PSN statistics, admission
// winner selection) must write per-index results into pre-sized slots and
// reduce them serially afterwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace parm {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers. Zero is allowed: every parallel_for
  /// then runs entirely on the calling thread.
  explicit ThreadPool(std::size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware (at least one worker).
  /// Override the size with the PARM_THREADS environment variable.
  static ThreadPool& shared();

  /// Runs fn(0), …, fn(n-1), distributing indices across the workers and
  /// the calling thread, and returns once all have completed. The first
  /// exception thrown by `fn` is rethrown in the caller (remaining
  /// indices still run so the batch always drains).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

 private:
  /// One parallel_for invocation: indices are claimed via `next`; the
  /// batch is finished when `done` reaches `n`.
  struct Batch {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable finished;
    std::exception_ptr error;  ///< first failure, guarded by `mu`
  };

  void worker_loop();
  static void run_batch(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Batch>> pending_;
  bool stop_ = false;
};

}  // namespace parm
