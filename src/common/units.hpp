// Physical units and conversion helpers used throughout PARM.
//
// All quantities are stored as doubles in SI base units (volts, amperes,
// watts, seconds, henries, farads, ohms). The helpers below exist to make
// call sites self-documenting:  `3 * units::kMilli * units::kWatt` etc.
// Cycle counts are stored as uint64_t at the tile's current frequency or at
// the 1 GHz reference clock (documented per field).
#pragma once

#include <cstdint>

namespace parm::units {

inline constexpr double kPico = 1e-12;
inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

/// Reference clock used to express task work in cycles (1 GHz, paper §4.4).
inline constexpr double kRefClockHz = 1.0 * kGiga;

/// Seconds for one cycle at the reference clock.
inline constexpr double kRefCyclePeriod = 1.0 / kRefClockHz;

/// Convert seconds to reference-clock cycles (rounded down).
constexpr std::uint64_t seconds_to_ref_cycles(double s) {
  return static_cast<std::uint64_t>(s * kRefClockHz);
}

/// Convert reference-clock cycles to seconds.
constexpr double ref_cycles_to_seconds(std::uint64_t cycles) {
  return static_cast<double>(cycles) / kRefClockHz;
}

}  // namespace parm::units
