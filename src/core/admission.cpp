#include "core/admission.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"

namespace parm::core {

namespace {

/// Admission metrics, resolved once. Rejection counters split Algorithm 1
/// failures by constraint: deadline (WCET misses), DsPB (dark-silicon
/// power budget, ledger refusal), and PSN-aware mapping (no spatial
/// region with acceptable noise coupling).
struct AdmissionMetrics {
  obs::Counter& candidates;
  obs::Counter& reject_deadline;
  obs::Counter& reject_dspb;
  obs::Counter& reject_psn_map;
  obs::Counter& admitted;
  obs::Histogram& chosen_vdd;
  obs::Histogram& chosen_dop;

  static AdmissionMetrics& get() {
    static AdmissionMetrics m{
        obs::Registry::instance().counter("admission.candidates"),
        obs::Registry::instance().counter("admission.reject_deadline"),
        obs::Registry::instance().counter("admission.reject_dspb"),
        obs::Registry::instance().counter("admission.reject_psn_map"),
        obs::Registry::instance().counter("admission.admitted"),
        obs::Registry::instance().histogram(
            "admission.chosen_vdd",
            {0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}),
        obs::Registry::instance().histogram("admission.chosen_dop",
                                            {4, 8, 16, 32, 64})};
    return m;
  }
};

/// Shared tail of both policies: power check (Algorithm 2 lines 1-2) and
/// mapping attempt for one (vdd, dop) candidate. Returns the decision on
/// success.
std::optional<AdmissionDecision> attempt_point(
    const appmodel::AppArrival& app, const cmp::Platform& platform,
    const mapping::Mapper& mapper, double vdd, int dop, double wcet_s) {
  AdmissionMetrics& metrics = AdmissionMetrics::get();
  metrics.candidates.inc();
  const power::CorePowerModel core_model(platform.technology());
  const power::RouterPowerModel router_model(platform.technology());
  const double power = app.profile->estimated_power_w(
      vdd, dop, platform.vf_model(), core_model, router_model);
  if (!platform.ledger().fits(power)) {
    metrics.reject_dspb.inc();
    return std::nullopt;
  }

  const appmodel::DopVariant& variant = app.profile->variant(dop);
  std::optional<mapping::Mapping> m = mapper.map(platform, variant);
  if (!m) {
    metrics.reject_psn_map.inc();
    return std::nullopt;
  }

  metrics.admitted.inc();
  metrics.chosen_vdd.observe(vdd);
  metrics.chosen_dop.observe(static_cast<double>(dop));
  AdmissionDecision d;
  d.vdd = vdd;
  d.dop = dop;
  d.mapping = std::move(*m);
  d.estimated_power_w = power;
  d.wcet_s = wcet_s;
  return d;
}

}  // namespace

ParmAdmissionPolicy::ParmAdmissionPolicy(Options opts) : opts_(opts) {}

AdmissionResult ParmAdmissionPolicy::try_admit(
    const appmodel::AppArrival& app, double now_s,
    const cmp::Platform& platform) const {
  PARM_CHECK(app.profile != nullptr, "arrival carries no profile");
  AdmissionResult result;

  // Candidate grids. Vdd ascending (peak PSN grows with Vdd, Fig. 3(a)),
  // DoP descending (more threads at a lower voltage, Alg. 1 line 2).
  std::vector<double> vdds = platform.config().vdd_levels;
  if (!opts_.adapt_vdd) vdds = {opts_.fixed_vdd};
  std::vector<int> dops = app.profile->dops();
  std::sort(dops.begin(), dops.end(), std::greater<>());
  if (!opts_.adapt_dop) {
    dops = {std::min(opts_.fixed_dop,
                     app.profile->benchmark().max_dop)};
  }

  bool any_deadline_feasible = false;
  for (double vdd : vdds) {
    bool deadline_met_at_this_vdd = false;
    for (int dop : dops) {
      const double wcet =
          app.profile->wcet_seconds(vdd, dop, platform.vf_model());
      if (now_s + wcet >= app.deadline_s) {
        // Alg. 1 line 13: a lower DoP only increases WCET — skip the rest
        // of the DoP list and move to the next (higher) Vdd.
        AdmissionMetrics::get().reject_deadline.inc();
        break;
      }
      deadline_met_at_this_vdd = true;
      any_deadline_feasible = true;
      std::optional<AdmissionDecision> d =
          attempt_point(app, platform, mapper_, vdd, dop, wcet);
      if (d) {
        result.decision = std::move(d);
        return result;
      }
      // Mapping/power failed: Alg. 1 line 12 — try the next lower DoP.
    }
    (void)deadline_met_at_this_vdd;
  }
  result.failure = any_deadline_feasible ? AdmissionFailure::Stall
                                         : AdmissionFailure::Drop;
  return result;
}

HmAdmissionPolicy::HmAdmissionPolicy(double vdd, int dop)
    : vdd_(vdd), dop_(dop) {
  PARM_CHECK(vdd > 0.0, "invalid vdd");
  PARM_CHECK(dop >= 4 && dop % 4 == 0, "DoP must be a positive multiple of 4");
}

AdmissionResult HmAdmissionPolicy::try_admit(
    const appmodel::AppArrival& app, double now_s,
    const cmp::Platform& platform) const {
  PARM_CHECK(app.profile != nullptr, "arrival carries no profile");
  AdmissionResult result;
  // HM does not adapt DoP; an app simply spawns as many threads as it
  // supports, up to the configured fixed count.
  const int dop = std::min(dop_, app.profile->benchmark().max_dop);
  const double wcet =
      app.profile->wcet_seconds(vdd_, dop, platform.vf_model());
  if (now_s + wcet >= app.deadline_s) {
    AdmissionMetrics::get().reject_deadline.inc();
    result.failure = AdmissionFailure::Drop;
    return result;
  }
  std::optional<AdmissionDecision> d =
      attempt_point(app, platform, mapper_, vdd_, dop, wcet);
  if (d) {
    result.decision = std::move(d);
  } else {
    result.failure = AdmissionFailure::Stall;
  }
  return result;
}

}  // namespace parm::core
