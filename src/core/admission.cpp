#include "core/admission.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"

namespace parm::core {

AdmissionMetrics AdmissionMetrics::resolve(obs::Registry* registry) {
  obs::Registry& reg = obs::resolve(registry);
  return AdmissionMetrics{
      &reg.counter("admission.candidates"),
      &reg.counter("admission.reject_deadline"),
      &reg.counter("admission.reject_dspb"),
      &reg.counter("admission.reject_psn_map"),
      &reg.counter("admission.admitted"),
      &reg.histogram("admission.chosen_vdd",
                     {0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}),
      &reg.histogram("admission.chosen_dop", {4, 8, 16, 32, 64})};
}

namespace {

/// Shared tail of both policies: power check (Algorithm 2 lines 1-2) and
/// mapping attempt for one (vdd, dop) candidate. Returns the decision on
/// success. Thread-safe (the platform is read-only, the mappers are
/// stateless, metrics are atomic) so candidates can be probed
/// speculatively in parallel; winner-only metrics are recorded separately
/// via record_winner once the priority-order scan picks a decision.
std::optional<AdmissionDecision> attempt_point(
    const appmodel::AppArrival& app, const cmp::Platform& platform,
    const mapping::Mapper& mapper, double vdd, int dop, double wcet_s,
    const AdmissionMetrics& metrics) {
  metrics.candidates->inc();
  const power::CorePowerModel core_model(platform.technology());
  const power::RouterPowerModel router_model(platform.technology());
  const double power = app.profile->estimated_power_w(
      vdd, dop, platform.vf_model(), core_model, router_model);
  if (!platform.ledger().fits(power)) {
    metrics.reject_dspb->inc();
    return std::nullopt;
  }

  const appmodel::DopVariant& variant = app.profile->variant(dop);
  std::optional<mapping::Mapping> m = mapper.map(platform, variant);
  if (!m) {
    metrics.reject_psn_map->inc();
    return std::nullopt;
  }

  AdmissionDecision d;
  d.vdd = vdd;
  d.dop = dop;
  d.mapping = std::move(*m);
  d.estimated_power_w = power;
  d.wcet_s = wcet_s;
  return d;
}

/// Winner-only metrics: recorded exactly once per admitted application,
/// never for speculative losers.
void record_winner(const AdmissionDecision& d,
                   const AdmissionMetrics& metrics) {
  metrics.admitted->inc();
  metrics.chosen_vdd->observe(d.vdd);
  metrics.chosen_dop->observe(static_cast<double>(d.dop));
}

}  // namespace

ParmAdmissionPolicy::ParmAdmissionPolicy(Options opts,
                                         obs::Registry* registry)
    : opts_(opts),
      mapper_(registry),
      metrics_(AdmissionMetrics::resolve(registry)) {}

AdmissionResult ParmAdmissionPolicy::try_admit(
    const appmodel::AppArrival& app, double now_s,
    const cmp::Platform& platform) const {
  PARM_CHECK(app.profile != nullptr, "arrival carries no profile");
  AdmissionResult result;

  // Candidate grids. Vdd ascending (peak PSN grows with Vdd, Fig. 3(a)),
  // DoP descending (more threads at a lower voltage, Alg. 1 line 2).
  std::vector<double> vdds = platform.config().vdd_levels;
  if (!opts_.adapt_vdd) vdds = {opts_.fixed_vdd};
  std::vector<int> dops = app.profile->dops();
  std::sort(dops.begin(), dops.end(), std::greater<>());
  if (!opts_.adapt_dop) {
    dops = {std::min(opts_.fixed_dop,
                     app.profile->benchmark().max_dop)};
  }

  // Enumerate the deadline-feasible candidates in Algorithm 1 priority
  // order (cheap: wcet_seconds is closed-form; the expensive part is the
  // PSN-aware mapping attempt, deferred to the wave evaluation below).
  struct Candidate {
    double vdd;
    int dop;
    double wcet_s;
  };
  std::vector<Candidate> candidates;
  bool any_deadline_feasible = false;
  for (double vdd : vdds) {
    for (int dop : dops) {
      const double wcet =
          app.profile->wcet_seconds(vdd, dop, platform.vf_model());
      if (now_s + wcet >= app.deadline_s) {
        // Alg. 1 line 13: a lower DoP only increases WCET — skip the rest
        // of the DoP list and move to the next (higher) Vdd.
        metrics_.reject_deadline->inc();
        break;
      }
      any_deadline_feasible = true;
      candidates.push_back({vdd, dop, wcet});
    }
  }

  // Evaluate candidates in speculative waves: each wave probes up to
  // `width` candidates concurrently (power fit + mapping are read-only),
  // then the wave is scanned in priority order and the first success
  // wins — exactly the candidate the serial loop would have chosen.
  std::size_t width = opts_.speculation > 0
                          ? static_cast<std::size_t>(opts_.speculation)
                          : ThreadPool::shared().thread_count() + 1;
  width = std::max<std::size_t>(width, 1);
  for (std::size_t base = 0; base < candidates.size(); base += width) {
    const std::size_t wave =
        std::min(width, candidates.size() - base);
    std::vector<std::optional<AdmissionDecision>> slots(wave);
    const auto probe = [&](std::size_t i) {
      const Candidate& c = candidates[base + i];
      slots[i] = attempt_point(app, platform, mapper_, c.vdd, c.dop,
                               c.wcet_s, metrics_);
    };
    if (wave == 1) {
      probe(0);
    } else {
      ThreadPool::shared().parallel_for(wave, probe);
    }
    for (std::size_t i = 0; i < wave; ++i) {
      if (slots[i]) {
        record_winner(*slots[i], metrics_);
        result.decision = std::move(slots[i]);
        return result;
      }
      // Mapping/power failed: Alg. 1 line 12 — next candidate.
    }
  }
  result.failure = any_deadline_feasible ? AdmissionFailure::Stall
                                         : AdmissionFailure::Drop;
  return result;
}

HmAdmissionPolicy::HmAdmissionPolicy(double vdd, int dop,
                                     obs::Registry* registry)
    : vdd_(vdd), dop_(dop), metrics_(AdmissionMetrics::resolve(registry)) {
  PARM_CHECK(vdd > 0.0, "invalid vdd");
  PARM_CHECK(dop >= 4 && dop % 4 == 0, "DoP must be a positive multiple of 4");
}

AdmissionResult HmAdmissionPolicy::try_admit(
    const appmodel::AppArrival& app, double now_s,
    const cmp::Platform& platform) const {
  PARM_CHECK(app.profile != nullptr, "arrival carries no profile");
  AdmissionResult result;
  // HM does not adapt DoP; an app simply spawns as many threads as it
  // supports, up to the configured fixed count.
  const int dop = std::min(dop_, app.profile->benchmark().max_dop);
  const double wcet =
      app.profile->wcet_seconds(vdd_, dop, platform.vf_model());
  if (now_s + wcet >= app.deadline_s) {
    metrics_.reject_deadline->inc();
    result.failure = AdmissionFailure::Drop;
    return result;
  }
  std::optional<AdmissionDecision> d =
      attempt_point(app, platform, mapper_, vdd_, dop, wcet, metrics_);
  if (d) {
    record_winner(*d, metrics_);
    result.decision = std::move(d);
  } else {
    result.failure = AdmissionFailure::Stall;
  }
  return result;
}

}  // namespace parm::core
