// Admission control: the Vdd/DoP selection of PARM (Algorithm 1) and the
// fixed-operating-point policy of the HM baseline.
//
// A policy inspects the platform (free tiles/domains, power headroom) and
// an arrived application's offline profile and either produces a complete
// admission decision — (Vdd, DoP, task-to-tile mapping, power
// reservation) — or reports why it cannot:
//   Stall — some (Vdd, DoP) meets the deadline but resources are missing
//           right now; retry when an application exits (Alg. 1 line 9).
//   Drop  — no (Vdd, DoP) can meet the deadline anymore; discard to avoid
//           stagnating the FCFS queue (Alg. 1, last paragraph).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "appmodel/workload.hpp"
#include "cmp/platform.hpp"
#include "mapping/hm_mapper.hpp"
#include "mapping/mapper.hpp"
#include "mapping/parm_mapper.hpp"
#include "obs/metrics.hpp"

namespace parm::core {

/// Admission metric handles, resolved once per policy from its injected
/// registry. Rejection counters split Algorithm 1 failures by constraint:
/// deadline (WCET misses), DsPB (dark-silicon power budget, ledger
/// refusal), and PSN-aware mapping (no spatial region with acceptable
/// noise coupling).
struct AdmissionMetrics {
  obs::Counter* candidates;
  obs::Counter* reject_deadline;
  obs::Counter* reject_dspb;
  obs::Counter* reject_psn_map;
  obs::Counter* admitted;
  obs::Histogram* chosen_vdd;
  obs::Histogram* chosen_dop;

  /// Resolves every handle from `registry` (null → process-default).
  static AdmissionMetrics resolve(obs::Registry* registry);
};

/// A committed operating point for one application.
struct AdmissionDecision {
  double vdd = 0.0;
  int dop = 0;
  mapping::Mapping mapping;
  double estimated_power_w = 0.0;
  double wcet_s = 0.0;
};

enum class AdmissionFailure { Stall, Drop };

struct AdmissionResult {
  std::optional<AdmissionDecision> decision;
  AdmissionFailure failure = AdmissionFailure::Stall;  ///< valid if !decision

  bool admitted() const { return decision.has_value(); }
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// Attempts to admit `app` at time `now_s`. Does not mutate the
  /// platform; the caller commits via Platform::occupy + ledger.reserve.
  virtual AdmissionResult try_admit(const appmodel::AppArrival& app,
                                    double now_s,
                                    const cmp::Platform& platform) const = 0;

  virtual std::string name() const = 0;
};

/// PARM's Algorithm 1: iterate Vdd increasing and DoP decreasing, take the
/// first (Vdd, DoP) whose WCET meets the deadline, fits the dark-silicon
/// budget, and maps successfully via the PSN-aware heuristic.
class ParmAdmissionPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    bool adapt_vdd = true;   ///< false: only `fixed_vdd` considered
    bool adapt_dop = true;   ///< false: only `fixed_dop` considered
    double fixed_vdd = 0.8;  ///< used when !adapt_vdd
    int fixed_dop = 16;      ///< used when !adapt_dop
    /// Candidate (Vdd, DoP) evaluations in flight: 0 sizes the wave to
    /// the shared thread pool, 1 evaluates strictly serially. The
    /// admitted decision is identical either way — waves are scanned in
    /// Algorithm 1 priority order and the first success wins — but
    /// speculative losers in the winner's wave do tick the candidate /
    /// rejection counters.
    int speculation = 0;
  };

  /// admission.* (and the mapper's mapper.*) metrics go to `registry`;
  /// null selects the process-default.
  ParmAdmissionPolicy() : ParmAdmissionPolicy(Options{}) {}
  explicit ParmAdmissionPolicy(Options opts,
                               obs::Registry* registry = nullptr);

  AdmissionResult try_admit(const appmodel::AppArrival& app, double now_s,
                            const cmp::Platform& platform) const override;

  std::string name() const override { return "PARM"; }

 private:
  Options opts_;
  mapping::ParmMapper mapper_;
  AdmissionMetrics metrics_;
};

/// HM baseline: fixed nominal Vdd and fixed DoP (no adaptation — the
/// paper attributes HM's DsPB violations to exactly this), harmonic
/// spread mapping.
class HmAdmissionPolicy final : public AdmissionPolicy {
 public:
  explicit HmAdmissionPolicy(double vdd = 0.8, int dop = 16,
                             obs::Registry* registry = nullptr);

  AdmissionResult try_admit(const appmodel::AppArrival& app, double now_s,
                            const cmp::Platform& platform) const override;

  std::string name() const override { return "HM"; }

 private:
  double vdd_;
  int dop_;
  mapping::HarmonicMapper mapper_;
  AdmissionMetrics metrics_;
};

}  // namespace parm::core
