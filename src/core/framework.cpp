#include "core/framework.hpp"

namespace parm::core {

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const FrameworkConfig& cfg) {
  if (cfg.mapping == "PARM") {
    ParmAdmissionPolicy::Options o;
    o.adapt_vdd = cfg.parm_adapt_vdd;
    o.adapt_dop = cfg.parm_adapt_dop;
    o.fixed_vdd = cfg.parm_fixed_vdd;
    o.fixed_dop = cfg.parm_fixed_dop;
    return std::make_unique<ParmAdmissionPolicy>(o);
  }
  if (cfg.mapping == "HM") {
    return std::make_unique<HmAdmissionPolicy>(cfg.hm_vdd, cfg.hm_dop);
  }
  PARM_CHECK(false, "unknown mapping framework: " + cfg.mapping);
}

std::vector<FrameworkConfig> paper_frameworks() {
  std::vector<FrameworkConfig> out;
  for (const char* m : {"HM", "PARM"}) {
    for (const char* r : {"XY", "ICON", "PANR"}) {
      FrameworkConfig cfg;
      cfg.mapping = m;
      cfg.routing = r;
      out.push_back(cfg);
    }
  }
  return out;
}

}  // namespace parm::core
