#include "core/framework.hpp"

#include <bit>

namespace parm::core {

namespace {

// FNV-1a, the shared digest primitive of the snapshot layer.
void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
}

void mix(std::uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  mix(h, s.size());
}

}  // namespace

std::uint64_t FrameworkConfig::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, mapping);
  mix(h, routing);
  mix(h, std::bit_cast<std::uint64_t>(hm_vdd));
  mix(h, static_cast<std::uint64_t>(hm_dop));
  mix(h, static_cast<std::uint64_t>(parm_adapt_vdd ? 1 : 0));
  mix(h, static_cast<std::uint64_t>(parm_adapt_dop ? 1 : 0));
  mix(h, std::bit_cast<std::uint64_t>(parm_fixed_vdd));
  mix(h, static_cast<std::uint64_t>(parm_fixed_dop));
  mix(h, std::bit_cast<std::uint64_t>(panr_threshold));
  return h;
}

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const FrameworkConfig& cfg, obs::Registry* registry) {
  if (cfg.mapping == "PARM") {
    ParmAdmissionPolicy::Options o;
    o.adapt_vdd = cfg.parm_adapt_vdd;
    o.adapt_dop = cfg.parm_adapt_dop;
    o.fixed_vdd = cfg.parm_fixed_vdd;
    o.fixed_dop = cfg.parm_fixed_dop;
    return std::make_unique<ParmAdmissionPolicy>(o, registry);
  }
  if (cfg.mapping == "HM") {
    return std::make_unique<HmAdmissionPolicy>(cfg.hm_vdd, cfg.hm_dop,
                                               registry);
  }
  PARM_CHECK(false, "unknown mapping framework: " + cfg.mapping);
}

std::vector<FrameworkConfig> paper_frameworks() {
  std::vector<FrameworkConfig> out;
  for (const char* m : {"HM", "PARM"}) {
    for (const char* r : {"XY", "ICON", "PANR"}) {
      FrameworkConfig cfg;
      cfg.mapping = m;
      cfg.routing = r;
      out.push_back(cfg);
    }
  }
  return out;
}

}  // namespace parm::core
