// Framework matrix: the six mapping × routing combinations the paper
// evaluates (HM/PARM × XY/ICON/PANR), plus ablation variants of PARM.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/admission.hpp"

namespace parm::core {

struct FrameworkConfig {
  std::string mapping = "PARM";  ///< "PARM" or "HM"
  std::string routing = "PANR";  ///< "XY", "WestFirst", "ICON" or "PANR"

  // HM's fixed operating point (nominal supply, mid DoP).
  double hm_vdd = 0.8;
  int hm_dop = 16;

  // PARM ablation knobs (bench/ablation_parm_knobs).
  bool parm_adapt_vdd = true;
  bool parm_adapt_dop = true;
  double parm_fixed_vdd = 0.8;
  int parm_fixed_dop = 16;

  double panr_threshold = 0.5;  ///< Buffer-occupancy threshold B.

  /// Display name, e.g. "PARM+PANR".
  std::string display_name() const { return mapping + "+" + routing; }

  /// Stable 64-bit digest of every behavior-affecting field. Snapshots
  /// embed it so a resume under a different framework (which would
  /// diverge from the original run) is rejected up front.
  std::uint64_t fingerprint() const;
};

/// Builds the admission policy for a framework configuration. The
/// policy's metrics go to `registry` (null → process-default).
std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const FrameworkConfig& cfg, obs::Registry* registry = nullptr);

/// The six paper frameworks in presentation order:
/// HM+XY, HM+ICON, HM+PANR, PARM+XY, PARM+ICON, PARM+PANR.
std::vector<FrameworkConfig> paper_frameworks();

}  // namespace parm::core
