#include "core/service_queue.hpp"

namespace parm::core {

ServiceQueue::ServiceQueue(int max_stalls) : max_stalls_(max_stalls) {
  PARM_CHECK(max_stalls >= 1, "need at least one stall before dropping");
}

void ServiceQueue::enqueue(appmodel::AppArrival app) {
  queue_.push_back(Waiting{std::move(app), 0});
}

std::optional<ServiceQueue::Admitted> ServiceQueue::pump(
    double now_s, const cmp::Platform& platform,
    const AdmissionPolicy& policy) {
  while (!queue_.empty()) {
    Waiting& head = queue_.front();
    AdmissionResult r = policy.try_admit(head.app, now_s, platform);
    if (r.admitted()) {
      Admitted out{std::move(head.app), std::move(*r.decision)};
      queue_.pop_front();
      return out;
    }
    if (r.failure == AdmissionFailure::Drop ||
        ++head.stall_count > max_stalls_) {
      dropped_.push_back(std::move(head.app));
      queue_.pop_front();
      continue;  // try the next waiting app
    }
    break;  // head stalls: FCFS blocks until the next event
  }
  return std::nullopt;
}

}  // namespace parm::core
