#include "core/service_queue.hpp"

#include "obs/metrics.hpp"

namespace parm::core {

ServiceQueue::ServiceQueue(int max_stalls, obs::Registry* registry)
    : max_stalls_(max_stalls),
      admissions_(&obs::resolve(registry).counter("core.queue_admissions")),
      drops_(&obs::resolve(registry).counter("core.queue_drops")),
      // Waits span "admitted on arrival" (0 s) to multi-second stalls.
      wait_s_(&obs::resolve(registry).histogram(
          "core.queue_wait_s", {0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5,
                                1.0, 2.0, 5.0, 10.0, 30.0})) {
  PARM_CHECK(max_stalls >= 1, "need at least one stall before dropping");
}

void ServiceQueue::enqueue(appmodel::AppArrival app) {
  queue_.push_back(Waiting{std::move(app), 0});
}

void ServiceQueue::save(snapshot::Writer& w) const {
  w.begin_section("QUEU");
  w.i32(max_stalls_);
  w.u64(queue_.size());
  for (const Waiting& waiting : queue_) {
    w.i32(waiting.app.id);
    w.i32(waiting.stall_count);
  }
  w.u64(dropped_.size());
  for (const appmodel::AppArrival& app : dropped_) w.i32(app.id);
}

void ServiceQueue::restore(
    snapshot::Reader& r,
    const std::function<const appmodel::AppArrival&(int)>& arrival_by_id) {
  r.expect_section("QUEU");
  const std::int32_t max_stalls = r.i32();
  if (max_stalls != max_stalls_) {
    throw snapshot::SnapshotError(
        "service queue max_stalls mismatch between snapshot and config");
  }
  queue_.clear();
  const std::uint64_t n_waiting = r.count(8);
  for (std::uint64_t i = 0; i < n_waiting; ++i) {
    const int id = r.i32();
    const int stalls = r.i32();
    queue_.push_back(Waiting{arrival_by_id(id), stalls});
  }
  dropped_.clear();
  const std::uint64_t n_dropped = r.count(4);
  for (std::uint64_t i = 0; i < n_dropped; ++i) {
    dropped_.push_back(arrival_by_id(r.i32()));
  }
}

std::optional<ServiceQueue::Admitted> ServiceQueue::pump(
    double now_s, const cmp::Platform& platform,
    const AdmissionPolicy& policy) {
  while (!queue_.empty()) {
    Waiting& head = queue_.front();
    AdmissionResult r = policy.try_admit(head.app, now_s, platform);
    if (r.admitted()) {
      admissions_->inc();
      wait_s_->observe(now_s - head.app.arrival_s);
      Admitted out{std::move(head.app), std::move(*r.decision)};
      queue_.pop_front();
      return out;
    }
    if (r.failure == AdmissionFailure::Drop ||
        ++head.stall_count > max_stalls_) {
      drops_->inc();
      dropped_.push_back(std::move(head.app));
      queue_.pop_front();
      continue;  // try the next waiting app
    }
    break;  // head stalls: FCFS blocks until the next event
  }
  return std::nullopt;
}

}  // namespace parm::core
