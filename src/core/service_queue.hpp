// FCFS service queue with stall/drop semantics (paper sections 3.2, 4.1).
//
// Applications wait here after arrival. On every scheduling event (an
// arrival or an application exit) the queue head is offered to the
// admission policy:
//   admitted → dequeued, returned to the caller for commitment;
//   Drop     → dequeued and counted as dropped (deadline infeasible);
//   Stall    → the head blocks the queue (FCFS) until the next event; an
//              app that has stalled more than `max_stalls` times is
//              dropped to avoid stagnation (Alg. 1, last paragraph).
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "core/admission.hpp"
#include "snapshot/serializer.hpp"

namespace parm::core {

class ServiceQueue {
 public:
  /// core.queue_* metrics go to `registry`; null selects the
  /// process-default.
  explicit ServiceQueue(int max_stalls = 3,
                        obs::Registry* registry = nullptr);

  void enqueue(appmodel::AppArrival app);

  /// Runs the admission loop at time `now_s`: repeatedly offers the head
  /// to `policy` until the queue empties or the head stalls. The caller
  /// must commit each returned decision to the platform *before* the next
  /// call (the loop stops after each admission so resources are charged).
  ///
  /// Returns the admitted (arrival, decision) pair for at most one app per
  /// call; call again to continue draining after committing.
  struct Admitted {
    appmodel::AppArrival app;
    AdmissionDecision decision;
  };
  std::optional<Admitted> pump(double now_s, const cmp::Platform& platform,
                               const AdmissionPolicy& policy);

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Applications dropped so far (deadline-infeasible or over-stalled).
  const std::vector<appmodel::AppArrival>& dropped() const {
    return dropped_;
  }

  // --- Snapshot hooks ---
  /// Waiting and dropped apps are serialized as (arrival id, stall count)
  /// pairs — the heavyweight profiles are reconstruction inputs the
  /// restoring process resolves through `arrival_by_id` (the simulator's
  /// immutable arrival list), not snapshot payload.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r,
               const std::function<const appmodel::AppArrival&(int)>&
                   arrival_by_id);

 private:
  struct Waiting {
    appmodel::AppArrival app;
    int stall_count = 0;
  };
  std::deque<Waiting> queue_;
  std::vector<appmodel::AppArrival> dropped_;
  int max_stalls_;
  obs::Counter* admissions_;
  obs::Counter* drops_;
  obs::Histogram* wait_s_;
};

}  // namespace parm::core
