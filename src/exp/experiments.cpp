#include "exp/experiments.hpp"

#include "common/check.hpp"

namespace parm::exp {

sim::SimConfig default_sim_config() {
  sim::SimConfig cfg;  // struct defaults already match the paper's setup
  return cfg;
}

std::vector<FrameworkRun> run_framework_matrix(
    const std::vector<core::FrameworkConfig>& frameworks,
    const appmodel::SequenceConfig& seq_cfg, const sim::SimConfig& base) {
  std::vector<FrameworkRun> out;
  out.reserve(frameworks.size());
  for (const core::FrameworkConfig& fw : frameworks) {
    sim::SimConfig cfg = base;
    cfg.framework = fw;
    std::vector<appmodel::AppArrival> seq = appmodel::make_sequence(seq_cfg);
    sim::SystemSimulator simulator(cfg, std::move(seq));
    out.push_back(FrameworkRun{fw.display_name(), simulator.run()});
  }
  return out;
}

std::vector<AveragedRun> run_matrix_averaged(
    const std::vector<core::FrameworkConfig>& frameworks,
    appmodel::SequenceConfig seq_cfg, const sim::SimConfig& base,
    const std::vector<std::uint64_t>& seeds) {
  PARM_CHECK(!seeds.empty(), "need at least one seed");
  std::vector<AveragedRun> out;
  out.reserve(frameworks.size());
  const double n = static_cast<double>(seeds.size());
  for (const core::FrameworkConfig& fw : frameworks) {
    AveragedRun avg;
    avg.framework = fw.display_name();
    for (std::uint64_t seed : seeds) {
      seq_cfg.seed = seed;
      sim::SimConfig cfg = base;
      cfg.framework = fw;
      sim::SystemSimulator simulator(cfg, appmodel::make_sequence(seq_cfg));
      const sim::SimResult r = simulator.run();
      avg.makespan_s += r.makespan_s / n;
      avg.peak_psn_percent += r.peak_psn_percent / n;
      avg.avg_psn_percent += r.avg_psn_percent / n;
      avg.completed += r.completed_count / n;
      avg.dropped += r.dropped_count / n;
      avg.ve_count += static_cast<double>(r.total_ve_count) / n;
      avg.noc_latency_cycles += r.avg_noc_latency_cycles / n;
      avg.avg_chip_power_w += r.avg_chip_power_w / n;
    }
    out.push_back(avg);
  }
  return out;
}

std::vector<core::FrameworkConfig> fig8_frameworks() {
  std::vector<core::FrameworkConfig> out;
  for (const auto& [m, r] : std::initializer_list<
           std::pair<const char*, const char*>>{{"HM", "XY"},
                                                {"PARM", "XY"},
                                                {"PARM", "ICON"},
                                                {"PARM", "PANR"}}) {
    core::FrameworkConfig cfg;
    cfg.mapping = m;
    cfg.routing = r;
    out.push_back(cfg);
  }
  return out;
}

}  // namespace parm::exp
