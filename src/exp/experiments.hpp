// Experiment harness shared by the bench binaries.
//
// Runs the paper's framework matrix (HM/PARM × XY/ICON/PANR) over
// identical workload sequences and collects the metrics Figs. 6-8 plot.
#pragma once

#include <string>
#include <vector>

#include "appmodel/workload.hpp"
#include "core/framework.hpp"
#include "sim/system_sim.hpp"

namespace parm::exp {

/// Simulator defaults used by every paper experiment (60-core 10×6 CMP at
/// 7 nm, DsPB 65 W, 1 ms epochs).
sim::SimConfig default_sim_config();

/// Result of one framework over one sequence.
struct FrameworkRun {
  std::string framework;  ///< e.g. "PARM+PANR"
  sim::SimResult result;
};

/// Runs every framework in `frameworks` on the *same* sequence generated
/// from `seq_cfg` (same seed → identical arrivals/deadlines/profiles).
std::vector<FrameworkRun> run_framework_matrix(
    const std::vector<core::FrameworkConfig>& frameworks,
    const appmodel::SequenceConfig& seq_cfg, const sim::SimConfig& base);

/// Convenience: the four frameworks Fig. 8 compares.
std::vector<core::FrameworkConfig> fig8_frameworks();

/// Seed-averaged metrics of one framework over one sequence configuration.
struct AveragedRun {
  std::string framework;
  double makespan_s = 0.0;
  double peak_psn_percent = 0.0;
  double avg_psn_percent = 0.0;
  double completed = 0.0;
  double dropped = 0.0;
  double ve_count = 0.0;
  double noc_latency_cycles = 0.0;
  double avg_chip_power_w = 0.0;
};

/// Runs each framework over `seeds` instances of the sequence (varying
/// only the sequence seed) and averages the headline metrics. Every
/// framework sees the identical set of sequences.
std::vector<AveragedRun> run_matrix_averaged(
    const std::vector<core::FrameworkConfig>& frameworks,
    appmodel::SequenceConfig seq_cfg, const sim::SimConfig& base,
    const std::vector<std::uint64_t>& seeds);

}  // namespace parm::exp
