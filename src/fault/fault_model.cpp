#include "fault/fault_model.hpp"

#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace parm::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kRouterDown:
      return "router-down";
    case FaultKind::kRouterUp:
      return "router-up";
  }
  return "unknown";
}

namespace {

bool is_link(FaultKind k) {
  return k == FaultKind::kLinkDown || k == FaultKind::kLinkUp;
}

void validate_event(const FaultEvent& e, const MeshGeometry& mesh,
                    const std::string& where) {
  PARM_CHECK(e.time_s >= 0.0, where + ": fault time must be >= 0");
  PARM_CHECK(e.tile >= 0 && e.tile < mesh.tile_count(),
             where + ": fault tile out of mesh range");
  if (is_link(e.kind)) {
    PARM_CHECK(e.dir != Direction::Local,
               where + ": link fault direction must be cardinal");
    PARM_CHECK(mesh.neighbor(e.tile, e.dir) != kInvalidTile,
               where + ": link fault points off the mesh edge");
  }
}

void validate_event(const FaultEvent& e, const noc::Topology& topo,
                    const std::string& where) {
  PARM_CHECK(e.time_s >= 0.0, where + ": fault time must be >= 0");
  PARM_CHECK(e.tile >= 0 && e.tile < topo.tile_count(),
             where + ": fault tile out of range for " + topo.spec());
  if (is_link(e.kind)) {
    const int port = static_cast<int>(e.dir);
    PARM_CHECK(port >= 0 && port < topo.local_port(),
               where + ": link fault port out of range for " + topo.spec());
    PARM_CHECK(topo.link_dst(e.tile, port) != kInvalidTile,
               where + ": link fault names an unwired port of tile " +
                   std::to_string(e.tile) + " on " + topo.spec());
  }
}

}  // namespace

void FaultSchedule::validate(const MeshGeometry& mesh) const {
  double prev = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::ostringstream where;
    where << "fault schedule entry " << i;
    validate_event(events[i], mesh, where.str());
    PARM_CHECK(events[i].time_s >= prev,
               where.str() + ": fault schedule must be sorted by time");
    prev = events[i].time_s;
  }
}

void FaultSchedule::validate(const noc::Topology& topo) const {
  double prev = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::ostringstream where;
    where << "fault schedule entry " << i;
    validate_event(events[i], topo, where.str());
    PARM_CHECK(events[i].time_s >= prev,
               where.str() + ": fault schedule must be sorted by time");
    prev = events[i].time_s;
  }
}

FaultSchedule schedule_from_text(const std::string& text,
                                 const MeshGeometry& mesh) {
  FaultSchedule out;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  double prev = 0.0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::ostringstream where;
    where << "fault schedule line " << lineno;
    // Strip trailing comment, then skip blank lines.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;

    FaultEvent e;
    std::string state;
    if (kind == "link") {
      std::string dir;
      PARM_CHECK(static_cast<bool>(fields >> e.time_s),
                 where.str() + ": missing or malformed time");
      PARM_CHECK(static_cast<bool>(fields >> e.tile),
                 where.str() + ": missing or malformed tile id");
      PARM_CHECK(static_cast<bool>(fields >> dir >> state),
                 where.str() + ": expected <E|W|N|S> <down|up>");
      if (dir == "E") {
        e.dir = Direction::East;
      } else if (dir == "W") {
        e.dir = Direction::West;
      } else if (dir == "N") {
        e.dir = Direction::North;
      } else if (dir == "S") {
        e.dir = Direction::South;
      } else {
        PARM_CHECK(false, where.str() + ": bad direction '" + dir + "'");
      }
      PARM_CHECK(state == "down" || state == "up",
                 where.str() + ": expected down or up, got '" + state + "'");
      e.kind = state == "down" ? FaultKind::kLinkDown : FaultKind::kLinkUp;
    } else if (kind == "router") {
      PARM_CHECK(static_cast<bool>(fields >> e.time_s),
                 where.str() + ": missing or malformed time");
      PARM_CHECK(static_cast<bool>(fields >> e.tile),
                 where.str() + ": missing or malformed tile id");
      PARM_CHECK(static_cast<bool>(fields >> state),
                 where.str() + ": expected <down|up>");
      PARM_CHECK(state == "down" || state == "up",
                 where.str() + ": expected down or up, got '" + state + "'");
      e.kind =
          state == "down" ? FaultKind::kRouterDown : FaultKind::kRouterUp;
    } else {
      PARM_CHECK(false, where.str() + ": unknown keyword '" + kind + "'");
    }
    std::string extra;
    PARM_CHECK(!(fields >> extra),
               where.str() + ": trailing garbage '" + extra + "'");
    validate_event(e, mesh, where.str());
    PARM_CHECK(e.time_s >= prev,
               where.str() + ": fault schedule must be sorted by time");
    prev = e.time_s;
    out.events.push_back(e);
  }
  return out;
}

FaultSchedule schedule_from_text(const std::string& text,
                                 const noc::Topology& topo) {
  FaultSchedule out;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  double prev = 0.0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::ostringstream where;
    where << "fault schedule line " << lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;

    FaultEvent e;
    std::string state;
    if (kind == "link") {
      std::string dir;
      PARM_CHECK(static_cast<bool>(fields >> e.time_s),
                 where.str() + ": missing or malformed time");
      PARM_CHECK(static_cast<bool>(fields >> e.tile),
                 where.str() + ": missing or malformed tile id");
      PARM_CHECK(static_cast<bool>(fields >> dir >> state),
                 where.str() + ": expected <port> <down|up>");
      const int port = topo.port_by_name(dir);
      PARM_CHECK(port >= 0 && port != topo.local_port(),
                 where.str() + ": bad port '" + dir + "' for " +
                     topo.spec());
      e.dir = static_cast<Direction>(port);
      PARM_CHECK(state == "down" || state == "up",
                 where.str() + ": expected down or up, got '" + state + "'");
      e.kind = state == "down" ? FaultKind::kLinkDown : FaultKind::kLinkUp;
    } else if (kind == "router") {
      PARM_CHECK(static_cast<bool>(fields >> e.time_s),
                 where.str() + ": missing or malformed time");
      PARM_CHECK(static_cast<bool>(fields >> e.tile),
                 where.str() + ": missing or malformed tile id");
      PARM_CHECK(static_cast<bool>(fields >> state),
                 where.str() + ": expected <down|up>");
      PARM_CHECK(state == "down" || state == "up",
                 where.str() + ": expected down or up, got '" + state + "'");
      e.kind =
          state == "down" ? FaultKind::kRouterDown : FaultKind::kRouterUp;
    } else {
      PARM_CHECK(false, where.str() + ": unknown keyword '" + kind + "'");
    }
    std::string extra;
    PARM_CHECK(!(fields >> extra),
               where.str() + ": trailing garbage '" + extra + "'");
    validate_event(e, topo, where.str());
    PARM_CHECK(e.time_s >= prev,
               where.str() + ": fault schedule must be sorted by time");
    prev = e.time_s;
    out.events.push_back(e);
  }
  return out;
}

std::string schedule_to_text(const FaultSchedule& schedule) {
  std::ostringstream os;
  char buf[64];
  for (const FaultEvent& e : schedule.events) {
    std::snprintf(buf, sizeof(buf), "%.6f", e.time_s);
    if (is_link(e.kind)) {
      os << "link " << buf << ' ' << e.tile << ' '
         << parm::to_string(e.dir) << ' '
         << (e.kind == FaultKind::kLinkDown ? "down" : "up") << '\n';
    } else {
      os << "router " << buf << ' ' << e.tile << ' '
         << (e.kind == FaultKind::kRouterDown ? "down" : "up") << '\n';
    }
  }
  return os.str();
}

std::string schedule_to_text(const FaultSchedule& schedule,
                             const noc::Topology& topo) {
  std::ostringstream os;
  char buf[64];
  for (const FaultEvent& e : schedule.events) {
    std::snprintf(buf, sizeof(buf), "%.6f", e.time_s);
    if (is_link(e.kind)) {
      os << "link " << buf << ' ' << e.tile << ' '
         << topo.port_name(static_cast<int>(e.dir)) << ' '
         << (e.kind == FaultKind::kLinkDown ? "down" : "up") << '\n';
    } else {
      os << "router " << buf << ' ' << e.tile << ' '
         << (e.kind == FaultKind::kRouterDown ? "down" : "up") << '\n';
    }
  }
  return os.str();
}

void FaultConfig::validate() const {
  PARM_CHECK(random_link_failures >= 0,
             "faults.random_link_failures must be >= 0");
  PARM_CHECK(random_router_failures >= 0,
             "faults.random_router_failures must be >= 0");
  PARM_CHECK(random_fail_window_s > 0.0,
             "faults.random_fail_window_s must be > 0");
  PARM_CHECK(repair_after_s >= 0.0, "faults.repair_after_s must be >= 0");
  PARM_CHECK(
      sensor_dropout_per_epoch >= 0.0 && sensor_dropout_per_epoch <= 1.0,
      "faults.sensor_dropout_per_epoch must be in [0, 1]");
  PARM_CHECK(bit_error_base >= 0.0 && bit_error_base <= 1.0,
             "faults.bit_error_base must be in [0, 1]");
  PARM_CHECK(bit_error_psn_slope >= 0.0,
             "faults.bit_error_psn_slope must be >= 0");
  PARM_CHECK(bit_error_psn_onset_percent >= 0.0,
             "faults.bit_error_psn_onset_percent must be >= 0");
  PARM_CHECK(bit_error_cap >= 0.0 && bit_error_cap <= 1.0,
             "faults.bit_error_cap must be in [0, 1]");
}

}  // namespace parm::fault
