// Fault model for degraded-operation studies: what can break, when, and
// with what severity.
//
// Three fault classes (cf. the probabilistic NoC-verification line the
// campaign driver reproduces):
//  - topology faults: mesh links and whole routers go down (and possibly
//    come back) at scheduled simulation times;
//  - sensor dropout: a tile's PSN sensor fails to refresh for an epoch,
//    so the management layers act on stale data while the physical noise
//    keeps moving;
//  - transient flit bit-errors: a per-packet corruption probability that
//    rises with the tile's PDN droop once it approaches the VE threshold
//    (errors cluster exactly when mitigation is busiest).
//
// Everything here is configuration + a deterministic schedule
// representation; the epoch-phase wiring lives in fault/fault_phase.hpp.
// The schedule has a line-oriented text form so campaigns and tests can
// load fault scenarios from files:
//
//   # comment / blank lines ignored
//   link   <time_s> <tile> <E|W|N|S> <down|up>
//   router <time_s> <tile> <down|up>
//
// Lines must be sorted by time. A link is identified by (tile, direction)
// and treated as a full-duplex cable: both travel directions fail and
// recover together, so "link 0.5 7 E down" and the mirrored
// "link 0.5 8 W down" name the same physical fault.
//
// On non-mesh topologies the direction token is a *port name* as printed
// by noc::Topology::port_name — "E|W|N|S" on grid-like fabrics, "U|D"
// for the 3D mesh's vertical ports, "p<k>" for everything else (spokes,
// butterfly express lanes, irregular-file adjacency ports).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "noc/topology.hpp"

namespace parm::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown = 0,
  kLinkUp,
  kRouterDown,
  kRouterUp,
};

const char* to_string(FaultKind k);

/// One scheduled topology fault transition.
struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDown;
  double time_s = 0.0;
  TileId tile = kInvalidTile;
  /// Link events only: the outgoing *port index* of the failed cable as
  /// seen from `tile` (the Direction enum legally carries general port
  /// indices; on the mesh they coincide with E/W/N/S). Ignored for
  /// router events.
  Direction dir = Direction::East;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A time-sorted list of topology fault transitions.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Throws CheckError unless every event is in range for `mesh` (tile on
  /// the mesh, link direction cardinal and not pointing off the edge) and
  /// the list is sorted by time with non-negative times.
  void validate(const MeshGeometry& mesh) const;
  /// Topology-general form: link ports must be wired on `topo`.
  void validate(const noc::Topology& topo) const;
};

/// Parses the line-oriented text form described in the header comment.
/// Throws CheckError (with the offending line number) on malformed input:
/// unknown keywords, missing fields, unparsable numbers, out-of-range
/// tiles, edge links, bad directions, or out-of-order times.
FaultSchedule schedule_from_text(const std::string& text,
                                 const MeshGeometry& mesh);
/// Topology-general form: the direction token is a port name resolved
/// through topo.port_by_name ("E|W|N|S", "U|D", or "p<k>").
FaultSchedule schedule_from_text(const std::string& text,
                                 const noc::Topology& topo);

/// Inverse of schedule_from_text (canonical spacing, 6-digit times).
std::string schedule_to_text(const FaultSchedule& schedule);
/// Topology-general form: prints link ports through topo.port_name.
std::string schedule_to_text(const FaultSchedule& schedule,
                             const noc::Topology& topo);

/// All fault-injection knobs, embedded in sim::SimConfig as `faults`.
/// With `enabled == false` (the default) the fault phase is never
/// constructed and the engine is bit-identical to the fault-free build
/// (pinned by tests/fault_test.cpp).
struct FaultConfig {
  bool enabled = false;

  /// Explicit topology faults, merged with the randomly generated ones.
  FaultSchedule schedule;

  /// Randomly generated topology faults: this many link / router
  /// failures, uniformly placed, with failure times drawn uniformly in
  /// [0, random_fail_window_s). Drawn once at construction from a
  /// dedicated fault RNG stream (seed ^ salt), so the generated schedule
  /// is a pure function of the simulation seed.
  int random_link_failures = 0;
  int random_router_failures = 0;
  double random_fail_window_s = 10.0;

  /// When > 0, every generated or scheduled *down* event is paired with
  /// an automatic repair this many seconds later. 0 = faults are
  /// permanent (explicit `up` lines in the schedule still apply).
  double repair_after_s = 0.0;

  /// Per-tile probability per epoch that the PSN sensor fails to
  /// refresh: the management layers (proactive throttle, VE rolls via
  /// the platform mirror, NoC PSN stalls) keep seeing the previous
  /// epoch's reading while the true droop moves on.
  double sensor_dropout_per_epoch = 0.0;

  /// Transient flit bit-error probability per packet, evaluated at the
  /// ejection tile: base + slope × max(0, tile peak PSN % − onset),
  /// capped at bit_error_cap. A corrupted packet is dropped at ejection
  /// and retransmitted from its source (counted, and visible as latency).
  double bit_error_base = 0.0;
  double bit_error_psn_slope = 0.0;
  double bit_error_psn_onset_percent = 4.0;
  double bit_error_cap = 0.01;

  /// True when any knob can affect the NoC data plane (topology faults
  /// or bit-errors); sensor dropout alone leaves the NoC healthy.
  bool any_topology_faults() const {
    return !schedule.empty() || random_link_failures > 0 ||
           random_router_failures > 0;
  }

  /// Throws CheckError when any field is out of range. Schedule/mesh
  /// consistency is checked separately (needs the mesh) by the fault
  /// phase at construction.
  void validate() const;
};

}  // namespace parm::fault
