#include "fault/fault_phase.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace parm::fault {

namespace {

/// Valid outgoing link ports of a tile in ascending port order — on the
/// mesh that is the fixed E,W,N,S order the determinism of the
/// random-schedule draw has always depended on.
std::vector<Direction> link_directions(const noc::Topology& topo, TileId t) {
  std::vector<Direction> dirs;
  for (int p = 0; p < topo.local_port(); ++p) {
    if (topo.link_dst(t, p) != kInvalidTile) {
      dirs.push_back(static_cast<Direction>(p));
    }
  }
  return dirs;
}

}  // namespace

FaultPhase::FaultPhase(const FaultConfig& cfg, const MeshGeometry& mesh,
                       std::uint64_t seed)
    : FaultPhase(cfg, noc::Topology::mesh(mesh.width(), mesh.height()),
                 seed) {}

FaultPhase::FaultPhase(const FaultConfig& cfg,
                       std::shared_ptr<const noc::Topology> topo,
                       std::uint64_t seed)
    : cfg_(cfg), topo_(std::move(topo)), rng_(seed ^ kFaultSeedSalt) {
  PARM_CHECK(topo_ != nullptr, "fault phase needs a topology");
  cfg_.validate();
  cfg_.schedule.validate(*topo_);
  const std::size_t n = static_cast<std::size_t>(topo_->tile_count());
  last_sensed_.assign(n, 0.0);
  last_noc_sensed_.assign(n, 0.0);
  error_rates_.assign(n, 0.0);
  if (!cfg_.enabled) return;

  std::vector<FaultEvent>& ev = schedule_.events;
  ev = cfg_.schedule.events;
  // Auto-repair for explicit down events (explicit up lines still apply;
  // a second up on an already-alive element is a no-op transition).
  if (cfg_.repair_after_s > 0.0) {
    const std::size_t n_explicit = ev.size();
    for (std::size_t i = 0; i < n_explicit; ++i) {
      const FaultEvent& e = ev[i];
      if (e.kind == FaultKind::kLinkDown) {
        ev.push_back({FaultKind::kLinkUp, e.time_s + cfg_.repair_after_s,
                      e.tile, e.dir});
      } else if (e.kind == FaultKind::kRouterDown) {
        ev.push_back({FaultKind::kRouterUp, e.time_s + cfg_.repair_after_s,
                      e.tile, e.dir});
      }
    }
  }
  // Random topology faults, drawn from the dedicated stream in a fixed
  // order: the generated schedule is a pure function of (config, seed).
  for (int i = 0; i < cfg_.random_link_failures; ++i) {
    const TileId t = static_cast<TileId>(
        rng_.next_below(static_cast<std::uint64_t>(topo_->tile_count())));
    const std::vector<Direction> dirs = link_directions(*topo_, t);
    const Direction d = dirs[rng_.pick_index(dirs.size())];
    const double when = rng_.uniform(0.0, cfg_.random_fail_window_s);
    ev.push_back({FaultKind::kLinkDown, when, t, d});
    if (cfg_.repair_after_s > 0.0) {
      ev.push_back({FaultKind::kLinkUp, when + cfg_.repair_after_s, t, d});
    }
  }
  for (int i = 0; i < cfg_.random_router_failures; ++i) {
    const TileId t = static_cast<TileId>(
        rng_.next_below(static_cast<std::uint64_t>(topo_->tile_count())));
    const double when = rng_.uniform(0.0, cfg_.random_fail_window_s);
    ev.push_back({FaultKind::kRouterDown, when, t, Direction::East});
    if (cfg_.repair_after_s > 0.0) {
      ev.push_back({FaultKind::kRouterUp, when + cfg_.repair_after_s, t,
                    Direction::East});
    }
  }
  std::stable_sort(ev.begin(), ev.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
}

void FaultPhase::remap_stranded(sim::EpochContext& ctx, TileId dead_tile,
                                std::int32_t& stranded) {
  cmp::Platform& platform = *ctx.platform;
  for (sim::RunningApp& app : ctx.running) {
    for (sim::RunningTask& task : app.tasks) {
      if (task.tile != dead_tile || task.done()) continue;
      // Closest free *usable* domain to the dying tile's (the dead tile
      // is already masked, so its own domain is never offered).
      const std::vector<DomainId> free = platform.free_domains();
      if (free.empty()) {
        ++stranded;
        ++stranded_tasks_;
        continue;  // frozen in place until repair or completion
      }
      const DomainId from_d = topo_->domain_of(task.tile);
      DomainId best = free.front();
      double best_dist = 1e18;
      for (const DomainId d : free) {
        const double dist = topo_->domain_distance(d, from_d);
        if (dist < best_dist) {
          best_dist = dist;
          best = d;
        }
      }
      TileId target = kInvalidTile;
      for (const TileId cand : topo_->domain_tiles(best)) {
        if (cand != kInvalidTile) {
          target = cand;
          break;
        }
      }
      if (target == kInvalidTile) {
        ++stranded;
        ++stranded_tasks_;
        continue;
      }
      ctx.emit(obs::EventType::kAppMigrate, app.outcome_index,
               static_cast<std::int32_t>(task.tile), -1,
               static_cast<double>(target),
               ctx.tile_psn_peak[static_cast<std::size_t>(task.tile)]);
      platform.migrate(app.instance, task.tile, target);
      task.tile = target;
      task.remaining_cycles += ctx.cfg->migration_cost_cycles;
      task.hot_epochs = 0;
      ++task_remaps_;
    }
  }
}

void FaultPhase::fire(sim::EpochContext& ctx, noc::Network& net,
                      const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp: {
      const bool down = e.kind == FaultKind::kLinkDown;
      net.set_link_fault(e.tile, e.dir, down);
      ++link_fault_events_;
      ctx.emit(down ? obs::EventType::kFaultLinkDown
                    : obs::EventType::kFaultLinkUp,
               -1, static_cast<std::int32_t>(e.tile), -1,
               static_cast<double>(static_cast<int>(e.dir)));
      break;
    }
    case FaultKind::kRouterDown: {
      net.set_router_fault(e.tile, true);
      ctx.platform->set_tile_faulty(e.tile, true);
      ctx.tile_dead[static_cast<std::size_t>(e.tile)] = 1;
      ++router_fault_events_;
      std::int32_t stranded = 0;
      remap_stranded(ctx, e.tile, stranded);
      ctx.emit(obs::EventType::kFaultRouterDown, -1,
               static_cast<std::int32_t>(e.tile),
               static_cast<std::int32_t>(topo_->domain_of(e.tile)), 0.0,
               static_cast<double>(stranded));
      break;
    }
    case FaultKind::kRouterUp: {
      net.set_router_fault(e.tile, false);
      ctx.platform->set_tile_faulty(e.tile, false);
      ctx.tile_dead[static_cast<std::size_t>(e.tile)] = 0;
      ++router_fault_events_;
      ctx.emit(obs::EventType::kFaultRouterUp, -1,
               static_cast<std::int32_t>(e.tile),
               static_cast<std::int32_t>(topo_->domain_of(e.tile)));
      break;
    }
  }
}

void FaultPhase::apply_topology(sim::EpochContext& ctx, noc::Network& net) {
  if (!cfg_.enabled) return;
  const std::vector<FaultEvent>& ev = schedule_.events;
  while (cursor_ < ev.size() && ev[cursor_].time_s <= ctx.t + 1e-12) {
    fire(ctx, net, ev[cursor_]);
    ++cursor_;
  }
}

void FaultPhase::perturb_sensors(sim::EpochContext& ctx, noc::Network& net) {
  // The sensed view defaults to the truth every epoch — also when faults
  // are off, so management code can read it unconditionally.
  ctx.tile_psn_sensed = ctx.tile_psn_peak;
  if (!cfg_.enabled) return;

  bool any_dropout = false;
  if (cfg_.sensor_dropout_per_epoch > 0.0) {
    for (std::size_t t = 0; t < ctx.tile_psn_sensed.size(); ++t) {
      if (!rng_.bernoulli(cfg_.sensor_dropout_per_epoch)) continue;
      any_dropout = true;
      ++sensor_dropout_epochs_;
      ctx.emit(obs::EventType::kFaultSensorDropout, -1,
               static_cast<std::int32_t>(t), -1, last_sensed_[t],
               ctx.tile_psn_sensed[t]);
      ctx.tile_psn_sensed[t] = last_sensed_[t];
      ctx.noc_psn_sensor[t] = last_noc_sensed_[t];
    }
  }
  last_sensed_ = ctx.tile_psn_sensed;
  last_noc_sensed_ = ctx.noc_psn_sensor;
  if (any_dropout) {
    // The platform mirror was written with the truth by the PSN phase;
    // overwrite it with the sensed view so admission/emergency checks
    // that read the platform see what the (failing) sensors report.
    ctx.platform->set_tile_psn(ctx.tile_psn_sensed);
  }

  // Droop-dependent bit-error rates for the next NoC window, from the
  // *true* per-tile PSN — corruption is physics, not perception.
  if (cfg_.bit_error_base > 0.0 || cfg_.bit_error_psn_slope > 0.0) {
    for (std::size_t t = 0; t < error_rates_.size(); ++t) {
      const double over = std::max(
          0.0, ctx.tile_psn_peak[t] - cfg_.bit_error_psn_onset_percent);
      error_rates_[t] =
          std::min(cfg_.bit_error_cap,
                   cfg_.bit_error_base + cfg_.bit_error_psn_slope * over);
    }
    net.set_flit_error_rates(error_rates_);
  }
}

void FaultPhase::save(snapshot::Writer& w) const {
  w.begin_section("FLTS");
  w.u64(cursor_);
  w.u64(link_fault_events_);
  w.u64(router_fault_events_);
  w.u64(sensor_dropout_epochs_);
  w.u64(task_remaps_);
  w.u64(stranded_tasks_);
  const Rng::State rs = rng_.state();
  for (const std::uint64_t word : rs.s) w.u64(word);
  w.b(rs.have_cached_normal);
  w.f64(rs.cached_normal);
  w.vec_f64(last_sensed_);
  w.vec_f64(last_noc_sensed_);
}

void FaultPhase::restore(snapshot::Reader& r) {
  r.expect_section("FLTS");
  cursor_ = r.u64();
  if (cursor_ > schedule_.events.size()) {
    throw snapshot::SnapshotError("snapshot fault cursor out of range");
  }
  link_fault_events_ = r.u64();
  router_fault_events_ = r.u64();
  sensor_dropout_epochs_ = r.u64();
  task_remaps_ = r.u64();
  stranded_tasks_ = r.u64();
  Rng::State rs;
  for (std::uint64_t& word : rs.s) word = r.u64();
  rs.have_cached_normal = r.b();
  rs.cached_normal = r.f64();
  rng_.restore(rs);
  last_sensed_ = r.vec_f64();
  last_noc_sensed_ = r.vec_f64();
  const std::size_t n = static_cast<std::size_t>(topo_->tile_count());
  if (last_sensed_.size() != n || last_noc_sensed_.size() != n) {
    throw snapshot::SnapshotError(
        "snapshot fault sensor state does not match the mesh");
  }
}

}  // namespace parm::fault
