// Fault-injection phase of the epoch engine: the observe-then-perturb
// counterpart to the observe-only flight recorder.
//
// The phase hooks into SystemSimulator::run() at two points:
//
//   apply_topology()   loop top, before arrivals — fires every scheduled
//                      topology transition due at the current time into
//                      the network (degraded routing, purge) and the
//                      platform (faulty-tile mask), and re-maps tasks
//                      stranded on a dying router to the closest free
//                      usable domain (or strands them, frozen, when the
//                      mesh has no room);
//
//   perturb_sensors()  after PSN sampling — copies the true per-tile PSN
//                      into the *sensed* view the management layers act
//                      on, applies per-epoch sensor dropout (a dropped
//                      sensor holds its previous reading), and refreshes
//                      the network's droop-dependent flit bit-error
//                      rates from the true (physical) PSN.
//
// Physics always acts on the true values (VE rolls, PDN loads); only the
// management plane (throttle guard, platform sensor mirror, the NoC's
// PSN-aware routing view) sees the perturbed ones. With faults disabled
// both calls are cheap no-ops past a copy and the engine is bit-identical
// to the pre-fault build: the phase draws from a dedicated RNG stream
// (seed ^ salt) so the main simulation stream is never consumed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "fault/fault_model.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "sim/epoch_context.hpp"
#include "snapshot/serializer.hpp"

namespace parm::fault {

/// Salt mixed into the simulation seed for the fault RNG stream and the
/// network's counter-based bit-error hash.
inline constexpr std::uint64_t kFaultSeedSalt = 0xFA01'7A51'7D15'0B5EULL;

class FaultPhase {
 public:
  /// Validates `cfg` and its schedule against `topo`, generates the
  /// random topology faults from the dedicated stream, and merges them
  /// with the explicit schedule (time-sorted). Throws CheckError on any
  /// out-of-range knob or schedule entry.
  FaultPhase(const FaultConfig& cfg,
             std::shared_ptr<const noc::Topology> topo, std::uint64_t seed);
  /// Mesh convenience wrapper (tests and legacy call sites).
  FaultPhase(const FaultConfig& cfg, const MeshGeometry& mesh,
             std::uint64_t seed);

  bool enabled() const { return cfg_.enabled; }

  /// The merged (explicit + generated + auto-repair) schedule — a pure
  /// function of (config, seed); exposed for tests.
  const FaultSchedule& schedule() const { return schedule_; }

  /// Fires every schedule event with time <= ctx.t into `net` and the
  /// platform; see the header comment.
  void apply_topology(sim::EpochContext& ctx, noc::Network& net);

  /// Maintains ctx.tile_psn_sensed (and on dropout the platform mirror
  /// and NoC sensor view) and the network's bit-error rates.
  void perturb_sensors(sim::EpochContext& ctx, noc::Network& net);

  // Cumulative counters over the run (never reset mid-run).
  std::uint64_t link_fault_events() const { return link_fault_events_; }
  std::uint64_t router_fault_events() const { return router_fault_events_; }
  std::uint64_t sensor_dropout_epochs() const {
    return sensor_dropout_epochs_;
  }
  std::uint64_t task_remaps() const { return task_remaps_; }
  std::uint64_t stranded_tasks() const { return stranded_tasks_; }

  /// Snapshot section "FLTS": schedule cursor, counters, the fault RNG
  /// stream, and the held sensor readings. The schedule itself is not
  /// payload — it is regenerated at construction from (config, seed),
  /// which the fingerprint pins.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  void fire(sim::EpochContext& ctx, noc::Network& net, const FaultEvent& e);
  void remap_stranded(sim::EpochContext& ctx, TileId dead_tile,
                      std::int32_t& stranded);

  FaultConfig cfg_;
  std::shared_ptr<const noc::Topology> topo_;
  Rng rng_;  ///< dedicated stream: seeded with seed ^ kFaultSeedSalt
  FaultSchedule schedule_;
  std::size_t cursor_ = 0;
  /// Held per-tile readings for dropout (previous epoch's sensed values).
  std::vector<double> last_sensed_;
  std::vector<double> last_noc_sensed_;
  /// Scratch for the per-tile bit-error rates (avoids per-epoch alloc).
  std::vector<double> error_rates_;
  std::uint64_t link_fault_events_ = 0;
  std::uint64_t router_fault_events_ = 0;
  std::uint64_t sensor_dropout_epochs_ = 0;
  std::uint64_t task_remaps_ = 0;
  std::uint64_t stranded_tasks_ = 0;
};

}  // namespace parm::fault
