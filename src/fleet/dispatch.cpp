#include "fleet/dispatch.hpp"

#include <algorithm>

#include "appmodel/application.hpp"
#include "common/check.hpp"

namespace parm::fleet {

double arrival_load_cycles(const appmodel::AppArrival& arrival) {
  if (arrival.profile == nullptr || arrival.profile->dops().empty()) {
    return 0.0;
  }
  const appmodel::DopVariant& v =
      arrival.profile->variant(arrival.profile->dops().front());
  double cycles = 0.0;
  for (const appmodel::TaskProfile& t : v.tasks) cycles += t.work_cycles;
  return cycles;
}

RoundRobinDispatcher::RoundRobinDispatcher(int chip_count)
    : chip_count_(chip_count) {
  PARM_CHECK(chip_count_ >= 1, "dispatcher needs at least one chip");
}

int RoundRobinDispatcher::pick(const appmodel::AppArrival&) {
  const int chip = next_;
  next_ = (next_ + 1) % chip_count_;
  return chip;
}

LeastLoadedDispatcher::LeastLoadedDispatcher(int chip_count) {
  PARM_CHECK(chip_count >= 1, "dispatcher needs at least one chip");
  load_cycles_.assign(static_cast<std::size_t>(chip_count), 0.0);
}

int LeastLoadedDispatcher::pick(const appmodel::AppArrival& arrival) {
  // std::min_element returns the first minimum, so ties deterministically
  // go to the lowest chip id.
  const auto it = std::min_element(load_cycles_.begin(), load_cycles_.end());
  const int chip = static_cast<int>(it - load_cycles_.begin());
  *it += arrival_load_cycles(arrival);
  return chip;
}

std::unique_ptr<Dispatcher> make_dispatcher(const std::string& name,
                                            int chip_count) {
  if (name == "round-robin") {
    return std::make_unique<RoundRobinDispatcher>(chip_count);
  }
  if (name == "least-loaded") {
    return std::make_unique<LeastLoadedDispatcher>(chip_count);
  }
  PARM_CHECK(false, "unknown dispatch policy \"" + name +
                        "\" (expected round-robin or least-loaded)");
  return nullptr;  // unreachable
}

}  // namespace parm::fleet
