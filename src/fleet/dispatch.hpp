// Arrival dispatchers for the multi-chip fleet driver.
//
// A Dispatcher assigns each application arrival of one shared stream to a
// chip index, in arrival order, before any chip starts simulating. Because
// the assignment consumes only the arrival list (never simulation state),
// the shard is fully determined by (stream, policy, chip count) — the
// foundation of the fleet's bit-reproducibility across thread counts.
//
// Two policies ship:
//   round-robin   — arrival i goes to chip i mod N.
//   least-loaded  — each arrival goes to the chip with the smallest
//                   accumulated work estimate (sum of the profiled
//                   smallest-DoP task work), ties to the lowest chip id.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "appmodel/workload.hpp"

namespace parm::fleet {

/// Deterministic work estimate (reference-clock cycles) of one arrival:
/// the summed per-task work of its smallest-DoP profiled variant. Used by
/// the least-loaded policy as a queue-length proxy.
double arrival_load_cycles(const appmodel::AppArrival& arrival);

/// Stateful arrival → chip assignment policy. pick() must be called once
/// per arrival, in arrival order.
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;
  virtual const char* name() const = 0;
  /// Chip index in [0, chip_count) for this arrival.
  virtual int pick(const appmodel::AppArrival& arrival) = 0;
};

class RoundRobinDispatcher final : public Dispatcher {
 public:
  explicit RoundRobinDispatcher(int chip_count);
  const char* name() const override { return "round-robin"; }
  int pick(const appmodel::AppArrival& arrival) override;

 private:
  int chip_count_;
  int next_ = 0;
};

class LeastLoadedDispatcher final : public Dispatcher {
 public:
  explicit LeastLoadedDispatcher(int chip_count);
  const char* name() const override { return "least-loaded"; }
  int pick(const appmodel::AppArrival& arrival) override;

 private:
  std::vector<double> load_cycles_;  ///< accumulated estimate per chip
};

/// Factory over the policy names above ("round-robin", "least-loaded").
/// Throws CheckError for an unknown name or a non-positive chip count.
std::unique_ptr<Dispatcher> make_dispatcher(const std::string& name,
                                            int chip_count);

}  // namespace parm::fleet
