#include "fleet/fleet_sim.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "fleet/dispatch.hpp"
#include "sim/system_sim.hpp"

namespace parm::fleet {

void FleetConfig::validate() const {
  chip.validate();
  PARM_CHECK(chip_count >= 1, "FleetConfig: chip_count must be >= 1");
  PARM_CHECK(threads >= 0, "FleetConfig: threads must be >= 0");
  if (dispatch != "replicate") {
    make_dispatcher(dispatch, chip_count);  // throws on an unknown policy
  }
}

FleetSimulator::FleetSimulator(FleetConfig cfg,
                               std::vector<appmodel::AppArrival> arrivals)
    : cfg_(std::move(cfg)),
      timeseries_(cfg_.chip.record_timeseries,
                  obs::TimeSeriesConfig{cfg_.chip.timeseries_capacity,
                                        cfg_.chip.timeseries_levels,
                                        cfg_.chip.timeseries_downsample},
                  &metrics_) {
  cfg_.validate();
  PARM_CHECK(std::is_sorted(arrivals.begin(), arrivals.end(),
                            [](const appmodel::AppArrival& a,
                               const appmodel::AppArrival& b) {
                              return a.arrival_s < b.arrival_s;
                            }),
             "fleet arrivals must be sorted by time");

  shards_.resize(static_cast<std::size_t>(cfg_.chip_count));
  global_ids_.resize(static_cast<std::size_t>(cfg_.chip_count));
  if (cfg_.dispatch == "replicate") {
    // Monte Carlo replication: every chip runs the full stream; only the
    // per-chip seed differs.
    for (std::size_t c = 0; c < shards_.size(); ++c) {
      auto& shard = shards_[c];
      shard.reserve(arrivals.size());
      for (const appmodel::AppArrival& a : arrivals) {
        global_ids_[c].push_back(a.id);
        appmodel::AppArrival copy = a;
        copy.id = static_cast<int>(shard.size());
        shard.push_back(std::move(copy));
      }
    }
  }
  if (cfg_.dispatch != "replicate") {
    const auto dispatcher = make_dispatcher(cfg_.dispatch, cfg_.chip_count);
    for (appmodel::AppArrival& a : arrivals) {
      const int chip = dispatcher->pick(a);
      PARM_CHECK(chip >= 0 && chip < cfg_.chip_count,
                 "dispatcher returned an out-of-range chip index");
      auto& shard = shards_[static_cast<std::size_t>(chip)];
      global_ids_[static_cast<std::size_t>(chip)].push_back(a.id);
      a.id = static_cast<int>(shard.size());
      shard.push_back(std::move(a));
    }
  }
  build_sims();
}

FleetSimulator::~FleetSimulator() = default;

void FleetSimulator::build_sims() {
  // Construct every chip up front: construction validates the config,
  // the serial merge after the parallel run reads their registries, and
  // live observers (the obs server's fleet endpoints) get a chip set
  // that never reseats.
  const auto n = static_cast<std::size_t>(cfg_.chip_count);
  sims_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    sim::SimConfig chip_cfg = cfg_.chip;
    chip_cfg.seed = cfg_.chip.seed + c;
    sims_[c] = std::make_unique<sim::SystemSimulator>(chip_cfg, shards_[c]);
  }
}

sim::SystemSimulator& FleetSimulator::chip_sim(int chip) {
  PARM_CHECK(chip >= 0 && chip < cfg_.chip_count, "chip index out of range");
  return *sims_[static_cast<std::size_t>(chip)];
}

const sim::SystemSimulator& FleetSimulator::chip_sim(int chip) const {
  PARM_CHECK(chip >= 0 && chip < cfg_.chip_count, "chip index out of range");
  return *sims_[static_cast<std::size_t>(chip)];
}

void FleetSimulator::merge_live_metrics(obs::Registry& into) const {
  for (const auto& sim : sims_) {
    // The chip's epoch loop holds this mutex across every epoch body, so
    // acquiring it means the chip is quiescent (between epochs, or not
    // running at all) — merge_from's read-unlocked contract holds.
    std::lock_guard<std::mutex> lock(sim->obs_mutex());
    into.merge_from(sim->metrics());
  }
}

obs::SloReport FleetSimulator::live_slo_report() const {
  std::vector<obs::SloReport> reports;
  reports.reserve(sims_.size());
  for (const auto& sim : sims_) {
    std::lock_guard<std::mutex> lock(sim->obs_mutex());
    reports.push_back(sim->slo().report());
  }
  return obs::merge_slo_reports(reports);
}

const std::vector<appmodel::AppArrival>& FleetSimulator::chip_arrivals(
    int chip) const {
  PARM_CHECK(chip >= 0 && chip < cfg_.chip_count, "chip index out of range");
  return shards_[static_cast<std::size_t>(chip)];
}

int FleetSimulator::global_id(int chip, int local_id) const {
  PARM_CHECK(chip >= 0 && chip < cfg_.chip_count, "chip index out of range");
  const auto& ids = global_ids_[static_cast<std::size_t>(chip)];
  PARM_CHECK(local_id >= 0 &&
                 static_cast<std::size_t>(local_id) < ids.size(),
             "local arrival id out of range");
  return ids[static_cast<std::size_t>(local_id)];
}

FleetResult FleetSimulator::run() {
  const auto n = static_cast<std::size_t>(cfg_.chip_count);
  auto& sims = sims_;

  // Chips write into pre-sized slots; aggregation stays serial, so the
  // fleet result is independent of scheduling (the pool's determinism
  // contract in common/thread_pool.hpp).
  FleetResult out;
  out.chips.resize(n);
  const auto run_chip = [&](std::size_t c) {
    out.chips[c] = sims[c]->run();
  };
  if (cfg_.threads == 1) {
    for (std::size_t c = 0; c < n; ++c) run_chip(c);
  } else if (cfg_.threads > 1) {
    ThreadPool pool(static_cast<std::size_t>(cfg_.threads) - 1);
    pool.parallel_for(n, run_chip);
  } else {
    ThreadPool::shared().parallel_for(n, run_chip);
  }

  for (std::size_t c = 0; c < n; ++c) {
    const sim::SimResult& r = out.chips[c];
    out.makespan_s = std::max(out.makespan_s, r.makespan_s);
    out.completed_count += r.completed_count;
    out.dropped_count += r.dropped_count;
    out.total_ve_count += r.total_ve_count;
    out.migration_count += r.migration_count;
    out.throttle_tile_epochs += r.throttle_tile_epochs;
    out.total_energy_j += r.total_energy_j;
    out.peak_psn_percent = std::max(out.peak_psn_percent, r.peak_psn_percent);
    out.peak_chip_power_w =
        std::max(out.peak_chip_power_w, r.peak_chip_power_w);
    out.timed_out = out.timed_out || r.timed_out;
    for (const sim::AppOutcome& o : r.apps) {
      sim::AppOutcome merged = o;
      merged.id = global_id(static_cast<int>(c), o.id);
      out.apps.push_back(std::move(merged));
    }
    metrics_.merge_from(sims[c]->metrics());

    // Fold this chip's flight recorder into the fleet event log: stamp
    // the chip index and rewrite chip-local app ids back to the global
    // stream id, mirroring the outcome re-iding above.
    for (obs::Event e : sims[c]->recorder().collect()) {
      e.chip = static_cast<std::int16_t>(c);
      if (e.app >= 0) e.app = global_id(static_cast<int>(c), e.app);
      events_.push_back(e);
    }

    // Clone this chip's waveforms under the "chip<k>." prefix — the
    // series-name analogue of the chip stamp on events.
    if (cfg_.chip.record_timeseries) {
      timeseries_.merge_from(sims[c]->timeseries(), static_cast<int>(c));
    }

    out.chip_health.push_back(
        obs::HealthMonitor().evaluate(sims[c]->metrics()));
  }
  std::sort(out.apps.begin(), out.apps.end(),
            [](const sim::AppOutcome& a, const sim::AppOutcome& b) {
              return a.id < b.id;
            });
  std::sort(events_.begin(), events_.end(),
            [](const obs::Event& a, const obs::Event& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.chip != b.chip) return a.chip < b.chip;
              return a.seq < b.seq;
            });
  out.fleet_health = obs::HealthMonitor().evaluate(metrics_);
  return out;
}

void FleetSimulator::dump_events_jsonl(std::ostream& os) const {
  for (const obs::Event& e : events_) {
    obs::write_event_json(os, e);
    os << '\n';
  }
}

void FleetSimulator::dump_timeseries_jsonl(std::ostream& os) const {
  timeseries_.dump_jsonl(os);
}

}  // namespace parm::fleet
