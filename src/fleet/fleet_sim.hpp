// Multi-chip fleet driver: N independent SystemSimulator instances fed by
// one shared arrival stream.
//
// The fleet models a rack of PARM-managed CMPs behind a single admission
// front door. A pluggable Dispatcher (fleet/dispatch.hpp) shards the
// sorted arrival stream across the chips up front; each chip then runs the
// full epoch-phase engine on its shard, all chips in parallel on
// parm::ThreadPool. Because every chip is a self-contained simulator with
// its own instance-scoped obs::Registry, its own RNG (seed = base seed +
// chip index) and its own arrival shard, chip runs never interact — the
// fleet result is bit-identical across repeats and across worker counts.
//
// The merged report sums per-app counts and energy, takes the fleet
// makespan as the slowest chip's makespan, folds every chip's metrics
// registry into FleetSimulator::metrics(), and re-ids every outcome back
// to its global (stream) arrival id.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "appmodel/workload.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/sim_config.hpp"

namespace parm::sim {
class SystemSimulator;
}

namespace parm::fleet {

struct FleetConfig {
  /// Per-chip simulation template. Chip k runs this config verbatim except
  /// for the RNG seed, which becomes `chip.seed + k`.
  sim::SimConfig chip;
  int chip_count = 4;
  /// Dispatch policy name: "round-robin", "least-loaded", or
  /// "replicate". The first two shard the stream; "replicate" hands every
  /// chip the FULL stream, so chip k is an independent Monte Carlo
  /// replicate of the same experiment differing only in its seed
  /// (chip.seed + k) — the campaign driver's batching primitive.
  std::string dispatch = "round-robin";
  /// Upper bound on chips simulated concurrently: 0 uses the shared
  /// process pool (PARM_THREADS-sized), 1 runs the chips serially on the
  /// calling thread, k > 1 uses a dedicated pool of that width. The
  /// result is bit-identical for every setting. Nested parallelism
  /// (chips × PSN domains × NoC shards) shares whatever pool is in use
  /// without oversubscribing: a chip's sharded NoC window completes on
  /// its own thread when no worker is free (see noc/shard_engine.hpp),
  /// so any combination of chip.parallel_psn / chip.parallel_noc with
  /// any thread setting is safe and bit-identical.
  int threads = 0;

  /// Throws CheckError when the chip template or any fleet field is out
  /// of range (delegates to sim::SimConfig::validate()).
  void validate() const;
};

/// Merged outcome of one fleet run plus the per-chip detail it was merged
/// from.
struct FleetResult {
  /// Per-chip engine results, indexed by chip.
  std::vector<sim::SimResult> chips;
  /// All outcomes across chips with AppOutcome::id rewritten back to the
  /// global stream id, sorted by that id.
  std::vector<sim::AppOutcome> apps;

  double makespan_s = 0.0;  ///< slowest chip
  int completed_count = 0;
  int dropped_count = 0;
  std::uint64_t total_ve_count = 0;
  std::uint64_t migration_count = 0;
  std::uint64_t throttle_tile_epochs = 0;
  double total_energy_j = 0.0;
  double peak_psn_percent = 0.0;  ///< max over chips
  double peak_chip_power_w = 0.0; ///< max over chips
  bool timed_out = false;         ///< any chip hit its time limit

  /// Health rollup: one report per chip (from that chip's registry) and
  /// one fleet-wide report from the merged registry. The fleet report's
  /// rates therefore aggregate every chip — a single sick chip shows up
  /// in its own report even when the fleet average looks fine.
  std::vector<obs::HealthReport> chip_health;
  obs::HealthReport fleet_health;
};

class FleetSimulator {
 public:
  /// Validates the config, checks the stream is sorted by arrival time,
  /// and shards it across the chips with the configured dispatcher.
  /// Arrival ids inside each shard are re-numbered densely (the engine
  /// requires ids to index its outcome table); the original stream ids
  /// are kept aside and restored in FleetResult::apps.
  FleetSimulator(FleetConfig cfg,
                 std::vector<appmodel::AppArrival> arrivals);
  ~FleetSimulator();

  /// Runs every chip (in parallel per FleetConfig::threads) and merges
  /// the results. Call once per simulator.
  FleetResult run();

  /// The chip simulators. Constructed up front (construction validates
  /// the per-chip config) and kept alive for the simulator's lifetime,
  /// so live observers — the obs HTTP server's fleet endpoints — have a
  /// stable set of chips to scrape before, during, and after run().
  sim::SystemSimulator& chip_sim(int chip);
  const sim::SystemSimulator& chip_sim(int chip) const;

  /// Live fleet rollup: folds every chip's registry into `into`,
  /// locking each chip's obs_mutex() first so running chips are
  /// quiescent (between epochs) while their tables are read. Callable at
  /// any time from any thread.
  void merge_live_metrics(obs::Registry& into) const;

  /// Live fleet SLO rollup: each chip's report (taken under its obs
  /// mutex) merged with merge_slo_reports — raw window sums added, admit
  /// p99 as the max over chips.
  obs::SloReport live_slo_report() const;

  /// Union of every chip's metrics registry (counters/gauges summed,
  /// histograms merged bucket-wise). Populated by run().
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Merged fleet event log (populated by run() when the chip template
  /// sets record_events): every chip's retained events with Event::chip
  /// stamped and Event::app rewritten to the global stream id, ordered by
  /// (time, chip, per-chip seq).
  const std::vector<obs::Event>& events() const { return events_; }
  /// Writes the merged event log as JSONL (one event object per line).
  void dump_events_jsonl(std::ostream& os) const;

  /// Merged fleet time-series store (populated by run() when the chip
  /// template sets record_timeseries): every chip's series cloned under a
  /// "chip<k>." name prefix — the waveform analogue of the chip-stamped
  /// event log above.
  const obs::TimeSeriesStore& timeseries() const { return timeseries_; }
  /// Writes the merged store as JSONL (one retained sample per line).
  void dump_timeseries_jsonl(std::ostream& os) const;

  int chip_count() const { return cfg_.chip_count; }
  /// The shard assigned to one chip (dense local ids).
  const std::vector<appmodel::AppArrival>& chip_arrivals(int chip) const;
  /// Global stream id of a chip's local arrival id.
  int global_id(int chip, int local_id) const;

 private:
  void build_sims();

  FleetConfig cfg_;
  std::vector<std::vector<appmodel::AppArrival>> shards_;
  std::vector<std::vector<int>> global_ids_;  ///< [chip][local id]
  /// One engine per chip, built in the constructor (see chip_sim()).
  std::vector<std::unique_ptr<sim::SystemSimulator>> sims_;
  obs::Registry metrics_;
  std::vector<obs::Event> events_;  ///< merged fleet event log
  /// Merged fleet time-series store. Registers its self-metrics in the
  /// fleet registry, but the merge never advances them — the registry
  /// merge above already folds each chip's timeseries.* counters, and
  /// advancing both would double-count.
  obs::TimeSeriesStore timeseries_;
};

}  // namespace parm::fleet
