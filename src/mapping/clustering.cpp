#include "mapping/clustering.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace parm::mapping {

std::vector<TaskCluster> cluster_tasks(const appmodel::DopVariant& variant) {
  const auto& tasks = variant.tasks;
  const std::size_t n = tasks.size();
  PARM_CHECK(n >= 1, "variant has no tasks");

  std::vector<bool> listed(n, false);
  std::vector<appmodel::TaskIndex> high;
  std::vector<appmodel::TaskIndex> low;

  auto push = [&](appmodel::TaskIndex t) {
    if (listed[static_cast<std::size_t>(t)]) return;
    listed[static_cast<std::size_t>(t)] = true;
    if (tasks[static_cast<std::size_t>(t)].activity_class() ==
        power::ActivityClass::High) {
      high.push_back(t);
    } else {
      low.push_back(t);
    }
  };

  // Lines 4-8: walk edges by decreasing volume; endpoints enter their
  // activity list in first-touch order, so each list is ordered by the
  // communication weight that pulled the task in.
  for (const auto& e : variant.graph.edges_by_decreasing_volume()) {
    push(e.src);
    push(e.dst);
  }
  // Tasks with no incident edges (possible in sparse shapes).
  for (appmodel::TaskIndex t = 0; t < static_cast<appmodel::TaskIndex>(n);
       ++t) {
    push(t);
  }

  // Line 9: chop each list into clusters of 4; merge both tails into one
  // final (possibly mixed) cluster.
  std::vector<TaskCluster> clusters;
  auto chop = [&](const std::vector<appmodel::TaskIndex>& list,
                  std::vector<appmodel::TaskIndex>& tail) {
    std::size_t i = 0;
    for (; i + 4 <= list.size(); i += 4) {
      TaskCluster c;
      c.tasks.assign(list.begin() + static_cast<std::ptrdiff_t>(i),
                     list.begin() + static_cast<std::ptrdiff_t>(i + 4));
      clusters.push_back(std::move(c));
    }
    tail.insert(tail.end(), list.begin() + static_cast<std::ptrdiff_t>(i),
                list.end());
  };
  std::vector<appmodel::TaskIndex> tail;
  chop(high, tail);
  chop(low, tail);
  // The merged tail may exceed 4 for hand-built variants whose task count
  // is not a multiple of 4; split it in order.
  for (std::size_t i = 0; i < tail.size(); i += 4) {
    TaskCluster c;
    const std::size_t end = std::min(i + 4, tail.size());
    c.tasks.assign(tail.begin() + static_cast<std::ptrdiff_t>(i),
                   tail.begin() + static_cast<std::ptrdiff_t>(end));
    c.mixed_activity = true;
    clusters.push_back(std::move(c));
  }
  return clusters;
}

double inter_cluster_volume(const appmodel::DopVariant& variant,
                            const TaskCluster& a, const TaskCluster& b) {
  auto contains = [](const TaskCluster& c, appmodel::TaskIndex t) {
    return std::find(c.tasks.begin(), c.tasks.end(), t) != c.tasks.end();
  };
  double vol = 0.0;
  for (const auto& e : variant.graph.edges()) {
    if ((contains(a, e.src) && contains(b, e.dst)) ||
        (contains(a, e.dst) && contains(b, e.src))) {
      vol += e.volume_flits;
    }
  }
  return vol;
}

}  // namespace parm::mapping
