// Activity-aware task clustering (paper Algorithm 2, lines 3-9).
//
// Walking the APG edges in decreasing volume order, tasks are appended to
// a High or a Low list according to their switching-activity class the
// first time an edge touches them; tasks untouched by any edge are
// appended afterwards. Each list is then chopped into clusters of four —
// the size of a power-supply domain — in list order, which simultaneously
// (1) groups similar-activity tasks into the same domain (less H-L
// interference, Fig. 3(b)) and (2) keeps heavily-communicating tasks
// together (they were adjacent in the list). The leftover tails of both
// lists (< 4 each) merge into one final, possibly mixed-activity cluster;
// with DoP a multiple of 4 that merged tail is itself exactly 0 or 4
// tasks.
#pragma once

#include <vector>

#include "appmodel/application.hpp"

namespace parm::mapping {

/// A group of up to four tasks destined for one power-supply domain.
struct TaskCluster {
  std::vector<appmodel::TaskIndex> tasks;
  bool mixed_activity = false;  ///< true for the merged leftover cluster
};

/// Clusters the tasks of a DoP variant per Algorithm 2. Every task appears
/// in exactly one cluster; cluster sizes are <= 4.
std::vector<TaskCluster> cluster_tasks(const appmodel::DopVariant& variant);

/// Communication volume between two clusters (sum of APG edges crossing).
double inter_cluster_volume(const appmodel::DopVariant& variant,
                            const TaskCluster& a, const TaskCluster& b);

}  // namespace parm::mapping
