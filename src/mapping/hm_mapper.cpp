#include "mapping/hm_mapper.hpp"

#include <algorithm>
#include <limits>

namespace parm::mapping {

namespace {

/// Tiles (free or occupied) currently hosting a High-activity task.
std::vector<TileId> high_activity_tiles(const cmp::Platform& platform) {
  std::vector<TileId> out;
  for (TileId t = 0; t < platform.tile_count(); ++t) {
    const auto& a = platform.tile(t);
    if (a.app != cmp::kNoApp &&
        power::classify_activity(a.activity) ==
            power::ActivityClass::High) {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace

std::optional<Mapping> HarmonicMapper::map(
    const cmp::Platform& platform,
    const appmodel::DopVariant& variant) const {
  const std::size_t n = variant.tasks.size();
  if (static_cast<std::size_t>(platform.free_tile_count()) < n) {
    return std::nullopt;
  }

  // Order tasks by decreasing activity: active tasks claim spread-out
  // tiles first (harmonic placement), quieter tasks fill in near their
  // communication partners.
  std::vector<appmodel::TaskIndex> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = static_cast<appmodel::TaskIndex>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](appmodel::TaskIndex a, appmodel::TaskIndex b) {
                     return variant.tasks[static_cast<std::size_t>(a)]
                                .activity >
                            variant.tasks[static_cast<std::size_t>(b)]
                                .activity;
                   });

  std::vector<TileId> free = platform.free_tiles();
  // High tiles of other running apps also repel (chip-wide harmonic
  // placement); our own placed High tasks join the set as we go.
  std::vector<TileId> high_tiles = high_activity_tiles(platform);
  std::vector<TileId> tile_of(n, kInvalidTile);
  Mapping out;
  out.reserve(n);

  for (const appmodel::TaskIndex task : order) {
    const auto& prof = variant.tasks[static_cast<std::size_t>(task)];
    const bool is_high =
        prof.activity_class() == power::ActivityClass::High;

    TileId best = kInvalidTile;
    double best_score = -std::numeric_limits<double>::infinity();
    for (const TileId cand : free) {
      double score;
      if (is_high) {
        // Maximize the minimum distance to every other High-activity
        // tile on the chip.
        double min_dist = std::numeric_limits<double>::infinity();
        for (const TileId h : high_tiles) {
          min_dist =
              std::min<double>(min_dist, platform.hop_distance(cand, h));
        }
        score = high_tiles.empty() ? 0.0 : min_dist;
        // Tie-break: prefer shorter paths to placed partners.
        double comm = 0.0;
        for (const auto& e : variant.graph.edges()) {
          const appmodel::TaskIndex other =
              e.src == task ? e.dst : (e.dst == task ? e.src : -1);
          if (other < 0) continue;
          const TileId ot = tile_of[static_cast<std::size_t>(other)];
          if (ot != kInvalidTile) {
            comm += e.volume_flits * platform.hop_distance(cand, ot);
          }
        }
        score -= 1e-9 * comm;
      } else {
        // Low task: minimize communication-weighted distance to placed
        // partners (score is the negative cost).
        double cost = 0.0;
        bool has_partner = false;
        for (const auto& e : variant.graph.edges()) {
          const appmodel::TaskIndex other =
              e.src == task ? e.dst : (e.dst == task ? e.src : -1);
          if (other < 0) continue;
          const TileId ot = tile_of[static_cast<std::size_t>(other)];
          if (ot != kInvalidTile) {
            has_partner = true;
            cost += e.volume_flits * platform.hop_distance(cand, ot);
          }
        }
        if (!has_partner) {
          // No placed partner yet: any free tile; prefer central ones
          // (center_distance == the old |x−W/2|+|y−H/2| on the mesh).
          cost = platform.center_distance(cand);
        }
        score = -cost;
      }
      if (score > best_score) {
        best_score = score;
        best = cand;
      }
    }
    PARM_DCHECK(best != kInvalidTile, "no free tile despite count check");
    tile_of[static_cast<std::size_t>(task)] = best;
    free.erase(std::remove(free.begin(), free.end(), best), free.end());
    if (is_high) high_tiles.push_back(best);

    cmp::Platform::Placement p;
    p.task_index = task;
    p.tile = best;
    p.activity = prof.activity;
    out.push_back(p);
  }
  return out;
}

}  // namespace parm::mapping
