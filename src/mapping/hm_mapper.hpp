// Harmonic-mapping baseline (HM), after Dahir et al. [21].
//
// HM minimizes PSN by mapping highly active tasks at long Manhattan
// distances from each other, on any free tiles of the CMP (regions may be
// non-contiguous and are not domain-aligned). Low-activity tasks are
// placed to minimize communication-weighted distance to their already
// placed partners. This reproduces the behaviours the paper criticises:
// scattering raises NoC traffic (more routers switch along longer paths)
// and High/Low tasks frequently end up adjacent in the same domain.
#pragma once

#include "mapping/mapper.hpp"

namespace parm::mapping {

class HarmonicMapper final : public Mapper {
 public:
  std::optional<Mapping> map(
      const cmp::Platform& platform,
      const appmodel::DopVariant& variant) const override;

  std::string name() const override { return "HM"; }
};

}  // namespace parm::mapping
