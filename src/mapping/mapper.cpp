#include "mapping/mapper.hpp"

#include <algorithm>

namespace parm::mapping {

bool validate_mapping(const cmp::Platform& platform,
                      const appmodel::DopVariant& variant,
                      const Mapping& mapping) {
  if (mapping.size() != variant.tasks.size()) return false;
  std::vector<bool> task_seen(variant.tasks.size(), false);
  std::vector<TileId> tiles;
  for (const auto& p : mapping) {
    if (p.task_index < 0 ||
        p.task_index >= static_cast<std::int32_t>(variant.tasks.size())) {
      return false;
    }
    if (task_seen[static_cast<std::size_t>(p.task_index)]) return false;
    task_seen[static_cast<std::size_t>(p.task_index)] = true;
    if (p.tile < 0 || p.tile >= platform.tile_count()) return false;
    if (!platform.tile_free(p.tile)) return false;
    if (std::find(tiles.begin(), tiles.end(), p.tile) != tiles.end()) {
      return false;
    }
    tiles.push_back(p.tile);
  }
  return true;
}

double communication_cost(const MeshGeometry& mesh,
                          const appmodel::DopVariant& variant,
                          const Mapping& mapping) {
  std::vector<TileId> tile_of(variant.tasks.size(), kInvalidTile);
  for (const auto& p : mapping) {
    tile_of[static_cast<std::size_t>(p.task_index)] = p.tile;
  }
  double cost = 0.0;
  for (const auto& e : variant.graph.edges()) {
    const TileId a = tile_of[static_cast<std::size_t>(e.src)];
    const TileId b = tile_of[static_cast<std::size_t>(e.dst)];
    PARM_CHECK(a != kInvalidTile && b != kInvalidTile,
               "mapping does not cover all tasks");
    cost += e.volume_flits * mesh.hop_distance(a, b);
  }
  return cost;
}

}  // namespace parm::mapping
