// Task-to-tile mapping interface.
//
// A Mapper receives the platform (occupancy, geometry, sensors) and the
// application's DoP variant (task graph + per-task profiles) and returns a
// placement of every task onto free tiles — or nullopt when no viable
// placement exists under its policy. Mappers never mutate the platform;
// committing a mapping is the runtime manager's job (Platform::occupy).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "appmodel/application.hpp"
#include "cmp/platform.hpp"

namespace parm::mapping {

using Mapping = std::vector<cmp::Platform::Placement>;

class Mapper {
 public:
  virtual ~Mapper() = default;

  virtual std::optional<Mapping> map(
      const cmp::Platform& platform,
      const appmodel::DopVariant& variant) const = 0;

  virtual std::string name() const = 0;
};

/// Structural validity: every task of `variant` placed exactly once, every
/// tile in range, free, and used once. Returns false instead of throwing
/// (used in tests and debug assertions).
bool validate_mapping(const cmp::Platform& platform,
                      const appmodel::DopVariant& variant,
                      const Mapping& mapping);

/// Total communication cost of a mapping: sum over APG edges of
/// volume × Manhattan distance between the endpoints' tiles.
double communication_cost(const MeshGeometry& mesh,
                          const appmodel::DopVariant& variant,
                          const Mapping& mapping);

}  // namespace parm::mapping
