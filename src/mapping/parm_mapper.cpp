#include "mapping/parm_mapper.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace parm::mapping {

namespace {

/// Slot visit order forming a ring around the 2×2 domain:
/// 0 (SW) → 1 (SE) → 3 (NE) → 2 (NW). Consecutive ring positions are
/// mesh-adjacent, so tasks placed in ring order keep same-class neighbors
/// at 1 hop and push the class boundary toward the 2-hop diagonal.
constexpr std::array<std::size_t, 4> kRingOrder = {0, 1, 3, 2};

/// Places the (<=4) tasks of a cluster onto the tiles of a domain.
/// Tasks are grouped by activity class (High first) and laid out along
/// the ring so each class occupies contiguous, mesh-adjacent tiles.
/// Short domains (irregular topologies pad trailing slots with
/// kInvalidTile) skip the missing ring positions; the capacity filter in
/// map() guarantees enough live tiles remain for the cluster.
void place_cluster(const cmp::Platform& platform, DomainId domain,
                   const TaskCluster& cluster,
                   const appmodel::DopVariant& variant, Mapping& out) {
  const std::array<TileId, 4> tiles = platform.domain_tiles(domain);
  std::vector<TileId> ring;
  ring.reserve(tiles.size());
  for (const std::size_t slot : kRingOrder) {
    if (tiles[slot] != kInvalidTile) ring.push_back(tiles[slot]);
  }
  std::vector<appmodel::TaskIndex> ordered = cluster.tasks;
  std::stable_partition(
      ordered.begin(), ordered.end(), [&](appmodel::TaskIndex t) {
        return variant.tasks[static_cast<std::size_t>(t)].activity_class() ==
               power::ActivityClass::High;
      });
  PARM_CHECK(ordered.size() <= ring.size(),
             "cluster does not fit its assigned domain");
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const appmodel::TaskIndex task = ordered[i];
    cmp::Platform::Placement p;
    p.task_index = task;
    p.tile = ring[i];
    p.activity = variant.tasks[static_cast<std::size_t>(task)].activity;
    out.push_back(p);
  }
}

}  // namespace

ParmMapper::ParmMapper(obs::Registry* registry)
    : place_calls_(&obs::resolve(registry).counter("mapper.place_calls")),
      candidates_(
          &obs::resolve(registry).counter("mapper.candidates_evaluated")),
      region_rejects_(
          &obs::resolve(registry).counter("mapper.reject_no_region")),
      place_us_(&obs::resolve(registry).histogram("mapper.place_us")) {}

std::optional<Mapping> ParmMapper::map(
    const cmp::Platform& platform,
    const appmodel::DopVariant& variant) const {
  obs::Counter& candidates = *candidates_;
  obs::Counter& region_rejects = *region_rejects_;
  place_calls_->inc();
  obs::ScopedTimer place_timer(*place_us_);
  obs::ScopedTrace place_trace("mapper", "mapper.place");

  const std::vector<TaskCluster> clusters = cluster_tasks(variant);
  std::vector<DomainId> free = platform.free_domains();
  if (static_cast<std::size_t>(free.size()) < clusters.size()) {
    region_rejects.inc();
    return std::nullopt;  // Algorithm 2 lines 10-11
  }

  // Order clusters by total incident volume so the heaviest communicator
  // anchors the region.
  std::vector<std::size_t> order(clusters.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> incident(clusters.size(), 0.0);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    for (std::size_t j = 0; j < clusters.size(); ++j) {
      if (i != j) {
        incident[i] +=
            inter_cluster_volume(variant, clusters[i], clusters[j]);
      }
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return incident[a] > incident[b];
  });

  // Greedy assignment: the anchor cluster takes the most central free
  // domain (smallest total distance to the other free domains, so the
  // region can grow contiguously); every next cluster takes the free
  // domain minimizing communication-weighted distance to the already
  // placed clusters, falling back to plain proximity when it exchanges
  // no traffic with them.
  std::vector<DomainId> assigned(clusters.size(), kInvalidDomain);
  for (std::size_t step = 0; step < order.size(); ++step) {
    const std::size_t ci = order[step];
    DomainId best = kInvalidDomain;
    double best_cost = std::numeric_limits<double>::infinity();
    candidates.inc(free.size());
    for (DomainId cand : free) {
      // Short domains (irregular topologies) cannot host a cluster
      // larger than their live-tile count.
      if (static_cast<std::size_t>(platform.domain_capacity(cand)) <
          clusters[ci].tasks.size()) {
        continue;
      }
      double cost = 0.0;
      if (step == 0) {
        for (DomainId other : free) {
          cost += platform.domain_distance(cand, other);
        }
      } else {
        double proximity = 0.0;
        for (std::size_t prev = 0; prev < step; ++prev) {
          const std::size_t pj = order[prev];
          const double dist = platform.domain_distance(cand, assigned[pj]);
          cost += inter_cluster_volume(variant, clusters[ci],
                                       clusters[pj]) *
                  dist;
          proximity += dist;
        }
        // Tie-break (and zero-traffic fallback): stay compact.
        cost += proximity * 1e-6;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
    if (best == kInvalidDomain) {
      // Enough free domains overall, but none with capacity for this
      // cluster (only possible on short-domain topologies).
      region_rejects.inc();
      return std::nullopt;
    }
    assigned[ci] = best;
    free.erase(std::remove(free.begin(), free.end(), best), free.end());
  }

  Mapping out;
  out.reserve(variant.tasks.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    place_cluster(platform, assigned[i], clusters[i], variant, out);
  }
  return out;
}

}  // namespace parm::mapping
