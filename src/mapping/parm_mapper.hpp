// PARM's PSN-aware mapping heuristic (paper Algorithm 2 + Fig. 5).
//
// Pipeline: cluster tasks by activity/communication (clustering.hpp), fail
// if fewer free domains than clusters, then assign clusters to domains
// greedily so heavily-communicating clusters land on nearby domains
// (task-cluster-to-domain-mapping, Algorithm 2 line 13). Within a domain,
// tasks of the same activity class are placed on mesh-adjacent tiles
// (Fig. 5) so unlike-activity pairs sit at the 2-hop diagonal where
// interference is weakest (Fig. 3(b)).
//
// Power-budget admission (Algorithm 2 lines 1-2) is the runtime manager's
// responsibility — the mapper is purely spatial.
#pragma once

#include "mapping/clustering.hpp"
#include "mapping/mapper.hpp"
#include "obs/metrics.hpp"

namespace parm::mapping {

class ParmMapper final : public Mapper {
 public:
  /// mapper.* metrics go to `registry`; null selects the process-default.
  explicit ParmMapper(obs::Registry* registry = nullptr);

  std::optional<Mapping> map(
      const cmp::Platform& platform,
      const appmodel::DopVariant& variant) const override;

  std::string name() const override { return "PARM"; }

 private:
  obs::Counter* place_calls_;
  obs::Counter* candidates_;
  obs::Counter* region_rejects_;
  obs::Histogram* place_us_;
};

}  // namespace parm::mapping
