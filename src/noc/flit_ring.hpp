// Structure-of-arrays ring storage for flit buffers.
//
// The cycle engine's hot loops touch one or two fields of many flits per
// cycle (front kind / last-hop stamps in the decision pass, whole flits
// only when one actually moves), so each FlitRing keeps the seven Flit
// fields in parallel flat arrays instead of a deque of structs: no
// per-node allocation, ring-index pushes/pops, and field loads that pull
// in nothing but the bytes the pass needs. Capacity is a power of two so
// slot arithmetic is a mask, and rings grow by doubling — cardinal input
// buffers are sized once to the configured depth and never grow; the
// unbounded Local source queues grow on demand.
//
// Flit (noc/packet.hpp) remains the API and serialization view: rings
// convert at the edges (push_back/pop_front/at), so snapshot code and
// callers never see the SoA layout.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/packet.hpp"

namespace parm::noc {

class FlitRing {
 public:
  /// Sizes the ring for at least `capacity` flits (rounded up to a power
  /// of two, minimum 4). Existing contents are discarded.
  void init(std::uint32_t capacity) {
    std::uint32_t cap = 4;
    while (cap < capacity) cap <<= 1;
    kind_.assign(cap, 0);
    packet_id_.assign(cap, 0);
    src_.assign(cap, 0);
    dst_.assign(cap, 0);
    app_id_.assign(cap, 0);
    inject_cycle_.assign(cap, 0);
    last_hop_cycle_.assign(cap, 0);
    mask_ = cap - 1;
    head_ = 0;
    count_ = 0;
  }

  std::uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(kind_.size());
  }

  void push_back(const Flit& f) {
    if (count_ == capacity()) grow();
    const std::uint32_t s = slot(count_);
    kind_[s] = static_cast<std::uint8_t>(f.kind);
    packet_id_[s] = f.packet_id;
    src_[s] = f.src;
    dst_[s] = f.dst;
    app_id_[s] = f.app_id;
    inject_cycle_[s] = f.inject_cycle;
    last_hop_cycle_[s] = f.last_hop_cycle;
    ++count_;
  }

  Flit pop_front() {
    const Flit f = at(0);
    head_ = slot(1);
    --count_;
    return f;
  }

  /// The i-th flit from the front (0 = front). No bounds check beyond the
  /// debug builds of the callers — this is the cycle engine's inner loop.
  Flit at(std::uint32_t i) const {
    const std::uint32_t s = slot(i);
    Flit f;
    f.kind = static_cast<FlitKind>(kind_[s]);
    f.packet_id = packet_id_[s];
    f.src = src_[s];
    f.dst = dst_[s];
    f.app_id = app_id_[s];
    f.inject_cycle = inject_cycle_[s];
    f.last_hop_cycle = last_hop_cycle_[s];
    return f;
  }

  // Field accessors for the decision pass: read exactly one array each.
  FlitKind front_kind() const {
    return static_cast<FlitKind>(kind_[head_]);
  }
  std::uint64_t front_last_hop() const { return last_hop_cycle_[head_]; }
  std::int64_t front_packet_id() const { return packet_id_[head_]; }
  TileId front_dst() const { return dst_[head_]; }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  std::uint32_t slot(std::uint32_t i) const { return (head_ + i) & mask_; }

  void grow() {
    FlitRing bigger;
    bigger.init(capacity() == 0 ? 4 : capacity() * 2);
    for (std::uint32_t i = 0; i < count_; ++i) bigger.push_back(at(i));
    *this = bigger;
  }

  std::vector<std::uint8_t> kind_;
  std::vector<std::int64_t> packet_id_;
  std::vector<std::int32_t> src_;
  std::vector<std::int32_t> dst_;
  std::vector<std::int32_t> app_id_;
  std::vector<std::uint64_t> inject_cycle_;
  std::vector<std::uint64_t> last_hop_cycle_;
  std::uint32_t head_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t mask_ = 0;  ///< capacity − 1; valid once init() has run
};

}  // namespace parm::noc
