#include "noc/load_sweep.hpp"

namespace parm::noc {

std::vector<LoadPoint> latency_load_sweep(const MeshGeometry& mesh,
                                          const std::string& routing_name,
                                          const FlowFactory& flows,
                                          const LoadSweepConfig& cfg) {
  PARM_CHECK(!cfg.loads.empty(), "sweep needs at least one load");
  std::vector<LoadPoint> out;
  out.reserve(cfg.loads.size());
  for (double load : cfg.loads) {
    PARM_CHECK(load > 0.0, "loads must be positive");
    Network net(mesh, cfg.noc, make_routing(routing_name,
                                            cfg.noc.panr_occupancy_threshold));
    TrafficGenerator gen(flows(load));
    const WindowResult w = run_window(net, gen, cfg.window);
    LoadPoint p;
    p.offered_flits_per_cycle_per_tile = load;
    p.avg_latency_cycles = w.avg_latency;
    p.accepted_flits_per_cycle =
        static_cast<double>(w.delivered_flits) /
        static_cast<double>(w.cycles);
    p.delivery_ratio = w.delivery_ratio;
    out.push_back(p);
  }
  return out;
}

double saturation_load(const std::vector<LoadPoint>& sweep, double factor) {
  PARM_CHECK(sweep.size() >= 2, "sweep needs at least two points");
  PARM_CHECK(factor > 1.0, "saturation factor must exceed 1");
  const double zero_load = sweep.front().avg_latency_cycles;
  PARM_CHECK(zero_load > 0.0, "zero-load latency must be positive");
  for (const LoadPoint& p : sweep) {
    if (p.avg_latency_cycles > factor * zero_load) {
      return p.offered_flits_per_cycle_per_tile;
    }
  }
  return sweep.back().offered_flits_per_cycle_per_tile;
}

}  // namespace parm::noc
