// Latency-vs-offered-load characterization of a routing policy.
//
// The standard NoC evaluation curve: sweep the injection rate, measure
// average packet latency and accepted throughput at each point, and find
// the saturation load (where latency exceeds a multiple of the zero-load
// latency). Used by tests to rank routing policies and by the PANR
// threshold ablation.
#pragma once

#include <functional>
#include <vector>

#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "noc/window_sim.hpp"

namespace parm::noc {

struct LoadPoint {
  double offered_flits_per_cycle_per_tile = 0.0;
  double avg_latency_cycles = 0.0;
  double accepted_flits_per_cycle = 0.0;  ///< delivered / cycle, whole mesh
  double delivery_ratio = 1.0;
};

struct LoadSweepConfig {
  std::vector<double> loads;  ///< per-tile injection rates to test
  WindowConfig window{512, 2048};
  NocConfig noc;
};

/// Builds the flow set for a given per-tile load (e.g. a uniform-random
/// or transpose pattern closure).
using FlowFactory = std::function<std::vector<TrafficFlow>(double load)>;

/// Runs the sweep with a *fresh* network per load point (no carry-over
/// congestion), using `make_routing_name` for the routing policy.
std::vector<LoadPoint> latency_load_sweep(const MeshGeometry& mesh,
                                          const std::string& routing_name,
                                          const FlowFactory& flows,
                                          const LoadSweepConfig& cfg);

/// First load whose latency exceeds `factor` × the zero-load latency
/// (the sweep's first point), or the last load if none does — the usual
/// saturation-throughput read-off.
double saturation_load(const std::vector<LoadPoint>& sweep,
                       double factor = 4.0);

}  // namespace parm::noc
