#include "noc/network.hpp"

#include "common/check.hpp"

namespace parm::noc {

Network::Network(const MeshGeometry& mesh, NocConfig cfg,
                 std::unique_ptr<RoutingAlgorithm> routing)
    : mesh_(mesh), cfg_(cfg), routing_(std::move(routing)) {
  PARM_CHECK(routing_ != nullptr, "network needs a routing algorithm");
  PARM_CHECK(cfg_.buffer_depth >= 2, "buffer depth must be at least 2");
  PARM_CHECK(cfg_.flits_per_packet >= 1, "packets need at least one flit");
  routers_.reserve(static_cast<std::size_t>(mesh_.tile_count()));
  for (TileId t = 0; t < mesh_.tile_count(); ++t) {
    routers_.emplace_back(t, cfg_.buffer_depth);
  }
  tile_psn_.assign(static_cast<std::size_t>(mesh_.tile_count()), 0.0);
  incoming_rates_.assign(static_cast<std::size_t>(mesh_.tile_count()), 0.0);
}

void Network::set_tile_psn(std::vector<double> psn_percent) {
  PARM_CHECK(psn_percent.size() ==
                 static_cast<std::size_t>(mesh_.tile_count()),
             "PSN vector size must match tile count");
  tile_psn_ = std::move(psn_percent);
}

void Network::inject_packet(TileId src, TileId dst, std::int32_t app_id) {
  PARM_CHECK(src >= 0 && src < mesh_.tile_count(), "bad source tile");
  PARM_CHECK(dst >= 0 && dst < mesh_.tile_count(), "bad destination tile");
  PARM_CHECK(src != dst, "cannot inject to self");
  const std::int64_t pid = next_packet_id_++;
  if (tracing_) traces_[pid].push_back(src);
  auto& queue = router(src).input(Direction::Local).buffer;
  const int n = cfg_.flits_per_packet;
  for (int i = 0; i < n; ++i) {
    Flit f;
    f.kind = (n == 1) ? FlitKind::HeadTail
             : (i == 0) ? FlitKind::Head
             : (i == n - 1) ? FlitKind::Tail
                            : FlitKind::Body;
    f.packet_id = pid;
    f.src = src;
    f.dst = dst;
    f.app_id = app_id;
    f.inject_cycle = cycle_;
    f.last_hop_cycle = cycle_;  // cannot hop in the injection cycle
    queue.push_back(f);
    ++injected_flits_;
  }
}

void Network::allocate_phase() {
  for (Router& r : routers_) {
    // Collect output requests from head flits lacking an allocation.
    for (int in = 0; in < kPortCount; ++in) {
      InputPort& port = r.input(in);
      if (port.buffer.empty() || port.allocated_output.has_value()) continue;
      const Flit& front = port.buffer.front();
      if (!is_head(front.kind)) {
        // A body/tail flit without an allocation can only occur
        // transiently between packets in the same buffer; it waits for
        // its head? — cannot happen: heads precede bodies in FIFO order
        // and the allocation is released only after the tail leaves.
        continue;
      }
      Direction out;
      if (front.dst == r.id()) {
        out = Direction::Local;
      } else {
        RoutingState state;
        state.tile_psn_percent = &tile_psn_;
        state.router_incoming_rate = &incoming_rates_;
        state.input_buffer_occupancy =
            r.occupancy(static_cast<Direction>(in));
        out = routing_->route(mesh_, r.id(), front.dst, state);
        PARM_DCHECK(out != Direction::Local,
                    "routing returned Local for non-local destination");
        PARM_DCHECK(mesh_.neighbor(r.id(), out) != kInvalidTile,
                    "routing left the mesh");
      }
      OutputPort& oport = r.output(out);
      // Round-robin arbitration: the input closest after rr_next wins.
      if (oport.owner_input >= 0) continue;  // output busy (wormhole)
      if (oport.requester < 0) {
        oport.requester = in;
      } else {
        auto dist = [&](int i) {
          return (i - oport.rr_next + kPortCount) % kPortCount;
        };
        if (dist(in) < dist(oport.requester)) oport.requester = in;
      }
    }
    // Grant requests.
    for (int d = 0; d < kPortCount; ++d) {
      OutputPort& oport = r.output(static_cast<Direction>(d));
      if (oport.requester < 0) continue;
      const int in = oport.requester;
      oport.requester = -1;
      oport.owner_input = in;
      oport.rr_next = (in + 1) % kPortCount;
      r.input(in).allocated_output = static_cast<Direction>(d);
    }
  }
}

void Network::traversal_phase() {
  for (Router& r : routers_) {
    for (int d = 0; d < kPortCount; ++d) {
      const Direction out = static_cast<Direction>(d);
      OutputPort& oport = r.output(out);
      if (oport.owner_input < 0) continue;
      InputPort& iport = r.input(oport.owner_input);
      if (iport.buffer.empty()) continue;
      Flit& front = iport.buffer.front();
      if (front.last_hop_cycle >= cycle_) continue;  // moved this cycle

      if (out == Direction::Local) {
        // Ejection: consume the flit.
        const Flit f = front;
        iport.buffer.pop_front();
        ++delivered_flits_;
        ++r.flits_forwarded;
        AppLatencyStats& st = app_stats_[f.app_id];
        ++st.flits_delivered;
        if (is_tail(f.kind)) {
          ++delivered_packets_;
          ++st.packets_delivered;
          const double lat = static_cast<double>(cycle_ - f.inject_cycle);
          total_latency_cycles_ += lat;
          st.total_packet_latency_cycles += lat;
          iport.allocated_output.reset();
          oport.owner_input = -1;
        }
        continue;
      }

      const TileId next = mesh_.neighbor(r.id(), out);
      PARM_DCHECK(next != kInvalidTile, "allocated output leaves the mesh");
      Router& nr = router(next);
      const Direction in_dir = opposite(out);
      if (!nr.has_space(in_dir)) continue;  // no credit

      Flit f = front;
      iport.buffer.pop_front();
      f.last_hop_cycle = cycle_;
      if (tracing_ && is_head(f.kind)) {
        traces_[f.packet_id].push_back(next);
      }
      nr.input(in_dir).buffer.push_back(f);
      ++r.flits_forwarded;
      ++nr.flits_received;
      if (is_tail(f.kind)) {
        iport.allocated_output.reset();
        oport.owner_input = -1;
      }
    }
  }
}

void Network::step() {
  ++cycle_;
  allocate_phase();
  traversal_phase();
  // Update incoming-rate EWMAs from this cycle's link arrivals.
  const double a = cfg_.rate_ewma_alpha;
  for (TileId t = 0; t < mesh_.tile_count(); ++t) {
    Router& r = router(t);
    const double arrivals = static_cast<double>(r.flits_received);
    r.flits_received = 0;
    r.incoming_rate_ewma = (1.0 - a) * r.incoming_rate_ewma + a * arrivals;
    incoming_rates_[static_cast<std::size_t>(t)] = r.incoming_rate_ewma;
  }
}

std::vector<TileId> Network::traced_route(std::int64_t packet_id) const {
  const auto it = traces_.find(packet_id);
  return it == traces_.end() ? std::vector<TileId>{} : it->second;
}

std::uint64_t Network::in_flight_flits() const {
  std::uint64_t n = 0;
  for (const Router& r : routers_) {
    for (int d = 0; d < kPortCount; ++d) {
      n += r.input(static_cast<Direction>(d)).buffer.size();
    }
  }
  return n;
}

double Network::avg_packet_latency() const {
  return delivered_packets_ == 0
             ? 0.0
             : total_latency_cycles_ /
                   static_cast<double>(delivered_packets_);
}

void Network::reset_stats() {
  injected_flits_ = 0;
  delivered_flits_ = 0;
  delivered_packets_ = 0;
  total_latency_cycles_ = 0.0;
  app_stats_.clear();
  for (Router& r : routers_) {
    r.flits_forwarded = 0;
    r.flits_received = 0;
  }
}

}  // namespace parm::noc
