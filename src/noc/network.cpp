#include "noc/network.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace parm::noc {

namespace {

void save_flit(snapshot::Writer& w, const Flit& f) {
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.i64(f.packet_id);
  w.i32(f.src);
  w.i32(f.dst);
  w.i32(f.app_id);
  w.u64(f.inject_cycle);
  w.u64(f.last_hop_cycle);
}

Flit load_flit(snapshot::Reader& r, std::int32_t tile_count) {
  Flit f;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(FlitKind::HeadTail)) {
    throw snapshot::SnapshotError("network snapshot holds an invalid flit kind");
  }
  f.kind = static_cast<FlitKind>(kind);
  f.packet_id = r.i64();
  f.src = r.i32();
  f.dst = r.i32();
  if (f.src < 0 || f.src >= tile_count || f.dst < 0 || f.dst >= tile_count) {
    throw snapshot::SnapshotError(
        "network snapshot holds a flit with an off-mesh src/dst tile");
  }
  f.app_id = r.i32();
  f.inject_cycle = r.u64();
  f.last_hop_cycle = r.u64();
  return f;
}

}  // namespace

Network::Network(const MeshGeometry& mesh, NocConfig cfg,
                 std::unique_ptr<RoutingAlgorithm> routing)
    : mesh_(mesh), cfg_(cfg), routing_(std::move(routing)) {
  PARM_CHECK(routing_ != nullptr, "network needs a routing algorithm");
  PARM_CHECK(cfg_.buffer_depth >= 2, "buffer depth must be at least 2");
  PARM_CHECK(cfg_.flits_per_packet >= 1, "packets need at least one flit");
  routers_.reserve(static_cast<std::size_t>(mesh_.tile_count()));
  for (TileId t = 0; t < mesh_.tile_count(); ++t) {
    routers_.emplace_back(t, cfg_.buffer_depth);
  }
  tile_psn_.assign(static_cast<std::size_t>(mesh_.tile_count()), 0.0);
  incoming_rates_.assign(static_cast<std::size_t>(mesh_.tile_count()), 0.0);
}

void Network::set_tile_psn(std::vector<double> psn_percent) {
  PARM_CHECK(psn_percent.size() ==
                 static_cast<std::size_t>(mesh_.tile_count()),
             "PSN vector size must match tile count");
  tile_psn_ = std::move(psn_percent);
}

void Network::inject_packet(TileId src, TileId dst, std::int32_t app_id) {
  PARM_CHECK(src >= 0 && src < mesh_.tile_count(), "bad source tile");
  PARM_CHECK(dst >= 0 && dst < mesh_.tile_count(), "bad destination tile");
  PARM_CHECK(src != dst, "cannot inject to self");
  const std::int64_t pid = next_packet_id_++;
  if (tracing_) traces_[pid].push_back(src);
  auto& queue = router(src).input(Direction::Local).buffer;
  const int n = cfg_.flits_per_packet;
  for (int i = 0; i < n; ++i) {
    Flit f;
    f.kind = (n == 1) ? FlitKind::HeadTail
             : (i == 0) ? FlitKind::Head
             : (i == n - 1) ? FlitKind::Tail
                            : FlitKind::Body;
    f.packet_id = pid;
    f.src = src;
    f.dst = dst;
    f.app_id = app_id;
    f.inject_cycle = cycle_;
    f.last_hop_cycle = cycle_;  // cannot hop in the injection cycle
    queue.push_back(f);
    ++injected_flits_;
  }
}

void Network::allocate_phase() {
  for (Router& r : routers_) {
    // Collect output requests from head flits lacking an allocation.
    for (int in = 0; in < kPortCount; ++in) {
      InputPort& port = r.input(in);
      if (port.buffer.empty() || port.allocated_output.has_value()) continue;
      const Flit& front = port.buffer.front();
      if (!is_head(front.kind)) {
        // A body/tail flit without an allocation can only occur
        // transiently between packets in the same buffer; it waits for
        // its head? — cannot happen: heads precede bodies in FIFO order
        // and the allocation is released only after the tail leaves.
        continue;
      }
      Direction out;
      if (front.dst == r.id()) {
        out = Direction::Local;
      } else {
        RoutingState state;
        state.tile_psn_percent = &tile_psn_;
        state.router_incoming_rate = &incoming_rates_;
        state.input_buffer_occupancy =
            r.occupancy(static_cast<Direction>(in));
        out = routing_->route(mesh_, r.id(), front.dst, state);
        PARM_DCHECK(out != Direction::Local,
                    "routing returned Local for non-local destination");
        PARM_DCHECK(mesh_.neighbor(r.id(), out) != kInvalidTile,
                    "routing left the mesh");
      }
      OutputPort& oport = r.output(out);
      // Round-robin arbitration: the input closest after rr_next wins.
      if (oport.owner_input >= 0) continue;  // output busy (wormhole)
      if (oport.requester < 0) {
        oport.requester = in;
      } else {
        auto dist = [&](int i) {
          return (i - oport.rr_next + kPortCount) % kPortCount;
        };
        if (dist(in) < dist(oport.requester)) oport.requester = in;
      }
    }
    // Grant requests.
    for (int d = 0; d < kPortCount; ++d) {
      OutputPort& oport = r.output(static_cast<Direction>(d));
      if (oport.requester < 0) continue;
      const int in = oport.requester;
      oport.requester = -1;
      oport.owner_input = in;
      oport.rr_next = (in + 1) % kPortCount;
      r.input(in).allocated_output = static_cast<Direction>(d);
    }
  }
}

void Network::traversal_phase() {
  for (Router& r : routers_) {
    for (int d = 0; d < kPortCount; ++d) {
      const Direction out = static_cast<Direction>(d);
      OutputPort& oport = r.output(out);
      if (oport.owner_input < 0) continue;
      InputPort& iport = r.input(oport.owner_input);
      if (iport.buffer.empty()) continue;
      Flit& front = iport.buffer.front();
      if (front.last_hop_cycle >= cycle_) continue;  // moved this cycle

      if (out == Direction::Local) {
        // Ejection: consume the flit.
        const Flit f = front;
        iport.buffer.pop_front();
        ++delivered_flits_;
        ++r.flits_forwarded;
        AppLatencyStats& st = app_stats_[f.app_id];
        ++st.flits_delivered;
        if (is_tail(f.kind)) {
          ++delivered_packets_;
          ++st.packets_delivered;
          const double lat = static_cast<double>(cycle_ - f.inject_cycle);
          total_latency_cycles_ += lat;
          st.total_packet_latency_cycles += lat;
          iport.allocated_output.reset();
          oport.owner_input = -1;
        }
        continue;
      }

      const TileId next = mesh_.neighbor(r.id(), out);
      PARM_DCHECK(next != kInvalidTile, "allocated output leaves the mesh");
      Router& nr = router(next);
      const Direction in_dir = opposite(out);
      if (!nr.has_space(in_dir)) continue;  // no credit

      Flit f = front;
      iport.buffer.pop_front();
      f.last_hop_cycle = cycle_;
      if (tracing_ && is_head(f.kind)) {
        traces_[f.packet_id].push_back(next);
      }
      nr.input(in_dir).buffer.push_back(f);
      ++r.flits_forwarded;
      ++nr.flits_received;
      if (is_tail(f.kind)) {
        iport.allocated_output.reset();
        oport.owner_input = -1;
      }
    }
  }
}

void Network::step() {
  ++cycle_;
  allocate_phase();
  traversal_phase();
  // Update incoming-rate EWMAs from this cycle's link arrivals.
  const double a = cfg_.rate_ewma_alpha;
  for (TileId t = 0; t < mesh_.tile_count(); ++t) {
    Router& r = router(t);
    const double arrivals = static_cast<double>(r.flits_received);
    r.flits_received = 0;
    r.incoming_rate_ewma = (1.0 - a) * r.incoming_rate_ewma + a * arrivals;
    incoming_rates_[static_cast<std::size_t>(t)] = r.incoming_rate_ewma;
  }
}

std::vector<TileId> Network::traced_route(std::int64_t packet_id) const {
  const auto it = traces_.find(packet_id);
  return it == traces_.end() ? std::vector<TileId>{} : it->second;
}

std::uint64_t Network::in_flight_flits() const {
  std::uint64_t n = 0;
  for (const Router& r : routers_) {
    for (int d = 0; d < kPortCount; ++d) {
      n += r.input(static_cast<Direction>(d)).buffer.size();
    }
  }
  return n;
}

double Network::avg_packet_latency() const {
  return delivered_packets_ == 0
             ? 0.0
             : total_latency_cycles_ /
                   static_cast<double>(delivered_packets_);
}

void Network::save(snapshot::Writer& w) const {
  PARM_CHECK(!tracing_, "cannot snapshot a network with route tracing on");
  w.begin_section("NOC0");
  w.i32(mesh_.tile_count());
  w.i32(cfg_.buffer_depth);
  w.i32(cfg_.flits_per_packet);
  for (const Router& r : routers_) {
    for (int p = 0; p < kPortCount; ++p) {
      const InputPort& in = r.input(static_cast<Direction>(p));
      w.u64(in.buffer.size());
      for (const Flit& f : in.buffer) save_flit(w, f);
      w.b(in.allocated_output.has_value());
      if (in.allocated_output.has_value()) {
        w.u8(static_cast<std::uint8_t>(*in.allocated_output));
      }
    }
    for (int p = 0; p < kPortCount; ++p) {
      const OutputPort& out = r.output(static_cast<Direction>(p));
      w.i32(out.owner_input);
      w.i32(out.rr_next);
      w.i32(out.requester);
    }
    w.u64(r.flits_forwarded);
    w.u64(r.flits_received);
    w.f64(r.incoming_rate_ewma);
  }
  w.vec_f64(tile_psn_);
  w.vec_f64(incoming_rates_);
  w.u64(cycle_);
  w.i64(next_packet_id_);
  w.u64(injected_flits_);
  w.u64(delivered_flits_);
  w.u64(delivered_packets_);
  w.f64(total_latency_cycles_);
  std::vector<std::pair<std::int32_t, AppLatencyStats>> stats(
      app_stats_.begin(), app_stats_.end());
  std::sort(stats.begin(), stats.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(stats.size());
  for (const auto& [app, st] : stats) {
    w.i32(app);
    w.u64(st.packets_delivered);
    w.u64(st.flits_delivered);
    w.f64(st.total_packet_latency_cycles);
  }
}

void Network::restore(snapshot::Reader& r) {
  r.expect_section("NOC0");
  const std::int32_t tiles = r.i32();
  const std::int32_t depth = r.i32();
  const std::int32_t fpp = r.i32();
  if (tiles != mesh_.tile_count() || depth != cfg_.buffer_depth ||
      fpp != cfg_.flits_per_packet) {
    throw snapshot::SnapshotError(
        "network snapshot was taken under a different NoC configuration "
        "(tile count / buffer depth / flits per packet mismatch)");
  }
  for (Router& router : routers_) {
    for (int p = 0; p < kPortCount; ++p) {
      InputPort& in = router.input(p);
      in.buffer.clear();
      const std::uint64_t n = r.count(30);
      for (std::uint64_t i = 0; i < n; ++i) {
        in.buffer.push_back(load_flit(r, tiles));
      }
      in.allocated_output.reset();
      if (r.b()) {
        const std::uint8_t d = r.u8();
        if (d >= kPortCount) {
          throw snapshot::SnapshotError(
              "network snapshot holds an invalid allocated output port");
        }
        in.allocated_output = static_cast<Direction>(d);
      }
    }
    for (int p = 0; p < kPortCount; ++p) {
      OutputPort& out = router.output(static_cast<Direction>(p));
      out.owner_input = r.i32();
      out.rr_next = r.i32();
      out.requester = r.i32();
      if (out.owner_input < -1 || out.owner_input >= kPortCount ||
          out.rr_next < 0 || out.rr_next >= kPortCount) {
        throw snapshot::SnapshotError(
            "network snapshot holds invalid arbitration state");
      }
    }
    router.flits_forwarded = r.u64();
    router.flits_received = r.u64();
    router.incoming_rate_ewma = r.f64();
  }
  tile_psn_ = r.vec_f64();
  incoming_rates_ = r.vec_f64();
  if (tile_psn_.size() != static_cast<std::size_t>(tiles) ||
      incoming_rates_.size() != static_cast<std::size_t>(tiles)) {
    throw snapshot::SnapshotError("network per-tile vector size corrupt");
  }
  cycle_ = r.u64();
  next_packet_id_ = r.i64();
  injected_flits_ = r.u64();
  delivered_flits_ = r.u64();
  delivered_packets_ = r.u64();
  total_latency_cycles_ = r.f64();
  app_stats_.clear();
  const std::uint64_t n_apps = r.count(28);
  for (std::uint64_t i = 0; i < n_apps; ++i) {
    const std::int32_t app = r.i32();
    AppLatencyStats st;
    st.packets_delivered = r.u64();
    st.flits_delivered = r.u64();
    st.total_packet_latency_cycles = r.f64();
    app_stats_.emplace(app, st);
  }
  traces_.clear();
}

void Network::reset_stats() {
  injected_flits_ = 0;
  delivered_flits_ = 0;
  delivered_packets_ = 0;
  total_latency_cycles_ = 0.0;
  app_stats_.clear();
  for (Router& r : routers_) {
    r.flits_forwarded = 0;
    r.flits_received = 0;
  }
}

}  // namespace parm::noc
