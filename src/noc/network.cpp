#include "noc/network.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "noc/shard_engine.hpp"

namespace parm::noc {

namespace {

void save_flit(snapshot::Writer& w, const Flit& f) {
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.i64(f.packet_id);
  w.i32(f.src);
  w.i32(f.dst);
  w.i32(f.app_id);
  w.u64(f.inject_cycle);
  w.u64(f.last_hop_cycle);
}

Flit load_flit(snapshot::Reader& r, std::int32_t tile_count) {
  Flit f;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(FlitKind::HeadTail)) {
    throw snapshot::SnapshotError("network snapshot holds an invalid flit kind");
  }
  f.kind = static_cast<FlitKind>(kind);
  f.packet_id = r.i64();
  f.src = r.i32();
  f.dst = r.i32();
  if (f.src < 0 || f.src >= tile_count || f.dst < 0 || f.dst >= tile_count) {
    throw snapshot::SnapshotError(
        "network snapshot holds a flit with an off-mesh src/dst tile");
  }
  f.app_id = r.i32();
  f.inject_cycle = r.u64();
  f.last_hop_cycle = r.u64();
  return f;
}

}  // namespace

Network::Network(const MeshGeometry& mesh, NocConfig cfg,
                 std::unique_ptr<RoutingAlgorithm> routing)
    : Network(Topology::mesh(mesh.width(), mesh.height()), cfg,
              std::move(routing)) {}

Network::Network(std::shared_ptr<const Topology> topo, NocConfig cfg,
                 std::unique_ptr<RoutingAlgorithm> routing)
    : topo_(std::move(topo)), cfg_(cfg), routing_(std::move(routing)) {
  PARM_CHECK(topo_ != nullptr, "network needs a topology");
  PARM_CHECK(routing_ != nullptr, "network needs a routing algorithm");
  PARM_CHECK(cfg_.buffer_depth >= 2, "buffer depth must be at least 2");
  PARM_CHECK(cfg_.flits_per_packet >= 1, "packets need at least one flit");
  tiles_ = topo_->tile_count();
  ports_ = topo_->ports();
  local_port_ = topo_->local_port();
  const std::size_t lanes =
      static_cast<std::size_t>(tiles_) * static_cast<std::size_t>(ports_);
  in_buf_.resize(lanes);
  for (TileId t = 0; t < tiles_; ++t) {
    for (int p = 0; p < ports_; ++p) {
      // Link buffers never exceed the credit depth; the Local source
      // queue is unbounded and sized generously to avoid early growth.
      const bool local = p == local_port_;
      in_buf_[lane(t, p)].init(
          local ? 16u : static_cast<std::uint32_t>(cfg_.buffer_depth));
    }
  }
  alloc_out_.assign(lanes, -1);
  owner_in_.assign(lanes, -1);
  rr_next_.assign(lanes, 0);
  requester_.assign(lanes, -1);
  fwd_.assign(lanes, 0);
  popped_cycle_.assign(lanes, 0);
  flits_forwarded_.assign(static_cast<std::size_t>(tiles_), 0);
  flits_received_.assign(static_cast<std::size_t>(tiles_), 0);
  rate_ewma_.assign(static_cast<std::size_t>(tiles_), 0.0);
  tile_psn_.assign(static_cast<std::size_t>(tiles_), 0.0);
  incoming_rates_.assign(static_cast<std::size_t>(tiles_), 0.0);
  link_out_dead_.assign(lanes, 0);
  router_dead_.assign(static_cast<std::size_t>(tiles_), 0);
  set_shards(1);
}

void Network::set_tile_psn(std::vector<double> psn_percent) {
  PARM_CHECK(psn_percent.size() == static_cast<std::size_t>(tiles_),
             "PSN vector size must match tile count");
  tile_psn_ = std::move(psn_percent);
}

void Network::set_shards(int shards) {
  shards_ = std::clamp(shards, 1, tiles_);
  shard_start_.assign(static_cast<std::size_t>(shards_) + 1, 0);
  const TileId base = tiles_ / shards_;
  const TileId rem = tiles_ % shards_;
  for (int s = 0; s < shards_; ++s) {
    shard_start_[static_cast<std::size_t>(s) + 1] =
        shard_start_[static_cast<std::size_t>(s)] + base + (s < rem ? 1 : 0);
  }
  acc_.clear();
  acc_.resize(static_cast<std::size_t>(shards_));
}

int Network::auto_shard_count(int requested) {
  if (requested > 0) return requested;
  const std::size_t workers = ThreadPool::shared().thread_count();
  // With fewer than two workers the gang cannot actually overlap shard
  // work, so auto resolves to serial stepping.
  if (workers < 2) return 1;
  return static_cast<int>(std::min<std::size_t>(8, workers));
}

void Network::set_link_fault(TileId t, Direction d, bool dead) {
  PARM_CHECK(t >= 0 && t < tiles_, "link fault tile out of range");
  const int port = port_index(d);
  PARM_CHECK(port >= 0 && port < local_port_,
             "link fault port must be a link port, not Local");
  const TileId n = topo_->link_dst(t, port);
  PARM_CHECK(n != kInvalidTile, "link fault points at an unwired port");
  const std::uint8_t v = dead ? 1 : 0;
  link_out_dead_[lane(t, port)] = v;
  link_out_dead_[lane(n, topo_->reverse_port(t, port))] = v;
  rebuild_fault_state();
  purge_broken_packets();
}

void Network::set_router_fault(TileId t, bool dead) {
  PARM_CHECK(t >= 0 && t < tiles_, "router fault tile out of range");
  router_dead_[static_cast<std::size_t>(t)] = dead ? 1 : 0;
  rebuild_fault_state();
  purge_broken_packets();
}

void Network::set_flit_error_rates(std::vector<double> rate_per_packet) {
  PARM_CHECK(rate_per_packet.empty() ||
                 rate_per_packet.size() == static_cast<std::size_t>(tiles_),
             "flit error rate vector size must match tile count");
  flit_error_rate_ = std::move(rate_per_packet);
}

TileId Network::fault_next_hop(TileId from, TileId dst) const {
  if (!fault_mode_ || from == dst) return kInvalidTile;
  PARM_CHECK(from >= 0 && from < tiles_ && dst >= 0 && dst < tiles_,
             "fault_next_hop tile out of range");
  const int port = fault_table_->next_port(from, dst);
  return port < 0 ? kInvalidTile : topo_->link_dst(from, port);
}

void Network::rebuild_fault_state() {
  fault_mode_ =
      std::any_of(router_dead_.begin(), router_dead_.end(),
                  [](std::uint8_t v) { return v != 0; }) ||
      std::any_of(link_out_dead_.begin(), link_out_dead_.end(),
                  [](std::uint8_t v) { return v != 0; });
  if (!fault_mode_) {
    fault_table_.reset();
    return;
  }
  // Regenerate a deadlock-free routing table over the surviving subgraph.
  // The builder proves channel-dependency acyclicity at construction, so
  // every degraded route — a pure function of the fault masks — is safe
  // on any surviving graph, not just the mesh.
  fault_table_ = std::make_shared<const RoutingTable>(
      RoutingTable::build_degraded(*topo_, link_out_dead_, router_dead_));
}

std::int64_t Network::allocated_pid(TileId t, int out_port) const {
  const int own = owner_in_[lane(t, out_port)];
  if (own < 0) return -1;
  // Walk the wormhole chain upstream to the first non-empty buffer: if an
  // input buffer is empty while allocated, the tail has not passed the
  // upstream router yet, so that router still holds a matching
  // allocation (and the Local source queue is never empty mid-packet —
  // injection enqueues whole packets).
  TileId at = t;
  int in_port = own;
  for (;;) {
    const FlitRing& buf = in_buf_[lane(at, in_port)];
    if (!buf.empty()) return buf.front_packet_id();
    PARM_DCHECK(in_port != local_port_,
                "allocated Local queue empty mid-packet");
    const TileId up = topo_->link_dst(at, in_port);
    PARM_DCHECK(up != kInvalidTile, "wormhole chain walked off the graph");
    const std::size_t up_out = lane(up, topo_->reverse_port(at, in_port));
    const int up_in = owner_in_[up_out];
    PARM_DCHECK(up_in >= 0, "wormhole chain broken upstream");
    if (up_in < 0) return -1;
    at = up;
    in_port = up_in;
  }
}

void Network::purge_broken_packets() {
  if (!fault_mode_) return;  // healthy mesh (e.g. the last repair)
  // Phase 1: collect the ids of packets that can no longer complete —
  // any flit buffered in a dead router, plus any wormhole allocation
  // crossing a dead link or feeding a dead router (its remaining flits
  // can never cross).
  std::vector<std::int64_t> dead_pids;
  for (TileId t = 0; t < tiles_; ++t) {
    if (router_dead_[static_cast<std::size_t>(t)]) {
      for (int p = 0; p < ports_; ++p) {
        const FlitRing& buf = in_buf_[lane(t, p)];
        for (std::uint32_t i = 0; i < buf.size(); ++i) {
          dead_pids.push_back(buf.at(i).packet_id);
        }
      }
      continue;
    }
    for (int p = 0; p < local_port_; ++p) {
      const std::size_t ol = lane(t, p);
      if (owner_in_[ol] < 0) continue;
      const TileId nb = topo_->link_dst(t, p);
      const bool broken =
          link_out_dead_[ol] != 0 ||
          (nb != kInvalidTile && router_dead_[static_cast<std::size_t>(nb)]);
      if (!broken) continue;
      const std::int64_t pid = allocated_pid(t, p);
      if (pid >= 0) dead_pids.push_back(pid);
    }
  }
  if (dead_pids.empty()) return;
  std::sort(dead_pids.begin(), dead_pids.end());
  dead_pids.erase(std::unique(dead_pids.begin(), dead_pids.end()),
                  dead_pids.end());
  const auto is_dead = [&](std::int64_t pid) {
    return std::binary_search(dead_pids.begin(), dead_pids.end(), pid);
  };
  // Phase 2: release every allocation owned by a purged packet, then
  // sweep every buffer dropping its flits.
  for (TileId t = 0; t < tiles_; ++t) {
    for (int p = 0; p < ports_; ++p) {
      const std::size_t ol = lane(t, p);
      if (owner_in_[ol] < 0) continue;
      const std::int64_t pid = allocated_pid(t, p);
      if (pid >= 0 && is_dead(pid)) {
        alloc_out_[lane(t, owner_in_[ol])] = -1;
        owner_in_[ol] = -1;
      }
    }
  }
  std::vector<Flit> keep;
  for (std::size_t l = 0; l < in_buf_.size(); ++l) {
    FlitRing& buf = in_buf_[l];
    bool any = false;
    for (std::uint32_t i = 0; i < buf.size() && !any; ++i) {
      any = is_dead(buf.at(i).packet_id);
    }
    if (!any) continue;
    keep.clear();
    for (std::uint32_t i = 0; i < buf.size(); ++i) {
      const Flit& f = buf.at(i);
      if (is_dead(f.packet_id)) {
        ++fault_dropped_flits_;
        --buffered_flits_;
      } else {
        keep.push_back(f);
      }
    }
    buf.clear();
    for (const Flit& f : keep) buf.push_back(f);
  }
}

bool Network::packet_corrupt(std::int64_t packet_id, TileId eject_tile) const {
  if (flit_error_rate_.empty()) return false;
  const double rate = flit_error_rate_[static_cast<std::size_t>(eject_tile)];
  if (rate <= 0.0) return false;
  // Pure hash of (seed, packet id): order- and shard-independent, and it
  // consumes no RNG stream, so enabling bit-errors perturbs nothing else.
  SplitMix64 sm(fault_seed_ ^
                (0x9e3779b97f4a7c15ULL *
                 (static_cast<std::uint64_t>(packet_id) + 1)));
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return u < rate;
}

void Network::set_trace_capacity(std::size_t cap) {
  PARM_CHECK(cap >= 1, "trace capacity must be at least 1");
  trace_capacity_ = cap;
}

void Network::trace_append(std::int64_t packet_id, TileId tile) {
  auto it = traces_.find(packet_id);
  if (it == traces_.end()) {
    while (traces_.size() >= trace_capacity_) {
      traces_.erase(trace_order_.front());
      trace_order_.pop_front();
      ++trace_evictions_;
    }
    it = traces_.emplace(packet_id, std::vector<TileId>{}).first;
    trace_order_.push_back(packet_id);
  }
  it->second.push_back(tile);
}

void Network::inject_packet(TileId src, TileId dst, std::int32_t app_id) {
  PARM_CHECK(src >= 0 && src < tiles_, "bad source tile");
  PARM_CHECK(dst >= 0 && dst < tiles_, "bad destination tile");
  PARM_CHECK(src != dst, "cannot inject to self");
  PARM_CHECK(app_id >= -1, "negative app ids other than -1 are reserved");
  if (fault_mode_ && router_dead_[static_cast<std::size_t>(src)]) {
    // A dead router's NIC can't inject: account the packet as offered
    // and immediately lost so flit conservation still balances.
    injected_flits_ += static_cast<std::uint64_t>(cfg_.flits_per_packet);
    fault_dropped_flits_ +=
        static_cast<std::uint64_t>(cfg_.flits_per_packet);
    return;
  }
  const std::int64_t pid = next_packet_id_++;
  if (tracing_) trace_append(pid, src);
  FlitRing& queue = in_buf_[lane(src, local_port_)];
  const int n = cfg_.flits_per_packet;
  for (int i = 0; i < n; ++i) {
    Flit f;
    f.kind = (n == 1) ? FlitKind::HeadTail
             : (i == 0) ? FlitKind::Head
             : (i == n - 1) ? FlitKind::Tail
                            : FlitKind::Body;
    f.packet_id = pid;
    f.src = src;
    f.dst = dst;
    f.app_id = app_id;
    f.inject_cycle = cycle_;
    f.last_hop_cycle = cycle_;  // cannot hop in the injection cycle
    queue.push_back(f);
    ++injected_flits_;
    ++buffered_flits_;
  }
}

void Network::allocate_range(TileId lo, TileId hi) {
  for (TileId t = lo; t < hi; ++t) {
    // Collect output requests from head flits lacking an allocation.
    for (int in = 0; in < ports_; ++in) {
      const std::size_t il = lane(t, in);
      const FlitRing& buf = in_buf_[il];
      if (buf.empty() || alloc_out_[il] >= 0) continue;
      if (!is_head(buf.front_kind())) {
        // A body/tail flit without an allocation waits for its head —
        // heads precede bodies in FIFO order and the allocation is
        // released only after the tail leaves.
        continue;
      }
      int out;
      const TileId dst = buf.front_dst();
      if (dst == t) {
        out = local_port_;
      } else if (fault_mode_) {
        // Degraded routing: follow the regenerated table over the alive
        // graph; unreachable destinations eject here (drop sink —
        // counted as fault-dropped at the barrier, never as delivered).
        const int port = fault_table_->next_port(t, dst);
        out = port < 0 ? local_port_ : port;
      } else {
        RoutingState state;
        state.tile_psn_percent = &tile_psn_;
        state.router_incoming_rate = &incoming_rates_;
        state.input_buffer_occupancy = occupancy(t, in);
        out = routing_->route_port(*topo_, t, dst, state);
        PARM_DCHECK(out != local_port_,
                    "routing returned Local for non-local destination");
        PARM_DCHECK(topo_->link_dst(t, out) != kInvalidTile,
                    "routing left the graph");
      }
      const std::size_t ol = lane(t, out);
      // Round-robin arbitration: the input closest after rr_next wins.
      if (owner_in_[ol] >= 0) continue;  // output busy (wormhole)
      if (requester_[ol] < 0) {
        requester_[ol] = static_cast<std::int8_t>(in);
      } else {
        const int rr = rr_next_[ol];
        const int ports = ports_;
        auto dist = [rr, ports](int i) { return (i - rr + ports) % ports; };
        if (dist(in) < dist(requester_[ol])) {
          requester_[ol] = static_cast<std::int8_t>(in);
        }
      }
    }
    // Grant requests.
    for (int d = 0; d < ports_; ++d) {
      const std::size_t ol = lane(t, d);
      const int in = requester_[ol];
      if (in < 0) continue;
      requester_[ol] = -1;
      owner_in_[ol] = static_cast<std::int8_t>(in);
      rr_next_[ol] = static_cast<std::int8_t>((in + 1) % ports_);
      alloc_out_[lane(t, in)] = static_cast<std::int8_t>(d);
    }
  }
}

// Serial pass replaying the reference traversal order's credit checks.
// Processing routers in ascending TileId, a push from router t into a
// full downstream buffer succeeds exactly when the downstream router has
// a lower id and pops that buffer this cycle — a dependency that only
// ever points at already-decided routers, so one cheap in-order sweep
// reproduces the serial outcome bit for bit. Buffers are untouched here
// (apply happens afterwards), so every size/front read is start-of-phase
// state, which is also what the serial reference observes.
void Network::decide_forwards() {
  const std::uint32_t depth = static_cast<std::uint32_t>(cfg_.buffer_depth);
  for (TileId t = 0; t < tiles_; ++t) {
    for (int d = 0; d < ports_; ++d) {
      const std::size_t ol = lane(t, d);
      fwd_[ol] = 0;
      const int own = owner_in_[ol];
      if (own < 0) continue;
      const std::size_t il = lane(t, own);
      const FlitRing& buf = in_buf_[il];
      if (buf.empty()) continue;
      if (buf.front_last_hop() >= cycle_) continue;  // moved this cycle
      if (d == local_port_) {
        fwd_[ol] = 1;
        popped_cycle_[il] = cycle_;
        continue;
      }
      if (fault_mode_ && link_out_dead_[ol]) continue;  // link died
      const TileId next = topo_->link_dst(t, d);
      PARM_DCHECK(next != kInvalidTile, "allocated output leaves the graph");
      if (fault_mode_ && router_dead_[static_cast<std::size_t>(next)]) {
        continue;  // downstream router died
      }
      const std::size_t nl = lane(next, topo_->reverse_port(t, d));
      bool space = in_buf_[nl].size() < depth;
      if (!space && next < t && popped_cycle_[nl] == cycle_) space = true;
      if (!space) continue;  // no credit
      fwd_[ol] = 1;
      popped_cycle_[il] = cycle_;
      if (tracing_ && is_head(buf.front_kind())) {
        trace_append(buf.front_packet_id(), next);
      }
    }
  }
}

void Network::apply_range(TileId lo, TileId hi, std::uint32_t shard) {
  ShardAcc& acc = acc_[shard];
  for (TileId t = lo; t < hi; ++t) {
    for (int d = 0; d < ports_; ++d) {
      const std::size_t ol = lane(t, d);
      if (!fwd_[ol]) continue;
      const int own = owner_in_[ol];
      const std::size_t il = lane(t, own);
      if (d == local_port_) {
        // Ejection: consume the flit.
        const Flit f = in_buf_[il].pop_front();
        ++flits_forwarded_[static_cast<std::size_t>(t)];
        EjectRecord rec;
        rec.app_id = f.app_id;
        rec.tail = is_tail(f.kind) ? 1 : 0;
        rec.misdelivered = f.dst != t ? 1 : 0;
        rec.corrupt = rec.misdelivered == 0 && packet_corrupt(f.packet_id, t)
                          ? 1
                          : 0;
        rec.latency_cycles = cycle_ - f.inject_cycle;
        rec.packet_id = f.packet_id;
        rec.src = f.src;
        rec.dst = f.dst;
        acc.ejects.push_back(rec);
        if (rec.tail) {
          alloc_out_[il] = -1;
          owner_in_[ol] = -1;
        }
        continue;
      }
      const TileId next = topo_->link_dst(t, d);
      Flit f = in_buf_[il].pop_front();
      f.last_hop_cycle = cycle_;
      ++flits_forwarded_[static_cast<std::size_t>(t)];
      const int in_port = topo_->reverse_port(t, d);
      if (next >= lo && next < hi) {
        in_buf_[lane(next, in_port)].push_back(f);
        ++flits_received_[static_cast<std::size_t>(next)];
      } else {
        OutboxEntry e;
        e.dst_tile = next;
        e.in_port = static_cast<std::uint8_t>(in_port);
        e.flit = f;
        acc.outbox.push_back(e);
      }
      if (is_tail(f.kind)) {
        alloc_out_[il] = -1;
        owner_in_[ol] = -1;
      }
    }
  }
}

void Network::finish_cycle(std::uint32_t active_shards) {
  // Flush cross-shard flits in fixed (shard, router, port) order. Each
  // input lane has a unique upstream router, so it receives at most one
  // push per cycle; pop-then-push and push-then-pop leave a FIFO ring in
  // the same state, which keeps this order-free in effect and the flush
  // deterministic in form.
  bool any_ejects = false;
  for (std::uint32_t s = 0; s < active_shards; ++s) {
    ShardAcc& acc = acc_[s];
    for (const OutboxEntry& e : acc.outbox) {
      FlitRing& ring = in_buf_[lane(e.dst_tile, e.in_port)];
      ring.push_back(e.flit);
      PARM_DCHECK(ring.size() <=
                      static_cast<std::uint32_t>(cfg_.buffer_depth),
                  "cross-shard push overflowed a credit-limited buffer");
      ++flits_received_[static_cast<std::size_t>(e.dst_tile)];
    }
    acc.outbox.clear();
    // Merge ejection statistics in shard order. Latencies are integral
    // cycle counts, so the double sums below are exact and independent
    // of how routers were grouped into shards.
    for (const EjectRecord& rec : acc.ejects) {
      any_ejects = true;
      --buffered_flits_;
      if (rec.misdelivered || rec.corrupt) {
        // Drop-sink ejection or bit-error: the flit never reaches its
        // app. A corrupted packet is retransmitted from its source once
        // its tail has drained (unless an endpoint died meanwhile).
        ++fault_dropped_flits_;
        if (rec.tail && rec.corrupt) {
          ++corrupt_packets_;
          const bool endpoint_dead =
              fault_mode_ &&
              (router_dead_[static_cast<std::size_t>(rec.src)] ||
               router_dead_[static_cast<std::size_t>(rec.dst)]);
          if (!endpoint_dead) {
            inject_packet(rec.src, rec.dst, rec.app_id);
            ++retransmitted_packets_;
          }
        }
        continue;
      }
      ++delivered_flits_;
      AppLatencyStats& st = app_slot(rec.app_id);
      ++st.flits_delivered;
      if (rec.tail) {
        ++delivered_packets_;
        ++st.packets_delivered;
        const double lat = static_cast<double>(rec.latency_cycles);
        total_latency_cycles_ += lat;
        st.total_packet_latency_cycles += lat;
      }
    }
    acc.ejects.clear();
  }
  if (any_ejects) app_view_dirty_ = true;
  // Update incoming-rate EWMAs from this cycle's link arrivals.
  const double a = cfg_.rate_ewma_alpha;
  for (TileId t = 0; t < tiles_; ++t) {
    const std::size_t i = static_cast<std::size_t>(t);
    const double arrivals = static_cast<double>(flits_received_[i]);
    flits_received_[i] = 0;
    rate_ewma_[i] = (1.0 - a) * rate_ewma_[i] + a * arrivals;
    incoming_rates_[i] = rate_ewma_[i];
  }
}

void Network::run_shard_task(int kind, std::uint32_t shard) {
  const TileId lo = shard_start_[shard];
  const TileId hi = shard_start_[shard + 1];
  if (kind == kAllocatePhase) {
    allocate_range(lo, hi);
  } else {
    apply_range(lo, hi, shard);
  }
}

void Network::run_one_cycle_serial(const CycleHook& hook) {
  if (hook) hook(*this);
  ++cycle_;
  allocate_range(0, tiles_);
  decide_forwards();
  apply_range(0, tiles_, 0);
  finish_cycle(1);
}

void Network::step() { step_cycles(1); }

void Network::step_cycles(std::uint64_t n, const CycleHook& per_cycle) {
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::shared();
  if (shards_ <= 1 || pool.thread_count() == 0) {
    for (std::uint64_t c = 0; c < n; ++c) run_one_cycle_serial(per_cycle);
    return;
  }
  // Gang-schedule the window: one parallel_for whose index 0 leads every
  // cycle and whose other indices help with shard tasks. The leader can
  // complete each phase alone, so a busy pool (fleet chips, nested use)
  // degrades to serial throughput — never to deadlock or extra threads.
  const std::size_t participants =
      1 + std::min<std::size_t>(static_cast<std::size_t>(shards_ - 1),
                                pool.thread_count());
  ShardGang gang(static_cast<std::uint32_t>(shards_),
                 [this](int kind, std::uint32_t s) { run_shard_task(kind, s); });
  pool.parallel_for(participants, [&](std::size_t p) {
    if (p != 0) {
      gang.helper_loop();
      return;
    }
    struct FinishGuard {
      ShardGang& g;
      ~FinishGuard() { g.finish(); }
    } guard{gang};
    for (std::uint64_t c = 0; c < n; ++c) {
      if (per_cycle) per_cycle(*this);
      ++cycle_;
      gang.leader_phase(kAllocatePhase);
      decide_forwards();
      gang.leader_phase(kApplyPhase);
      finish_cycle(static_cast<std::uint32_t>(shards_));
    }
  });
}

std::vector<TileId> Network::traced_route(std::int64_t packet_id) const {
  const auto it = traces_.find(packet_id);
  return it == traces_.end() ? std::vector<TileId>{} : it->second;
}

std::uint64_t Network::in_flight_flits_scan() const {
  std::uint64_t n = 0;
  for (const FlitRing& ring : in_buf_) n += ring.size();
  return n;
}

std::uint64_t Network::in_flight_flits() const {
  PARM_DCHECK(buffered_flits_ == in_flight_flits_scan(),
              "O(1) in-flight counter diverged from the buffer scan");
  return buffered_flits_;
}

AppLatencyStats& Network::app_slot(std::int32_t app_id) {
  PARM_DCHECK(app_id >= -1, "app ids below -1 are reserved");
  const std::size_t idx = static_cast<std::size_t>(app_id + 1);
  if (idx >= app_dense_.size()) {
    app_dense_.resize(idx + 1);
    app_touched_.resize(idx + 1, 0);
  }
  app_touched_[idx] = 1;
  return app_dense_[idx];
}

const std::map<std::int32_t, AppLatencyStats>& Network::app_stats() const {
  if (app_view_dirty_) {
    app_view_.clear();
    for (std::size_t idx = 0; idx < app_dense_.size(); ++idx) {
      if (app_touched_[idx]) {
        app_view_.emplace(static_cast<std::int32_t>(idx) - 1,
                          app_dense_[idx]);
      }
    }
    app_view_dirty_ = false;
  }
  return app_view_;
}

double Network::avg_packet_latency() const {
  return delivered_packets_ == 0
             ? 0.0
             : total_latency_cycles_ /
                   static_cast<double>(delivered_packets_);
}

void Network::save(snapshot::Writer& w) const {
  PARM_CHECK(!tracing_, "cannot snapshot a network with route tracing on");
  w.begin_section("NOC0");
  w.i32(tiles_);
  w.i32(cfg_.buffer_depth);
  w.i32(cfg_.flits_per_packet);
  for (TileId t = 0; t < tiles_; ++t) {
    for (int p = 0; p < ports_; ++p) {
      const std::size_t il = lane(t, p);
      const FlitRing& buf = in_buf_[il];
      w.u64(buf.size());
      for (std::uint32_t i = 0; i < buf.size(); ++i) save_flit(w, buf.at(i));
      const bool allocated = alloc_out_[il] >= 0;
      w.b(allocated);
      if (allocated) w.u8(static_cast<std::uint8_t>(alloc_out_[il]));
    }
    for (int p = 0; p < ports_; ++p) {
      const std::size_t ol = lane(t, p);
      w.i32(owner_in_[ol]);
      w.i32(rr_next_[ol]);
      w.i32(requester_[ol]);
    }
    w.u64(flits_forwarded_[static_cast<std::size_t>(t)]);
    w.u64(flits_received_[static_cast<std::size_t>(t)]);
    w.f64(rate_ewma_[static_cast<std::size_t>(t)]);
  }
  w.vec_f64(tile_psn_);
  w.vec_f64(incoming_rates_);
  w.u64(cycle_);
  w.i64(next_packet_id_);
  w.u64(injected_flits_);
  w.u64(delivered_flits_);
  w.u64(delivered_packets_);
  w.f64(total_latency_cycles_);
  // Dense app slots in ascending index are ascending app id, matching
  // the sorted order the AoS implementation wrote.
  std::uint64_t n_apps = 0;
  for (std::size_t idx = 0; idx < app_dense_.size(); ++idx) {
    if (app_touched_[idx]) ++n_apps;
  }
  w.u64(n_apps);
  for (std::size_t idx = 0; idx < app_dense_.size(); ++idx) {
    if (!app_touched_[idx]) continue;
    const AppLatencyStats& st = app_dense_[idx];
    w.i32(static_cast<std::int32_t>(idx) - 1);
    w.u64(st.packets_delivered);
    w.u64(st.flits_delivered);
    w.f64(st.total_packet_latency_cycles);
  }
  // Fault state (masks as bool vectors; the degraded routing table is
  // derived, rebuilt on restore).
  std::vector<bool> link_dead(link_out_dead_.size());
  for (std::size_t i = 0; i < link_out_dead_.size(); ++i) {
    link_dead[i] = link_out_dead_[i] != 0;
  }
  std::vector<bool> rdead(router_dead_.size());
  for (std::size_t i = 0; i < router_dead_.size(); ++i) {
    rdead[i] = router_dead_[i] != 0;
  }
  w.vec_bool(link_dead);
  w.vec_bool(rdead);
  w.vec_f64(flit_error_rate_);
  w.u64(fault_seed_);
  w.u64(fault_dropped_flits_);
  w.u64(corrupt_packets_);
  w.u64(retransmitted_packets_);
}

void Network::restore(snapshot::Reader& r) {
  r.expect_section("NOC0");
  const std::int32_t tiles = r.i32();
  const std::int32_t depth = r.i32();
  const std::int32_t fpp = r.i32();
  if (tiles != tiles_ || depth != cfg_.buffer_depth ||
      fpp != cfg_.flits_per_packet) {
    throw snapshot::SnapshotError(
        "network snapshot was taken under a different NoC configuration "
        "(tile count / buffer depth / flits per packet mismatch)");
  }
  for (TileId t = 0; t < tiles_; ++t) {
    for (int p = 0; p < ports_; ++p) {
      const std::size_t il = lane(t, p);
      FlitRing& buf = in_buf_[il];
      buf.clear();
      const std::uint64_t n = r.count(30);
      for (std::uint64_t i = 0; i < n; ++i) {
        buf.push_back(load_flit(r, tiles));
      }
      alloc_out_[il] = -1;
      if (r.b()) {
        const std::uint8_t d = r.u8();
        if (d >= ports_) {
          throw snapshot::SnapshotError(
              "network snapshot holds an invalid allocated output port");
        }
        alloc_out_[il] = static_cast<std::int8_t>(d);
      }
    }
    for (int p = 0; p < ports_; ++p) {
      const std::size_t ol = lane(t, p);
      const std::int32_t owner = r.i32();
      const std::int32_t rr = r.i32();
      const std::int32_t req = r.i32();
      if (owner < -1 || owner >= ports_ || rr < 0 || rr >= ports_) {
        throw snapshot::SnapshotError(
            "network snapshot holds invalid arbitration state");
      }
      owner_in_[ol] = static_cast<std::int8_t>(owner);
      rr_next_[ol] = static_cast<std::int8_t>(rr);
      requester_[ol] = static_cast<std::int8_t>(
          req < -1 || req >= ports_ ? -1 : req);
    }
    flits_forwarded_[static_cast<std::size_t>(t)] = r.u64();
    flits_received_[static_cast<std::size_t>(t)] = r.u64();
    rate_ewma_[static_cast<std::size_t>(t)] = r.f64();
  }
  tile_psn_ = r.vec_f64();
  incoming_rates_ = r.vec_f64();
  if (tile_psn_.size() != static_cast<std::size_t>(tiles) ||
      incoming_rates_.size() != static_cast<std::size_t>(tiles)) {
    throw snapshot::SnapshotError("network per-tile vector size corrupt");
  }
  cycle_ = r.u64();
  next_packet_id_ = r.i64();
  injected_flits_ = r.u64();
  delivered_flits_ = r.u64();
  delivered_packets_ = r.u64();
  total_latency_cycles_ = r.f64();
  app_dense_.clear();
  app_touched_.clear();
  const std::uint64_t n_apps = r.count(28);
  for (std::uint64_t i = 0; i < n_apps; ++i) {
    const std::int32_t app = r.i32();
    if (app < -1) {
      throw snapshot::SnapshotError(
          "network snapshot holds an invalid app id");
    }
    AppLatencyStats st;
    st.packets_delivered = r.u64();
    st.flits_delivered = r.u64();
    st.total_packet_latency_cycles = r.f64();
    app_slot(app) = st;
  }
  app_view_.clear();
  app_view_dirty_ = !app_dense_.empty();
  const std::vector<bool> link_dead = r.vec_bool();
  const std::vector<bool> rdead = r.vec_bool();
  if (link_dead.size() != link_out_dead_.size() ||
      rdead.size() != router_dead_.size()) {
    throw snapshot::SnapshotError("network fault mask size corrupt");
  }
  for (std::size_t i = 0; i < link_dead.size(); ++i) {
    link_out_dead_[i] = link_dead[i] ? 1 : 0;
  }
  for (std::size_t i = 0; i < rdead.size(); ++i) {
    router_dead_[i] = rdead[i] ? 1 : 0;
  }
  flit_error_rate_ = r.vec_f64();
  if (!flit_error_rate_.empty() &&
      flit_error_rate_.size() != static_cast<std::size_t>(tiles)) {
    throw snapshot::SnapshotError("network flit error rate size corrupt");
  }
  fault_seed_ = r.u64();
  fault_dropped_flits_ = r.u64();
  corrupt_packets_ = r.u64();
  retransmitted_packets_ = r.u64();
  rebuild_fault_state();
  traces_.clear();
  trace_order_.clear();
  // Decision-pass scratch must not alias the restored clock.
  std::fill(popped_cycle_.begin(), popped_cycle_.end(), 0);
  std::fill(fwd_.begin(), fwd_.end(), 0);
  buffered_flits_ = in_flight_flits_scan();
}

void Network::reset_stats() {
  injected_flits_ = 0;
  delivered_flits_ = 0;
  delivered_packets_ = 0;
  total_latency_cycles_ = 0.0;
  app_dense_.clear();
  app_touched_.clear();
  app_view_.clear();
  app_view_dirty_ = false;
  std::fill(flits_forwarded_.begin(), flits_forwarded_.end(), 0);
  std::fill(flits_received_.begin(), flits_received_.end(), 0);
}

}  // namespace parm::noc
