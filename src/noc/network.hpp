// Cycle-level 2D-mesh wormhole NoC.
//
// One step() advances every router by one cycle in two phases:
//   1. allocation — head flits at input-buffer fronts compute a route
//      (via the installed RoutingAlgorithm) and arbitrate for output
//      ports round-robin; a granted output stays allocated to the input
//      until the packet's tail flit passes (wormhole switching);
//   2. traversal — each allocated output forwards one flit per cycle to
//      the downstream input buffer, subject to buffer space (credit flow
//      control); Local outputs eject and record packet latency.
//
// A flit moved this cycle is stamped so it cannot hop twice in one cycle.
// Links are 1 flit/cycle; per-hop latency is 1 cycle (route computation
// and PANR hop selection run in parallel per the paper's section 4.4).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "snapshot/serializer.hpp"

namespace parm::noc {

struct NocConfig {
  std::int32_t buffer_depth = 8;    ///< Flits per input buffer.
  std::int32_t flits_per_packet = 4;
  double rate_ewma_alpha = 0.05;    ///< Incoming-rate smoothing constant.
  double panr_occupancy_threshold = 0.5;  ///< B in Algorithm 3.
};

/// Latency accumulator for one application's traffic.
struct AppLatencyStats {
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_delivered = 0;
  double total_packet_latency_cycles = 0.0;

  double avg_packet_latency() const {
    return packets_delivered == 0
               ? 0.0
               : total_packet_latency_cycles /
                     static_cast<double>(packets_delivered);
  }
};

class Network {
 public:
  Network(const MeshGeometry& mesh, NocConfig cfg,
          std::unique_ptr<RoutingAlgorithm> routing);

  const MeshGeometry& mesh() const { return mesh_; }
  const NocConfig& config() const { return cfg_; }
  const RoutingAlgorithm& routing() const { return *routing_; }

  /// Updates the per-tile PSN sensor values PANR consults (percent).
  void set_tile_psn(std::vector<double> psn_percent);

  /// Enables per-packet route tracing: every router a head flit visits is
  /// recorded, queryable via traced_route(). Costs memory per packet —
  /// meant for tests and debugging, not measurement runs.
  void enable_tracing(bool on) { tracing_ = on; }

  /// The tile sequence a packet's head flit visited (starting at the
  /// source), or an empty vector if unknown/not traced.
  std::vector<TileId> traced_route(std::int64_t packet_id) const;

  /// Enqueues a whole packet (config().flits_per_packet flits) into the
  /// source queue of `src`. src == dst is rejected.
  void inject_packet(TileId src, TileId dst, std::int32_t app_id);

  /// Advances the network by one cycle.
  void step();

  std::uint64_t cycle() const { return cycle_; }

  const Router& router(TileId t) const {
    return routers_[static_cast<std::size_t>(t)];
  }
  Router& router(TileId t) { return routers_[static_cast<std::size_t>(t)]; }

  /// Current per-tile incoming-rate estimates (flits/cycle, EWMA).
  const std::vector<double>& incoming_rates() const {
    return incoming_rates_;
  }

  // --- Aggregate statistics ---
  std::uint64_t total_injected_flits() const { return injected_flits_; }
  std::uint64_t total_delivered_flits() const { return delivered_flits_; }
  /// Flits currently buffered somewhere in the network (exact scan, so it
  /// stays correct across reset_stats()).
  std::uint64_t in_flight_flits() const;
  const std::unordered_map<std::int32_t, AppLatencyStats>& app_stats() const {
    return app_stats_;
  }

  /// Average packet latency over all delivered packets (cycles).
  double avg_packet_latency() const;

  /// Clears statistics counters (buffers/allocations are untouched).
  void reset_stats();

  // --- Snapshot hooks ---
  /// Serializes the complete cycle-level state: every input buffer's
  /// flits, wormhole allocations, round-robin arbiter pointers, rate
  /// EWMAs, the cycle/packet-id counters, and the latency accounting.
  /// Per-packet route traces are debug state and are not serialized
  /// (tracing must be off when saving). app_stats_ is written sorted by
  /// app id so the byte stream is hash-order independent.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  void allocate_phase();
  void traversal_phase();

  MeshGeometry mesh_;
  NocConfig cfg_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::vector<Router> routers_;
  std::vector<double> tile_psn_;
  std::vector<double> incoming_rates_;
  std::uint64_t cycle_ = 0;
  std::int64_t next_packet_id_ = 0;
  std::uint64_t injected_flits_ = 0;
  std::uint64_t delivered_flits_ = 0;
  std::uint64_t delivered_packets_ = 0;
  double total_latency_cycles_ = 0.0;
  bool tracing_ = false;
  std::unordered_map<std::int64_t, std::vector<TileId>> traces_;
  std::unordered_map<std::int32_t, AppLatencyStats> app_stats_;
};

}  // namespace parm::noc
