// Cycle-level wormhole NoC (any Topology) with a sharded, bit-identical
// engine.
//
// One cycle advances every router in two phases:
//   1. allocation — head flits at input-buffer fronts compute a route
//      (via the installed RoutingAlgorithm) and arbitrate for output
//      ports round-robin; a granted output stays allocated to the input
//      until the packet's tail flit passes (wormhole switching);
//   2. traversal — each allocated output forwards one flit per cycle to
//      the downstream input buffer, subject to buffer space (credit flow
//      control); Local outputs eject and record packet latency.
//
// The engine splits traversal into a serial *decision* pass and a
// parallel *apply* pass. In the reference serial order (routers in
// ascending TileId), a push into a full downstream buffer succeeds only
// when the downstream router has already popped that buffer this cycle —
// i.e. only when it has a lower TileId. Forward decisions therefore form
// a lower-to-higher TileId dependency chain that a cheap serial pass
// resolves exactly; applying the decided pops/pushes afterwards is
// order-free (each buffer sees at most one pop by its owning router and
// one push by its unique upstream, and pop/push on a FIFO ring commute).
// That is what makes the sharded parallel path bit-identical to the
// serial one, pinned by engine_equivalence_test and the golden traces.
//
// Shards are contiguous TileId ranges. The allocate and apply phases run
// one task per shard on ThreadPool workers via ShardGang; flits crossing
// a shard boundary are appended to the producing shard's outbox and
// flushed by the leader in fixed (shard, router, port) order at the
// cycle barrier, together with per-shard statistic deltas merged in
// shard order — all sums of integers, so merge order cannot perturb
// floating-point state.
//
// Router state lives in structure-of-arrays form: FlitRing buffers plus
// flat allocation / arbiter / forward-decision / statistics arrays
// indexed by lane (= tile × ports + port), where the per-router port
// count comes from the installed Topology (5 on the classic mesh, so the
// snapshot byte format is unchanged from the array-of-structs
// implementation — save/restore adapt at the edges).
//
// A flit moved this cycle is stamped so it cannot hop twice in one cycle.
// Links are 1 flit/cycle; per-hop latency is 1 cycle (route computation
// and PANR hop selection run in parallel per the paper's section 4.4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "noc/flit_ring.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/routing_table.hpp"
#include "noc/topology.hpp"
#include "snapshot/serializer.hpp"

namespace parm::noc {

struct NocConfig {
  std::int32_t buffer_depth = 8;    ///< Flits per input buffer.
  std::int32_t flits_per_packet = 4;
  double rate_ewma_alpha = 0.05;    ///< Incoming-rate smoothing constant.
  double panr_occupancy_threshold = 0.5;  ///< B in Algorithm 3.
};

/// Latency accumulator for one application's traffic.
struct AppLatencyStats {
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_delivered = 0;
  double total_packet_latency_cycles = 0.0;

  double avg_packet_latency() const {
    return packets_delivered == 0
               ? 0.0
               : total_packet_latency_cycles /
                     static_cast<double>(packets_delivered);
  }
};

class Network {
 public:
  /// Called by step_cycles() before each cycle (traffic injection).
  using CycleHook = std::function<void(Network&)>;

  /// Legacy mesh entry point (wraps Topology::mesh of the same size).
  Network(const MeshGeometry& mesh, NocConfig cfg,
          std::unique_ptr<RoutingAlgorithm> routing);
  /// Topology-general entry point. The routing algorithm must be able to
  /// serve route_port() on this topology (make_routing_for pairs them).
  Network(std::shared_ptr<const Topology> topo, NocConfig cfg,
          std::unique_ptr<RoutingAlgorithm> routing);

  const Topology& topology() const { return *topo_; }
  /// Grid view of the topology (throws on mesh-less topologies; prefer
  /// topology()/tile_count() in new code).
  const MeshGeometry& mesh() const {
    const MeshGeometry* view = topo_->mesh_view();
    PARM_CHECK(view != nullptr,
               "topology " + topo_->spec() + " has no mesh view");
    return *view;
  }
  std::int32_t tile_count() const { return tiles_; }
  /// Per-router port count, Local included (5 on the classic mesh).
  int ports() const { return ports_; }
  const NocConfig& config() const { return cfg_; }
  const RoutingAlgorithm& routing() const { return *routing_; }

  /// Updates the per-tile PSN sensor values PANR consults (percent).
  void set_tile_psn(std::vector<double> psn_percent);

  // --- Topology faults (degraded mode) ---
  //
  // While any link or router is dead the network routes on a regenerated
  // deadlock-free RoutingTable built over the *surviving* subgraph
  // instead of the installed RoutingAlgorithm: the table builder proves
  // channel-dependency acyclicity at construction (minimal-adaptive,
  // then single-path, then up*/down* fallback), so degraded routing is
  // deadlock-free on any surviving graph, possibly at the cost of longer
  // paths. Packets for dead or unreachable destinations are ejected at
  // the current router and counted in fault_dropped_flits() instead of
  // the delivery stats. Both calls purge every packet that can no longer
  // complete (flits buffered in a dead router, or wormhole allocations
  // crossing a dead link/into a dead router), counting the removed flits
  // as dropped, and rebuild the table — call them between windows, never
  // mid-cycle.

  /// Fails (dead = true) or repairs the full-duplex link out of port
  /// `d` of tile `t` (both travel directions together). The Direction
  /// value carries a plain port index on topologies with more than four
  /// link ports.
  void set_link_fault(TileId t, Direction d, bool dead);
  bool link_fault(TileId t, Direction d) const {
    return link_out_dead_[lane(t, port_index(d))] != 0;
  }
  /// Fails or repairs a whole router (all its links plus its NIC).
  void set_router_fault(TileId t, bool dead);
  bool router_fault(TileId t) const {
    return router_dead_[static_cast<std::size_t>(t)] != 0;
  }
  /// True while any link or router is dead (degraded table routing).
  bool fault_mode() const { return fault_mode_; }
  /// Next hop from `from` toward `dst` on the degraded routing table, or
  /// kInvalidTile when dst is dead/unreachable (meaningful only while
  /// fault_mode() is true). Test/diagnostic hook.
  TileId fault_next_hop(TileId from, TileId dst) const;
  /// The degraded routing table (null while fault_mode() is false).
  const RoutingTable* fault_table() const { return fault_table_.get(); }

  // --- Transient flit bit-errors ---
  //
  // A packet is corrupted at ejection with the per-tile probability set
  // here (evaluated at the ejection tile). The decision is a pure hash of
  // (fault seed, packet id) — no RNG stream is consumed, so results are
  // independent of shard count and cycle interleaving. A corrupted
  // packet's flits count as fault-dropped, not delivered; when its tail
  // ejects, a replacement packet is re-injected at the original source
  // (retransmission), visible as added latency and load.

  /// Per-tile corruption probability per packet (empty = disabled).
  void set_flit_error_rates(std::vector<double> rate_per_packet);
  /// Seed for the corruption hash (defaults to 0).
  void set_fault_seed(std::uint64_t seed) { fault_seed_ = seed; }

  /// Flits removed by faults: purged by topology transitions, ejected at
  /// a drop sink (dead/unreachable destination), or corrupted. Cumulative
  /// over the network's lifetime — reset_stats() does not clear it, so
  /// `injected == delivered + fault_dropped + in_flight` holds between
  /// stat resets only when faults are off.
  std::uint64_t fault_dropped_flits() const { return fault_dropped_flits_; }
  /// Packets corrupted at ejection (tails seen). Cumulative.
  std::uint64_t corrupt_packets() const { return corrupt_packets_; }
  /// Replacement packets re-injected after corruption. Cumulative.
  std::uint64_t retransmitted_packets() const {
    return retransmitted_packets_;
  }

  /// Enables per-packet route tracing: every router a head flit visits is
  /// recorded, queryable via traced_route(). Bounded: at most
  /// trace_capacity() packets are retained (oldest-first eviction, see
  /// trace_evictions()) — meant for tests and debugging, not measurement.
  void enable_tracing(bool on) { tracing_ = on; }
  /// Caps the number of traced packets retained at once.
  void set_trace_capacity(std::size_t cap);
  std::size_t trace_capacity() const { return trace_capacity_; }
  /// Traced packets dropped (oldest first) to honor the capacity bound.
  std::uint64_t trace_evictions() const { return trace_evictions_; }

  /// The tile sequence a packet's head flit visited (starting at the
  /// source), or an empty vector if unknown/untraced/evicted.
  std::vector<TileId> traced_route(std::int64_t packet_id) const;

  /// Enqueues a whole packet (config().flits_per_packet flits) into the
  /// source queue of `src`. src == dst is rejected.
  void inject_packet(TileId src, TileId dst, std::int32_t app_id);

  /// Advances the network by one cycle.
  void step();

  /// Advances `n` cycles, invoking `per_cycle` (when set) before each —
  /// the bulk entry point run_window uses. With shards() > 1 and a
  /// non-empty thread pool the whole span runs under one gang
  /// (ShardGang), amortizing the fork/join cost over the window; results
  /// are bit-identical to serial stepping in every case.
  void step_cycles(std::uint64_t n, const CycleHook& per_cycle = nullptr);

  /// Partitions the mesh into `shards` contiguous TileId ranges stepped
  /// in parallel (clamped to [1, tile_count]). 1 restores pure serial
  /// stepping. Results are bit-identical for every value.
  void set_shards(int shards);
  int shards() const { return shards_; }

  /// Resolves a requested shard count: values >= 1 pass through; 0 means
  /// auto — the shared pool's width capped at 8, or 1 when the pool
  /// cannot actually run shards concurrently.
  static int auto_shard_count(int requested);

  std::uint64_t cycle() const { return cycle_; }

  // --- Per-router queries (tests, window statistics) ---
  /// Flits queued in one input buffer.
  std::uint32_t buffer_size(TileId t, Direction in) const {
    return in_buf_[lane(t, port_index(in))].size();
  }
  /// Output direction allocated to an input (wormhole), or -1.
  int allocated_output(TileId t, Direction in) const {
    return alloc_out_[lane(t, port_index(in))];
  }
  /// Input port index owning an output, or -1.
  int output_owner(TileId t, Direction out) const {
    return owner_in_[lane(t, port_index(out))];
  }
  /// Flits that left router `t` via any output (ejections included).
  std::uint64_t flits_forwarded(TileId t) const {
    return flits_forwarded_[static_cast<std::size_t>(t)];
  }

  /// Current per-tile incoming-rate estimates (flits/cycle, EWMA).
  const std::vector<double>& incoming_rates() const {
    return incoming_rates_;
  }

  // --- Aggregate statistics ---
  std::uint64_t total_injected_flits() const { return injected_flits_; }
  std::uint64_t total_delivered_flits() const { return delivered_flits_; }
  /// Flits currently buffered somewhere in the network. O(1): maintained
  /// on inject/eject (forwards keep the total), debug-checked against
  /// the full scan, and unaffected by reset_stats().
  std::uint64_t in_flight_flits() const;
  /// The exact full-scan count (test oracle for the O(1) counter).
  std::uint64_t in_flight_flits_scan() const;

  /// Per-app latency statistics, keyed by app id in ascending order. The
  /// hot path accumulates into a flat array; this view is materialized
  /// on demand and cached until the next delivery/reset/restore.
  const std::map<std::int32_t, AppLatencyStats>& app_stats() const;

  /// Average packet latency over all delivered packets (cycles).
  double avg_packet_latency() const;

  /// Clears statistics counters (buffers/allocations are untouched).
  void reset_stats();

  // --- Snapshot hooks ---
  /// Serializes the complete cycle-level state: every input buffer's
  /// flits, wormhole allocations, round-robin arbiter pointers, rate
  /// EWMAs, the cycle/packet-id counters, and the latency accounting.
  /// The byte stream is the pre-SoA format plus a trailing fault block
  /// (masks, error rates, fault counters; the degraded routing table is
  /// derived and rebuilt on restore). Per-packet route traces are debug
  /// state and are not serialized (tracing must be off when saving). App
  /// stats are written in ascending app-id order so the stream is layout
  /// independent.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  static constexpr int kAllocatePhase = 0;
  static constexpr int kApplyPhase = 1;

  /// A forwarded flit bound for another shard, applied at the barrier.
  struct OutboxEntry {
    TileId dst_tile;
    std::uint8_t in_port;
    Flit flit;
  };
  /// One ejected flit's statistics contribution (replayed in shard
  /// order at the barrier so app accounting has no data races).
  struct EjectRecord {
    std::int32_t app_id;
    std::uint8_t tail;
    std::uint8_t misdelivered;  ///< drop-sink ejection (dst unreachable)
    std::uint8_t corrupt;       ///< bit-error at the ejection tile
    std::uint64_t latency_cycles;
    std::int64_t packet_id;
    TileId src;
    TileId dst;
  };
  /// Per-shard deltas, merged serially in shard order. Padded so
  /// concurrently written accumulators never share a cache line.
  struct alignas(64) ShardAcc {
    std::vector<OutboxEntry> outbox;
    std::vector<EjectRecord> ejects;
  };

  std::size_t lane(TileId t, int port) const {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(ports_) +
           static_cast<std::size_t>(port);
  }

  double occupancy(TileId t, int port) const {
    const double o =
        static_cast<double>(in_buf_[lane(t, port)].size()) /
        static_cast<double>(cfg_.buffer_depth);
    return o > 1.0 ? 1.0 : o;
  }

  void run_shard_task(int kind, std::uint32_t shard);
  void allocate_range(TileId lo, TileId hi);
  void decide_forwards();
  void apply_range(TileId lo, TileId hi, std::uint32_t shard);
  void finish_cycle(std::uint32_t active_shards);
  void run_one_cycle_serial(const CycleHook& hook);

  AppLatencyStats& app_slot(std::int32_t app_id);
  void trace_append(std::int64_t packet_id, TileId tile);

  /// Recomputes fault_mode_ and regenerates the degraded routing table
  /// over the surviving subgraph after a mask change (or a restore).
  void rebuild_fault_state();
  /// Packet id allocated across output lane `ol`, found by walking the
  /// wormhole allocation chain upstream to the first non-empty buffer.
  std::int64_t allocated_pid(TileId t, int out_port) const;
  /// Removes every packet that can no longer complete after a topology
  /// transition, releasing its allocations and counting its flits as
  /// fault-dropped.
  void purge_broken_packets();
  bool packet_corrupt(std::int64_t packet_id, TileId eject_tile) const;

  std::shared_ptr<const Topology> topo_;
  NocConfig cfg_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::int32_t tiles_ = 0;
  int ports_ = 5;       ///< per-router port count (from the topology)
  int local_port_ = 4;  ///< == ports_ - 1

  // --- SoA router state, indexed by lane = tile * ports_ + port ---
  std::vector<FlitRing> in_buf_;        ///< input FIFOs
  std::vector<std::int8_t> alloc_out_;  ///< input → allocated output (-1)
  std::vector<std::int8_t> owner_in_;   ///< output → owning input (-1)
  std::vector<std::int8_t> rr_next_;    ///< output round-robin cursor
  std::vector<std::int8_t> requester_;  ///< transient, allocation phase
  std::vector<std::uint8_t> fwd_;       ///< output forwards this cycle
  std::vector<std::uint64_t> popped_cycle_;  ///< input last decided pop
  // Per-tile statistics (flat; EWMA feeds incoming_rates_).
  std::vector<std::uint64_t> flits_forwarded_;
  std::vector<std::uint64_t> flits_received_;
  std::vector<double> rate_ewma_;

  std::vector<double> tile_psn_;
  std::vector<double> incoming_rates_;

  // --- Fault state (all empty-effect when no fault was ever set) ---
  bool fault_mode_ = false;
  std::vector<std::uint8_t> link_out_dead_;  ///< per lane, link ports only
  std::vector<std::uint8_t> router_dead_;    ///< per tile
  /// Deadlock-free routing table over the surviving subgraph. Rebuilt by
  /// rebuild_fault_state, allocated only in fault mode.
  std::shared_ptr<const RoutingTable> fault_table_;
  std::vector<double> flit_error_rate_;  ///< per tile; empty = off
  std::uint64_t fault_seed_ = 0;
  std::uint64_t fault_dropped_flits_ = 0;
  std::uint64_t corrupt_packets_ = 0;
  std::uint64_t retransmitted_packets_ = 0;

  std::uint64_t cycle_ = 0;
  std::int64_t next_packet_id_ = 0;
  std::uint64_t injected_flits_ = 0;
  std::uint64_t delivered_flits_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t buffered_flits_ = 0;  ///< O(1) in-flight counter
  double total_latency_cycles_ = 0.0;

  // --- Sharding ---
  int shards_ = 1;
  std::vector<TileId> shard_start_;  ///< size shards_ + 1
  std::vector<ShardAcc> acc_;        ///< size shards_

  // --- App statistics (dense hot path + cached ordered view) ---
  std::vector<AppLatencyStats> app_dense_;  ///< index app_id + 1
  std::vector<std::uint8_t> app_touched_;
  mutable std::map<std::int32_t, AppLatencyStats> app_view_;
  mutable bool app_view_dirty_ = false;

  // --- Route tracing (bounded) ---
  bool tracing_ = false;
  std::size_t trace_capacity_ = 4096;
  std::uint64_t trace_evictions_ = 0;
  std::unordered_map<std::int64_t, std::vector<TileId>> traces_;
  std::deque<std::int64_t> trace_order_;  ///< insertion order for eviction
};

}  // namespace parm::noc
