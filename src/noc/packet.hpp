// Flit-level data types for the wormhole NoC.
#pragma once

#include <cstdint>

#include "common/geometry.hpp"

namespace parm::noc {

/// Position of a flit within its packet.
enum class FlitKind : std::uint8_t { Head, Body, Tail, HeadTail };

inline bool is_head(FlitKind k) {
  return k == FlitKind::Head || k == FlitKind::HeadTail;
}
inline bool is_tail(FlitKind k) {
  return k == FlitKind::Tail || k == FlitKind::HeadTail;
}

/// One flit. Packets are sequences of flits sharing a packet id; wormhole
/// switching keeps them contiguous along the allocated path.
struct Flit {
  FlitKind kind = FlitKind::HeadTail;
  std::int64_t packet_id = 0;
  TileId src = kInvalidTile;
  TileId dst = kInvalidTile;
  std::int32_t app_id = -1;          ///< Owning application (-1 = none).
  std::uint64_t inject_cycle = 0;    ///< Cycle the packet entered the
                                     ///< source queue (measures queueing).
  std::uint64_t last_hop_cycle = 0;  ///< Guards against double moves within
                                     ///< a simulated cycle.
};

}  // namespace parm::noc
