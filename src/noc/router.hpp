// Input-buffered wormhole router state.
//
// Five ports (E, W, N, S, Local). Each input port holds one FIFO flit
// buffer and, once a head flit is routed, a wormhole allocation to an
// output port that persists until the tail flit passes. Output ports
// arbitrate among requesting inputs round-robin. The Local input acts as
// the tile's (unbounded) source queue; the Local output is the ejection
// sink. All switching logic lives in Network — Router is the per-tile
// state it operates on.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>

#include "common/geometry.hpp"
#include "noc/packet.hpp"

namespace parm::noc {

inline constexpr int kPortCount = 5;  // E, W, N, S, Local

inline constexpr int port_index(Direction d) { return static_cast<int>(d); }

struct InputPort {
  std::deque<Flit> buffer;
  /// Output direction allocated to the packet currently traversing this
  /// input (wormhole), or nullopt when idle / between packets.
  std::optional<Direction> allocated_output;
};

struct OutputPort {
  /// Input port index currently owning this output, or -1.
  int owner_input = -1;
  /// Round-robin arbitration pointer (next input to consider first).
  int rr_next = 0;
  /// Input that requested this output this cycle (set during allocation).
  int requester = -1;
};

class Router {
 public:
  Router(TileId id, std::int32_t buffer_depth)
      : id_(id), buffer_depth_(buffer_depth) {}

  TileId id() const { return id_; }
  std::int32_t buffer_depth() const { return buffer_depth_; }

  InputPort& input(Direction d) {
    return inputs_[static_cast<std::size_t>(port_index(d))];
  }
  const InputPort& input(Direction d) const {
    return inputs_[static_cast<std::size_t>(port_index(d))];
  }
  InputPort& input(int idx) { return inputs_[static_cast<std::size_t>(idx)]; }

  OutputPort& output(Direction d) {
    return outputs_[static_cast<std::size_t>(port_index(d))];
  }
  const OutputPort& output(Direction d) const {
    return outputs_[static_cast<std::size_t>(port_index(d))];
  }

  /// Occupancy of an input buffer in [0, 1]. The unbounded Local source
  /// queue saturates at 1.
  double occupancy(Direction d) const {
    const auto& buf = input(d).buffer;
    const double o = static_cast<double>(buf.size()) /
                     static_cast<double>(buffer_depth_);
    return o > 1.0 ? 1.0 : o;
  }

  /// True if a (non-Local) input buffer can accept another flit.
  bool has_space(Direction d) const {
    return static_cast<std::int32_t>(input(d).buffer.size()) < buffer_depth_;
  }

  // --- Statistics (maintained by Network) ---
  std::uint64_t flits_forwarded = 0;   ///< Flits that left via any output.
  std::uint64_t flits_received = 0;    ///< Flits that arrived over links.
  double incoming_rate_ewma = 0.0;     ///< Link arrivals per cycle (EWMA).

 private:
  TileId id_;
  std::int32_t buffer_depth_;
  std::array<InputPort, kPortCount> inputs_;
  std::array<OutputPort, kPortCount> outputs_;
};

}  // namespace parm::noc
