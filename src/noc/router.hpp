// Router port model for the wormhole NoC.
//
// Five ports per router (E, W, N, S, Local). The Local input acts as the
// tile's (unbounded) source queue; the Local output is the ejection sink.
// Per-router state — input FIFOs, wormhole allocations, round-robin
// arbiter cursors, statistics — lives in Network's structure-of-arrays
// lane storage (network.hpp), addressed by tile × kPortCount + port;
// this header defines the port geometry those lanes are indexed by.
#pragma once

#include "common/geometry.hpp"

namespace parm::noc {

inline constexpr int kPortCount = 5;  // E, W, N, S, Local

inline constexpr int port_index(Direction d) { return static_cast<int>(d); }

}  // namespace parm::noc
