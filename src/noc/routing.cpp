#include "noc/routing.hpp"

#include <limits>
#include <utility>

#include "common/check.hpp"
#include "noc/routing_table.hpp"
#include "noc/topology.hpp"
#include "obs/metrics.hpp"

namespace parm::noc {

int RoutingAlgorithm::route_port(const Topology& topo, TileId current,
                                 TileId dst, const RoutingState& state) const {
  const MeshGeometry* mesh = topo.mesh_view();
  PARM_CHECK(mesh != nullptr,
             name() + " routing needs a mesh view; topology " + topo.spec() +
                 " requires a table-based policy (make_routing_for)");
  return static_cast<int>(route(*mesh, current, dst, state));
}

DirectionSet west_first_directions(const MeshGeometry& mesh, TileId current,
                                   TileId dst) {
  PARM_CHECK(current != dst, "routing called with current == dst");
  const TileCoord c = mesh.coord(current);
  const TileCoord d = mesh.coord(dst);
  DirectionSet out;
  if (d.x < c.x) {
    // West-first: any westward progress must happen before other turns,
    // so West is the only permitted direction while dst lies west.
    out.push_back(Direction::West);
    return out;
  }
  // No westward component remains: adaptively choose among the
  // productive east/north/south directions.
  if (d.x > c.x) out.push_back(Direction::East);
  if (d.y > c.y) out.push_back(Direction::North);
  if (d.y < c.y) out.push_back(Direction::South);
  return out;
}

Direction XyRouting::route(const MeshGeometry& mesh, TileId current,
                           TileId dst, const RoutingState&) const {
  PARM_CHECK(current != dst, "routing called with current == dst");
  const TileCoord c = mesh.coord(current);
  const TileCoord d = mesh.coord(dst);
  if (d.x > c.x) return Direction::East;
  if (d.x < c.x) return Direction::West;
  return d.y > c.y ? Direction::North : Direction::South;
}

Direction WestFirstRouting::route(const MeshGeometry& mesh, TileId current,
                                  TileId dst,
                                  const RoutingState& state) const {
  const DirectionSet dirs = west_first_directions(mesh, current, dst);
  (void)state;
  return dirs.front();  // deterministic preference: E > N > S order
}

namespace {

/// Picks, among the permitted directions, the one whose next-hop tile
/// minimizes `cost(tile)`; ties resolve to the earlier direction.
template <typename CostFn>
Direction pick_min_cost(const MeshGeometry& mesh, TileId current,
                        const DirectionSet& dirs, CostFn cost) {
  Direction best = dirs.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (Direction d : dirs) {
    const TileId n = mesh.neighbor(current, d);
    PARM_DCHECK(n != kInvalidTile, "productive direction left the mesh");
    const double c = cost(n);
    if (c < best_cost) {
      best_cost = c;
      best = d;
    }
  }
  return best;
}

double rate_of(const RoutingState& s, TileId t) {
  if (s.router_incoming_rate == nullptr) return 0.0;
  return (*s.router_incoming_rate)[static_cast<std::size_t>(t)];
}

double psn_of(const RoutingState& s, TileId t) {
  if (s.tile_psn_percent == nullptr) return 0.0;
  return (*s.tile_psn_percent)[static_cast<std::size_t>(t)];
}

}  // namespace

Direction IconRouting::route(const MeshGeometry& mesh, TileId current,
                             TileId dst, const RoutingState& state) const {
  const DirectionSet dirs = west_first_directions(mesh, current, dst);
  // ICON only looks at router activity (incoming data rate); it is
  // agnostic of the PSN of the cores underneath.
  return pick_min_cost(mesh, current, dirs,
                       [&](TileId n) { return rate_of(state, n); });
}

PanrRouting::PanrRouting(double occupancy_threshold, double psn_safe_percent,
                         obs::Registry* registry)
    : threshold_(occupancy_threshold),
      psn_safe_percent_(psn_safe_percent),
      reroutes_(&obs::resolve(registry).counter("noc.panr_reroutes")) {
  PARM_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0,
             "occupancy threshold must be in [0,1]");
  PARM_CHECK(psn_safe_percent_ > 0.0, "PSN safety margin must be positive");
}

/// A PANR "reroute" is any decision that deviates from the deterministic
/// west-first preference (what WestFirstRouting would have picked) —
/// i.e. the congestion/PSN feedback actually changed the path.
void PanrRouting::count_reroute(Direction chosen, Direction preferred) const {
  if (chosen == preferred) return;
  reroutes_->inc();
}

Direction PanrRouting::route(const MeshGeometry& mesh, TileId current,
                             TileId dst, const RoutingState& state) const {
  const DirectionSet dirs = west_first_directions(mesh, current, dst);
  if (state.input_buffer_occupancy > threshold_) {
    // Congested: relieve pressure via the least-loaded permitted next hop
    // (Algorithm 3 line 5).
    const Direction d = pick_min_cost(
        mesh, current, dirs, [&](TileId n) { return rate_of(state, n); });
    count_reroute(d, dirs.front());
    return d;
  }
  // Otherwise steer toward the quietest supply (Algorithm 3 line 6).
  // PSN sensors refresh on the millisecond sampling scale — far slower
  // than routing decisions — so selecting strictly by minimum PSN makes
  // every packet herd into yesterday's quietest corridor and push it over
  // the margin (dump-and-flee oscillation). Instead, PSN acts as a safety
  // filter: next hops already near the voltage-emergency margin are
  // excluded, and among the safe ones the least-loaded is chosen (the
  // data-rate signal updates every cycle, giving stable feedback).
  DirectionSet safe;
  for (Direction d : dirs) {
    const TileId n = mesh.neighbor(current, d);
    if (psn_of(state, n) < psn_safe_percent_) safe.push_back(d);
  }
  if (safe.empty()) {
    // Every permitted hop is noisy: fall back to the least-noisy one.
    const Direction d = pick_min_cost(
        mesh, current, dirs, [&](TileId n) { return psn_of(state, n); });
    count_reroute(d, dirs.front());
    return d;
  }
  const Direction d = pick_min_cost(
      mesh, current, safe, [&](TileId n) { return rate_of(state, n); });
  count_reroute(d, dirs.front());
  return d;
}

std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               double panr_threshold,
                                               obs::Registry* registry) {
  if (name == "XY") return std::make_unique<XyRouting>();
  if (name == "WestFirst") return std::make_unique<WestFirstRouting>();
  if (name == "ICON") return std::make_unique<IconRouting>();
  if (name == "PANR") {
    return std::make_unique<PanrRouting>(panr_threshold, 4.0, registry);
  }
  PARM_CHECK(false, "unknown routing algorithm: " + name);
}

TableRouting::TableRouting(std::shared_ptr<const Topology> topo,
                           std::shared_ptr<const RoutingTable> table,
                           std::string name, CostPolicy policy,
                           double occupancy_threshold, double psn_safe_percent,
                           obs::Registry* registry)
    : topo_(std::move(topo)),
      table_(std::move(table)),
      name_(std::move(name)),
      policy_(policy),
      threshold_(occupancy_threshold),
      psn_safe_percent_(psn_safe_percent),
      reroutes_(policy == CostPolicy::kPanr
                    ? &obs::resolve(registry).counter("noc.panr_reroutes")
                    : nullptr) {
  PARM_CHECK(topo_ != nullptr && table_ != nullptr,
             "TableRouting needs a topology and a routing table");
  PARM_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0,
             "occupancy threshold must be in [0,1]");
  PARM_CHECK(psn_safe_percent_ > 0.0, "PSN safety margin must be positive");
}

Direction TableRouting::route(const MeshGeometry& mesh, TileId current,
                              TileId dst, const RoutingState& state) const {
  // The legacy mesh entry point still works when the topology carries a
  // grid view with matching dimensions (ports 0..3 are E/W/N/S there).
  const MeshGeometry* view = topo_->mesh_view();
  PARM_CHECK(view != nullptr && view->width() == mesh.width() &&
                 view->height() == mesh.height(),
             name_ + " table routing is bound to " + topo_->spec() +
                 ", not a " + std::to_string(mesh.width()) + "x" +
                 std::to_string(mesh.height()) + " mesh");
  return static_cast<Direction>(route_port(*topo_, current, dst, state));
}

int TableRouting::route_port(const Topology& topo, TileId current, TileId dst,
                             const RoutingState& state) const {
  PARM_CHECK(current != dst, "routing called with current == dst");
  PortSet cand;
  table_->candidates(current, dst, &cand);
  PARM_CHECK(!cand.empty(), name_ + ": no route " + std::to_string(current) +
                                "->" + std::to_string(dst) + " on " +
                                topo.spec());
  if (cand.size() == 1) return cand.front();

  const auto pick_min = [&](const PortSet& set, auto cost) {
    int best = set.front();
    double best_cost = std::numeric_limits<double>::infinity();
    for (int p : set) {
      const TileId n = topo.link_dst(current, p);
      PARM_DCHECK(n != kInvalidTile, "table candidate left the graph");
      const double c = cost(n);
      if (c < best_cost) {
        best_cost = c;
        best = p;
      }
    }
    return best;
  };
  const auto count_reroute = [&](int chosen) {
    if (reroutes_ != nullptr && chosen != cand.front()) reroutes_->inc();
  };

  switch (policy_) {
    case CostPolicy::kFirst:
      return cand.front();
    case CostPolicy::kMinRate:
      return pick_min(cand, [&](TileId n) { return rate_of(state, n); });
    case CostPolicy::kPanr:
      break;
  }
  if (state.input_buffer_occupancy > threshold_) {
    const int p = pick_min(cand, [&](TileId n) { return rate_of(state, n); });
    count_reroute(p);
    return p;
  }
  // PSN acts as a safety filter over the deadlock-safe candidates, with
  // the same herding-avoidance rationale as the mesh PANR policy.
  PortSet safe;
  for (int p : cand) {
    const TileId n = topo.link_dst(current, p);
    if (psn_of(state, n) < psn_safe_percent_) safe.push_back(p);
  }
  if (safe.empty()) {
    const int p = pick_min(cand, [&](TileId n) { return psn_of(state, n); });
    count_reroute(p);
    return p;
  }
  const int p = pick_min(safe, [&](TileId n) { return rate_of(state, n); });
  count_reroute(p);
  return p;
}

std::unique_ptr<RoutingAlgorithm> make_routing_for(
    const std::shared_ptr<const Topology>& topo, const std::string& name,
    double panr_threshold, obs::Registry* registry) {
  PARM_CHECK(topo != nullptr, "make_routing_for needs a topology");
  if (topo->kind() == TopologyKind::kMesh) {
    // The paper's mesh keeps the historical turn-model implementations
    // (and their bit-identical traces).
    return make_routing(name, panr_threshold, registry);
  }
  auto table =
      std::make_shared<const RoutingTable>(RoutingTable::build(*topo));
  TableRouting::CostPolicy policy = TableRouting::CostPolicy::kFirst;
  if (name == "ICON") {
    policy = TableRouting::CostPolicy::kMinRate;
  } else if (name == "PANR") {
    policy = TableRouting::CostPolicy::kPanr;
  } else {
    PARM_CHECK(name == "XY" || name == "WestFirst",
               "unknown routing algorithm: " + name);
  }
  return std::make_unique<TableRouting>(topo, std::move(table), name, policy,
                                        panr_threshold, 4.0, registry);
}

}  // namespace parm::noc
