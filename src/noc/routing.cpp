#include "noc/routing.hpp"

#include <limits>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace parm::noc {

DirectionSet west_first_directions(const MeshGeometry& mesh, TileId current,
                                   TileId dst) {
  PARM_CHECK(current != dst, "routing called with current == dst");
  const TileCoord c = mesh.coord(current);
  const TileCoord d = mesh.coord(dst);
  DirectionSet out;
  if (d.x < c.x) {
    // West-first: any westward progress must happen before other turns,
    // so West is the only permitted direction while dst lies west.
    out.push_back(Direction::West);
    return out;
  }
  // No westward component remains: adaptively choose among the
  // productive east/north/south directions.
  if (d.x > c.x) out.push_back(Direction::East);
  if (d.y > c.y) out.push_back(Direction::North);
  if (d.y < c.y) out.push_back(Direction::South);
  return out;
}

Direction XyRouting::route(const MeshGeometry& mesh, TileId current,
                           TileId dst, const RoutingState&) const {
  PARM_CHECK(current != dst, "routing called with current == dst");
  const TileCoord c = mesh.coord(current);
  const TileCoord d = mesh.coord(dst);
  if (d.x > c.x) return Direction::East;
  if (d.x < c.x) return Direction::West;
  return d.y > c.y ? Direction::North : Direction::South;
}

Direction WestFirstRouting::route(const MeshGeometry& mesh, TileId current,
                                  TileId dst,
                                  const RoutingState& state) const {
  const DirectionSet dirs = west_first_directions(mesh, current, dst);
  (void)state;
  return dirs.front();  // deterministic preference: E > N > S order
}

namespace {

/// Picks, among the permitted directions, the one whose next-hop tile
/// minimizes `cost(tile)`; ties resolve to the earlier direction.
template <typename CostFn>
Direction pick_min_cost(const MeshGeometry& mesh, TileId current,
                        const DirectionSet& dirs, CostFn cost) {
  Direction best = dirs.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (Direction d : dirs) {
    const TileId n = mesh.neighbor(current, d);
    PARM_DCHECK(n != kInvalidTile, "productive direction left the mesh");
    const double c = cost(n);
    if (c < best_cost) {
      best_cost = c;
      best = d;
    }
  }
  return best;
}

double rate_of(const RoutingState& s, TileId t) {
  if (s.router_incoming_rate == nullptr) return 0.0;
  return (*s.router_incoming_rate)[static_cast<std::size_t>(t)];
}

double psn_of(const RoutingState& s, TileId t) {
  if (s.tile_psn_percent == nullptr) return 0.0;
  return (*s.tile_psn_percent)[static_cast<std::size_t>(t)];
}

}  // namespace

Direction IconRouting::route(const MeshGeometry& mesh, TileId current,
                             TileId dst, const RoutingState& state) const {
  const DirectionSet dirs = west_first_directions(mesh, current, dst);
  // ICON only looks at router activity (incoming data rate); it is
  // agnostic of the PSN of the cores underneath.
  return pick_min_cost(mesh, current, dirs,
                       [&](TileId n) { return rate_of(state, n); });
}

PanrRouting::PanrRouting(double occupancy_threshold, double psn_safe_percent,
                         obs::Registry* registry)
    : threshold_(occupancy_threshold),
      psn_safe_percent_(psn_safe_percent),
      reroutes_(&obs::resolve(registry).counter("noc.panr_reroutes")) {
  PARM_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0,
             "occupancy threshold must be in [0,1]");
  PARM_CHECK(psn_safe_percent_ > 0.0, "PSN safety margin must be positive");
}

/// A PANR "reroute" is any decision that deviates from the deterministic
/// west-first preference (what WestFirstRouting would have picked) —
/// i.e. the congestion/PSN feedback actually changed the path.
void PanrRouting::count_reroute(Direction chosen, Direction preferred) const {
  if (chosen == preferred) return;
  reroutes_->inc();
}

Direction PanrRouting::route(const MeshGeometry& mesh, TileId current,
                             TileId dst, const RoutingState& state) const {
  const DirectionSet dirs = west_first_directions(mesh, current, dst);
  if (state.input_buffer_occupancy > threshold_) {
    // Congested: relieve pressure via the least-loaded permitted next hop
    // (Algorithm 3 line 5).
    const Direction d = pick_min_cost(
        mesh, current, dirs, [&](TileId n) { return rate_of(state, n); });
    count_reroute(d, dirs.front());
    return d;
  }
  // Otherwise steer toward the quietest supply (Algorithm 3 line 6).
  // PSN sensors refresh on the millisecond sampling scale — far slower
  // than routing decisions — so selecting strictly by minimum PSN makes
  // every packet herd into yesterday's quietest corridor and push it over
  // the margin (dump-and-flee oscillation). Instead, PSN acts as a safety
  // filter: next hops already near the voltage-emergency margin are
  // excluded, and among the safe ones the least-loaded is chosen (the
  // data-rate signal updates every cycle, giving stable feedback).
  DirectionSet safe;
  for (Direction d : dirs) {
    const TileId n = mesh.neighbor(current, d);
    if (psn_of(state, n) < psn_safe_percent_) safe.push_back(d);
  }
  if (safe.empty()) {
    // Every permitted hop is noisy: fall back to the least-noisy one.
    const Direction d = pick_min_cost(
        mesh, current, dirs, [&](TileId n) { return psn_of(state, n); });
    count_reroute(d, dirs.front());
    return d;
  }
  const Direction d = pick_min_cost(
      mesh, current, safe, [&](TileId n) { return rate_of(state, n); });
  count_reroute(d, dirs.front());
  return d;
}

std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               double panr_threshold,
                                               obs::Registry* registry) {
  if (name == "XY") return std::make_unique<XyRouting>();
  if (name == "WestFirst") return std::make_unique<WestFirstRouting>();
  if (name == "ICON") return std::make_unique<IconRouting>();
  if (name == "PANR") {
    return std::make_unique<PanrRouting>(panr_threshold, 4.0, registry);
  }
  PARM_CHECK(false, "unknown routing algorithm: " + name);
}

}  // namespace parm::noc
