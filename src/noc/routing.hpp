// Routing algorithms for the 2D-mesh wormhole NoC.
//
// All adaptive schemes restrict their choices to the west-first turn model
// [32], which is provably deadlock-free with a single virtual channel:
// a packet travelling west must do so first; once moving east/north/south
// it may never turn back west.
//
// Implemented policies (paper section 5.2 evaluates all of them):
//  - XY:        dimension-ordered, oblivious.
//  - WestFirst: turn-model baseline with a deterministic tie-break.
//  - ICON [22]: west-first + pick the permitted direction whose next-hop
//               router has the lowest incoming data rate (router-activity
//               aware, core-PSN agnostic).
//  - PANR (ours, section 4.4): west-first + congestion/PSN hybrid — when
//               the input buffer is filling (occupancy > B) pick the least
//               loaded next hop, otherwise pick the next hop whose tile
//               sensor reports the least PSN.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/geometry.hpp"
#include "obs/metrics.hpp"

namespace parm::noc {

class Topology;      // noc/topology.hpp
class RoutingTable;  // noc/routing_table.hpp

/// Fixed-capacity set of candidate output directions, sized to the four
/// cardinal mesh ports so route computation — which runs once per head
/// flit per hop inside the cycle engine — never touches the heap.
/// Overflow throws instead of silently writing out of bounds (higher
/// router degrees use the table policies' PortSet, not this class).
class DirectionSet {
 public:
  void push_back(Direction d) {
    PARM_CHECK(count_ < dirs_.size(),
               "DirectionSet overflow: more candidates than cardinal ports");
    dirs_[count_++] = d;
  }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  Direction front() const { return dirs_[0]; }
  Direction operator[](std::size_t i) const { return dirs_[i]; }
  const Direction* begin() const { return dirs_.data(); }
  const Direction* end() const { return dirs_.data() + count_; }

 private:
  std::array<Direction, 4> dirs_{};
  std::size_t count_ = 0;
};

/// Observable state a routing policy may consult at decision time.
/// All vectors are indexed by TileId; rates are flits/cycle.
struct RoutingState {
  const std::vector<double>* tile_psn_percent = nullptr;  ///< Sensor data.
  const std::vector<double>* router_incoming_rate = nullptr;
  /// Occupancy (0..1) of the input buffer holding the flit being routed.
  double input_buffer_occupancy = 0.0;
};

/// Strategy interface: pick the output direction for a head flit at
/// router `current` destined for `dst`. `dst != current` is guaranteed
/// (ejection is handled by the router).
class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;
  virtual Direction route(const MeshGeometry& mesh, TileId current,
                          TileId dst, const RoutingState& state) const = 0;
  /// Topology-general entry point: pick the output *port*. The default
  /// forwards to route() on the topology's mesh view, so the legacy
  /// turn-model policies stay bit-identical on the mesh; table-based
  /// policies override it directly.
  virtual int route_port(const Topology& topo, TileId current, TileId dst,
                         const RoutingState& state) const;
  virtual std::string name() const = 0;
};

/// Directions allowed by the west-first turn model toward `dst`.
/// Always non-empty for dst != current and always makes progress.
DirectionSet west_first_directions(const MeshGeometry& mesh, TileId current,
                                   TileId dst);

class XyRouting final : public RoutingAlgorithm {
 public:
  Direction route(const MeshGeometry& mesh, TileId current, TileId dst,
                  const RoutingState& state) const override;
  std::string name() const override { return "XY"; }
};

class WestFirstRouting final : public RoutingAlgorithm {
 public:
  Direction route(const MeshGeometry& mesh, TileId current, TileId dst,
                  const RoutingState& state) const override;
  std::string name() const override { return "WestFirst"; }
};

class IconRouting final : public RoutingAlgorithm {
 public:
  Direction route(const MeshGeometry& mesh, TileId current, TileId dst,
                  const RoutingState& state) const override;
  std::string name() const override { return "ICON"; }
};

class PanrRouting final : public RoutingAlgorithm {
 public:
  /// `occupancy_threshold` is the buffer threshold B (0.5 in the paper);
  /// `psn_safe_percent` is the sensor level above which a next hop is
  /// treated as noisy and avoided (one point under the 5 % VE margin).
  /// noc.panr_reroutes goes to `registry` (null → process-default).
  explicit PanrRouting(double occupancy_threshold = 0.5,
                       double psn_safe_percent = 4.0,
                       obs::Registry* registry = nullptr);
  Direction route(const MeshGeometry& mesh, TileId current, TileId dst,
                  const RoutingState& state) const override;
  std::string name() const override { return "PANR"; }
  double occupancy_threshold() const { return threshold_; }
  double psn_safe_percent() const { return psn_safe_percent_; }

 private:
  /// Ticks noc.panr_reroutes when the feedback actually changed the path.
  void count_reroute(Direction chosen, Direction preferred) const;

  double threshold_;
  double psn_safe_percent_;
  obs::Counter* reroutes_;
};

/// Factory by name ("XY", "WestFirst", "ICON", "PANR"). PANR's reroute
/// counter goes to `registry` (null → process-default).
std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               double panr_threshold = 0.5,
                                               obs::Registry* registry =
                                                   nullptr);

/// Routes over a generated deadlock-free RoutingTable, layering the
/// legacy policies' cost models onto the table's safe candidate set:
///  - kFirst   (XY / WestFirst): deterministic lowest-numbered candidate;
///  - kMinRate (ICON):           candidate whose next hop has the lowest
///                               incoming data rate;
///  - kPanr    (PANR):           congestion/PSN hybrid — least-loaded
///                               candidate when the input buffer is
///                               filling, otherwise least-loaded among
///                               PSN-safe candidates (min-PSN fallback).
/// Outside the table's adaptive mode there is exactly one candidate per
/// pair, so every policy degenerates to the verified single path.
class TableRouting final : public RoutingAlgorithm {
 public:
  enum class CostPolicy { kFirst, kMinRate, kPanr };

  TableRouting(std::shared_ptr<const Topology> topo,
               std::shared_ptr<const RoutingTable> table, std::string name,
               CostPolicy policy, double occupancy_threshold = 0.5,
               double psn_safe_percent = 4.0,
               obs::Registry* registry = nullptr);

  Direction route(const MeshGeometry& mesh, TileId current, TileId dst,
                  const RoutingState& state) const override;
  int route_port(const Topology& topo, TileId current, TileId dst,
                 const RoutingState& state) const override;
  std::string name() const override { return name_; }
  const RoutingTable& table() const { return *table_; }

 private:
  std::shared_ptr<const Topology> topo_;
  std::shared_ptr<const RoutingTable> table_;
  std::string name_;
  CostPolicy policy_;
  double threshold_;
  double psn_safe_percent_;
  obs::Counter* reroutes_;
};

/// Topology-aware factory: returns the legacy turn-model policies on the
/// plain mesh (bit-identical defaults) and table-based equivalents —
/// sharing one generated, construction-verified RoutingTable — on every
/// other topology.
std::unique_ptr<RoutingAlgorithm> make_routing_for(
    const std::shared_ptr<const Topology>& topo, const std::string& name,
    double panr_threshold = 0.5, obs::Registry* registry = nullptr);

}  // namespace parm::noc
