#include "noc/routing_table.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <limits>
#include <utility>

namespace parm::noc {

namespace {

constexpr std::int32_t kUnreachable = std::numeric_limits<std::int32_t>::max();

/// Caps CDG materialization; an attempt whose raw transition count
/// exceeds this is treated as cyclic and the builder falls through to
/// the next (more conservative) scheme.
constexpr std::size_t kMaxCdgEdges = 8u << 20;

/// Kahn's algorithm over a deduplicated edge list between `channels`
/// nodes. Returns true when the graph is acyclic; when false and
/// `cycle_channel` is non-null, stores one channel on a cycle.
bool cdg_acyclic(std::int32_t channels,
                 std::vector<std::pair<std::int32_t, std::int32_t>>* edges,
                 std::int32_t* cycle_channel) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
  std::vector<std::int32_t> indegree(static_cast<std::size_t>(channels), 0);
  std::vector<std::size_t> offset(static_cast<std::size_t>(channels) + 1, 0);
  for (const auto& [src, dst] : *edges) {
    ++indegree[static_cast<std::size_t>(dst)];
    ++offset[static_cast<std::size_t>(src) + 1];
  }
  for (std::int32_t c = 0; c < channels; ++c) {
    offset[static_cast<std::size_t>(c) + 1] +=
        offset[static_cast<std::size_t>(c)];
  }
  std::deque<std::int32_t> ready;
  for (std::int32_t c = 0; c < channels; ++c) {
    if (indegree[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
  }
  std::int32_t removed = 0;
  while (!ready.empty()) {
    const std::int32_t c = ready.front();
    ready.pop_front();
    ++removed;
    for (std::size_t e = offset[static_cast<std::size_t>(c)];
         e < offset[static_cast<std::size_t>(c) + 1]; ++e) {
      const std::int32_t succ = (*edges)[e].second;
      if (--indegree[static_cast<std::size_t>(succ)] == 0) {
        ready.push_back(succ);
      }
    }
  }
  if (removed == channels) return true;
  if (cycle_channel != nullptr) {
    for (std::int32_t c = 0; c < channels; ++c) {
      if (indegree[static_cast<std::size_t>(c)] > 0) {
        *cycle_channel = c;
        break;
      }
    }
  }
  return false;
}

struct Builder {
  const Topology& topo;
  const std::vector<std::uint8_t>& link_out_dead;
  const std::vector<std::uint8_t>& router_dead;
  std::int32_t n;
  int ports;
  int link_ports;

  bool router_alive(TileId t) const {
    return router_dead.empty() || router_dead[static_cast<std::size_t>(t)] == 0;
  }
  bool usable(TileId t, int port) const {
    const TileId d = topo.link_dst(t, port);
    if (d == kInvalidTile) return false;
    if (!router_alive(t) || !router_alive(d)) return false;
    if (!link_out_dead.empty() &&
        link_out_dead[static_cast<std::size_t>(t) *
                          static_cast<std::size_t>(ports) +
                      static_cast<std::size_t>(port)] != 0) {
      return false;
    }
    return true;
  }

  std::int32_t channel(TileId t, int port) const {
    return t * link_ports + port;
  }

  /// BFS distances of every tile *to* `dst` over usable lanes (relaxed
  /// along reversed edges so per-direction lane death is honored).
  void dist_to(TileId dst, std::vector<std::int32_t>* dist) const {
    dist->assign(static_cast<std::size_t>(n), kUnreachable);
    if (!router_alive(dst)) return;
    (*dist)[static_cast<std::size_t>(dst)] = 0;
    std::deque<TileId> queue{dst};
    while (!queue.empty()) {
      const TileId at = queue.front();
      queue.pop_front();
      for (int p = 0; p < link_ports; ++p) {
        const TileId from = topo.link_dst(at, p);
        if (from == kInvalidTile) continue;
        // Relax the reverse lane from -> at.
        const int back = topo.reverse_port(at, p);
        if (!usable(from, back)) continue;
        if ((*dist)[static_cast<std::size_t>(from)] != kUnreachable) continue;
        (*dist)[static_cast<std::size_t>(from)] =
            (*dist)[static_cast<std::size_t>(at)] + 1;
        queue.push_back(from);
      }
    }
  }
};

}  // namespace

const char* RoutingTable::mode_name() const {
  switch (mode_) {
    case Mode::kAdaptive:
      return "adaptive-minimal";
    case Mode::kSinglePath:
      return "single-path-minimal";
    case Mode::kUpDown:
      return "up-down";
  }
  return "?";
}

void RoutingTable::candidates(TileId from, TileId to, PortSet* out) const {
  out->clear();
  std::uint32_t mask = cand_[pair(from, to)];
  while (mask != 0) {
    const int p = std::countr_zero(mask);
    out->push_back(p);
    mask &= mask - 1;
  }
}

std::int32_t RoutingTable::table_hops(TileId from, TileId to) const {
  if (from == to) return 0;
  std::int32_t hops = 0;
  TileId at = from;
  // next_ is verified to terminate; the bound is belt-and-braces.
  while (at != to && hops <= tiles_) {
    if (next_[pair(at, to)] < 0) return -1;
    at = step_[pair(at, to)];
    ++hops;
  }
  return at == to ? hops : -1;
}

void RoutingTable::verify(const Topology& topo) const {
  // The CDG is built over *all* candidate transitions, so in kAdaptive
  // mode a runtime policy may pick any candidate without risking a cycle
  // (other modes publish exactly one candidate per pair).
  const int link_ports = ports_ - 1;
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (TileId dst = 0; dst < tiles_; ++dst) {
    for (TileId v = 0; v < tiles_; ++v) {
      if (v == dst) continue;
      std::uint32_t vm = cand_[pair(v, dst)];
      PARM_CHECK(
          (vm != 0) == (next_[pair(v, dst)] >= 0),
          spec_ + ": candidate mask and primary port disagree for route " +
              std::to_string(v) + "->" + std::to_string(dst));
      while (vm != 0) {
        const int p = std::countr_zero(vm);
        vm &= vm - 1;
        const TileId u = topo.link_dst(v, p);
        PARM_CHECK(u != kInvalidTile,
                   spec_ + ": route " + std::to_string(v) + "->" +
                       std::to_string(dst) + " uses unwired port " +
                       std::to_string(p));
        if (u == dst) continue;
        std::uint32_t um = cand_[pair(u, dst)];
        PARM_CHECK(um != 0, spec_ + ": route " + std::to_string(v) + "->" +
                                std::to_string(dst) +
                                " enters a dead-end at tile " +
                                std::to_string(u));
        while (um != 0) {
          const int q = std::countr_zero(um);
          um &= um - 1;
          edges.emplace_back(v * link_ports + p, u * link_ports + q);
        }
      }
    }
  }
  std::int32_t cycle_channel = -1;
  PARM_CHECK(
      cdg_acyclic(tiles_ * link_ports, &edges, &cycle_channel),
      spec_ + ": " + std::string(mode_name()) +
          " routing table has a channel-dependency cycle through channel " +
          std::to_string(cycle_channel) + " (tile " +
          std::to_string(cycle_channel / link_ports) + ", port " +
          std::to_string(cycle_channel % link_ports) + ")");
  // Path termination for every reachable pair.
  for (TileId src = 0; src < tiles_; ++src) {
    for (TileId dst = 0; dst < tiles_; ++dst) {
      if (src == dst || next_[pair(src, dst)] < 0) continue;
      TileId at = src;
      std::int32_t hops = 0;
      while (at != dst) {
        PARM_CHECK(hops <= tiles_,
                   spec_ + ": route " + std::to_string(src) + "->" +
                       std::to_string(dst) + " does not terminate");
        const int p = next_[pair(at, dst)];
        PARM_CHECK(p >= 0, spec_ + ": route " + std::to_string(src) + "->" +
                               std::to_string(dst) +
                               " strands at tile " + std::to_string(at));
        at = topo.link_dst(at, p);
        ++hops;
      }
    }
  }
}

RoutingTable RoutingTable::build(const Topology& topo) {
  static const std::vector<std::uint8_t> kNone;
  return build_degraded(topo, kNone, kNone);
}

RoutingTable RoutingTable::build_degraded(
    const Topology& topo, const std::vector<std::uint8_t>& link_out_dead,
    const std::vector<std::uint8_t>& router_dead) {
  const std::int32_t n = topo.tile_count();
  const int ports = topo.ports();
  const int link_ports = ports - 1;
  const Builder b{topo, link_out_dead, router_dead, n, ports, link_ports};

  RoutingTable table;
  table.tiles_ = n;
  table.ports_ = ports;
  table.spec_ = topo.spec();
  if (!link_out_dead.empty() || !router_dead.empty()) {
    table.spec_ += " [degraded]";
  }
  table.link_out_dead_ = link_out_dead;
  table.router_dead_ = router_dead;
  const std::size_t pairs =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  table.next_.assign(pairs, -1);
  table.cand_.assign(pairs, 0);
  table.step_.assign(pairs, kInvalidTile);

  // Stage 1: minimal candidate sets from per-destination BFS.
  std::vector<std::int32_t> dist;
  for (TileId dst = 0; dst < n; ++dst) {
    b.dist_to(dst, &dist);
    for (TileId v = 0; v < n; ++v) {
      if (v == dst || dist[static_cast<std::size_t>(v)] == kUnreachable) {
        continue;
      }
      std::uint32_t mask = 0;
      for (int p = 0; p < link_ports; ++p) {
        if (!b.usable(v, p)) continue;
        const TileId u = topo.link_dst(v, p);
        if (dist[static_cast<std::size_t>(u)] ==
            dist[static_cast<std::size_t>(v)] - 1) {
          mask |= (1u << p);
        }
      }
      table.cand_[table.pair(v, dst)] = mask;
      table.next_[table.pair(v, dst)] =
          static_cast<std::int8_t>(std::countr_zero(mask));
    }
  }

  const auto fill_steps = [&]() {
    for (TileId dst = 0; dst < n; ++dst) {
      for (TileId v = 0; v < n; ++v) {
        const int p = table.next_[table.pair(v, dst)];
        table.step_[table.pair(v, dst)] =
            p < 0 ? kInvalidTile : topo.link_dst(v, p);
      }
    }
  };

  // Stage 2: is the *full candidate* CDG acyclic? Then any candidate is a
  // safe choice and cost-weighted policies may adapt freely.
  {
    std::vector<std::pair<std::int32_t, std::int32_t>> edges;
    bool overflow = false;
    for (TileId dst = 0; dst < n && !overflow; ++dst) {
      for (TileId v = 0; v < n && !overflow; ++v) {
        if (v == dst) continue;
        std::uint32_t vm = table.cand_[table.pair(v, dst)];
        while (vm != 0) {
          const int p = std::countr_zero(vm);
          vm &= vm - 1;
          const TileId u = topo.link_dst(v, p);
          if (u == dst) continue;
          std::uint32_t um = table.cand_[table.pair(u, dst)];
          while (um != 0) {
            const int q = std::countr_zero(um);
            um &= um - 1;
            edges.emplace_back(b.channel(v, p), b.channel(u, q));
          }
          if (edges.size() > kMaxCdgEdges) {
            overflow = true;
            break;
          }
        }
      }
    }
    if (!overflow && cdg_acyclic(n * link_ports, &edges, nullptr)) {
      table.mode_ = Mode::kAdaptive;
      fill_steps();
      table.verify(topo);
      return table;
    }
  }

  // Stage 3: deterministic lowest-port minimal route (XY on the mesh).
  {
    std::vector<std::pair<std::int32_t, std::int32_t>> edges;
    for (TileId dst = 0; dst < n; ++dst) {
      for (TileId v = 0; v < n; ++v) {
        if (v == dst) continue;
        const int p = table.next_[table.pair(v, dst)];
        if (p < 0) continue;
        const TileId u = topo.link_dst(v, p);
        if (u == dst) continue;
        const int q = table.next_[table.pair(u, dst)];
        edges.emplace_back(b.channel(v, p), b.channel(u, q));
      }
    }
    if (cdg_acyclic(n * link_ports, &edges, nullptr)) {
      table.mode_ = Mode::kSinglePath;
      for (std::size_t i = 0; i < pairs; ++i) {
        table.cand_[i] =
            table.next_[i] < 0
                ? 0u
                : (1u << static_cast<unsigned>(table.next_[i]));
      }
      fill_steps();
      table.verify(topo);
      return table;
    }
  }

  // Stage 4: up*/down* over a BFS spanning tree — deadlock-free on any
  // connected graph because no route ever turns from a down channel back
  // onto an up channel.
  table.mode_ = Mode::kUpDown;
  TileId root = kInvalidTile;
  for (TileId t = 0; t < n; ++t) {
    if (b.router_alive(t)) {
      root = t;
      break;
    }
  }
  PARM_CHECK(root != kInvalidTile,
             table.spec_ + ": no live router to root the up/down tree");
  std::vector<std::int32_t> depth(static_cast<std::size_t>(n), kUnreachable);
  depth[static_cast<std::size_t>(root)] = 0;
  std::deque<TileId> queue{root};
  while (!queue.empty()) {
    const TileId at = queue.front();
    queue.pop_front();
    for (int p = 0; p < link_ports; ++p) {
      if (!b.usable(at, p)) continue;
      const TileId next = topo.link_dst(at, p);
      if (depth[static_cast<std::size_t>(next)] != kUnreachable) continue;
      depth[static_cast<std::size_t>(next)] =
          depth[static_cast<std::size_t>(at)] + 1;
      queue.push_back(next);
    }
  }
  // Total order by (depth, id): rank 0 is the root; every ranked non-root
  // node has an up edge (its BFS parent), so climbing always terminates.
  std::vector<TileId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (TileId t = 0; t < n; ++t) {
    if (depth[static_cast<std::size_t>(t)] != kUnreachable) {
      order.push_back(t);
    }
  }
  std::sort(order.begin(), order.end(), [&](TileId a, TileId c) {
    const auto da = depth[static_cast<std::size_t>(a)];
    const auto dc = depth[static_cast<std::size_t>(c)];
    return da != dc ? da < dc : a < c;
  });
  std::vector<std::int32_t> rank(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);
  }

  std::vector<std::int32_t> dist_down(static_cast<std::size_t>(n));
  for (TileId dst = 0; dst < n; ++dst) {
    if (rank[static_cast<std::size_t>(dst)] < 0) {
      for (TileId v = 0; v < n; ++v) {
        table.next_[table.pair(v, dst)] = -1;
        table.cand_[table.pair(v, dst)] = 0;
      }
      continue;
    }
    // Down-only distances, relaxed in decreasing rank order (down edges
    // point to strictly higher rank, so dependencies resolve first).
    std::fill(dist_down.begin(), dist_down.end(), kUnreachable);
    dist_down[static_cast<std::size_t>(dst)] = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const TileId v = *it;
      if (v == dst) continue;
      std::int32_t best = kUnreachable;
      for (int p = 0; p < link_ports; ++p) {
        if (!b.usable(v, p)) continue;
        const TileId u = topo.link_dst(v, p);
        if (rank[static_cast<std::size_t>(u)] <=
            rank[static_cast<std::size_t>(v)]) {
          continue;  // not a down edge
        }
        if (dist_down[static_cast<std::size_t>(u)] != kUnreachable) {
          best = std::min(best, dist_down[static_cast<std::size_t>(u)] + 1);
        }
      }
      dist_down[static_cast<std::size_t>(v)] = best;
    }
    for (TileId v = 0; v < n; ++v) {
      if (v == dst) continue;
      auto& next = table.next_[table.pair(v, dst)];
      auto& cand = table.cand_[table.pair(v, dst)];
      next = -1;
      cand = 0;
      if (rank[static_cast<std::size_t>(v)] < 0) continue;  // unreachable
      if (dist_down[static_cast<std::size_t>(v)] != kUnreachable) {
        // Descend along the shortest down-only path.
        for (int p = 0; p < link_ports; ++p) {
          if (!b.usable(v, p)) continue;
          const TileId u = topo.link_dst(v, p);
          if (rank[static_cast<std::size_t>(u)] >
                  rank[static_cast<std::size_t>(v)] &&
              dist_down[static_cast<std::size_t>(u)] ==
                  dist_down[static_cast<std::size_t>(v)] - 1) {
            next = static_cast<std::int8_t>(p);
            break;
          }
        }
      } else {
        // Climb: prefer the up-neighbor that can already descend,
        // otherwise head for the root (strictly decreasing rank).
        std::int32_t best_down = kUnreachable;
        std::int32_t best_rank = kUnreachable;
        for (int p = 0; p < link_ports; ++p) {
          if (!b.usable(v, p)) continue;
          const TileId u = topo.link_dst(v, p);
          if (rank[static_cast<std::size_t>(u)] >=
                  rank[static_cast<std::size_t>(v)] ||
              rank[static_cast<std::size_t>(u)] < 0) {
            continue;  // not an up edge
          }
          const std::int32_t dd = dist_down[static_cast<std::size_t>(u)];
          if (dd < best_down ||
              (dd == best_down &&
               rank[static_cast<std::size_t>(u)] < best_rank)) {
            best_down = dd;
            best_rank = rank[static_cast<std::size_t>(u)];
            next = static_cast<std::int8_t>(p);
          }
        }
      }
      if (next >= 0) cand = 1u << static_cast<unsigned>(next);
    }
  }
  fill_steps();
  table.verify(topo);
  return table;
}

}  // namespace parm::noc
