// Auto-generated shortest-path routing tables, deadlock-free on any graph.
//
// RoutingTable::build tries three successively more conservative schemes
// and keeps the first whose channel-dependency graph (CDG) is provably
// acyclic:
//
//  1. kAdaptive — every minimal (BFS-shortest) next-hop port is a
//     candidate. Kept only when the CDG over *all* candidate transitions
//     is acyclic (true for e.g. the flattened butterfly), so a cost-based
//     policy may pick any candidate at runtime without deadlock.
//  2. kSinglePath — one deterministic minimal route per pair: the
//     lowest-numbered candidate port. On the mesh this reproduces XY
//     dimension-ordered routing exactly (E/W ports order before N/S).
//     Kept when the CDG over the used transitions is acyclic.
//  3. kUpDown — classic up*/down* over a BFS spanning tree rooted at the
//     lowest live tile: routers are totally ordered by (BFS depth, id);
//     a route descends ("down" = toward higher order) whenever a
//     down-only path to the destination exists and climbs toward the
//     root otherwise. Down→up transitions never occur, which makes the
//     CDG acyclic on *any* connected graph (possibly at the cost of
//     non-minimal routes, e.g. on tori whose minimal rings deadlock).
//
// Whatever scheme wins is re-verified at construction time — Kahn's
// algorithm over the used CDG plus explicit path-termination checks —
// and a descriptive CheckError is thrown if verification fails, so a
// table that constructs is safe by construction.
//
// build_degraded() generates the same tables over a surviving subgraph
// (dead routers / dead link lanes), which is how the fault layer replaces
// its old mesh-only BFS spanning tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/geometry.hpp"
#include "noc/topology.hpp"

namespace parm::noc {

/// Small bounded set of candidate output ports. Overflow is a contract
/// violation and always throws (the silent-overflow ancestor of this
/// class corrupted neighbors on high-degree routers).
class PortSet {
 public:
  void push_back(int port) {
    PARM_CHECK(count_ < kCapacity,
               "PortSet overflow: more than " + std::to_string(kCapacity) +
                   " candidate ports");
    ports_[count_++] = static_cast<std::int8_t>(port);
  }
  void clear() { count_ = 0; }
  int size() const { return count_; }
  bool empty() const { return count_ == 0; }
  int operator[](int i) const { return ports_[i]; }
  int front() const { return ports_[0]; }
  const std::int8_t* begin() const { return ports_; }
  const std::int8_t* end() const { return ports_ + count_; }

 private:
  static constexpr int kCapacity = 32;
  std::int8_t ports_[kCapacity] = {};
  int count_ = 0;
};

class RoutingTable {
 public:
  enum class Mode : std::uint8_t { kAdaptive, kSinglePath, kUpDown };

  /// Builds (and verifies) a table over the full topology.
  static RoutingTable build(const Topology& topo);
  /// Builds over the surviving subgraph. `link_out_dead` is indexed by
  /// tile * topo.ports() + port (1 = dead); `router_dead` by tile.
  /// Either vector may be empty (= fully alive).
  static RoutingTable build_degraded(
      const Topology& topo, const std::vector<std::uint8_t>& link_out_dead,
      const std::vector<std::uint8_t>& router_dead);

  Mode mode() const { return mode_; }
  const char* mode_name() const;

  /// Primary next-hop port from -> to; -1 when unreachable or from == to.
  int next_port(TileId from, TileId to) const {
    return next_[pair(from, to)];
  }
  bool reachable(TileId from, TileId to) const {
    return from == to || next_[pair(from, to)] >= 0;
  }
  /// Bitmask of deadlock-safe candidate ports (>= 1 bit when reachable;
  /// exactly the primary port outside kAdaptive mode).
  std::uint32_t candidate_mask(TileId from, TileId to) const {
    return cand_[pair(from, to)];
  }
  void candidates(TileId from, TileId to, PortSet* out) const;
  /// Hops of the table's primary route; -1 when unreachable.
  std::int32_t table_hops(TileId from, TileId to) const;

  /// Re-runs the construction-time proof: Kahn's algorithm over the used
  /// channel-dependency graph plus path termination for every reachable
  /// pair. Throws CheckError on any violation.
  void verify(const Topology& topo) const;

 private:
  std::size_t pair(TileId from, TileId to) const {
    PARM_DCHECK(from >= 0 && from < tiles_ && to >= 0 && to < tiles_,
                "routing table lookup out of range");
    return static_cast<std::size_t>(from) * static_cast<std::size_t>(tiles_) +
           static_cast<std::size_t>(to);
  }

  std::int32_t tiles_ = 0;
  int ports_ = 0;
  Mode mode_ = Mode::kSinglePath;
  std::string spec_;  ///< topology spec (+ "[degraded]") for error text
  std::vector<std::int8_t> next_;
  std::vector<std::uint32_t> cand_;
  std::vector<TileId> step_;  ///< link_dst(from, next_) memo for table_hops
  std::vector<std::uint8_t> link_out_dead_;  ///< empty = fully alive
  std::vector<std::uint8_t> router_dead_;    ///< empty = fully alive
};

}  // namespace parm::noc
