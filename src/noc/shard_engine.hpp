// Gang scheduling for the sharded NoC cycle engine.
//
// A window of cycles runs as one parallel_for over "participants": index
// 0 is the leader, which drives every cycle (traffic hook, the serial
// decision pass, the deterministic outbox flush) and opens two parallel
// phases per cycle — allocate and apply — each consisting of one task per
// shard. The remaining participants are helpers that spin claiming shard
// tasks from the open phase.
//
// The crucial property is that the barrier waits for *task completions*,
// not for thread arrivals: the leader also claims tasks, so a window
// completes even when no helper ever runs (busy or empty pool, nested
// fleet parallelism). Helpers only add concurrency; they can join late,
// leave early, or never show up without affecting the result — which is
// what makes chips × shards share one ThreadPool without oversubscription
// or deadlock.
//
// Synchronization is a single claim word (phase sequence in the high
// bits, next task index in the low bits) published with release stores
// and claimed by CAS, plus a completion counter incremented with release
// by whoever ran the task and awaited with acquire by the leader. Phase
// payload (the kind) is written by the leader before the claim-word
// store, so an acquire load of the claim word makes it visible.
//
// Task exceptions are captured (first one wins), the task still counts as
// done so the barrier cannot hang, and the leader rethrows after the
// phase — from where parallel_for propagates it to the window's caller.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace parm::noc {

class ShardGang {
 public:
  /// `tasks` per phase (= shard count); `run(kind, task)` executes one
  /// shard task. `run` must be safe to call concurrently for distinct
  /// task indices of the same phase.
  ShardGang(std::uint32_t tasks,
            std::function<void(int kind, std::uint32_t task)> run)
      : tasks_(tasks), run_(std::move(run)) {}

  /// Leader: opens a phase, works through its tasks alongside any
  /// helpers, waits until every task has completed, and rethrows the
  /// first task exception (if any).
  void leader_phase(int kind) {
    kind_ = kind;
    done_.store(0, std::memory_order_relaxed);
    ++seq_;
    claim_.store(seq_ << kIdxBits, std::memory_order_release);
    drain_claims();
    int idle = 0;
    while (done_.load(std::memory_order_acquire) < tasks_) backoff(idle);
    if (has_error_.load(std::memory_order_acquire)) rethrow();
  }

  /// Leader (or its unwinder): releases the helpers. Idempotent.
  void finish() { finished_.store(true, std::memory_order_release); }

  /// Helper body: claims tasks from whatever phase is open until
  /// finish(). Any number of helpers may run this, including zero.
  void helper_loop() {
    int idle = 0;
    while (!finished_.load(std::memory_order_acquire)) {
      if (!try_claim_one()) backoff(idle);
      else idle = 0;
    }
  }

 private:
  static constexpr std::uint32_t kIdxBits = 20;
  static constexpr std::uint64_t kIdxMask = (1ULL << kIdxBits) - 1;

  static void backoff(int& idle) {
    if (++idle < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("yield");
#endif
    } else {
      std::this_thread::yield();
    }
  }

  bool try_claim_one() {
    std::uint64_t c = claim_.load(std::memory_order_acquire);
    if ((c & kIdxMask) >= tasks_) return false;  // phase exhausted / idle
    if (!claim_.compare_exchange_weak(c, c + 1, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      return false;
    }
    run_one(static_cast<std::uint32_t>(c & kIdxMask));
    return true;
  }

  void drain_claims() {
    while (try_claim_one()) {
    }
  }

  void run_one(std::uint32_t task) {
    try {
      run_(kind_, task);
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_mu_);
      if (!error_) error_ = std::current_exception();
      has_error_.store(true, std::memory_order_release);
    }
    done_.fetch_add(1, std::memory_order_release);
  }

  void rethrow() {
    finish();
    std::exception_ptr e;
    {
      std::lock_guard<std::mutex> lk(error_mu_);
      e = error_;
      error_ = nullptr;
      has_error_.store(false, std::memory_order_relaxed);
    }
    if (e) std::rethrow_exception(e);
  }

  std::uint32_t tasks_;
  std::function<void(int, std::uint32_t)> run_;
  int kind_ = 0;                      ///< phase payload, leader-written
  std::uint64_t seq_ = 0;             ///< leader-only phase counter
  std::atomic<std::uint64_t> claim_{kIdxMask};  ///< starts exhausted
  std::atomic<std::uint64_t> done_{0};
  std::atomic<bool> finished_{false};
  std::atomic<bool> has_error_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace parm::noc
