#include "noc/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <limits>
#include <sstream>

namespace parm::noc {

namespace {

constexpr std::int16_t kUnreachableHops = 0x3FFF;

/// Parses "WxH" (or "XxYxZ" when three fields) into dims; returns false on
/// any malformed input.
bool parse_dims(const std::string& text, std::vector<std::int32_t>* out) {
  out->clear();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t next = text.find('x', pos);
    const std::string field =
        text.substr(pos, next == std::string::npos ? next : next - pos);
    if (field.empty() || field.size() > 6) return false;
    std::int32_t value = 0;
    for (char c : field) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + (c - '0');
    }
    out->push_back(value);
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return !out->empty();
}

std::string dims_str(std::int32_t w, std::int32_t h) {
  return std::to_string(w) + "x" + std::to_string(h);
}

}  // namespace

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kMesh:
      return "mesh";
    case TopologyKind::kTorus:
      return "torus";
    case TopologyKind::kCMesh:
      return "cmesh";
    case TopologyKind::kButterfly:
      return "butterfly";
    case TopologyKind::kMesh3d:
      return "mesh3d";
    case TopologyKind::kFile:
      return "file";
  }
  return "?";
}

int Topology::radix(TileId t) const {
  int live = 0;
  for (int p = 0; p + 1 < ports_; ++p) {
    if (link_dst(t, p) != kInvalidTile) ++live;
  }
  return live;
}

std::string Topology::port_name(int port) const {
  PARM_CHECK(port >= 0 && port < ports_,
             "port " + std::to_string(port) + " out of range for " + spec_);
  if (port == local_port()) return "L";
  const bool cardinal = kind_ == TopologyKind::kMesh ||
                        kind_ == TopologyKind::kTorus ||
                        kind_ == TopologyKind::kCMesh ||
                        kind_ == TopologyKind::kMesh3d;
  if (cardinal && port < 4) {
    static const char* kNames[4] = {"E", "W", "N", "S"};
    return kNames[port];
  }
  if (kind_ == TopologyKind::kMesh3d && port == 4) return "U";
  if (kind_ == TopologyKind::kMesh3d && port == 5) return "D";
  std::string generic = "p";
  generic += std::to_string(port);
  return generic;
}

int Topology::port_by_name(const std::string& name) const {
  for (int p = 0; p < ports_; ++p) {
    if (port_name(p) == name) return p;
  }
  return -1;
}

std::array<TileId, 4> Topology::domain_tiles(DomainId d) const {
  PARM_CHECK(d >= 0 && d < domain_count_,
             "domain " + std::to_string(d) + " out of range for " + spec_);
  return domain_tiles_[static_cast<std::size_t>(d)];
}

int Topology::domain_capacity(DomainId d) const {
  const auto tiles = domain_tiles(d);
  int live = 0;
  for (TileId t : tiles) {
    if (t != kInvalidTile) ++live;
  }
  return live;
}

std::int32_t Topology::domain_distance(DomainId a, DomainId b) const {
  PARM_CHECK(a >= 0 && a < domain_count_ && b >= 0 && b < domain_count_,
             "domain pair out of range for " + spec_);
  if (mesh_view_.has_value()) {
    return mesh_view_->domain_distance(a, b);
  }
  if (kind_ == TopologyKind::kMesh3d) {
    const std::int32_t gw = grid_w_ / 2;
    const std::int32_t gh = grid_h_ / 2;
    const std::int32_t layer = gw * gh;
    const std::int32_t az = a / layer, bz = b / layer;
    const std::int32_t ar = a % layer, br = b % layer;
    return std::abs(ar % gw - br % gw) + std::abs(ar / gw - br / gw) +
           std::abs(az - bz);
  }
  // Irregular graphs: hop distance between the partitions' first tiles.
  return hop_distance(domain_tiles_[static_cast<std::size_t>(a)][0],
                      domain_tiles_[static_cast<std::size_t>(b)][0]);
}

void Topology::wire(TileId a, int port_a, TileId b, int port_b) {
  PARM_CHECK(a != b, spec_ + ": self-loop link at tile " + std::to_string(a));
  for (int p = 0; p + 1 < ports_; ++p) {
    PARM_CHECK(link_dst_[lane(a, p)] != b,
               spec_ + ": duplicate link between tiles " + std::to_string(a) +
                   " and " + std::to_string(b));
  }
  PARM_CHECK(link_dst_[lane(a, port_a)] == kInvalidTile &&
                 link_dst_[lane(b, port_b)] == kInvalidTile,
             spec_ + ": port already wired on link " + std::to_string(a) +
                 "<->" + std::to_string(b));
  link_dst_[lane(a, port_a)] = b;
  link_dst_[lane(b, port_b)] = a;
  reverse_port_[lane(a, port_a)] = static_cast<std::int8_t>(port_b);
  reverse_port_[lane(b, port_b)] = static_cast<std::int8_t>(port_a);
}

void Topology::finalize() {
  // All-pairs BFS hop distances.
  hops_.assign(static_cast<std::size_t>(tiles_) *
                   static_cast<std::size_t>(tiles_),
               kUnreachableHops);
  std::deque<TileId> queue;
  for (TileId src = 0; src < tiles_; ++src) {
    auto* row = &hops_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(tiles_)];
    row[src] = 0;
    queue.clear();
    queue.push_back(src);
    while (!queue.empty()) {
      const TileId at = queue.front();
      queue.pop_front();
      for (int p = 0; p + 1 < ports_; ++p) {
        const TileId next = link_dst(at, p);
        if (next == kInvalidTile || row[next] != kUnreachableHops) continue;
        row[next] = static_cast<std::int16_t>(row[at] + 1);
        queue.push_back(next);
      }
    }
  }
  for (TileId t = 0; t < tiles_; ++t) {
    PARM_CHECK(hop_distance(0, t) != kUnreachableHops,
               spec_ + ": graph is disconnected (tile " + std::to_string(t) +
                   " unreachable from tile 0)");
  }
  // Center distances: grid kinds mirror the mapper's historical
  // |x - W/2| + |y - H/2| tie-break; irregular graphs measure hops to the
  // tile with the smallest total distance to everything else.
  center_dist_.resize(static_cast<std::size_t>(tiles_));
  if (mesh_view_.has_value() || kind_ == TopologyKind::kMesh3d) {
    const std::int32_t w = grid_w_, h = grid_h_;
    const std::int32_t layer = w * h;
    for (TileId t = 0; t < tiles_; ++t) {
      const std::int32_t z = t / layer;
      const std::int32_t x = (t % layer) % w;
      const std::int32_t y = (t % layer) / w;
      std::int32_t dist = std::abs(x - w / 2) + std::abs(y - h / 2);
      if (kind_ == TopologyKind::kMesh3d) dist += std::abs(z - depth_ / 2);
      center_dist_[static_cast<std::size_t>(t)] = dist;
    }
  } else {
    TileId center = 0;
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (TileId t = 0; t < tiles_; ++t) {
      std::int64_t total = 0;
      for (TileId o = 0; o < tiles_; ++o) total += hop_distance(t, o);
      if (total < best) {
        best = total;
        center = t;
      }
    }
    for (TileId t = 0; t < tiles_; ++t) {
      center_dist_[static_cast<std::size_t>(t)] = hop_distance(t, center);
    }
  }
}

void Topology::build_grid_domains() {
  // Classic 2x2 blocks in {SW, SE, NW, NE} slot order, replicated per
  // z-layer for the 3D mesh.
  const std::int32_t gw = grid_w_ / 2;
  const std::int32_t gh = grid_h_ / 2;
  domain_count_ = gw * gh * depth_;
  domain_of_.resize(static_cast<std::size_t>(tiles_));
  domain_tiles_.resize(static_cast<std::size_t>(domain_count_));
  const std::int32_t layer = grid_w_ * grid_h_;
  for (TileId t = 0; t < tiles_; ++t) {
    const std::int32_t z = t / layer;
    const std::int32_t x = (t % layer) % grid_w_;
    const std::int32_t y = (t % layer) / grid_w_;
    domain_of_[static_cast<std::size_t>(t)] =
        z * gw * gh + (y / 2) * gw + (x / 2);
  }
  for (DomainId d = 0; d < domain_count_; ++d) {
    const std::int32_t z = d / (gw * gh);
    const std::int32_t r = d % (gw * gh);
    const std::int32_t x0 = (r % gw) * 2;
    const std::int32_t y0 = (r / gw) * 2;
    const TileId base = z * layer + y0 * grid_w_ + x0;
    domain_tiles_[static_cast<std::size_t>(d)] = {
        base, base + 1, base + grid_w_, base + grid_w_ + 1};
  }
}

void Topology::build_chunk_domains() {
  domain_count_ = (tiles_ + 3) / 4;
  domain_of_.resize(static_cast<std::size_t>(tiles_));
  domain_tiles_.assign(static_cast<std::size_t>(domain_count_),
                       {kInvalidTile, kInvalidTile, kInvalidTile,
                        kInvalidTile});
  for (TileId t = 0; t < tiles_; ++t) {
    domain_of_[static_cast<std::size_t>(t)] = t / 4;
    domain_tiles_[static_cast<std::size_t>(t / 4)][t % 4] = t;
  }
}

std::shared_ptr<const Topology> Topology::mesh(std::int32_t w,
                                               std::int32_t h) {
  auto topo = std::shared_ptr<Topology>(new Topology());
  topo->kind_ = TopologyKind::kMesh;
  topo->spec_ = "mesh:" + dims_str(w, h);
  PARM_CHECK(w >= 2 && h >= 2,
             "mesh topology " + dims_str(w, h) + " must be at least 2x2");
  PARM_CHECK(w % 2 == 0 && h % 2 == 0,
             "mesh topology " + dims_str(w, h) +
                 " needs even dimensions to tile into 2x2 power domains");
  topo->grid_w_ = w;
  topo->grid_h_ = h;
  topo->tiles_ = w * h;
  topo->ports_ = 5;  // E, W, N, S, Local — the legacy numbering.
  topo->mesh_view_.emplace(w, h);
  topo->link_dst_.assign(static_cast<std::size_t>(topo->tiles_) * 5,
                         kInvalidTile);
  topo->reverse_port_.assign(static_cast<std::size_t>(topo->tiles_) * 5, -1);
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      const TileId t = y * w + x;
      if (x + 1 < w) topo->wire(t, 0, t + 1, 1);      // East <-> West
      if (y + 1 < h) topo->wire(t, 2, t + w, 3);      // North <-> South
    }
  }
  topo->build_grid_domains();
  topo->finalize();
  return topo;
}

std::shared_ptr<const Topology> Topology::torus(std::int32_t w,
                                                std::int32_t h) {
  auto topo = std::shared_ptr<Topology>(new Topology());
  topo->kind_ = TopologyKind::kTorus;
  topo->spec_ = "torus:" + dims_str(w, h);
  PARM_CHECK(w >= 4 && h >= 4,
             "torus topology " + dims_str(w, h) +
                 " must be at least 4x4 (a 2-wide ring would duplicate "
                 "links between the same router pair)");
  PARM_CHECK(w % 2 == 0 && h % 2 == 0,
             "torus topology " + dims_str(w, h) +
                 " needs even dimensions to tile into 2x2 power domains");
  topo->grid_w_ = w;
  topo->grid_h_ = h;
  topo->tiles_ = w * h;
  topo->ports_ = 5;
  topo->mesh_view_.emplace(w, h);
  topo->link_dst_.assign(static_cast<std::size_t>(topo->tiles_) * 5,
                         kInvalidTile);
  topo->reverse_port_.assign(static_cast<std::size_t>(topo->tiles_) * 5, -1);
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      const TileId t = y * w + x;
      const TileId east = y * w + (x + 1) % w;
      const TileId north = ((y + 1) % h) * w + x;
      topo->wire(t, 0, east, 1);   // East port meets the neighbor's West.
      topo->wire(t, 2, north, 3);  // North port meets the neighbor's South.
    }
  }
  topo->build_grid_domains();
  topo->finalize();
  return topo;
}

std::shared_ptr<const Topology> Topology::cmesh(std::int32_t w,
                                                std::int32_t h) {
  auto topo = std::shared_ptr<Topology>(new Topology());
  topo->kind_ = TopologyKind::kCMesh;
  topo->spec_ = "cmesh:" + dims_str(w, h);
  PARM_CHECK(w >= 2 && h >= 2,
             "cmesh topology " + dims_str(w, h) + " must be at least 2x2");
  PARM_CHECK(w % 2 == 0 && h % 2 == 0,
             "cmesh topology " + dims_str(w, h) +
                 " needs even dimensions (hubs concentrate 2x2 power "
                 "domains)");
  topo->grid_w_ = w;
  topo->grid_h_ = h;
  topo->tiles_ = w * h;
  // Hub routers need E/W/N/S on the domain grid (ports 0-3) plus three
  // spokes (ports 4-6); spoke tiles use port 4 for their hub uplink.
  topo->ports_ = 8;
  topo->mesh_view_.emplace(w, h);
  topo->link_dst_.assign(static_cast<std::size_t>(topo->tiles_) * 8,
                         kInvalidTile);
  topo->reverse_port_.assign(static_cast<std::size_t>(topo->tiles_) * 8, -1);
  const std::int32_t gw = w / 2;
  const std::int32_t gh = h / 2;
  for (std::int32_t gy = 0; gy < gh; ++gy) {
    for (std::int32_t gx = 0; gx < gw; ++gx) {
      const TileId hub = (gy * 2) * w + gx * 2;  // SW tile of the domain.
      if (gx + 1 < gw) topo->wire(hub, 0, hub + 2, 1);
      if (gy + 1 < gh) topo->wire(hub, 2, hub + 2 * w, 3);
      // Spokes: SE, NW, NE mates on hub ports 4, 5, 6; their port 4.
      topo->wire(hub, 4, hub + 1, 4);
      topo->wire(hub, 5, hub + w, 4);
      topo->wire(hub, 6, hub + w + 1, 4);
    }
  }
  topo->build_grid_domains();
  topo->finalize();
  return topo;
}

std::shared_ptr<const Topology> Topology::butterfly(std::int32_t w,
                                                    std::int32_t h) {
  auto topo = std::shared_ptr<Topology>(new Topology());
  topo->kind_ = TopologyKind::kButterfly;
  topo->spec_ = "butterfly:" + dims_str(w, h);
  PARM_CHECK(w >= 2 && h >= 2,
             "butterfly topology " + dims_str(w, h) + " must be at least "
                                                      "2x2");
  PARM_CHECK(w % 2 == 0 && h % 2 == 0,
             "butterfly topology " + dims_str(w, h) +
                 " needs even dimensions to tile into 2x2 power domains");
  topo->grid_w_ = w;
  topo->grid_h_ = h;
  topo->tiles_ = w * h;
  // Flattened butterfly: ports 0..w-2 reach the other routers of the row
  // (ascending x, own column skipped), ports w-1..w+h-3 reach the other
  // routers of the column (ascending y).
  topo->ports_ = (w - 1) + (h - 1) + 1;
  topo->link_dst_.assign(
      static_cast<std::size_t>(topo->tiles_) *
          static_cast<std::size_t>(topo->ports_),
      kInvalidTile);
  topo->reverse_port_.assign(static_cast<std::size_t>(topo->tiles_) *
                                 static_cast<std::size_t>(topo->ports_),
                             -1);
  topo->mesh_view_.emplace(w, h);
  const auto row_port = [&](std::int32_t from_x, std::int32_t to_x) {
    return static_cast<int>(to_x < from_x ? to_x : to_x - 1);
  };
  const auto col_port = [&](std::int32_t from_y, std::int32_t to_y) {
    return static_cast<int>(w - 1 + (to_y < from_y ? to_y : to_y - 1));
  };
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      const TileId t = y * w + x;
      for (std::int32_t ox = x + 1; ox < w; ++ox) {
        topo->wire(t, row_port(x, ox), y * w + ox, row_port(ox, x));
      }
      for (std::int32_t oy = y + 1; oy < h; ++oy) {
        topo->wire(t, col_port(y, oy), oy * w + x, col_port(oy, y));
      }
    }
  }
  topo->build_grid_domains();
  topo->finalize();
  return topo;
}

std::shared_ptr<const Topology> Topology::mesh3d(std::int32_t w,
                                                 std::int32_t h,
                                                 std::int32_t depth) {
  auto topo = std::shared_ptr<Topology>(new Topology());
  topo->kind_ = TopologyKind::kMesh3d;
  topo->spec_ = "mesh3d:" + dims_str(w, h) + "x" + std::to_string(depth);
  PARM_CHECK(w >= 2 && h >= 2 && depth >= 2,
             "mesh3d topology " + topo->spec_.substr(7) +
                 " must be at least 2x2x2");
  PARM_CHECK(w % 2 == 0 && h % 2 == 0,
             "mesh3d topology " + topo->spec_.substr(7) +
                 " needs even x/y dimensions to tile into 2x2x1 power "
                 "domains");
  topo->grid_w_ = w;
  topo->grid_h_ = h;
  topo->depth_ = depth;
  topo->tiles_ = w * h * depth;
  topo->ports_ = 7;  // E, W, N, S, Up, Down, Local.
  topo->link_dst_.assign(static_cast<std::size_t>(topo->tiles_) * 7,
                         kInvalidTile);
  topo->reverse_port_.assign(static_cast<std::size_t>(topo->tiles_) * 7, -1);
  const std::int32_t layer = w * h;
  for (std::int32_t z = 0; z < depth; ++z) {
    for (std::int32_t y = 0; y < h; ++y) {
      for (std::int32_t x = 0; x < w; ++x) {
        const TileId t = z * layer + y * w + x;
        if (x + 1 < w) topo->wire(t, 0, t + 1, 1);
        if (y + 1 < h) topo->wire(t, 2, t + w, 3);
        if (z + 1 < depth) topo->wire(t, 4, t + layer, 5);
      }
    }
  }
  topo->build_grid_domains();
  topo->finalize();
  return topo;
}

std::shared_ptr<const Topology> Topology::from_text(const std::string& text,
                                                    const std::string& where) {
  auto topo = std::shared_ptr<Topology>(new Topology());
  topo->kind_ = TopologyKind::kFile;
  topo->spec_ = "file:" + where;
  const auto fail = [&](int line, const std::string& why) {
    PARM_CHECK(false, "topology file " + where + ", line " +
                          std::to_string(line) + ": " + why);
  };

  std::int32_t tiles = 0;
  bool have_tiles = false;
  std::vector<std::pair<TileId, TileId>> links;
  std::vector<std::vector<TileId>> adjacency;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream fields(raw);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank / comment-only line
    if (keyword == "tiles") {
      if (have_tiles) fail(line_no, "duplicate 'tiles' line");
      if (!(fields >> tiles)) fail(line_no, "'tiles' needs a count");
      if (tiles < 2 || tiles > 1024) {
        fail(line_no, "tile count " + std::to_string(tiles) +
                          " out of range [2, 1024]");
      }
      have_tiles = true;
      adjacency.assign(static_cast<std::size_t>(tiles), {});
    } else if (keyword == "link") {
      if (!have_tiles) fail(line_no, "'link' before the 'tiles' line");
      TileId a = kInvalidTile, b = kInvalidTile;
      if (!(fields >> a >> b)) fail(line_no, "'link' needs two tile ids");
      if (a < 0 || a >= tiles || b < 0 || b >= tiles) {
        fail(line_no, "link " + std::to_string(a) + " " + std::to_string(b) +
                          " references a tile outside [0, " +
                          std::to_string(tiles - 1) + "]");
      }
      if (a == b) {
        fail(line_no, "self-loop link at tile " + std::to_string(a));
      }
      auto& adj = adjacency[static_cast<std::size_t>(a)];
      if (std::find(adj.begin(), adj.end(), b) != adj.end()) {
        fail(line_no, "duplicate link between tiles " + std::to_string(a) +
                          " and " + std::to_string(b));
      }
      adjacency[static_cast<std::size_t>(a)].push_back(b);
      adjacency[static_cast<std::size_t>(b)].push_back(a);
      links.emplace_back(a, b);
    } else {
      fail(line_no, "unknown keyword '" + keyword +
                        "' (expected 'tiles' or 'link')");
    }
    std::string extra;
    if (fields >> extra) {
      fail(line_no, "trailing garbage '" + extra + "'");
    }
  }
  if (!have_tiles) {
    PARM_CHECK(false,
               "topology file " + where + ": missing 'tiles <N>' line");
  }

  int max_degree = 0;
  for (TileId t = 0; t < tiles; ++t) {
    auto& adj = adjacency[static_cast<std::size_t>(t)];
    std::sort(adj.begin(), adj.end());
    max_degree = std::max(max_degree, static_cast<int>(adj.size()));
    if (adj.empty()) {
      PARM_CHECK(false, "topology file " + where + ": tile " +
                            std::to_string(t) + " has no links");
    }
  }
  PARM_CHECK(max_degree <= 31,
             "topology file " + where + ": router degree " +
                 std::to_string(max_degree) + " exceeds the 31-port limit");

  topo->tiles_ = tiles;
  topo->ports_ = max_degree + 1;
  topo->link_dst_.assign(static_cast<std::size_t>(tiles) *
                             static_cast<std::size_t>(topo->ports_),
                         kInvalidTile);
  topo->reverse_port_.assign(static_cast<std::size_t>(tiles) *
                                 static_cast<std::size_t>(topo->ports_),
                             -1);
  // Port k of a router reaches its (k+1)-th smallest-id neighbor.
  const auto port_of = [&](TileId from, TileId to) {
    const auto& adj = adjacency[static_cast<std::size_t>(from)];
    return static_cast<int>(std::lower_bound(adj.begin(), adj.end(), to) -
                            adj.begin());
  };
  for (const auto& [a, b] : links) {
    topo->wire(a, port_of(a, b), b, port_of(b, a));
  }
  topo->build_chunk_domains();
  topo->finalize();  // rejects disconnected graphs with a reason
  return topo;
}

std::shared_ptr<const Topology> Topology::from_file(const std::string& path) {
  std::ifstream in(path);
  PARM_CHECK(in.good(),
             "topology file " + path + ": cannot open for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str(), path);
}

std::shared_ptr<const Topology> Topology::make(const std::string& spec,
                                               std::int32_t default_width,
                                               std::int32_t default_height) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  const auto grid_dims = [&](std::int32_t* w, std::int32_t* h) {
    if (arg.empty()) {
      *w = default_width;
      *h = default_height;
      return;
    }
    std::vector<std::int32_t> dims;
    PARM_CHECK(parse_dims(arg, &dims) && dims.size() == 2,
               "topology spec '" + spec + "': expected '" + kind + ":WxH'");
    *w = dims[0];
    *h = dims[1];
  };
  std::int32_t w = 0, h = 0;
  if (kind == "mesh") {
    grid_dims(&w, &h);
    return mesh(w, h);
  }
  if (kind == "torus") {
    grid_dims(&w, &h);
    return torus(w, h);
  }
  if (kind == "cmesh") {
    grid_dims(&w, &h);
    return cmesh(w, h);
  }
  if (kind == "butterfly") {
    grid_dims(&w, &h);
    return butterfly(w, h);
  }
  if (kind == "mesh3d") {
    std::vector<std::int32_t> dims;
    PARM_CHECK(!arg.empty() && parse_dims(arg, &dims) && dims.size() == 3,
               "topology spec '" + spec + "': expected 'mesh3d:XxYxZ'");
    return mesh3d(dims[0], dims[1], dims[2]);
  }
  if (kind == "file") {
    PARM_CHECK(!arg.empty(),
               "topology spec '" + spec + "': expected 'file:<path>'");
    return from_file(arg);
  }
  PARM_CHECK(false, "unknown topology kind '" + kind +
                        "' (expected mesh, torus, cmesh, butterfly, "
                        "mesh3d:XxYxZ, or file:<path>)");
  return nullptr;
}

}  // namespace parm::noc
