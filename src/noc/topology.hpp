// Universal NoC topology abstraction.
//
// A Topology is an immutable undirected multigraph-free port model: every
// router exposes a uniform number of ports (the maximum live degree of
// the graph plus one Local port), each non-Local port either carries a
// link to a neighbor or is wired dead (kInvalidTile), and every live link
// knows the port that points back at it from the far side. The 2D mesh
// keeps the legacy port numbering (E=0, W=1, N=2, S=3, Local=4) exactly,
// so the default topology is bit-identical to the historical
// MeshGeometry-based network.
//
// Built-in kinds:
//  - mesh:WxH       the paper's 2D mesh (default 10x6);
//  - torus:WxH      mesh with wraparound links in both dimensions;
//  - cmesh:WxH      concentrated mesh: the SW tile of every 2x2 power
//                   domain is a hub, hubs form a mesh over the domain
//                   grid, the other three tiles of a domain hang off
//                   their hub as spokes;
//  - butterfly:WxH  flattened butterfly: every router links to all
//                   routers in its row and all routers in its column;
//  - mesh3d:XxYxZ   3D mesh, id = z*X*Y + y*X + x, 2x2x1 power domains;
//  - file:<path>    irregular point-to-point graph from a text file:
//                       # comment
//                       tiles <N>
//                       link <a> <b>
//                   Links are undirected, at most one per router pair,
//                   no self-loops, and the graph must be connected. The
//                   loader rejects every malformed input with a
//                   descriptive CheckError naming the offending line.
//
// Every topology also carries the power-domain partition the PDN layer
// consumes: partitions of at most four tiles (the domain circuit is a
// 4-slot netlist; smaller partitions leave the spare slots dark). Grid
// kinds use the classic 2x2 blocks; irregular graphs are chunked into
// consecutive-id groups of four.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/geometry.hpp"

namespace parm::noc {

enum class TopologyKind : std::uint8_t {
  kMesh = 0,
  kTorus,
  kCMesh,
  kButterfly,
  kMesh3d,
  kFile,
};

const char* to_string(TopologyKind k);

class Topology {
 public:
  /// Parses a topology spec string:
  ///   "mesh" | "mesh:WxH" | "torus[:WxH]" | "cmesh[:WxH]"
  ///   | "butterfly[:WxH]" | "mesh3d:XxYxZ" | "file:<path>"
  /// Kinds without an explicit size use `default_width` x
  /// `default_height` (the platform's mesh_width/mesh_height knobs).
  /// Throws CheckError with the offending spec on any malformed input.
  static std::shared_ptr<const Topology> make(const std::string& spec,
                                              std::int32_t default_width,
                                              std::int32_t default_height);

  static std::shared_ptr<const Topology> mesh(std::int32_t w, std::int32_t h);
  static std::shared_ptr<const Topology> torus(std::int32_t w,
                                               std::int32_t h);
  static std::shared_ptr<const Topology> cmesh(std::int32_t w,
                                               std::int32_t h);
  static std::shared_ptr<const Topology> butterfly(std::int32_t w,
                                                   std::int32_t h);
  static std::shared_ptr<const Topology> mesh3d(std::int32_t w,
                                                std::int32_t h,
                                                std::int32_t depth);
  /// Irregular graph from the `tiles N` / `link a b` text format.
  /// `where` names the source (file path, "<inline>") in error messages.
  static std::shared_ptr<const Topology> from_text(const std::string& text,
                                                   const std::string& where);
  static std::shared_ptr<const Topology> from_file(const std::string& path);

  TopologyKind kind() const { return kind_; }
  /// Canonical spec string ("mesh:10x6", "file:/path", ...).
  const std::string& spec() const { return spec_; }

  std::int32_t tile_count() const { return tiles_; }
  /// Uniform per-router port count, Local included.
  int ports() const { return ports_; }
  /// The ejection/injection port (always the last one).
  int local_port() const { return ports_ - 1; }
  /// Live link ports of a router (its degree).
  int radix(TileId t) const;

  /// Neighbor reached out of `port`, or kInvalidTile when the port is not
  /// wired (edge of a mesh, unused slot of a low-degree router).
  TileId link_dst(TileId t, int port) const {
    return link_dst_[lane(t, port)];
  }
  /// Port at link_dst(t, port) whose link points back at `t`; -1 when
  /// the port is not wired.
  int reverse_port(TileId t, int port) const {
    return reverse_port_[lane(t, port)];
  }

  /// Human-readable port name: "E"/"W"/"N"/"S" for grid ports 0..3 (and
  /// "U"/"D" for the 3D mesh's z links), "p<k>" otherwise, "L" for Local.
  std::string port_name(int port) const;
  /// Inverse of port_name; -1 for unknown names or ports out of range.
  int port_by_name(const std::string& name) const;

  /// 2D grid coordinate view (mesh/torus/cmesh/butterfly share the
  /// MeshGeometry coordinate and domain model); nullptr for mesh3d/file.
  const MeshGeometry* mesh_view() const {
    return mesh_view_.has_value() ? &*mesh_view_ : nullptr;
  }

  // --- Power-domain partition (PDN consumes partitions, not row-pairs) ---
  std::int32_t domain_count() const { return domain_count_; }
  DomainId domain_of(TileId t) const {
    return domain_of_[static_cast<std::size_t>(t)];
  }
  /// The (up to four) tiles of a domain; unused slots hold kInvalidTile.
  /// Grid kinds keep the classic {SW, SE, NW, NE} slot order.
  std::array<TileId, 4> domain_tiles(DomainId d) const;
  /// Number of live tiles in a domain (4 on every grid kind).
  int domain_capacity(DomainId d) const;
  /// Distance between two domains: manhattan on the domain grid for grid
  /// kinds, hop distance between representative tiles for irregular ones.
  std::int32_t domain_distance(DomainId a, DomainId b) const;

  /// Shortest-path hop distance (all-pairs BFS; equals manhattan distance
  /// on the mesh). Returns a large sentinel for distinct components —
  /// built-in topologies are always connected.
  std::int32_t hop_distance(TileId a, TileId b) const {
    return hops_[static_cast<std::size_t>(a) *
                     static_cast<std::size_t>(tiles_) +
                 static_cast<std::size_t>(b)];
  }
  /// Distance of a tile from the topology's center (mapper tie-breaks).
  std::int32_t center_distance(TileId t) const {
    return center_dist_[static_cast<std::size_t>(t)];
  }

 private:
  Topology() = default;

  std::size_t lane(TileId t, int port) const {
    PARM_DCHECK(t >= 0 && t < tiles_ && port >= 0 && port < ports_,
                "topology port lookup out of range");
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(ports_) +
           static_cast<std::size_t>(port);
  }

  /// Wires the undirected link a.port_a <-> b.port_b (both slots must be
  /// free; enforces at most one link per router pair).
  void wire(TileId a, int port_a, TileId b, int port_b);
  /// Computes hops_/center_dist_/reverse consistency after wiring.
  void finalize();
  void build_grid_domains();  ///< 2x2 blocks over the mesh_view_ grid.
  void build_chunk_domains();  ///< consecutive-id chunks of <= 4 tiles.

  TopologyKind kind_ = TopologyKind::kMesh;
  std::string spec_;
  std::int32_t tiles_ = 0;
  int ports_ = 0;
  std::optional<MeshGeometry> mesh_view_;
  std::int32_t grid_w_ = 0;  ///< x extent (grid kinds)
  std::int32_t grid_h_ = 0;  ///< y extent (grid kinds)
  std::int32_t depth_ = 1;   ///< z extent (mesh3d only)
  std::vector<TileId> link_dst_;
  std::vector<std::int8_t> reverse_port_;
  std::int32_t domain_count_ = 0;
  std::vector<DomainId> domain_of_;
  std::vector<std::array<TileId, 4>> domain_tiles_;
  std::vector<std::int16_t> hops_;
  std::vector<std::int32_t> center_dist_;
};

}  // namespace parm::noc
