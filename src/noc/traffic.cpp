#include "noc/traffic.hpp"

namespace parm::noc {

TrafficGenerator::TrafficGenerator(std::vector<TrafficFlow> flows)
    : flows_(std::move(flows)), accumulators_(flows_.size(), 0.0) {
  for (const auto& f : flows_) {
    PARM_CHECK(f.src != f.dst, "flow src and dst must differ");
    PARM_CHECK(f.flits_per_cycle >= 0.0, "flow rate must be non-negative");
  }
}

void TrafficGenerator::tick(Network& net) {
  const double per_packet =
      static_cast<double>(net.config().flits_per_packet);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    accumulators_[i] += flows_[i].flits_per_cycle;
    while (accumulators_[i] >= per_packet) {
      net.inject_packet(flows_[i].src, flows_[i].dst, flows_[i].app_id);
      accumulators_[i] -= per_packet;
    }
  }
}

double TrafficGenerator::offered_load() const {
  double acc = 0.0;
  for (const auto& f : flows_) acc += f.flits_per_cycle;
  return acc;
}

std::vector<TrafficFlow> uniform_random_flows(
    const MeshGeometry& mesh, double flits_per_cycle_per_tile, Rng& rng) {
  std::vector<TrafficFlow> flows;
  flows.reserve(static_cast<std::size_t>(mesh.tile_count()));
  for (TileId t = 0; t < mesh.tile_count(); ++t) {
    TileId dst = t;
    while (dst == t) {
      dst = static_cast<TileId>(
          rng.next_below(static_cast<std::uint64_t>(mesh.tile_count())));
    }
    flows.push_back({t, dst, flits_per_cycle_per_tile, -1});
  }
  return flows;
}

std::vector<TrafficFlow> hotspot_flows(const MeshGeometry& mesh,
                                       TileId hotspot,
                                       double flits_per_cycle_per_tile) {
  std::vector<TrafficFlow> flows;
  for (TileId t = 0; t < mesh.tile_count(); ++t) {
    if (t == hotspot) continue;
    flows.push_back({t, hotspot, flits_per_cycle_per_tile, -1});
  }
  return flows;
}

std::vector<TrafficFlow> transpose_flows(const MeshGeometry& mesh,
                                         double flits_per_cycle_per_tile) {
  std::vector<TrafficFlow> flows;
  for (TileId t = 0; t < mesh.tile_count(); ++t) {
    const TileCoord c = mesh.coord(t);
    const TileCoord d{c.y % mesh.width(), c.x % mesh.height()};
    if (d == c) continue;
    flows.push_back({t, mesh.tile_id(d), flits_per_cycle_per_tile, -1});
  }
  return flows;
}

}  // namespace parm::noc
