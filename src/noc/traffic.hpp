// Rate-based traffic generation for the NoC.
//
// Each flow is a (src, dst) tile pair with an injection rate in
// flits/cycle, derived at the system level from APG edge volumes and task
// progress. A fractional accumulator per flow converts rates into whole
// packets: every cycle the rate is accrued and whenever a full packet's
// worth of flits is pending, one packet is injected. Synthetic patterns
// (uniform random, hotspot, transpose) are provided for NoC-only tests
// and the PANR threshold ablation.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"

namespace parm::noc {

/// One unidirectional traffic flow.
struct TrafficFlow {
  TileId src = kInvalidTile;
  TileId dst = kInvalidTile;
  double flits_per_cycle = 0.0;
  std::int32_t app_id = -1;
};

class TrafficGenerator {
 public:
  explicit TrafficGenerator(std::vector<TrafficFlow> flows);

  /// Accrues one cycle of every flow and injects due packets into `net`.
  void tick(Network& net);

  const std::vector<TrafficFlow>& flows() const { return flows_; }

  /// Aggregate offered load in flits/cycle.
  double offered_load() const;

 private:
  std::vector<TrafficFlow> flows_;
  std::vector<double> accumulators_;
};

/// Uniform-random traffic: every tile sends to a random other tile at
/// `flits_per_cycle_per_tile`.
std::vector<TrafficFlow> uniform_random_flows(const MeshGeometry& mesh,
                                              double flits_per_cycle_per_tile,
                                              Rng& rng);

/// Hotspot traffic: all tiles send toward `hotspot` at the given rate.
std::vector<TrafficFlow> hotspot_flows(const MeshGeometry& mesh,
                                       TileId hotspot,
                                       double flits_per_cycle_per_tile);

/// Transpose traffic: tile (x, y) sends to (y, x) (square region only;
/// rectangular meshes map via modulo).
std::vector<TrafficFlow> transpose_flows(const MeshGeometry& mesh,
                                         double flits_per_cycle_per_tile);

}  // namespace parm::noc
