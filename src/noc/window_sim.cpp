#include "noc/window_sim.hpp"

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace parm::noc {

WindowResult run_window(Network& net, TrafficGenerator& traffic,
                        const WindowConfig& cfg,
                        const WindowMetrics& metrics) {
  PARM_CHECK(cfg.measure_cycles > 0, "measurement window must be positive");

  metrics.windows->inc();
  obs::ScopedTimer window_timer(*metrics.window_us);
  obs::ScopedTrace window_trace("noc", "noc.window");

  const auto inject = [&traffic](Network& n) { traffic.tick(n); };
  net.step_cycles(cfg.warmup_cycles, inject);
  net.reset_stats();
  net.step_cycles(cfg.measure_cycles, inject);

  WindowResult out;
  out.cycles = cfg.measure_cycles;
  out.injected_flits = net.total_injected_flits();
  out.delivered_flits = net.total_delivered_flits();
  out.router_activity.resize(static_cast<std::size_t>(net.tile_count()));
  for (TileId t = 0; t < net.tile_count(); ++t) {
    out.router_activity[static_cast<std::size_t>(t)] =
        static_cast<double>(net.flits_forwarded(t)) /
        static_cast<double>(cfg.measure_cycles);
  }
  // app_stats() is already ordered by app id; copy through so the result
  // (and everything that walks it) stays deterministic.
  for (const auto& [app, st] : net.app_stats()) {
    if (st.packets_delivered > 0) {
      out.app_latency[app] = st.avg_packet_latency();
    }
  }
  metrics.injected->inc(out.injected_flits);
  metrics.delivered->inc(out.delivered_flits);
  out.avg_latency = net.avg_packet_latency();
  if (out.avg_latency > 0.0) metrics.latency_hist->observe(out.avg_latency);
  out.delivery_ratio =
      out.injected_flits == 0
          ? 1.0
          : static_cast<double>(out.delivered_flits) /
                static_cast<double>(out.injected_flits);
  return out;
}

WindowResult run_window(Network& net, TrafficGenerator& traffic,
                        const WindowConfig& cfg, obs::Registry* registry) {
  return run_window(net, traffic, cfg, WindowMetrics(registry));
}

}  // namespace parm::noc
