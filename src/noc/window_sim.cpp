#include "noc/window_sim.hpp"

namespace parm::noc {

WindowResult run_window(Network& net, TrafficGenerator& traffic,
                        const WindowConfig& cfg) {
  PARM_CHECK(cfg.measure_cycles > 0, "measurement window must be positive");

  for (std::uint64_t c = 0; c < cfg.warmup_cycles; ++c) {
    traffic.tick(net);
    net.step();
  }
  net.reset_stats();
  for (std::uint64_t c = 0; c < cfg.measure_cycles; ++c) {
    traffic.tick(net);
    net.step();
  }

  WindowResult out;
  out.cycles = cfg.measure_cycles;
  out.injected_flits = net.total_injected_flits();
  out.delivered_flits = net.total_delivered_flits();
  out.router_activity.resize(
      static_cast<std::size_t>(net.mesh().tile_count()));
  for (TileId t = 0; t < net.mesh().tile_count(); ++t) {
    out.router_activity[static_cast<std::size_t>(t)] =
        static_cast<double>(net.router(t).flits_forwarded) /
        static_cast<double>(cfg.measure_cycles);
  }
  for (const auto& [app, st] : net.app_stats()) {
    if (st.packets_delivered > 0) {
      out.app_latency[app] = st.avg_packet_latency();
    }
  }
  out.avg_latency = net.avg_packet_latency();
  out.delivery_ratio =
      out.injected_flits == 0
          ? 1.0
          : static_cast<double>(out.delivered_flits) /
                static_cast<double>(out.injected_flits);
  return out;
}

}  // namespace parm::noc
