#include "noc/window_sim.hpp"

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace parm::noc {

WindowResult run_window(Network& net, TrafficGenerator& traffic,
                        const WindowConfig& cfg, obs::Registry* registry) {
  PARM_CHECK(cfg.measure_cycles > 0, "measurement window must be positive");

  obs::Registry& reg = obs::resolve(registry);
  obs::Counter& windows = reg.counter("noc.windows");
  obs::Counter& injected = reg.counter("noc.flits_injected");
  obs::Counter& delivered = reg.counter("noc.flits_delivered");
  obs::Histogram& window_us = reg.histogram("noc.window_us");
  obs::Histogram& latency_hist = reg.histogram("noc.window_latency_cycles");
  windows.inc();
  obs::ScopedTimer window_timer(window_us);
  obs::ScopedTrace window_trace("noc", "noc.window");

  for (std::uint64_t c = 0; c < cfg.warmup_cycles; ++c) {
    traffic.tick(net);
    net.step();
  }
  net.reset_stats();
  for (std::uint64_t c = 0; c < cfg.measure_cycles; ++c) {
    traffic.tick(net);
    net.step();
  }

  WindowResult out;
  out.cycles = cfg.measure_cycles;
  out.injected_flits = net.total_injected_flits();
  out.delivered_flits = net.total_delivered_flits();
  out.router_activity.resize(
      static_cast<std::size_t>(net.mesh().tile_count()));
  for (TileId t = 0; t < net.mesh().tile_count(); ++t) {
    out.router_activity[static_cast<std::size_t>(t)] =
        static_cast<double>(net.router(t).flits_forwarded) /
        static_cast<double>(cfg.measure_cycles);
  }
  // Insert via the ordered map so the result (and everything that walks
  // it) is independent of the unordered app_stats iteration order.
  for (const auto& [app, st] : net.app_stats()) {
    if (st.packets_delivered > 0) {
      out.app_latency[app] = st.avg_packet_latency();
    }
  }
  injected.inc(out.injected_flits);
  delivered.inc(out.delivered_flits);
  out.avg_latency = net.avg_packet_latency();
  if (out.avg_latency > 0.0) latency_hist.observe(out.avg_latency);
  out.delivery_ratio =
      out.injected_flits == 0
          ? 1.0
          : static_cast<double>(out.delivered_flits) /
                static_cast<double>(out.injected_flits);
  return out;
}

}  // namespace parm::noc
