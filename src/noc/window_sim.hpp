// Windowed NoC simulation.
//
// The system simulator advances in millisecond-scale epochs but the NoC is
// cycle-accurate; simulating every cycle of a multi-second experiment is
// wasteful. Instead, each epoch runs a short representative window of the
// NoC under the epoch's injection rates and extrapolates:
//   - per-router flit activity      → router power → PDN currents,
//   - per-app average packet latency → task stall factors,
//   - delivery ratio                 → saturation detection.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "obs/metrics.hpp"

namespace parm::noc {

struct WindowResult {
  std::uint64_t cycles = 0;
  std::uint64_t injected_flits = 0;
  std::uint64_t delivered_flits = 0;
  /// Per-tile router activity: flits forwarded per cycle.
  std::vector<double> router_activity;
  /// Per-app average packet latency in cycles (apps with no delivered
  /// packets are absent). Ordered map: consumers walk it in app-id order,
  /// so downstream iteration is deterministic by construction.
  std::map<std::int32_t, double> app_latency;
  /// Average packet latency over all apps (cycles).
  double avg_latency = 0.0;
  /// Delivered/injected flit ratio (saturation indicator; ~1 when stable).
  double delivery_ratio = 1.0;
};

struct WindowConfig {
  std::uint64_t warmup_cycles = 256;
  std::uint64_t measure_cycles = 1024;
};

/// Window metric instruments, resolved by name once and reused across
/// windows (the resolved-handle pattern from obs/timeseries): callers
/// running a window per epoch skip five registry lookups per call.
struct WindowMetrics {
  explicit WindowMetrics(obs::Registry* registry = nullptr)
      : windows(&obs::resolve(registry).counter("noc.windows")),
        injected(&obs::resolve(registry).counter("noc.flits_injected")),
        delivered(&obs::resolve(registry).counter("noc.flits_delivered")),
        window_us(&obs::resolve(registry).histogram("noc.window_us")),
        latency_hist(&obs::resolve(registry).histogram(
            "noc.window_latency_cycles")) {}

  obs::Counter* windows;
  obs::Counter* injected;
  obs::Counter* delivered;
  obs::Histogram* window_us;
  obs::Histogram* latency_hist;
};

/// Runs `warmup + measure` cycles of `net` under `traffic` and reports
/// measurement-window statistics. The network keeps its state (buffers,
/// EWMAs) across calls, so consecutive windows model a continuously
/// running NoC. Cycles advance through Network::step_cycles, so a sharded
/// network runs the whole window under one gang.
WindowResult run_window(Network& net, TrafficGenerator& traffic,
                        const WindowConfig& cfg,
                        const WindowMetrics& metrics);

/// Convenience overload resolving metric handles per call (tests, one-off
/// windows). Metrics go to `registry` (null → process-default).
WindowResult run_window(Network& net, TrafficGenerator& traffic,
                        const WindowConfig& cfg,
                        obs::Registry* registry = nullptr);

}  // namespace parm::noc
