#include "obs/blackbox.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "obs/json_util.hpp"

namespace parm::obs {

namespace {

// ------------------------------------------------- flat JSON line parser
//
// The dumps this module loads are flat single-line objects whose values
// are numbers or strings (write_event_json / TimeSeriesStore::dump_jsonl
// output). A full JSON parser would be a dependency; a flat one is ~100
// lines and — crucially for the fuzz corpus — rejects every malformed
// line instead of guessing.

struct FlatObject {
  std::map<std::string, double, std::less<>> nums;
  std::map<std::string, std::string, std::less<>> strs;
};

class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  bool parse(FlatObject& out) {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return done();
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (peek() == '"') {
        std::string value;
        if (!parse_string(value)) return false;
        out.strs[key] = std::move(value);
      } else {
        double value = 0.0;
        if (!parse_number(value)) return false;
        out.nums[key] = value;
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return done();
      return false;
    }
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool done() {
    skip_ws();
    return pos_ == s_.size();
  }

  static int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;  // truncated escape
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const int h = hex_value(s_[pos_++]);
            if (h < 0) return false;
            code = code * 16 + h;
          }
          // The writers only escape control characters; anything in the
          // BMP is folded to '?' rather than re-encoded — names never
          // legitimately contain escapes beyond \u00XX.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return false;  // bad escape — the whole line is rejected
      }
    }
    return false;  // unterminated string
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(s_.substr(start, pos_ - start));
    char* end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size() && std::isfinite(out);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool parse_line(std::string_view line, FlatObject& out) {
  return LineParser(line).parse(out);
}

double num_or(const FlatObject& o, std::string_view key, double fallback) {
  const auto it = o.nums.find(key);
  return it != o.nums.end() ? it->second : fallback;
}

bool event_type_from_name(std::string_view name, EventType& out) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    if (name == event_type_name(type)) {
      out = type;
      return true;
    }
  }
  return false;
}

bool is_blank(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

}  // namespace

// ----------------------------------------------------------------- loaders

std::vector<Event> load_events_jsonl(std::istream& is,
                                     BlackboxLoadStats* stats) {
  BlackboxLoadStats local;
  BlackboxLoadStats& st = stats != nullptr ? *stats : local;
  st = BlackboxLoadStats{};
  std::vector<Event> events;
  std::map<std::int16_t, std::uint64_t> last_seq;
  std::string line;
  while (std::getline(is, line)) {
    if (is_blank(line)) continue;
    ++st.lines;
    FlatObject o;
    EventType type = EventType::kAppArrival;
    const auto type_it = parse_line(line, o)
                             ? o.strs.find("type")
                             : o.strs.end();
    if (type_it == o.strs.end() ||
        !event_type_from_name(type_it->second, type) ||
        o.nums.find("t") == o.nums.end()) {
      ++st.skipped;
      continue;
    }
    Event e;
    e.type = type;
    e.t = o.nums.at("t");
    e.seq = static_cast<std::uint64_t>(num_or(o, "seq", 0.0));
    e.chip = static_cast<std::int16_t>(num_or(o, "chip", -1.0));
    e.app = static_cast<std::int32_t>(num_or(o, "app", -1.0));
    e.domain = static_cast<std::int32_t>(num_or(o, "domain", -1.0));
    e.tile = static_cast<std::int32_t>(num_or(o, "tile", -1.0));
    const EventPayloadKeys keys = event_payload_keys(type);
    if (keys.a != nullptr) e.a = num_or(o, keys.a, 0.0);
    if (keys.b != nullptr) e.b = num_or(o, keys.b, 0.0);
    const auto seq_it = last_seq.find(e.chip);
    if (seq_it != last_seq.end() && e.seq < seq_it->second) {
      ++st.out_of_order;
    }
    last_seq[e.chip] = e.seq;
    events.push_back(e);
    ++st.parsed;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.chip != b.chip) return a.chip < b.chip;
                     return a.seq < b.seq;
                   });
  return events;
}

TsArchive load_timeseries_jsonl(std::istream& is, BlackboxLoadStats* stats) {
  BlackboxLoadStats local;
  BlackboxLoadStats& st = stats != nullptr ? *stats : local;
  st = BlackboxLoadStats{};
  TsArchive archive;
  std::string line;
  while (std::getline(is, line)) {
    if (is_blank(line)) continue;
    ++st.lines;
    FlatObject o;
    if (!parse_line(line, o) || o.strs.find("series") == o.strs.end() ||
        o.nums.find("t_start") == o.nums.end() ||
        o.nums.find("t_end") == o.nums.end()) {
      ++st.skipped;
      continue;
    }
    TsPoint p;
    p.level = static_cast<int>(num_or(o, "level", 0.0));
    p.t_start = o.nums.at("t_start");
    p.t_end = o.nums.at("t_end");
    p.min = num_or(o, "min", 0.0);
    p.max = num_or(o, "max", 0.0);
    p.mean = num_or(o, "mean", 0.0);
    p.count = static_cast<std::uint64_t>(num_or(o, "count", 0.0));
    if (p.level < 0 || p.t_end < p.t_start) {
      ++st.skipped;
      continue;
    }
    archive[o.strs.at("series")].push_back(p);
    ++st.parsed;
  }
  for (auto& [name, points] : archive) {
    std::stable_sort(points.begin(), points.end(),
                     [](const TsPoint& a, const TsPoint& b) {
                       if (a.level != b.level) return a.level < b.level;
                       return a.t_start < b.t_start;
                     });
  }
  return archive;
}

// ---------------------------------------------------------------- analyzer

namespace {

/// Droop trajectory of `series` across [t_min, t_max]: points of the
/// finest level that reaches back to t_min (else the coarsest present).
std::vector<TsPoint> droop_window(const TsArchive& ts,
                                  const std::string& series, double t_min,
                                  double t_max, int& level_out) {
  level_out = -1;
  const auto it = ts.find(series);
  if (it == ts.end() || it->second.empty()) return {};
  const std::vector<TsPoint>& points = it->second;
  int chosen = -1;
  int coarsest = -1;
  for (std::size_t i = 0; i < points.size();) {
    const int level = points[i].level;
    const double first_t = points[i].t_start;  // sorted within a level
    coarsest = level;
    if (chosen < 0 && first_t <= t_min) chosen = level;
    while (i < points.size() && points[i].level == level) ++i;
    if (chosen >= 0) break;
  }
  if (chosen < 0) chosen = coarsest;
  level_out = chosen;
  std::vector<TsPoint> out;
  for (const TsPoint& p : points) {
    if (p.level == chosen && p.t_end >= t_min && p.t_start <= t_max) {
      out.push_back(p);
    }
  }
  return out;
}

std::string droop_series_name(const Event& trigger, std::int32_t domain) {
  std::string name;
  if (trigger.chip >= 0) {
    name += "chip" + std::to_string(trigger.chip) + ".";
  }
  name += "psn.domain" + std::to_string(domain) + ".peak_percent";
  return name;
}

bool involves(const Incident& incident, std::int32_t app) {
  if (incident.trigger.app == app) return true;
  return std::find(incident.co_resident.begin(), incident.co_resident.end(),
                   app) != incident.co_resident.end();
}

void write_point_json(std::ostream& os, const TsPoint& p) {
  os << "{\"level\":" << p.level << ",\"t_start\":" << p.t_start
     << ",\"t_end\":" << p.t_end << ",\"min\":" << p.min
     << ",\"max\":" << p.max << ",\"mean\":" << p.mean
     << ",\"count\":" << p.count << "}";
}

}  // namespace

IncidentReport analyze_incidents(std::vector<Event> events,
                                 const TsArchive& ts,
                                 const IncidentQuery& query) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.chip != b.chip) return a.chip < b.chip;
                     return a.seq < b.seq;
                   });

  IncidentReport report;
  report.query = query;
  const double w = query.window_s;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& trigger = events[i];
    if (trigger.type != EventType::kVeOnset &&
        trigger.type != EventType::kAppDeadlineMiss) {
      continue;
    }
    ++report.total_triggers;
    // The limit caps reported incidents only; keep counting triggers so
    // the report header still reflects the full run.
    if (query.limit != 0 && report.incidents.size() >= query.limit) continue;

    Incident incident;
    incident.trigger = trigger;

    // Replay the app lifecycle on this chip up to the trigger: which app
    // lives in which domain, and is the NoC congested? (kAppMigrate moves
    // a single task between tiles; the app's home domain — where it was
    // mapped — is kept, an accepted approximation for co-residency.)
    std::map<std::int32_t, std::int32_t> app_domain;
    const Event* open_congestion = nullptr;
    for (std::size_t k = 0; k < i; ++k) {
      const Event& e = events[k];
      if (e.chip != trigger.chip) continue;
      switch (e.type) {
        case EventType::kAppMap:
          app_domain[e.app] = e.domain;
          break;
        case EventType::kAppComplete:
        case EventType::kAppReject:
          app_domain.erase(e.app);
          break;
        case EventType::kNocCongestionOnset:
          open_congestion = &e;
          break;
        case EventType::kNocCongestionClear:
          open_congestion = nullptr;
          break;
        default:
          break;
      }
    }

    // Affected domain: a VE onset names it; a deadline miss inherits the
    // app's mapped domain (the map entry is erased by the completion
    // event that precedes the miss at the same timestamp, so fall back
    // to a reverse scan for the app's kAppMap).
    incident.domain = trigger.domain;
    if (incident.domain < 0 && trigger.app >= 0) {
      const auto it = app_domain.find(trigger.app);
      if (it != app_domain.end()) {
        incident.domain = it->second;
      } else {
        for (std::size_t k = i; k-- > 0;) {
          const Event& e = events[k];
          if (e.chip == trigger.chip && e.type == EventType::kAppMap &&
              e.app == trigger.app) {
            incident.domain = e.domain;
            break;
          }
        }
      }
    }
    if (query.domain >= 0 && incident.domain != query.domain) continue;

    for (const auto& [app, domain] : app_domain) {  // std::map: sorted
      if (domain == incident.domain) incident.co_resident.push_back(app);
    }
    if (trigger.app >= 0 &&
        std::find(incident.co_resident.begin(), incident.co_resident.end(),
                  trigger.app) == incident.co_resident.end()) {
      incident.co_resident.insert(incident.co_resident.begin(),
                                  trigger.app);
    }
    if (query.app >= 0 && !involves(incident, query.app)) continue;

    // The causal window: droop trajectory, congestion, rollbacks,
    // responses.
    if (incident.domain >= 0) {
      incident.droop_series = droop_series_name(trigger, incident.domain);
      incident.droop =
          droop_window(ts, incident.droop_series, trigger.t - w,
                       trigger.t + w, incident.droop_level);
    }
    if (open_congestion != nullptr) {
      incident.congestion.push_back(*open_congestion);
    }
    for (const Event& e : events) {
      if (e.chip != trigger.chip) continue;
      if (e.t < trigger.t - w || e.t > trigger.t + w) continue;
      const bool involved =
          e.app >= 0 && (e.app == trigger.app ||
                         std::find(incident.co_resident.begin(),
                                   incident.co_resident.end(),
                                   e.app) != incident.co_resident.end());
      if (e.type == EventType::kNocCongestionOnset &&
          (open_congestion == nullptr || e.seq != open_congestion->seq)) {
        incident.congestion.push_back(e);
      } else if (e.type == EventType::kAppVe && involved) {
        incident.ves.push_back(e);
      } else if ((e.type == EventType::kAppThrottle ||
                  e.type == EventType::kAppMigrate) &&
                 e.t >= trigger.t && involved) {
        IncidentResponseEffect effect;
        effect.response = e;
        double before = 0.0;
        double after = 0.0;
        bool have_before = false;
        bool have_after = false;
        for (const TsPoint& p : incident.droop) {
          if (p.t_end <= e.t) {
            before = std::max(before, p.max);
            have_before = true;
          } else if (p.t_start >= e.t) {
            after = std::max(after, p.max);
            have_after = true;
          }
        }
        effect.peak_before = before;
        effect.peak_after = after;
        effect.measured = have_before && have_after;
        incident.responses.push_back(effect);
      }
    }

    report.incidents.push_back(std::move(incident));
  }
  return report;
}

// ----------------------------------------------------------------- writers

void write_incident_text(std::ostream& os, const IncidentReport& report) {
  const auto old_precision = os.precision();
  const IncidentQuery& q = report.query;
  os << "== blackbox incident report ==\n";
  os << "triggers: " << report.total_triggers
     << "  reported: " << report.incidents.size() << "  window: +/-"
     << q.window_s << " s";
  if (q.app >= 0) os << "  app=" << q.app;
  if (q.domain >= 0) os << "  domain=" << q.domain;
  if (q.limit != 0) os << "  limit=" << q.limit;
  os << "\n";

  std::size_t idx = 0;
  for (const Incident& in : report.incidents) {
    const Event& t = in.trigger;
    os << "\n-- incident " << ++idx << ": " << event_type_name(t.type)
       << "  t=" << std::fixed << std::setprecision(4) << t.t << " s";
    if (t.app >= 0) os << "  app=" << t.app;
    if (in.domain >= 0) os << "  domain=" << in.domain;
    if (t.chip >= 0) os << "  chip=" << t.chip;
    const EventPayloadKeys keys = event_payload_keys(t.type);
    if (keys.a != nullptr) {
      os << "  " << keys.a << "=" << std::setprecision(4) << t.a;
    }
    os << "\n";

    os << "   co-resident apps in domain: ";
    if (in.co_resident.empty()) {
      os << "(none)";
    } else {
      for (std::size_t k = 0; k < in.co_resident.size(); ++k) {
        os << (k != 0 ? " " : "") << in.co_resident[k];
      }
    }
    os << "\n";

    if (in.droop.empty()) {
      os << "   droop trajectory: (no time-series data for "
         << (in.droop_series.empty() ? "this domain" : in.droop_series)
         << ")\n";
    } else {
      os << "   droop trajectory " << in.droop_series << " (level "
         << in.droop_level << ", " << in.droop.size() << " points):\n";
      for (const TsPoint& p : in.droop) {
        os << "     t=" << std::setprecision(4) << p.t_start << "  max="
           << std::setprecision(2) << p.max << "%  mean=" << p.mean
           << "%  |";
        const int bar =
            std::min(40, static_cast<int>(std::lround(p.max * 4.0)));
        for (int b = 0; b < bar; ++b) os << '#';
        if (p.t_start <= t.t && t.t <= p.t_end) os << " <- trigger";
        os << "\n";
      }
    }

    if (in.congestion.empty()) {
      os << "   congestion: none\n";
    } else {
      for (const Event& e : in.congestion) {
        os << "   congestion onset t=" << std::setprecision(4) << e.t
           << " s  delivery_ratio=" << std::setprecision(3) << e.a << "\n";
      }
    }

    os << "   ve rollbacks in window: " << in.ves.size() << "\n";

    if (in.responses.empty()) {
      os << "   responses: none\n";
    } else {
      for (const IncidentResponseEffect& r : in.responses) {
        os << "   response " << event_type_name(r.response.type) << " app="
           << r.response.app << " t=" << std::setprecision(4)
           << r.response.t << " s";
        if (r.measured) {
          os << "  peak " << std::setprecision(2) << r.peak_before
             << "% -> " << r.peak_after << "% ("
             << (r.peak_after <= r.peak_before ? "" : "+")
             << r.peak_after - r.peak_before << ")";
        } else {
          os << "  (effect not measurable from retained waveform)";
        }
        os << "\n";
      }
    }
  }
  os.unsetf(std::ios_base::floatfield);
  os.precision(old_precision);
}

void write_incident_json(std::ostream& os, const IncidentReport& report) {
  const auto old_precision = os.precision(15);
  const IncidentQuery& q = report.query;
  os << "{\"query\":{\"window_s\":" << q.window_s << ",\"app\":" << q.app
     << ",\"domain\":" << q.domain << ",\"limit\":" << q.limit << "}";
  os << ",\"total_triggers\":" << report.total_triggers;
  os << ",\"incidents\":[";
  for (std::size_t i = 0; i < report.incidents.size(); ++i) {
    const Incident& in = report.incidents[i];
    if (i != 0) os << ",";
    os << "{\"trigger\":";
    write_event_json(os, in.trigger);
    os << ",\"domain\":" << in.domain;
    os << ",\"co_resident\":[";
    for (std::size_t k = 0; k < in.co_resident.size(); ++k) {
      os << (k != 0 ? "," : "") << in.co_resident[k];
    }
    os << "],\"droop_series\":";
    json_string(os, in.droop_series);
    os << ",\"droop_level\":" << in.droop_level;
    os << ",\"droop\":[";
    for (std::size_t k = 0; k < in.droop.size(); ++k) {
      if (k != 0) os << ",";
      write_point_json(os, in.droop[k]);
    }
    os << "],\"congestion\":[";
    for (std::size_t k = 0; k < in.congestion.size(); ++k) {
      if (k != 0) os << ",";
      write_event_json(os, in.congestion[k]);
    }
    os << "],\"ves\":[";
    for (std::size_t k = 0; k < in.ves.size(); ++k) {
      if (k != 0) os << ",";
      write_event_json(os, in.ves[k]);
    }
    os << "],\"responses\":[";
    for (std::size_t k = 0; k < in.responses.size(); ++k) {
      const IncidentResponseEffect& r = in.responses[k];
      if (k != 0) os << ",";
      os << "{\"event\":";
      write_event_json(os, r.response);
      os << ",\"peak_before\":" << r.peak_before
         << ",\"peak_after\":" << r.peak_after
         << ",\"measured\":" << (r.measured ? "true" : "false") << "}";
    }
    os << "]}";
  }
  os << "]}\n";
  os.precision(old_precision);
}

}  // namespace parm::obs
