// Post-mortem incident analysis over flight-recorder dumps and
// time-series exports — the read side of the blackbox workflow.
//
// The write side (obs/flight_recorder.hpp, obs/timeseries.hpp) produces
// two JSONL artifacts: discrete events and bounded droop waveforms. This
// module loads both back and answers the question a post-mortem asks:
// for every VE onset and deadline miss, what led up to it? The result is
// an IncidentReport — per trigger, a causal timeline window holding the
// droop trajectory of the affected domain, the apps co-resident in it,
// concurrent NoC congestion, the per-task VE rollbacks, and any
// throttle/migration responses with their measured effect on the
// waveform. examples/parm_blackbox.cpp is the CLI face.
//
// Loader contract: JSONL from the wild is hostile input (truncated
// tails, editor mangling, concatenated dumps), so the loaders never
// throw on malformed lines — each bad line is counted in
// BlackboxLoadStats::skipped and ignored, out-of-order sequence numbers
// are counted and normalized by sorting, and tests/fuzz_test.cpp keeps a
// corpus of mangled dumps against this promise.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace parm::obs {

/// Per-load accounting: how much of the input was usable.
struct BlackboxLoadStats {
  std::size_t lines = 0;    ///< non-blank input lines
  std::size_t parsed = 0;   ///< lines converted into records
  std::size_t skipped = 0;  ///< malformed or unknown lines ignored
  /// Sequence regressions seen in file order (per chip). The loader
  /// re-sorts, so this only signals that the input had been shuffled.
  std::size_t out_of_order = 0;
};

/// Parses a flight-recorder JSONL dump (write_event_json lines) back
/// into events, sorted by (t, chip, seq). Never throws on malformed
/// input.
std::vector<Event> load_events_jsonl(std::istream& is,
                                     BlackboxLoadStats* stats = nullptr);

/// One loaded time-series aggregate (TimeSeriesStore::dump_jsonl line).
struct TsPoint {
  int level = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::uint64_t count = 0;
};

/// series name → points sorted by (level, t_start).
using TsArchive = std::map<std::string, std::vector<TsPoint>>;

/// Parses a TimeSeriesStore::dump_jsonl export. Never throws on
/// malformed input.
TsArchive load_timeseries_jsonl(std::istream& is,
                                BlackboxLoadStats* stats = nullptr);

/// Query filters of an incident report.
struct IncidentQuery {
  /// Timeline half-width: the report covers [T − window_s, T + window_s]
  /// around each trigger at time T.
  double window_s = 0.05;
  /// Restrict to incidents involving this app (the trigger's app for a
  /// deadline miss, a co-resident app for a VE onset). -1 = all.
  std::int32_t app = -1;
  /// Restrict to incidents in this voltage domain. -1 = all.
  std::int32_t domain = -1;
  /// Keep at most this many incidents (0 = unlimited).
  std::size_t limit = 0;
};

/// A throttle/migration response inside the window, with its measured
/// effect: the droop-series maximum before vs. after the response.
struct IncidentResponseEffect {
  Event response;
  double peak_before = 0.0;
  double peak_after = 0.0;
  bool measured = false;  ///< both sides of the waveform were available
};

/// One VE-onset or deadline-miss trigger with its causal window.
struct Incident {
  Event trigger;
  /// The affected voltage domain: the trigger's own for a VE onset, the
  /// app's mapped domain for a deadline miss (-1 when unresolvable).
  std::int32_t domain = -1;
  /// Apps mapped into the domain and not yet finished at trigger time.
  std::vector<std::int32_t> co_resident;
  /// Droop trajectory of the domain across the window, from the finest
  /// downsample level that reaches back to the window start.
  std::string droop_series;
  int droop_level = -1;
  std::vector<TsPoint> droop;
  /// NoC congestion onsets overlapping the window (including one still
  /// open at trigger time).
  std::vector<Event> congestion;
  /// Per-task VE rollbacks of the involved apps inside the window.
  std::vector<Event> ves;
  std::vector<IncidentResponseEffect> responses;
};

struct IncidentReport {
  IncidentQuery query;
  std::size_t total_triggers = 0;  ///< before filters and limit
  std::vector<Incident> incidents;
};

/// Builds the report. `events` may be in any order (re-sorted
/// internally); `ts` is the loaded time-series archive (may be empty —
/// incidents then carry no droop trajectory). Deterministic: the same
/// inputs produce the same report, byte for byte through the writers
/// below.
IncidentReport analyze_incidents(std::vector<Event> events,
                                 const TsArchive& ts,
                                 const IncidentQuery& query);

/// Human-readable report (the CLI's stdout).
void write_incident_text(std::ostream& os, const IncidentReport& report);
/// Machine-readable JSON artifact (one object, embedded event objects in
/// write_event_json form).
void write_incident_json(std::ostream& os, const IncidentReport& report);

}  // namespace parm::obs
