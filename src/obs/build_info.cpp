#include "obs/build_info.hpp"

#ifndef PARM_VERSION
#define PARM_VERSION "0.0.0-dev"
#endif
#ifndef PARM_BUILD_TYPE
#define PARM_BUILD_TYPE "unknown"
#endif

namespace parm::obs {

namespace {

const char* compiler_string() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{PARM_VERSION, compiler_string(),
                              PARM_BUILD_TYPE};
  return info;
}

}  // namespace parm::obs
