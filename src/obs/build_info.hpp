// Compile-time build identity, exposed as the conventional
// `parm_build_info` gauge in the Prometheus exposition and in the /varz
// endpoint of the embedded observability server.
//
// A scrape without a build identity is forensically worthless the moment
// two binaries coexist in a fleet: dashboards need to group by version
// and CI needs to prove which compiler produced the numbers it archived.
// The values come from the build system (PARM_VERSION / PARM_BUILD_TYPE
// compile definitions set in src/obs/CMakeLists.txt) with sane fallbacks
// so ad-hoc builds outside CMake still report something truthful.
#pragma once

namespace parm::obs {

/// Static build identity; every field points at a string literal.
struct BuildInfo {
  const char* version;     ///< project version (CMake PROJECT_VERSION)
  const char* compiler;    ///< compiler id + version (__VERSION__)
  const char* build_type;  ///< CMAKE_BUILD_TYPE ("unknown" outside CMake)
};

/// The identity baked into this binary.
const BuildInfo& build_info();

}  // namespace parm::obs
