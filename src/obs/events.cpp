#include "obs/events.hpp"

#include <cmath>
#include <ostream>

#include "obs/json_util.hpp"

namespace parm::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kAppArrival:
      return "app.arrival";
    case EventType::kAppAdmit:
      return "app.admit";
    case EventType::kAppReject:
      return "app.reject";
    case EventType::kAppMap:
      return "app.map";
    case EventType::kAppMigrate:
      return "app.migrate";
    case EventType::kAppThrottle:
      return "app.throttle";
    case EventType::kAppComplete:
      return "app.complete";
    case EventType::kAppDeadlineMiss:
      return "app.deadline_miss";
    case EventType::kAppVe:
      return "app.ve";
    case EventType::kVeOnset:
      return "ve.onset";
    case EventType::kVeClear:
      return "ve.clear";
    case EventType::kNocCongestionOnset:
      return "noc.congestion_onset";
    case EventType::kNocCongestionClear:
      return "noc.congestion_clear";
    case EventType::kFaultLinkDown:
      return "fault.link_down";
    case EventType::kFaultLinkUp:
      return "fault.link_up";
    case EventType::kFaultRouterDown:
      return "fault.router_down";
    case EventType::kFaultRouterUp:
      return "fault.router_up";
    case EventType::kFaultSensorDropout:
      return "fault.sensor_dropout";
  }
  return "unknown";
}

EventPayloadKeys event_payload_keys(EventType type) {
  switch (type) {
    case EventType::kAppArrival:
      return {"deadline_s", nullptr};
    case EventType::kAppAdmit:
      return {"vdd", "dop"};
    case EventType::kAppReject:
      return {nullptr, nullptr};
    case EventType::kAppMap:
      return {"tasks", "domain0"};
    case EventType::kAppMigrate:
      return {"to_tile", "psn_percent"};
    case EventType::kAppThrottle:
      return {"psn_percent", nullptr};
    case EventType::kAppComplete:
      return {"ve_count", "slack_s"};
    case EventType::kAppDeadlineMiss:
      return {"lateness_s", nullptr};
    case EventType::kAppVe:
      return {"psn_percent", "injected"};
    case EventType::kVeOnset:
      return {"psn_percent", nullptr};
    case EventType::kVeClear:
      return {"psn_percent", nullptr};
    case EventType::kNocCongestionOnset:
    case EventType::kNocCongestionClear:
      return {"delivery_ratio", "avg_latency_cycles"};
    case EventType::kFaultLinkDown:
    case EventType::kFaultLinkUp:
      return {"direction", nullptr};
    case EventType::kFaultRouterDown:
      return {nullptr, "stranded_tasks"};
    case EventType::kFaultRouterUp:
      return {nullptr, nullptr};
    case EventType::kFaultSensorDropout:
      return {"held_percent", "true_percent"};
  }
  return {};
}

void write_event_json(std::ostream& os, const Event& e) {
  const auto num = [&os](double v) {
    // JSON has no Infinity/NaN literals; events never legitimately carry
    // them, but a defensive 0 keeps every line parseable.
    os << (std::isfinite(v) ? v : 0.0);
  };
  const auto old_precision = os.precision(15);
  os << "{\"seq\":" << e.seq << ",\"t\":";
  num(e.t);
  os << ",\"type\":";
  json_string(os, event_type_name(e.type));
  if (e.chip >= 0) os << ",\"chip\":" << e.chip;
  if (e.app >= 0) os << ",\"app\":" << e.app;
  if (e.domain >= 0) os << ",\"domain\":" << e.domain;
  if (e.tile >= 0) os << ",\"tile\":" << e.tile;
  const EventPayloadKeys keys = event_payload_keys(e.type);
  if (keys.a != nullptr) {
    os << ",\"" << keys.a << "\":";
    num(e.a);
  }
  if (keys.b != nullptr) {
    os << ",\"" << keys.b << "\":";
    num(e.b);
  }
  os << '}';
  os.precision(old_precision);
}

}  // namespace parm::obs
