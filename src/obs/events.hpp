// Typed structured events: the vocabulary of the flight recorder.
//
// An Event is a fixed-size POD — no strings, no heap — so emission is a
// struct copy into a ring buffer and a recorder holds a hard memory
// bound (capacity × sizeof(Event)). Everything event-like the PARM
// runtime does is covered by one enumerator:
//
//   application lifecycle   arrival / admit / reject / map / migrate /
//                           throttle / complete / deadline-miss, plus
//                           the per-app voltage-emergency rollback
//   PDN emergencies         per-domain VE-margin onset / clear with the
//                           domain's peak PSN
//   NoC congestion          delivery-ratio threshold crossings
//
// The numeric payload fields `a` and `b` are interpreted per type (see
// the table in event_payload_keys); the JSONL writer names them so a
// dump is self-describing. `chip` is -1 inside a single simulator and
// stamped by the fleet driver when it merges per-chip recorders.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <type_traits>

namespace parm::obs {

enum class EventType : std::uint16_t {
  kAppArrival = 0,    ///< app entered the service queue
  kAppAdmit,          ///< Alg. 1 committed Vdd/DoP (a=vdd, b=dop)
  kAppReject,         ///< dropped after exhausting queue stalls
  kAppMap,            ///< placement committed (a=task count, b=domain)
  kAppMigrate,        ///< hot task moved (tile=from, a=to tile, b=psn %)
  kAppThrottle,       ///< proactive throttle engaged on a tile (a=psn %)
  kAppComplete,       ///< all tasks finished (a=ve count, b=slack s)
  kAppDeadlineMiss,   ///< completed after its deadline (a=lateness s)
  kAppVe,             ///< VE rollback hit one task (a=psn %, b=injected)
  kVeOnset,           ///< domain peak PSN crossed the VE margin (a=psn %)
  kVeClear,           ///< domain peak PSN fell back under the margin
  kNocCongestionOnset,  ///< window delivery ratio fell below threshold
                        ///< (a=delivery ratio, b=avg latency cycles)
  kNocCongestionClear,  ///< delivery ratio recovered
  kFaultLinkDown,       ///< a NoC link failed (tile + a=direction)
  kFaultLinkUp,         ///< a failed link was repaired (a=direction)
  kFaultRouterDown,     ///< a router/tile died (b=stranded tasks)
  kFaultRouterUp,       ///< a dead router was repaired
  kFaultSensorDropout,  ///< a PSN sensor dropped a reading this epoch
                        ///< (a=held stale value, b=true value)
};

/// Number of distinct event types (one past the last enumerator).
inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kFaultSensorDropout) + 1;

/// Stable lower-case dotted name ("app.admit", "ve.onset", ...).
const char* event_type_name(EventType type);

/// JSONL key names for the `a`/`b` payload of a type; either pointer is
/// null when the field is unused by that type.
struct EventPayloadKeys {
  const char* a = nullptr;
  const char* b = nullptr;
};
EventPayloadKeys event_payload_keys(EventType type);

/// One recorded occurrence. Fixed-size POD: safe to copy into a
/// preallocated ring from any thread, trivially bounded in memory.
struct Event {
  double t = 0.0;          ///< simulation time (s)
  std::uint64_t seq = 0;   ///< recorder emission order (stamped on emit)
  double a = 0.0;          ///< payload, per-type meaning (see enum docs)
  double b = 0.0;
  std::int32_t app = -1;     ///< app outcome id, -1 when not app-scoped
  std::int32_t tile = -1;    ///< tile, -1 when not tile-scoped
  std::int32_t domain = -1;  ///< voltage domain, -1 when not domain-scoped
  EventType type = EventType::kAppArrival;
  std::int16_t chip = -1;  ///< fleet chip index, -1 for a lone simulator
};

static_assert(std::is_trivially_copyable_v<Event> &&
                  std::is_standard_layout_v<Event>,
              "Event must stay a fixed-size POD");

/// Writes one event as a single-line JSON object (no trailing newline):
/// {"seq":3,"t":0.012,"type":"app.admit","app":2,"vdd":0.58,"dop":16}.
/// Unused -1 id fields and unused payload fields are omitted.
void write_event_json(std::ostream& os, const Event& e);

}  // namespace parm::obs
