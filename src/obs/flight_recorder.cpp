#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

namespace parm::obs {

FlightRecorder::FlightRecorder(bool enabled, std::size_t capacity,
                               std::size_t shard_count, Registry* registry) {
  enabled_ = enabled;
  if (capacity == 0) capacity = 1;
  if (shard_count == 0) shard_count = 1;
  shard_count = std::min(shard_count, capacity);
  capacity_ = capacity;
  shards_.reserve(shard_count);
  // Distribute the capacity across shards; the first `capacity % shards`
  // rings take one extra slot so the total bound is exactly `capacity`.
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    const std::size_t extra = s < capacity % shard_count ? 1 : 0;
    shard->ring.resize(capacity / shard_count + extra);
    shards_.push_back(std::move(shard));
  }
  Registry& reg = resolve(registry);
  emitted_metric_ = &reg.counter("recorder.events_emitted");
  dropped_metric_ = &reg.counter("recorder.events_dropped");
  high_water_metric_ = &reg.gauge("recorder.high_water");
}

void FlightRecorder::emit(Event e) {
  if (!enabled_) return;
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[e.seq % shards_.size()];
  bool overwrote;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    overwrote = shard.written >= shard.ring.size();
    shard.ring[shard.written % shard.ring.size()] = e;
    ++shard.written;
  }
  emitted_metric_->inc();
  if (overwrote) dropped_metric_->inc();
  // seq assigns shards round-robin and the capacity split matches that
  // distribution, so retained occupancy is exactly min(emitted, capacity)
  // — the high-water mark needs no shard scan.
  high_water_metric_->max_of(static_cast<double>(
      std::min<std::uint64_t>(e.seq + 1, capacity_)));
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->written > shard->ring.size()) {
      total += shard->written - shard->ring.size();
    }
  }
  return total;
}

std::size_t FlightRecorder::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(shard->written, shard->ring.size()));
  }
  return total;
}

std::size_t FlightRecorder::high_water() const {
  return static_cast<std::size_t>(high_water_metric_->value());
}

std::vector<Event> FlightRecorder::collect() const {
  std::vector<Event> out;
  out.reserve(capacity_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(shard->written, shard->ring.size()));
    const std::size_t start =
        shard->written > shard->ring.size()
            ? static_cast<std::size_t>(shard->written % shard->ring.size())
            : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(shard->ring[(start + i) % shard->ring.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

void FlightRecorder::dump_jsonl(std::ostream& os) const {
  for (const Event& e : collect()) {
    write_event_json(os, e);
    os << '\n';
  }
}

void FlightRecorder::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->written = 0;
  }
  next_seq_.store(0, std::memory_order_relaxed);
}

}  // namespace parm::obs
