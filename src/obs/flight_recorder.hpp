// Bounded in-memory flight recorder for structured events.
//
// The recorder is the post-hoc forensics channel of the obs stack: the
// simulator emits typed POD events (obs/events.hpp) as it runs, and the
// recorder retains the most recent `capacity` of them in preallocated
// ring buffers — old evidence is overwritten, never reallocated, so a
// recorder's memory bound is fixed at construction
// (capacity × sizeof(Event), ~48 B/event). Dumping is on demand
// (dump_jsonl), typically at run end or on the first voltage emergency
// (SystemSimulator's dump-on-VE hook).
//
// Ownership mirrors obs::Registry: every simulator owns one recorder, so
// fleet chips never interleave events; the fleet driver collects every
// chip's events, stamps Event::chip, and merges.
//
// Concurrency: emission takes one lock per *shard* — events hash across
// `shard_count` independent rings by sequence number — so concurrent
// emitters (ThreadPool workers tracing their own work) rarely contend.
// Within the engine all emission happens in serial phase code, which is
// what makes event sequence numbers deterministic there.
//
// Observe-only contract: emit() touches nothing but the recorder itself
// (no RNG, no simulation state), so enabling it cannot perturb a run —
// tests/engine_equivalence_test pins this bit-for-bit. Recorder contents
// are deliberately *not* snapshotted: a resumed run starts with an empty
// recorder, the same as a rebooted aircraft.
//
// The recorder observes itself: emitted/dropped counters and a
// high-water occupancy gauge are registered in the owning registry
// (recorder.events_emitted, recorder.events_dropped,
// recorder.high_water).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace parm::obs {

class FlightRecorder {
 public:
  /// ~768 KiB of events per recorder at the default capacity.
  static constexpr std::size_t kDefaultCapacity = 16384;
  static constexpr std::size_t kDefaultShards = 8;

  /// A disabled recorder ignores emit() entirely (one relaxed load).
  /// `capacity` is the total retained-event bound across all shards;
  /// `registry` receives the recorder's self-metrics (null selects the
  /// process-default registry, as everywhere in obs).
  explicit FlightRecorder(bool enabled = false,
                          std::size_t capacity = kDefaultCapacity,
                          std::size_t shard_count = kDefaultShards,
                          Registry* registry = nullptr);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_; }

  /// Records `e` (stamping Event::seq with the global emission order).
  /// Thread-safe; no-op when disabled. When the target shard is full the
  /// oldest event in that shard is overwritten and counted as dropped.
  void emit(Event e);

  std::size_t capacity() const { return capacity_; }
  /// Events emitted since construction (including overwritten ones).
  std::uint64_t emitted() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wrap-around (lost to the bound).
  std::uint64_t dropped() const;
  /// Events currently retained (≤ capacity()).
  std::size_t size() const;
  /// Maximum retained-event occupancy seen so far (≤ capacity()).
  std::size_t high_water() const;

  /// All retained events in emission order (sorted by seq).
  std::vector<Event> collect() const;

  /// Writes every retained event as one JSON object per line, in
  /// emission order. Callable at any time ("on demand"), including while
  /// other threads emit (those events may or may not be included).
  void dump_jsonl(std::ostream& os) const;

  /// Discards retained events and zeroes emitted/dropped accounting.
  void clear();

 private:
  /// One independent ring: a preallocated vector written modulo its
  /// capacity. `written` counts total events ever stored in this shard,
  /// so occupancy is min(written, ring.size()) and everything older than
  /// written − ring.size() has been overwritten.
  struct Shard {
    mutable std::mutex mu;
    std::vector<Event> ring;
    std::uint64_t written = 0;
  };

  bool enabled_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  Counter* emitted_metric_;
  Counter* dropped_metric_;
  Gauge* high_water_metric_;
};

}  // namespace parm::obs
