#include "obs/health.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace parm::obs {

const char* health_status_name(HealthStatus s) {
  switch (s) {
    case HealthStatus::kOk:
      return "OK";
    case HealthStatus::kWarn:
      return "WARN";
    case HealthStatus::kCrit:
      return "CRIT";
  }
  return "UNKNOWN";
}

namespace {

HealthCheck rate_check(std::string name, double num, double den,
                       const char* unit, double warn_at, double crit_at) {
  HealthCheck check;
  check.name = std::move(name);
  std::ostringstream reason;
  reason.precision(4);
  if (den <= 0.0) {
    check.reason = "no data";
    return check;
  }
  check.value = num / den;
  if (check.value >= crit_at) {
    check.status = HealthStatus::kCrit;
    reason << check.value << ' ' << unit << " >= crit threshold " << crit_at;
  } else if (check.value >= warn_at) {
    check.status = HealthStatus::kWarn;
    reason << check.value << ' ' << unit << " >= warn threshold " << warn_at;
  } else {
    reason << check.value << ' ' << unit << " under warn threshold "
           << warn_at;
  }
  check.reason = reason.str();
  return check;
}

}  // namespace

HealthReport HealthMonitor::evaluate(const Registry& registry) const {
  HealthReport report;
  const auto c = [&](std::string_view name) {
    return static_cast<double>(registry.counter_value(name));
  };

  report.checks.push_back(rate_check(
      "ve_rate", c("sim.ves"), c("sim.epochs"), "VEs/epoch",
      config_.ve_rate_warn, config_.ve_rate_crit));

  report.checks.push_back(rate_check(
      "deadline_miss_rate", c("sim.deadline_misses"), c("sim.apps_completed"),
      "misses/app", config_.deadline_miss_rate_warn,
      config_.deadline_miss_rate_crit));

  {
    // Hit rate is a good-when-high metric: invert into a miss rate so the
    // shared >= comparison applies, then report the hit rate.
    HealthCheck check;
    check.name = "psn_cache_hit_rate";
    const double hits = c("pdn.psn_cache_hits");
    const double lookups = hits + c("pdn.psn_cache_misses");
    if (lookups <= 0.0) {
      check.reason = "no data";
    } else {
      check.value = hits / lookups;
      std::ostringstream reason;
      reason.precision(4);
      if (check.value < config_.psn_cache_hit_rate_crit) {
        check.status = HealthStatus::kCrit;
        reason << check.value << " hit rate < crit threshold "
               << config_.psn_cache_hit_rate_crit;
      } else if (check.value < config_.psn_cache_hit_rate_warn) {
        check.status = HealthStatus::kWarn;
        reason << check.value << " hit rate < warn threshold "
               << config_.psn_cache_hit_rate_warn;
      } else {
        reason << check.value << " hit rate at or above warn threshold "
               << config_.psn_cache_hit_rate_warn;
      }
      check.reason = reason.str();
    }
    report.checks.push_back(std::move(check));
  }

  report.checks.push_back(rate_check(
      "queue_depth", registry.gauge_value("sim.queue_depth"), 1.0, "queued",
      config_.queue_depth_warn, config_.queue_depth_crit));

  {
    // Any recorder drop means forensic evidence was overwritten: the
    // event log is incomplete, so the run's observability degraded.
    HealthCheck check;
    check.name = "recorder_drops";
    check.value = c("recorder.events_dropped");
    if (check.value > 0.0) {
      check.status = HealthStatus::kWarn;
      std::ostringstream reason;
      reason << static_cast<std::uint64_t>(check.value)
             << " events overwritten before dump; raise recorder capacity";
      check.reason = reason.str();
    } else {
      check.reason = "no events dropped";
    }
    report.checks.push_back(std::move(check));
  }

  for (const HealthCheck& check : report.checks) {
    report.status = std::max(report.status, check.status);
  }
  return report;
}

void write_health_report(std::ostream& os, const HealthReport& report) {
  os << "health: " << health_status_name(report.status) << '\n';
  std::vector<const HealthCheck*> ordered;
  ordered.reserve(report.checks.size());
  for (const HealthCheck& check : report.checks) ordered.push_back(&check);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const HealthCheck* x, const HealthCheck* y) {
                     return x->status > y->status;
                   });
  const auto old_precision = os.precision(6);
  for (const HealthCheck* check : ordered) {
    os << "  " << health_status_name(check->status) << ' ' << check->name
       << '=' << check->value << "  " << check->reason << '\n';
  }
  os.precision(old_precision);
}

}  // namespace parm::obs
