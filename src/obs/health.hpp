// Health monitor: threshold rules over a metrics registry, evaluated
// into an OK / WARN / CRIT verdict with human-readable reasons.
//
// The monitor is deliberately dumb: it reads already-registered metric
// values (sim.* run counters, pdn.* cache counters, recorder.* drop
// accounting) and compares rates against configured thresholds. It keeps
// no history and mutates nothing, so it can be evaluated at any point —
// end of run (parm_runner --health), per chip and fleet-wide
// (fleet_runner --health), or from CI, where a CRIT verdict fails the
// job via the runner's exit code.
//
// Rules whose denominator is zero (no epochs ran, no apps completed, no
// PSN solves issued) report OK with a "no data" reason rather than
// dividing by zero or guessing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace parm::obs {

enum class HealthStatus { kOk = 0, kWarn = 1, kCrit = 2 };

const char* health_status_name(HealthStatus s);

/// Verdict of one rule: the metric checked, the observed value, and a
/// sentence saying why it landed where it did.
struct HealthCheck {
  std::string name;
  HealthStatus status = HealthStatus::kOk;
  double value = 0.0;
  std::string reason;
};

/// Overall report: worst rule status wins.
struct HealthReport {
  HealthStatus status = HealthStatus::kOk;
  std::vector<HealthCheck> checks;

  bool ok() const { return status == HealthStatus::kOk; }
  bool critical() const { return status == HealthStatus::kCrit; }
};

/// Thresholds for the built-in rules. A `warn` fires at >= (or < for the
/// hit-rate rule, where low is bad); `crit` likewise.
struct HealthConfig {
  /// Voltage emergencies per epoch (sim.ves / sim.epochs). A fraction of
  /// an emergency per epoch is survivable; multiple per epoch means the
  /// PSN-aware policy has lost control of the PDN.
  double ve_rate_warn = 0.2;
  double ve_rate_crit = 2.0;
  /// Deadline misses per completed app (sim.deadline_misses /
  /// sim.apps_completed).
  double deadline_miss_rate_warn = 0.1;
  double deadline_miss_rate_crit = 0.5;
  /// PSN-estimate cache hit rate (pdn.psn_cache_hits / lookups); *low*
  /// values fire. An ice-cold cache in steady state means the PDN hot
  /// path is re-solving every epoch.
  double psn_cache_hit_rate_warn = 0.5;
  double psn_cache_hit_rate_crit = 0.05;
  /// Instantaneous service-queue depth (sim.queue_depth gauge).
  double queue_depth_warn = 8.0;
  double queue_depth_crit = 32.0;
};

struct SloReport;  // obs/slo.hpp

/// Evaluates the rule set against `registry`. Stateless beyond config.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {}) : config_(config) {}

  HealthReport evaluate(const Registry& registry) const;

  /// Same built-in rules, plus one slo_<objective>_burn check per SLO
  /// objective folded in from the rolling SLO engine's report (defined
  /// in slo.cpp; see obs/slo.hpp for the burn-rate math).
  HealthReport evaluate(const Registry& registry, const SloReport& slo) const;

  const HealthConfig& config() const { return config_; }

 private:
  HealthConfig config_;
};

/// Writes a report as "STATUS check=value reason" lines, worst first.
void write_health_report(std::ostream& os, const HealthReport& report);

}  // namespace parm::obs
