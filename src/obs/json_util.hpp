// Shared JSON string escaping for every obs exporter (metrics JSON,
// Chrome traces, event JSONL). One definition so the escaping rules —
// and therefore what a downstream parser must accept — cannot drift
// between sinks.
#pragma once

#include <ostream>
#include <string_view>

namespace parm::obs {

/// Writes `s` with JSON string escaping (quotes, backslashes, control
/// characters as \uXXXX) but no surrounding quotes.
inline void json_escape(std::ostream& os, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u00" << kHex[(static_cast<unsigned char>(ch) >> 4) & 0xf]
             << kHex[static_cast<unsigned char>(ch) & 0xf];
        } else {
          os << ch;
        }
    }
  }
}

/// Writes `s` as a complete JSON string literal (quoted and escaped).
inline void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  json_escape(os, s);
  os << '"';
}

}  // namespace parm::obs
