#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/check.hpp"
#include "obs/json_util.hpp"

namespace parm::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  PARM_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  PARM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly ascending");
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  PARM_CHECK(start > 0.0 && factor > 1.0 && count > 0,
             "invalid exponential bucket spec");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  std::lock_guard<std::mutex> lk(mu_);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double in_bucket = static_cast<double>(counts_[i]);
    if (static_cast<double>(cum) + in_bucket < target) {
      cum += counts_[i];
      continue;
    }
    // Clamp the bucket edges to the observed range so a histogram whose
    // observations sit strictly inside a bucket still reports exact
    // extremes (the overflow bucket has no upper bound at all).
    double lo = i == 0 ? min_ : bounds_[i - 1];
    double hi = i == bounds_.size() ? max_ : bounds_[i];
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (hi < lo) hi = lo;
    const double frac =
        std::clamp((target - static_cast<double>(cum)) / in_bucket, 0.0, 1.0);
    return lo + frac * (hi - lo);
  }
  return max_;  // p == 100 with rounding dust
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void Histogram::merge_from(const Histogram& other) {
  PARM_CHECK(bounds_ == other.bounds_,
             "cannot merge histograms with different bucket bounds");
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) {
      upper_bounds = Histogram::exponential_bounds(1.0, 2.0, 26);
    }
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double Registry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::write_text(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " = " << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge   " << name << " = " << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "hist    " << name << "  count=" << h->count();
    if (h->count() > 0) {
      os << " mean=" << h->mean() << " min=" << h->min()
         << " p50=" << h->percentile(50.0) << " p90=" << h->percentile(90.0)
         << " p99=" << h->percentile(99.0) << " max=" << h->max();
    }
    os << '\n';
  }
}

namespace {

/// JSON has no Infinity/NaN literals; metrics never legitimately produce
/// them, but a defensive 0 keeps the export parseable either way.
double json_num(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto old_precision = os.precision(15);
  const auto key = [&](std::string_view name) {
    os << '"';
    json_escape(os, name);
    os << "\":";
  };
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    key(name);
    os << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    key(name);
    os << json_num(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    key(name);
    os << "{\"count\":" << h->count() << ",\"sum\":" << json_num(h->sum())
       << ",\"min\":" << json_num(h->min())
       << ",\"max\":" << json_num(h->max())
       << ",\"mean\":" << json_num(h->mean())
       << ",\"p50\":" << json_num(h->percentile(50.0))
       << ",\"p90\":" << json_num(h->percentile(90.0))
       << ",\"p99\":" << json_num(h->percentile(99.0)) << '}';
  }
  os << "}}";
  os.precision(old_precision);
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::merge_from(const Registry& other) {
  PARM_CHECK(this != &other, "cannot merge a registry into itself");
  // `other` is quiescent by contract, so reading it unlocked is safe and
  // avoids lock-order concerns; only this registry's table is mutated.
  for (const auto& [name, c] : other.counters_) {
    counter(name).inc(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).add(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h->upper_bounds()).merge_from(*h);
  }
}

}  // namespace parm::obs
