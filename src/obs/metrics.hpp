// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with percentile summaries.
//
// Registries are *instance-scoped*: every `Registry` is an independently
// constructible name → metric table, and each `sim::SystemSimulator` owns
// one, so two simulators in one process (e.g. the chips of a
// `fleet::FleetSimulator`) never interleave metrics. Components that emit
// metrics (pdn, noc, mapping, core) accept an `obs::Registry*` at
// construction and resolve their metric handles once into members; per-
// epoch consumers (sim::TelemetryRecorder) read plain instance-local
// counter values instead of watermark deltas against a shared singleton.
//
// `Registry::instance()` remains as the *process-default* registry: the
// back-compat sink for standalone examples, benches, and tests that
// exercise a component directly without wiring a registry (passing
// `nullptr` to any component selects it). It is not used by the simulator
// engine itself.
//
// Designed to be cheap enough to leave on in production runs: a metric is
// a slot owned by the registry; call sites resolve the name once at
// construction and afterwards pay only an increment or a bucket walk.
// Registration is mutex-protected. Metric *mutation* is thread-safe —
// counters and gauges are relaxed atomics and histogram observation takes
// a per-histogram lock — because the PDN hot path (parallel per-domain
// PSN estimates, speculative admission candidates) increments counters
// from ThreadPool workers. Histogram read accessors are unsynchronized
// snapshots: exact once mutation has quiesced (end-of-run exports),
// approximate if read mid-flight.
//
// Exports: a human-readable text report (parm_runner's end-of-run summary)
// and a machine-readable JSON document (--metrics file). `merge_from`
// folds one registry into another (fleet reports summing per-chip
// registries).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parm::obs {

/// Monotonically increasing event count. Increments are relaxed atomics:
/// safe from any thread, with no ordering implied between metrics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Thread-safe; add() is a CAS loop
/// so concurrent adds never lose updates.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if `v` exceeds the current value (CAS loop).
  /// For high-water marks maintained from concurrent writers.
  void max_of(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with interpolated percentiles.
///
/// Buckets are defined by ascending upper bounds; an implicit overflow
/// bucket catches everything above the last bound. Alongside the bucket
/// counts the histogram tracks count/sum/min/max, so percentile edges can
/// be clamped to the observed range.
///
/// percentile(p) is defined as: find the bucket containing the
/// p/100·count-th observation (1-based cumulative rank), then linearly
/// interpolate within that bucket between its clamped edges
/// [max(lower_bound, min_observed), min(upper_bound, max_observed)]
/// assuming uniform spread. The result is exact whenever observations are
/// uniform within each bucket (see tests/obs_test.cpp).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  /// `count` bounds at start, start·factor, start·factor², …
  /// The default registry histogram uses exponential_bounds(1, 2, 26):
  /// 1 µs … ~33.5 s when fed microsecond timings.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

  /// Thread-safe (per-histogram lock).
  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// p in [0, 100]. Returns 0 for an empty histogram.
  double percentile(double p) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// bucket_counts().size() == upper_bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  void reset();

  /// Folds `other`'s observations into this histogram. Requires identical
  /// bucket bounds (checked). Count/sum/min/max merge exactly; percentiles
  /// of the merge are as accurate as the shared buckets allow.
  void merge_from(const Histogram& other);

 private:
  mutable std::mutex mu_;  ///< guards mutation (observe/reset)
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name → metric table. Returned references stay valid (and keep their
/// identity) for the life of the registry; reset_values() zeroes every
/// slot but never invalidates them. Independently constructible so each
/// simulator instance can own its own; `instance()` is the process-default
/// registry for standalone component use (see header block).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-default registry (back-compat sink for examples/benches and
  /// components constructed with a null registry pointer).
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registers (or returns) a histogram. `upper_bounds` is only consulted
  /// on first registration; empty means the default exponential µs-scale
  /// buckets.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = {});

  /// Value of a counter if registered, 0 otherwise (never registers).
  std::uint64_t counter_value(std::string_view name) const;
  /// Value of a gauge if registered, 0 otherwise (never registers).
  double gauge_value(std::string_view name) const;
  /// The histogram if registered, null otherwise (never registers).
  /// Like every histogram read accessor the result is an unsynchronized
  /// snapshot — exact once mutation has quiesced.
  const Histogram* find_histogram(std::string_view name) const;

  /// Human-readable report, one metric per line, sorted by name.
  void write_text(std::ostream& os) const;
  /// Machine-readable export:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  ///  max,mean,p50,p90,p99}}}
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition format v0.0.4 (defined in prometheus.cpp;
  /// `prometheus_text` in obs/prometheus.hpp is the free-function face).
  void write_prometheus(std::ostream& os) const;

  /// Zeroes every registered metric (test isolation, per-run baselines).
  void reset_values();

  /// Folds `other` into this registry: counters and gauges add, histograms
  /// merge bucket-wise (registering missing metrics on first sight). Used
  /// by the fleet driver to aggregate per-chip registries into one report.
  /// `other` must not be mutated concurrently.
  void merge_from(const Registry& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Injection helper: components take `obs::Registry* registry = nullptr`
/// and resolve it through here — null selects the process-default.
inline Registry& resolve(Registry* registry) {
  return registry != nullptr ? *registry : Registry::instance();
}

}  // namespace parm::obs
