#include "obs/phase_profiler.hpp"

#include <ostream>
#include <string>

namespace parm::obs {

const char* PhaseProfiler::phase_name(int phase) {
  switch (phase) {
    case kAdmission:
      return "admission";
    case kNoc:
      return "noc";
    case kPsn:
      return "psn";
    case kEmergency:
      return "emergency";
    case kMigration:
      return "migration";
    case kTelemetry:
      return "telemetry";
    default:
      return "unknown";
  }
}

PhaseProfiler::PhaseProfiler(bool enabled, Registry* registry)
    : enabled_(enabled) {
  if (!enabled_) return;
  Registry& reg = resolve(registry);
  for (int p = 0; p < kPhaseCount; ++p) {
    phase_us_[p] = &reg.histogram(std::string("profile.phase.") +
                                  phase_name(p) + "_us");
  }
  epochs_ = &reg.counter("profile.epochs");
}

void write_profile_json(std::ostream& os, const Registry& registry,
                        const ThreadPool::Stats& pool) {
  const auto old_precision = os.precision(15);
  os << "{\"epochs\":" << registry.counter_value("profile.epochs")
     << ",\"phases\":[";
  for (int p = 0; p < PhaseProfiler::kPhaseCount; ++p) {
    if (p != 0) os << ',';
    os << "{\"phase\":\"" << PhaseProfiler::phase_name(p) << "\"";
    const Histogram* h = registry.find_histogram(
        std::string("profile.phase.") + PhaseProfiler::phase_name(p) +
        "_us");
    if (h == nullptr || h->count() == 0) {
      os << ",\"count\":0}";
      continue;
    }
    os << ",\"count\":" << h->count() << ",\"total_us\":" << h->sum()
       << ",\"mean_us\":" << h->mean() << ",\"p50_us\":" << h->percentile(50)
       << ",\"p99_us\":" << h->percentile(99) << ",\"min_us\":" << h->min()
       << ",\"max_us\":" << h->max() << '}';
  }
  os << "],\"thread_pool\":{\"threads\":" << pool.threads
     << ",\"parallel_fors\":" << pool.parallel_fors
     << ",\"items\":" << pool.items
     << ",\"pooled_batches\":" << pool.pooled_batches
     << ",\"queue_wait_us_total\":"
     << static_cast<double>(pool.queue_wait_ns) / 1e3
     << ",\"batch_us_total\":" << static_cast<double>(pool.batch_ns) / 1e3;
  if (pool.pooled_batches > 0) {
    os << ",\"mean_queue_wait_us\":"
       << static_cast<double>(pool.queue_wait_ns) / 1e3 /
              static_cast<double>(pool.pooled_batches)
       << ",\"mean_batch_us\":"
       << static_cast<double>(pool.batch_ns) / 1e3 /
              static_cast<double>(pool.pooled_batches);
  }
  os << "}}";
  os.precision(old_precision);
}

}  // namespace parm::obs
