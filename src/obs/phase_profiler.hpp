// Per-epoch-phase wall-clock self-profiler for the six-phase engine.
//
// The engine's epoch loop is the hot path every ROADMAP item ultimately
// pays for, but until now the only way to see where an epoch's wall
// clock went was an external profiler. The PhaseProfiler gives the
// engine a built-in answer cheap enough to leave on under a live
// workload: one steady_clock read on phase entry, one on exit, and an
// observe() into a registry histogram — ~100 ns per phase against epochs
// costing hundreds of microseconds (bench/micro_phase_profiler pins the
// ratio at ≤ 2 %).
//
// The histograms live in the owning simulator's instance registry under
// "profile.phase.<name>_us" (plus a "profile.epochs" counter), so they
// ride the existing machinery for free: Prometheus exposition, JSON
// export, and the fleet driver's registry merge. /profilez renders them
// (write_profile_json) together with the shared ThreadPool's
// utilization/queue-wait counters.
//
// Observe-only contract: a Scope on a disabled profiler takes no clock
// reads and touches nothing (a branch on a bool), and even when enabled
// the profiler mutates only registry histograms — never simulation
// state, the RNG, or anything snapshotted. Enabling it is bit-identity
// safe (pinned by tests/obs_server_test.cpp) and the flag is excluded
// from the snapshot fingerprint like record_events.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace parm::obs {

class PhaseProfiler {
 public:
  /// The six engine phases, in pipeline order. kPhaseCount indexes the
  /// slot arrays; phase_name() gives the registry/JSON spelling.
  enum Phase {
    kAdmission = 0,
    kNoc,
    kPsn,
    kEmergency,
    kMigration,
    kTelemetry,
    kPhaseCount
  };

  static const char* phase_name(int phase);

  /// A disabled profiler registers nothing and its scopes are inert.
  /// `registry` receives the histograms (null selects the
  /// process-default registry, as everywhere in obs).
  explicit PhaseProfiler(bool enabled = false, Registry* registry = nullptr);

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  bool enabled() const { return enabled_; }

  /// RAII timing scope: construction stamps the clock, destruction
  /// observes the elapsed wall time (µs) into the phase's histogram.
  /// Inert (no clock reads) when the profiler is disabled.
  class Scope {
   public:
    Scope(PhaseProfiler& profiler, Phase phase)
        : hist_(profiler.enabled_ ? profiler.phase_us_[phase] : nullptr) {
      if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (hist_ == nullptr) return;
      const auto end = std::chrono::steady_clock::now();
      hist_->observe(
          std::chrono::duration<double, std::micro>(end - start_).count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Histogram* hist_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Counts one completed epoch (profile.epochs). No-op when disabled.
  void note_epoch() {
    if (epochs_ != nullptr) epochs_->inc();
  }

 private:
  bool enabled_;
  Histogram* phase_us_[kPhaseCount] = {};
  Counter* epochs_ = nullptr;
};

/// Renders the /profilez document from any registry holding
/// profile.phase.* histograms (a live simulator's or the fleet's merged
/// one) plus a thread-pool stats snapshot:
/// {"epochs":N,"phases":[{"phase":"admission","count":...,"total_us":...,
///  "mean_us":...,"p50_us":...,"p99_us":...,"max_us":...},...],
///  "thread_pool":{...}}
/// Phases the registry has never seen report count 0.
void write_profile_json(std::ostream& os, const Registry& registry,
                        const ThreadPool::Stats& pool);

}  // namespace parm::obs
