// Registry::write_prometheus lives here (not metrics.cpp) so the
// exposition-format rules stay in one translation unit with their
// helpers; metrics.hpp declares the member.
#include <cctype>
#include <cmath>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace parm::obs {

namespace {

/// "pdn.psn_cache_hits" → "parm_pdn_psn_cache_hits". Anything outside
/// the Prometheus name alphabet [a-zA-Z0-9_:] becomes '_'.
std::string prom_name(std::string_view name) {
  std::string out = "parm_";
  out.reserve(out.size() + name.size());
  for (const char ch : name) {
    const auto uch = static_cast<unsigned char>(ch);
    out.push_back(std::isalnum(uch) || ch == ':' ? ch : '_');
  }
  return out;
}

/// Prometheus floats: plain decimal, with +Inf/-Inf/NaN spelled out.
void prom_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    os << v;
  }
}

}  // namespace

void Registry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto old_precision = os.precision(15);
  // Identity gauge, the Prometheus convention for exposing build
  // metadata: constant value 1, the facts ride in the labels.
  {
    const BuildInfo& bi = build_info();
    os << "# TYPE parm_build_info gauge\n"
       << "parm_build_info{version=\"" << bi.version << "\",compiler=\""
       << bi.compiler << "\",build_type=\"" << bi.build_type << "\"} 1\n";
  }
  for (const auto& [name, c] : counters_) {
    const std::string pn = prom_name(name) + "_total";
    os << "# TYPE " << pn << " counter\n"
       << pn << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << ' ';
    prom_value(os, g->value());
    os << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " histogram\n";
    // Prometheus buckets are cumulative; ours are per-bucket tallies.
    const auto& bounds = h->upper_bounds();
    const auto& counts = h->bucket_counts();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      os << pn << "_bucket{le=\"";
      prom_value(os, bounds[i]);
      os << "\"} " << cum << '\n';
    }
    os << pn << "_bucket{le=\"+Inf\"} " << h->count() << '\n'
       << pn << "_sum ";
    prom_value(os, h->sum());
    os << '\n' << pn << "_count " << h->count() << '\n';
  }
  os.precision(old_precision);
}

}  // namespace parm::obs
