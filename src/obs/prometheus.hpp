// Prometheus text exposition (format v0.0.4) for a metrics registry.
//
// Naming: internal dotted metric names ("pdn.psn_cache_hits") are
// sanitized into the Prometheus alphabet [a-zA-Z0-9_:] and prefixed
// with "parm_"; counters additionally get the conventional "_total"
// suffix ("parm_pdn_psn_cache_hits_total"). Histograms export the full
// cumulative-bucket family: parm_<name>_bucket{le="..."} rows ending in
// le="+Inf", plus _sum and _count.
//
// This is pull-model plumbing for whatever serves the bytes: the fleet
// runner writes the exposition to a file (--prom) from which a node
// exporter textfile collector or CI check can pick it up.
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"

namespace parm::obs {

/// Writes `registry` in Prometheus text exposition format. Free-function
/// face of Registry::write_prometheus.
inline void prometheus_text(const Registry& registry, std::ostream& os) {
  registry.write_prometheus(os);
}

}  // namespace parm::obs
