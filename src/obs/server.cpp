#include "obs/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "obs/health.hpp"
#include "obs/json_util.hpp"
#include "obs/slo.hpp"

namespace parm::obs {

namespace {

/// Hard bound on the request head we are willing to buffer. Scrape
/// requests are one line plus a few headers; anything bigger is hostile
/// or confused.
constexpr std::size_t kMaxRequestBytes = 8192;

/// Per-socket I/O timeout: bounds the work a stalled client can pin the
/// (single) server thread with.
constexpr int kIoTimeoutSec = 5;

int from_hex(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = from_hex(s[i + 1]);
      const int lo = from_hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

HttpRequest parse_request_line(std::string_view line) {
  HttpRequest req;
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return req;  // empty method signals a malformed request
  }
  req.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  req.path = url_decode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (!pair.empty()) {
        req.query[url_decode(pair.substr(0, eq))] =
            eq == std::string_view::npos ? std::string()
                                         : url_decode(pair.substr(eq + 1));
      }
      if (amp == std::string_view::npos) break;
      qs.remove_prefix(amp + 1);
    }
  }
  return req;
}

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // client gone or timeout; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  PARM_CHECK(!running(), "HttpServer: handlers must be registered before start()");
  handlers_[std::move(path)] = std::move(handler);
}

std::uint16_t HttpServer::start(std::uint16_t port) {
  PARM_CHECK(!running(), "HttpServer: already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PARM_CHECK(fd >= 0, "HttpServer: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    PARM_CHECK(false, std::string("HttpServer: cannot bind 127.0.0.1:") +
                          std::to_string(port) + ": " + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve_loop(); });
  return port_;
}

void HttpServer::stop() {
  if (!running()) return;
  // shutdown() unblocks the accept() in the server thread with an error;
  // the loop then observes the failure and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::serve_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down (stop()) or unrecoverable
    }
    timeval tv{};
    tv.tv_sec = kIoTimeoutSec;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    serve_connection(conn);
    ::close(conn);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read until the end of the request head (we never accept bodies).
  std::string head;
  char buf[1024];
  while (head.size() < kMaxRequestBytes &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return;  // malformed or client gone

  const HttpRequest req = parse_request_line(head.substr(0, line_end));
  HttpResponse res;
  if (req.method.empty()) {
    res.status = 400;
    res.body = "malformed request\n";
  } else if (req.method != "GET" && req.method != "HEAD") {
    res.status = 405;
    res.body = "only GET is supported\n";
  } else {
    const auto it = handlers_.find(req.path);
    if (it == handlers_.end()) {
      res.status = 404;
      res.body = "no such endpoint: " + req.path + "\n";
    } else {
      try {
        res = it->second(req);
      } catch (const std::exception& e) {
        res = HttpResponse{};
        res.status = 500;
        res.body = std::string("handler error: ") + e.what() + "\n";
      } catch (...) {
        res = HttpResponse{};
        res.status = 500;
        res.body = "handler error\n";
      }
    }
  }

  std::ostringstream out;
  out << "HTTP/1.1 " << res.status << ' ' << status_text(res.status)
      << "\r\nContent-Type: " << res.content_type
      << "\r\nContent-Length: " << res.body.size()
      << "\r\nConnection: close\r\n\r\n";
  if (req.method != "HEAD") out << res.body;
  send_all(fd, out.str());
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

void register_endpoints(HttpServer& server, EndpointHooks hooks) {
  const auto text = [](std::string body) {
    HttpResponse res;
    res.body = std::move(body);
    return res;
  };

  std::string index = "parm observability endpoints:\n";
  const auto add = [&](const char* path, const char* desc) {
    index += std::string("  ") + path + "  " + desc + "\n";
  };

  if (hooks.metrics) {
    add("/metrics", "Prometheus text exposition");
    server.handle("/metrics", [fn = hooks.metrics](const HttpRequest&) {
      std::ostringstream os;
      fn(os);
      HttpResponse res;
      res.content_type = "text/plain; version=0.0.4; charset=utf-8";
      res.body = os.str();
      return res;
    });
  }
  if (hooks.health) {
    add("/healthz", "health verdict (503 when CRIT)");
    server.handle("/healthz", [fn = hooks.health](const HttpRequest&) {
      const HealthReport report = fn();
      std::ostringstream os;
      write_health_report(os, report);
      HttpResponse res;
      res.status = report.critical() ? 503 : 200;
      res.body = os.str();
      return res;
    });
  }
  if (hooks.slo) {
    add("/slo", "rolling SLO burn-rate report (JSON)");
    server.handle("/slo", [fn = hooks.slo](const HttpRequest&) {
      std::ostringstream os;
      write_slo_json(os, fn());
      HttpResponse res;
      res.content_type = "application/json";
      res.body = os.str();
      return res;
    });
  }
  if (hooks.events) {
    add("/eventz", "flight-recorder tail (JSONL, ?limit=N)");
    server.handle("/eventz", [fn = hooks.events](const HttpRequest& req) {
      std::size_t limit = 0;
      const std::string raw = req.param("limit", "0");
      try {
        limit = static_cast<std::size_t>(std::stoull(raw));
      } catch (...) {
        return HttpResponse{400, "text/plain; charset=utf-8",
                            "bad limit: " + raw + "\n"};
      }
      std::ostringstream os;
      fn(os, limit);
      HttpResponse res;
      res.content_type = "application/x-ndjson";
      res.body = os.str();
      return res;
    });
  }
  if (hooks.series) {
    add("/seriesz", "time-series export (?name=S&level=L; no name lists)");
    server.handle("/seriesz", [fn = hooks.series](const HttpRequest& req) {
      int level = -1;
      const std::string raw = req.param("level", "-1");
      try {
        level = std::stoi(raw);
      } catch (...) {
        return HttpResponse{400, "text/plain; charset=utf-8",
                            "bad level: " + raw + "\n"};
      }
      std::ostringstream os;
      fn(os, req.param("name"), level);
      HttpResponse res;
      res.content_type = "application/json";
      res.body = os.str();
      return res;
    });
  }
  if (hooks.varz) {
    add("/varz", "resolved config + build info (JSON)");
    server.handle("/varz", [fn = hooks.varz](const HttpRequest&) {
      std::ostringstream os;
      fn(os);
      HttpResponse res;
      res.content_type = "application/json";
      res.body = os.str();
      return res;
    });
  }
  if (hooks.profile) {
    add("/profilez", "per-phase wall-clock profile + pool stats (JSON)");
    server.handle("/profilez", [fn = hooks.profile](const HttpRequest&) {
      std::ostringstream os;
      fn(os);
      HttpResponse res;
      res.content_type = "application/json";
      res.body = os.str();
      return res;
    });
  }
  server.handle("/", [text, index](const HttpRequest&) { return text(index); });
  server.handle("/index", [text, index](const HttpRequest&) { return text(index); });
}

}  // namespace parm::obs
