// Embedded HTTP/1.1 observability server: the live scrape surface of the
// obs stack.
//
// Everything else in src/obs exports on demand to an ostream; this
// server is the transport that lets an operator (or CI, or Prometheus)
// pull those exports from a *running* simulation. It is deliberately
// minimal and dependency-free: one dedicated thread runs a blocking
// accept loop on a loopback-only listening socket; each connection is
// served to completion before the next is accepted (scrapes are
// millisecond-scale, and a single-tenant telemetry port has no reason to
// multiplex); per-request work is bounded by socket send/receive
// timeouts, a request-size cap, and Connection: close semantics.
// stop() shuts the listening socket down, which unblocks accept() and
// joins the thread — no polling, no self-pipe.
//
// Thread-safety contract with the engine: handlers run on the server
// thread while the simulation runs on the caller's thread. Handlers that
// touch non-thread-safe engine state (TimeSeriesStore, SloEngine,
// SimConfig) must synchronize externally — the runners do this by
// locking SystemSimulator::obs_mutex(), which the epoch loop holds for
// the duration of each epoch, so scrapes land on epoch boundaries.
// Handlers that only touch thread-safe obs structures (Registry,
// FlightRecorder, ThreadPool::stats) need nothing extra.
//
// Observe-only contract: the server reads engine state and writes
// sockets; it never mutates simulation state, so serving under active
// scraping is bit-identity safe (pinned by tests/obs_server_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace parm::obs {

struct HealthReport;
struct SloReport;

/// Parsed request: method, decoded path, decoded query parameters.
struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> query;

  /// The query parameter if present, `fallback` otherwise.
  std::string param(const std::string& key, const std::string& fallback = "") const {
    const auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Loopback-only HTTP/1.1 server with a fixed handler table.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path. Must be called before
  /// start(); the table is immutable while the server runs (which is
  /// what lets the accept thread read it without a lock).
  void handle(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts the
  /// accept thread, and returns the bound port. Throws CheckError when
  /// the socket cannot be created or bound, or if already running.
  std::uint16_t start(std::uint16_t port);

  /// Graceful shutdown: unblocks the accept loop and joins the thread.
  /// Idempotent; called by the destructor.
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  /// Requests served to completion so far (relaxed; tests poll this).
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void serve_connection(int fd);

  std::map<std::string, Handler> handlers_;
  std::thread thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> requests_served_{0};
};

/// The standard observability endpoints, as closures so every runner
/// (single chip, fleet rollup, oversubscribed demo) can bind the same
/// URL surface to its own data sources. Null hooks leave their endpoint
/// unregistered (404). Each hook is responsible for its own locking —
/// see the threading note in the header block.
struct EndpointHooks {
  /// GET /metrics — Prometheus text exposition (text/plain; version=0.0.4).
  std::function<void(std::ostream&)> metrics;
  /// GET /healthz — full report; HTTP 200 when OK/WARN, 503 when CRIT.
  std::function<HealthReport()> health;
  /// GET /slo — rolling SLO report as JSON.
  std::function<SloReport()> slo;
  /// GET /eventz?limit=N — flight-recorder tail, newest-`limit` events
  /// as JSONL (limit 0 = everything retained).
  std::function<void(std::ostream&, std::size_t limit)> events;
  /// GET /seriesz?name=S&level=L — time-series export. Empty `name`
  /// lists series names as JSON; `level` < 0 means all levels (JSONL).
  std::function<void(std::ostream&, const std::string& name, int level)>
      series;
  /// GET /varz — resolved SimConfig + build info, JSON.
  std::function<void(std::ostream&)> varz;
  /// GET /profilez — per-phase wall-clock histograms + thread-pool
  /// utilization, JSON.
  std::function<void(std::ostream&)> profile;
};

/// Registers every non-null hook plus an index page at "/".
void register_endpoints(HttpServer& server, EndpointHooks hooks);

}  // namespace parm::obs
