#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace parm::obs {

void SloConfig::validate() const {
  PARM_CHECK(short_window_epochs >= 1,
             "SloConfig: short_window_epochs must be at least 1");
  PARM_CHECK(long_window_epochs > short_window_epochs,
             "SloConfig: long_window_epochs must exceed short_window_epochs");
  PARM_CHECK(ve_rate_slo > 0.0, "SloConfig: ve_rate_slo must be positive");
  PARM_CHECK(deadline_miss_rate_slo > 0.0,
             "SloConfig: deadline_miss_rate_slo must be positive");
  PARM_CHECK(delivery_ratio_slo > 0.0 && delivery_ratio_slo < 1.0,
             "SloConfig: delivery_ratio_slo must be in (0, 1)");
  PARM_CHECK(admit_p99_slo_s > 0.0,
             "SloConfig: admit_p99_slo_s must be positive");
  PARM_CHECK(burn_warn > 0.0, "SloConfig: burn_warn must be positive");
  PARM_CHECK(burn_crit >= burn_warn,
             "SloConfig: burn_crit must be at least burn_warn");
}

SloEngine::SloEngine(bool enabled, SloConfig config)
    : enabled_(enabled), config_(config) {
  if (enabled_) config_.validate();
}

void SloEngine::observe_admit(double wait_s) {
  if (!enabled_) return;
  ++admits_this_epoch_;
  admit_waits_.emplace_back(epochs_seen_, wait_s);
}

void SloEngine::observe_epoch(const Registry& registry) {
  if (!enabled_) return;
  const auto delta = [](std::uint64_t now, std::uint64_t& prev) {
    const std::uint64_t d = now - prev;
    prev = now;
    return d;
  };
  EpochDelta d;
  d.ves = static_cast<std::uint32_t>(
      delta(registry.counter_value("sim.ves"), prev_ves_));
  d.deadline_misses = static_cast<std::uint32_t>(
      delta(registry.counter_value("sim.deadline_misses"), prev_misses_));
  d.apps_completed = static_cast<std::uint32_t>(
      delta(registry.counter_value("sim.apps_completed"), prev_completed_));
  d.flits_injected =
      delta(registry.counter_value("noc.flits_injected"), prev_injected_);
  d.flits_delivered =
      delta(registry.counter_value("noc.flits_delivered"), prev_delivered_);
  d.admits = admits_this_epoch_;
  admits_this_epoch_ = 0;

  deltas_.push_back(d);
  if (deltas_.size() > config_.long_window_epochs) deltas_.pop_front();
  ++epochs_seen_;
  // Retire admission waits that left the long window.
  while (!admit_waits_.empty() &&
         admit_waits_.front().first + config_.long_window_epochs <
             epochs_seen_) {
    admit_waits_.pop_front();
  }
}

SloWindow SloEngine::window(std::size_t epochs) const {
  SloWindow w;
  const std::size_t n = std::min(epochs, deltas_.size());
  for (std::size_t i = deltas_.size() - n; i < deltas_.size(); ++i) {
    const EpochDelta& d = deltas_[i];
    w.epochs += 1;
    w.ves += d.ves;
    w.deadline_misses += d.deadline_misses;
    w.apps_completed += d.apps_completed;
    w.flits_injected += d.flits_injected;
    w.flits_delivered += d.flits_delivered;
    w.admits += d.admits;
  }
  if (w.admits > 0 && epochs_seen_ > 0) {
    // Waits observed during the window's epochs (stamps are the epoch
    // ordinal at observation, so the newest n epochs are [seen - n, seen)
    // — plus any wait of the epoch currently in flight).
    const std::uint64_t from = epochs_seen_ - n;
    std::vector<double> waits;
    for (const auto& [epoch, wait_s] : admit_waits_) {
      if (epoch >= from) waits.push_back(wait_s);
    }
    if (!waits.empty()) {
      std::sort(waits.begin(), waits.end());
      const std::size_t rank = static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(waits.size())));
      w.admit_p99_s = waits[rank == 0 ? 0 : rank - 1];
    }
  }
  return w;
}

namespace {

struct Burn {
  double value = 0.0;
  bool has_data = false;
};

SloObjective make_objective(const std::string& name, const Burn& short_b,
                            const Burn& long_b, const SloConfig& cfg) {
  SloObjective obj;
  obj.name = name;
  obj.short_burn = short_b.value;
  obj.long_burn = long_b.value;
  std::ostringstream reason;
  reason.precision(4);
  if (!short_b.has_data && !long_b.has_data) {
    obj.reason = "no data";
    return obj;
  }
  // Multi-window rule: both windows must burn at or above the threshold
  // for the alert to fire — a short spike or a long-faded incident stays
  // quiet.
  const double both = std::min(obj.short_burn, obj.long_burn);
  if (both >= cfg.burn_crit) {
    obj.status = HealthStatus::kCrit;
    reason << "burn " << obj.short_burn << " (short) / " << obj.long_burn
           << " (long) >= crit threshold " << cfg.burn_crit;
  } else if (both >= cfg.burn_warn) {
    obj.status = HealthStatus::kWarn;
    reason << "burn " << obj.short_burn << " (short) / " << obj.long_burn
           << " (long) >= warn threshold " << cfg.burn_warn;
  } else {
    reason << "burn " << obj.short_burn << " (short) / " << obj.long_burn
           << " (long) under warn threshold " << cfg.burn_warn;
  }
  obj.reason = reason.str();
  return obj;
}

Burn ve_burn(const SloWindow& w, const SloConfig& cfg) {
  if (w.epochs == 0) return {};
  return {w.ve_rate() / cfg.ve_rate_slo, true};
}

Burn miss_burn(const SloWindow& w, const SloConfig& cfg) {
  if (w.apps_completed == 0) return {};
  return {w.deadline_miss_rate() / cfg.deadline_miss_rate_slo, true};
}

Burn delivery_burn(const SloWindow& w, const SloConfig& cfg) {
  if (w.flits_injected == 0) return {};
  // Burn = loss rate over loss budget.
  return {(1.0 - w.delivery_ratio()) / (1.0 - cfg.delivery_ratio_slo), true};
}

Burn admit_burn(const SloWindow& w, const SloConfig& cfg) {
  if (w.admits == 0) return {};
  return {w.admit_p99_s / cfg.admit_p99_slo_s, true};
}

void window_json(std::ostream& os, const SloWindow& w) {
  os << "{\"epochs\":" << w.epochs << ",\"ves\":" << w.ves
     << ",\"deadline_misses\":" << w.deadline_misses
     << ",\"apps_completed\":" << w.apps_completed
     << ",\"flits_injected\":" << w.flits_injected
     << ",\"flits_delivered\":" << w.flits_delivered
     << ",\"admits\":" << w.admits << ",\"ve_rate\":" << w.ve_rate()
     << ",\"deadline_miss_rate\":" << w.deadline_miss_rate()
     << ",\"delivery_ratio\":" << w.delivery_ratio()
     << ",\"admit_p99_s\":" << w.admit_p99_s << '}';
}

}  // namespace

void evaluate_slo_objectives(SloReport& report) {
  const SloConfig& cfg = report.config;
  const SloWindow& s = report.short_window;
  const SloWindow& l = report.long_window;
  report.objectives.clear();
  report.objectives.push_back(
      make_objective("ve_rate", ve_burn(s, cfg), ve_burn(l, cfg), cfg));
  report.objectives.push_back(make_objective(
      "deadline_miss_rate", miss_burn(s, cfg), miss_burn(l, cfg), cfg));
  report.objectives.push_back(make_objective(
      "delivery_ratio", delivery_burn(s, cfg), delivery_burn(l, cfg), cfg));
  report.objectives.push_back(make_objective(
      "time_to_admit_p99", admit_burn(s, cfg), admit_burn(l, cfg), cfg));
  report.status = HealthStatus::kOk;
  for (const SloObjective& obj : report.objectives) {
    report.status = std::max(report.status, obj.status);
  }
}

SloReport SloEngine::report() const {
  SloReport r;
  r.config = config_;
  r.short_window = window(config_.short_window_epochs);
  r.long_window = window(config_.long_window_epochs);
  evaluate_slo_objectives(r);
  return r;
}

SloReport merge_slo_reports(const std::vector<SloReport>& reports) {
  SloReport merged;
  if (reports.empty()) {
    evaluate_slo_objectives(merged);
    return merged;
  }
  merged.config = reports.front().config;
  const auto fold = [](SloWindow& into, const SloWindow& from) {
    into.epochs += from.epochs;
    into.ves += from.ves;
    into.deadline_misses += from.deadline_misses;
    into.apps_completed += from.apps_completed;
    into.flits_injected += from.flits_injected;
    into.flits_delivered += from.flits_delivered;
    into.admits += from.admits;
    into.admit_p99_s = std::max(into.admit_p99_s, from.admit_p99_s);
  };
  for (const SloReport& r : reports) {
    fold(merged.short_window, r.short_window);
    fold(merged.long_window, r.long_window);
  }
  evaluate_slo_objectives(merged);
  return merged;
}

void write_slo_json(std::ostream& os, const SloReport& report) {
  const auto old_precision = os.precision(15);
  os << "{\"status\":\"" << health_status_name(report.status)
     << "\",\"config\":{\"short_window_epochs\":"
     << report.config.short_window_epochs
     << ",\"long_window_epochs\":" << report.config.long_window_epochs
     << ",\"ve_rate_slo\":" << report.config.ve_rate_slo
     << ",\"deadline_miss_rate_slo\":" << report.config.deadline_miss_rate_slo
     << ",\"delivery_ratio_slo\":" << report.config.delivery_ratio_slo
     << ",\"admit_p99_slo_s\":" << report.config.admit_p99_slo_s
     << ",\"burn_warn\":" << report.config.burn_warn
     << ",\"burn_crit\":" << report.config.burn_crit << "}"
     << ",\"short_window\":";
  window_json(os, report.short_window);
  os << ",\"long_window\":";
  window_json(os, report.long_window);
  os << ",\"objectives\":[";
  for (std::size_t i = 0; i < report.objectives.size(); ++i) {
    const SloObjective& obj = report.objectives[i];
    if (i != 0) os << ',';
    os << "{\"name\":\"" << obj.name << "\",\"status\":\""
       << health_status_name(obj.status)
       << "\",\"short_burn\":" << obj.short_burn
       << ",\"long_burn\":" << obj.long_burn << ",\"reason\":\"";
    // Reasons are plain ASCII sentences built above; still escape
    // defensively via the shared helper semantics (quotes/backslashes
    // never occur, so direct write is safe and keeps this file free of
    // extra includes).
    os << obj.reason << "\"}";
  }
  os << "]}";
  os.precision(old_precision);
}

HealthReport HealthMonitor::evaluate(const Registry& registry,
                                     const SloReport& slo) const {
  HealthReport report = evaluate(registry);
  // Fold the SLO engine's multi-window burn objectives in as additional
  // rules: each objective becomes a check named slo_<objective> whose
  // value is the worse-case (lower) of the two window burns — the one
  // the multi-window rule actually alerts on.
  for (const SloObjective& obj : slo.objectives) {
    HealthCheck check;
    check.name = "slo_" + obj.name + "_burn";
    check.status = obj.status;
    check.value = std::min(obj.short_burn, obj.long_burn);
    check.reason = obj.reason;
    report.checks.push_back(std::move(check));
    report.status = std::max(report.status, obj.status);
  }
  return report;
}

}  // namespace parm::obs
