// Rolling SLO engine: multi-window burn-rate tracking over the engine's
// per-epoch rates, the runtime counterpart to the offline statistical
// verdicts (campaign properties) the repo already computes.
//
// An SLO gives each objective an error budget; the *burn rate* is how
// fast a window of recent epochs is spending it (burn 1.0 = exactly on
// budget, 2.0 = spending twice as fast as allowed). Following the
// multi-window alerting recipe from SRE practice, every objective is
// evaluated over a short window (fast detection, noisy) AND a long
// window (slow, stable) and alerts only when BOTH burn above the
// threshold — a one-epoch spike inside an otherwise healthy hour stays
// quiet, while a sustained burn trips within `short_window` epochs.
//
// Objectives tracked:
//   ve_rate        — voltage emergencies per epoch vs. the allowed rate
//   deadline_miss  — deadline misses per completed app vs. the allowed
//                    rate (no data until the window completes an app)
//   delivery       — NoC flit loss (1 − delivered/injected) vs. the loss
//                    budget (1 − delivery_ratio_slo)
//   time_to_admit  — windowed p99 arrival→admit latency vs. the target
//
// The engine is fed from serial engine code only: observe_epoch() reads
// cumulative registry counters once per epoch and keeps per-epoch deltas
// in fixed rings (O(long_window) memory); observe_admit() records
// individual admission waits. Observe-only contract: the engine mutates
// nothing outside itself, so enabling it is bit-identity safe (pinned by
// tests/obs_server_test.cpp) and SimConfig::track_slo is excluded from
// the snapshot fingerprint. Like the flight recorder, SLO state is NOT
// snapshotted — a resumed run's windows refill within long_window
// epochs.
//
// Fleet rollup: SloReport carries the raw window sums (numerators and
// denominators), so merge_slo_reports() adds them across chips and
// recomputes rates/burns instead of averaging averages; the admit p99 is
// the max over chips (conservative).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace parm::obs {

/// Targets and window shape. Validated by SloConfig::validate() (called
/// from SimConfig::validate()).
struct SloConfig {
  std::size_t short_window_epochs = 5;
  std::size_t long_window_epochs = 50;
  /// Allowed voltage emergencies per epoch (the error budget rate).
  double ve_rate_slo = 0.5;
  /// Allowed deadline misses per completed app.
  double deadline_miss_rate_slo = 0.25;
  /// Minimum acceptable NoC delivery ratio; the loss budget is
  /// 1 − delivery_ratio_slo.
  double delivery_ratio_slo = 0.95;
  /// Target p99 arrival→admit latency (seconds).
  double admit_p99_slo_s = 0.5;
  /// Burn-rate alert thresholds (both windows must burn at or above).
  double burn_warn = 1.0;
  double burn_crit = 2.0;

  /// Throws CheckError when windows or targets are out of range.
  void validate() const;
};

/// Raw sums over one trailing window of epochs. Rates are derived, never
/// stored, so fleet merges can add windows from chips whose epochs are
/// not aligned.
struct SloWindow {
  std::uint64_t epochs = 0;
  std::uint64_t ves = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t apps_completed = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_delivered = 0;
  std::uint64_t admits = 0;
  double admit_p99_s = 0.0;  ///< windowed percentile (max on merge)

  double ve_rate() const {
    return epochs != 0 ? static_cast<double>(ves) / static_cast<double>(epochs)
                       : 0.0;
  }
  double deadline_miss_rate() const {
    return apps_completed != 0 ? static_cast<double>(deadline_misses) /
                                     static_cast<double>(apps_completed)
                               : 0.0;
  }
  double delivery_ratio() const {
    return flits_injected != 0 ? static_cast<double>(flits_delivered) /
                                     static_cast<double>(flits_injected)
                               : 1.0;
  }
};

/// One objective's verdict: burn rates in both windows and the
/// multi-window alert status. A window without data (no completed apps,
/// no NoC flits, no admits) reports burn 0 and can therefore never
/// alert by itself.
struct SloObjective {
  std::string name;
  double short_burn = 0.0;
  double long_burn = 0.0;
  HealthStatus status = HealthStatus::kOk;
  std::string reason;
};

struct SloReport {
  SloConfig config;
  SloWindow short_window;
  SloWindow long_window;
  std::vector<SloObjective> objectives;
  HealthStatus status = HealthStatus::kOk;  ///< worst objective
};

/// Recomputes report.objectives/status from its windows and config (the
/// last step of SloEngine::report() and merge_slo_reports()).
void evaluate_slo_objectives(SloReport& report);

/// Fleet rollup: sums the raw windows across reports (max for admit
/// p99), keeps the first report's config, and re-evaluates. Empty input
/// yields a default (all-OK, no-data) report.
SloReport merge_slo_reports(const std::vector<SloReport>& reports);

/// {"status":"OK","short_window":{...},"long_window":{...},
///  "objectives":[{"name":"ve_rate","short_burn":...,...},...]}
void write_slo_json(std::ostream& os, const SloReport& report);

class SloEngine {
 public:
  /// A disabled engine ignores both observe calls (one branch each).
  explicit SloEngine(bool enabled = false, SloConfig config = {});

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  bool enabled() const { return enabled_; }
  const SloConfig& config() const { return config_; }

  /// Once per epoch, from serial engine code, after the telemetry phase:
  /// reads the cumulative counters (sim.ves, sim.deadline_misses,
  /// sim.apps_completed, noc.flits_injected/delivered) and stores this
  /// epoch's deltas.
  void observe_epoch(const Registry& registry);

  /// One admitted app's arrival→admit wait, from the admission phase
  /// (through EpochContext::slo).
  void observe_admit(double wait_s);

  /// Current windows + burn rates + alert verdicts. Cheap enough to call
  /// per scrape (copies at most long_window ring entries).
  SloReport report() const;

 private:
  struct EpochDelta {
    std::uint32_t ves = 0;
    std::uint32_t deadline_misses = 0;
    std::uint32_t apps_completed = 0;
    std::uint64_t flits_injected = 0;
    std::uint64_t flits_delivered = 0;
    std::uint32_t admits = 0;
  };

  SloWindow window(std::size_t epochs) const;

  bool enabled_;
  SloConfig config_;
  /// Trailing per-epoch deltas, newest at the back; bounded at
  /// long_window_epochs entries.
  std::deque<EpochDelta> deltas_;
  /// Admission waits of the epochs still inside the long window,
  /// stamped with the engine's epoch ordinal at observation time.
  std::deque<std::pair<std::uint64_t, double>> admit_waits_;
  std::uint64_t epochs_seen_ = 0;
  std::uint32_t admits_this_epoch_ = 0;
  // Previous cumulative counter values (delta baseline).
  std::uint64_t prev_ves_ = 0;
  std::uint64_t prev_misses_ = 0;
  std::uint64_t prev_completed_ = 0;
  std::uint64_t prev_injected_ = 0;
  std::uint64_t prev_delivered_ = 0;
};

}  // namespace parm::obs
