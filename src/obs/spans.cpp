#include "obs/spans.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <utility>

#include "obs/json_util.hpp"

namespace parm::obs {

namespace {

/// Closes the open exec segment (if any) at time `t`.
void close_exec(AppSpan& span, double t) {
  if (!span.exec.empty() && span.exec.back().end < span.exec.back().start) {
    span.exec.back().end = t;
  }
}

/// Opens a new exec segment at `t`; `tile` may be -1 (filled in later by
/// a map event if one follows).
void open_exec(AppSpan& span, double t, std::int32_t tile) {
  // end < start marks the segment as still open.
  span.exec.push_back({t, t - 1.0, tile});
}

}  // namespace

std::vector<AppSpan> derive_app_spans(const std::vector<Event>& events) {
  std::vector<Event> sorted = events;
  std::sort(sorted.begin(), sorted.end(), [](const Event& x, const Event& y) {
    return x.t != y.t ? x.t < y.t
                      : (x.chip != y.chip ? x.chip < y.chip : x.seq < y.seq);
  });

  std::map<std::pair<std::int16_t, std::int32_t>, AppSpan> spans;
  for (const Event& e : sorted) {
    if (e.app < 0) continue;
    AppSpan& span = spans[{e.chip, e.app}];
    span.app = e.app;
    span.chip = e.chip;
    // Whatever else happens, the app was alive at e.t: keep end_t fresh
    // so apps cut off by the end of the run still get a bounded span.
    if (!span.completed && !span.rejected) span.end_t = e.t;
    switch (e.type) {
      case EventType::kAppArrival:
        span.arrival_t = e.t;
        break;
      case EventType::kAppAdmit:
        span.admitted = true;
        span.admit_t = e.t;
        open_exec(span, e.t, -1);
        break;
      case EventType::kAppReject:
        span.rejected = true;
        span.end_t = e.t;
        break;
      case EventType::kAppMap:
        // Placement names the first segment's representative tile.
        if (!span.exec.empty() && span.exec.back().tile < 0) {
          span.exec.back().tile = e.tile;
        }
        break;
      case EventType::kAppMigrate:
        ++span.migrations;
        close_exec(span, e.t);
        open_exec(span, e.t, static_cast<std::int32_t>(e.a));
        break;
      case EventType::kAppThrottle:
        ++span.throttles;
        break;
      case EventType::kAppVe:
        ++span.ves;
        break;
      case EventType::kAppComplete:
        span.completed = true;
        span.end_t = e.t;
        close_exec(span, e.t);
        break;
      case EventType::kAppDeadlineMiss:
        span.deadline_missed = true;
        break;
      default:
        break;
    }
  }

  std::vector<AppSpan> out;
  out.reserve(spans.size());
  for (auto& [key, span] : spans) {
    // An app still running when the recorder was dumped: bound its open
    // segment at the last time it was seen.
    close_exec(span, span.end_t);
    out.push_back(std::move(span));
  }
  return out;
}

namespace {

constexpr double kSimSecondsToTraceUs = 1e6;

class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& os) : os_(os) {
    old_precision_ = os_.precision(15);
    os_ << "[";
  }
  ~TraceWriter() {
    os_ << "\n]\n";
    os_.precision(old_precision_);
  }

  std::ostream& begin(const char* ph, const char* name, int pid, int tid,
                      double ts_us) {
    os_ << (first_ ? "\n" : ",\n") << "{\"ph\":\"" << ph << "\",\"name\":";
    first_ = false;
    json_string(os_, name);
    os_ << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":" << ts_us;
    return os_;
  }

 private:
  std::ostream& os_;
  std::streamsize old_precision_ = 6;
  bool first_ = true;
};

}  // namespace

void write_span_trace(std::ostream& os, const std::vector<Event>& events) {
  const std::vector<AppSpan> spans = derive_app_spans(events);
  TraceWriter w(os);
  int last_pid = -1;
  for (const AppSpan& span : spans) {
    const int pid = span.chip + 1;
    const int tid = span.app;
    if (pid != last_pid) {
      last_pid = pid;
      std::string pname =
          span.chip < 0 ? "simulator" : "chip " + std::to_string(span.chip);
      w.begin("M", "process_name", pid, 0, 0)
          << ",\"args\":{\"name\":\"" << pname << "\"}}";
    }
    w.begin("M", "thread_name", pid, tid, 0)
        << ",\"args\":{\"name\":\"app " << tid << "\"}}";

    const double start =
        span.arrival_t >= 0.0
            ? span.arrival_t
            : (span.admit_t >= 0.0 ? span.admit_t : span.end_t);
    const double end = std::max(span.end_t, start);
    const char* outcome = span.rejected
                              ? "rejected"
                              : (!span.completed
                                     ? "running"
                                     : (span.deadline_missed ? "deadline-miss"
                                                             : "completed"));
    w.begin("X", "lifecycle", pid, tid, start * kSimSecondsToTraceUs)
        << ",\"dur\":" << (end - start) * kSimSecondsToTraceUs
        << ",\"cat\":\"app\",\"args\":{\"outcome\":\"" << outcome
        << "\",\"migrations\":" << span.migrations << ",\"ves\":" << span.ves
        << ",\"throttles\":" << span.throttles << "}}";
    if (span.queue_wait() > 0.0) {
      w.begin("X", "queue-wait", pid, tid,
              span.arrival_t * kSimSecondsToTraceUs)
          << ",\"dur\":" << span.queue_wait() * kSimSecondsToTraceUs
          << ",\"cat\":\"app\",\"args\":{}}";
    }
    for (const ExecSegment& seg : span.exec) {
      w.begin("X", "exec", pid, tid, seg.start * kSimSecondsToTraceUs)
          << ",\"dur\":"
          << std::max(0.0, seg.end - seg.start) * kSimSecondsToTraceUs
          << ",\"cat\":\"app\",\"args\":{\"tile\":" << seg.tile << "}}";
    }
  }
  // Instants ride on the raw events so their exact times survive even
  // when span derivation collapses them into counts.
  for (const Event& e : events) {
    if (e.app < 0) continue;
    const char* name = nullptr;
    switch (e.type) {
      case EventType::kAppMigrate:
        name = "migrate";
        break;
      case EventType::kAppThrottle:
        name = "throttle";
        break;
      case EventType::kAppVe:
        name = "ve";
        break;
      case EventType::kAppDeadlineMiss:
        name = "deadline-miss";
        break;
      default:
        break;
    }
    if (name == nullptr) continue;
    w.begin("i", name, e.chip + 1, e.app, e.t * kSimSecondsToTraceUs)
        << ",\"s\":\"t\",\"cat\":\"app\",\"args\":{}}";
  }
}

}  // namespace parm::obs
