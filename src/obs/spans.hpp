// Per-application lifecycle spans, derived from flight-recorder events.
//
// The recorder stores point events; what a human debugging a deadline
// miss wants is *intervals*: how long did the app sit in the queue, when
// did it execute, where did it get interrupted. derive_app_spans folds an
// event stream into one AppSpan per (chip, app) — queue-wait
// (arrival→admit), execution segments split at migrations, terminal
// outcome — and write_span_trace renders the same derivation as a Chrome
// trace-event JSON file loadable in Perfetto / chrome://tracing, one
// process per chip and one track (thread) per application.
//
// Timestamps are *simulation* time mapped 1 s → 1 µs of trace time (sim
// runs span seconds; Chrome traces think in µs), so the timeline reads
// in sim-seconds directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/events.hpp"

namespace parm::obs {

/// One uninterrupted stretch of execution on (conceptually) stable
/// placement; a migration ends one segment and starts the next.
struct ExecSegment {
  double start = 0.0;
  double end = 0.0;
  std::int32_t tile = -1;  ///< representative tile, -1 when unknown
};

/// Everything the event stream says about one application's life.
struct AppSpan {
  std::int32_t app = -1;
  std::int16_t chip = -1;
  double arrival_t = -1.0;  ///< -1 when the arrival predates retention
  double admit_t = -1.0;    ///< -1 when never admitted
  double end_t = -1.0;      ///< completion/rejection, or last sighting
  bool admitted = false;
  bool completed = false;
  bool rejected = false;
  bool deadline_missed = false;
  std::uint32_t migrations = 0;
  std::uint32_t ves = 0;        ///< VE rollbacks that hit this app
  std::uint32_t throttles = 0;  ///< proactive throttles on its tiles
  std::vector<ExecSegment> exec;

  /// Arrival→admission wait; 0 when either endpoint is unknown.
  double queue_wait() const {
    return admitted && arrival_t >= 0.0 && admit_t >= arrival_t
               ? admit_t - arrival_t
               : 0.0;
  }
};

/// Folds `events` (any order; sorted internally by time then seq) into
/// per-app spans ordered by (chip, app). Non-app events are ignored.
/// Ring-buffer truncation degrades gracefully: an app whose arrival was
/// overwritten still gets a span from its surviving events.
std::vector<AppSpan> derive_app_spans(const std::vector<Event>& events);

/// Writes the spans of `events` as a complete Chrome trace-event JSON
/// document: per-app "lifecycle" / "queue-wait" / "exec" complete events
/// plus instants for migrations, throttles, VE hits, and deadline
/// misses. pid = chip + 1 (0 for a lone simulator), tid = app id.
void write_span_trace(std::ostream& os, const std::vector<Event>& events);

}  // namespace parm::obs
