// RAII wall-clock timer feeding a metrics histogram (microseconds).
//
// Usage at a hot call site:
//   static obs::Histogram& h =
//       obs::Registry::instance().histogram("pdn.solve_us");
//   obs::ScopedTimer timer(h);
//
// The histogram reference is resolved once; each scope then costs two
// steady_clock reads and one bucket walk.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace parm::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : hist_(&h), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { hist_->observe(elapsed_us()); }

  /// Microseconds since construction.
  double elapsed_us() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::micro>(d).count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace parm::obs
