// RAII wall-clock timer feeding a metrics histogram (microseconds).
//
// Usage at a hot call site: resolve the histogram once, at component
// construction, from the injected instance registry (a member, never a
// function-local static — statics would pin whichever registry resolved
// first and leak timings across simulator instances):
//   solve_us_(&obs::resolve(registry).histogram("pdn.solve_us"))
// then per scope:
//   obs::ScopedTimer timer(*solve_us_);
//
// Each scope costs two steady_clock reads and one bucket walk.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace parm::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : hist_(&h), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // The destructor must record even when the timed scope is unwinding
  // from an exception — a failed solve is exactly the sample you want —
  // and must never itself throw during that unwind (that would be
  // std::terminate). observe() can in principle throw
  // (std::system_error from its mutex), so swallow rather than die:
  // losing one sample beats losing the process.
  ~ScopedTimer() noexcept {
    try {
      hist_->observe(elapsed_us());
    } catch (...) {
    }
  }

  /// Microseconds since construction.
  double elapsed_us() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::micro>(d).count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace parm::obs
