#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/check.hpp"
#include "obs/json_util.hpp"

namespace parm::obs {

namespace {

void fold(TsSample& into, const TsSample& s) {
  if (into.count == 0) {
    into = s;
    return;
  }
  into.t_end = s.t_end;
  into.min = std::min(into.min, s.min);
  into.max = std::max(into.max, s.max);
  into.sum += s.sum;
  into.count += s.count;
}

void save_sample(snapshot::Writer& w, const TsSample& s) {
  w.f64(s.t_start);
  w.f64(s.t_end);
  w.f64(s.min);
  w.f64(s.max);
  w.f64(s.sum);
  w.u64(s.count);
}

TsSample restore_sample(snapshot::Reader& r) {
  TsSample s;
  s.t_start = r.f64();
  s.t_end = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  s.sum = r.f64();
  s.count = r.u64();
  return s;
}

constexpr std::size_t kSampleBytes = 6 * 8;  ///< serialized TsSample size

}  // namespace

// ---------------------------------------------------------------- series

TimeSeries::TimeSeries(const TimeSeriesConfig& cfg)
    : capacity_(cfg.capacity), downsample_(cfg.downsample) {
  PARM_CHECK(cfg.capacity >= 1, "TimeSeries: capacity must be at least 1");
  PARM_CHECK(cfg.levels >= 1, "TimeSeries: levels must be at least 1");
  PARM_CHECK(cfg.downsample >= 2,
             "TimeSeries: downsample factor must be at least 2");
  levels_.resize(cfg.levels);
  for (Level& level : levels_) level.ring.resize(capacity_);
}

std::size_t TimeSeries::push(std::size_t level, const TsSample& s) {
  Level& l = levels_[level];
  std::size_t evicted = l.written >= capacity_ ? 1 : 0;
  l.ring[static_cast<std::size_t>(l.written % capacity_)] = s;
  ++l.written;
  if (level + 1 < levels_.size()) {
    Level& next = levels_[level + 1];
    fold(next.open, s);
    if (++next.open_children == downsample_) {
      const TsSample closed = next.open;
      next.open = TsSample{};
      next.open_children = 0;
      evicted += push(level + 1, closed);
    }
  }
  return evicted;
}

std::size_t TimeSeries::append(double t, double value) {
  ++appended_;
  return push(0, TsSample{t, t, value, value, value, 1});
}

std::vector<TsSample> TimeSeries::samples(std::size_t level) const {
  PARM_CHECK(level < levels_.size(), "TimeSeries: level out of range");
  const Level& l = levels_[level];
  const std::uint64_t retained = std::min<std::uint64_t>(l.written, capacity_);
  std::vector<TsSample> out;
  out.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = l.written - retained; i < l.written; ++i) {
    out.push_back(l.ring[static_cast<std::size_t>(i % capacity_)]);
  }
  return out;
}

double TimeSeries::retained_from(std::size_t level) const {
  PARM_CHECK(level < levels_.size(), "TimeSeries: level out of range");
  const Level& l = levels_[level];
  const std::uint64_t retained = std::min<std::uint64_t>(l.written, capacity_);
  if (retained == 0) return std::numeric_limits<double>::infinity();
  const std::uint64_t oldest = l.written - retained;
  return l.ring[static_cast<std::size_t>(oldest % capacity_)].t_start;
}

std::vector<TsSample> TimeSeries::query(double t_min, double t_max,
                                        std::size_t* level_out) const {
  // Finest level whose retained history reaches back to t_min; when none
  // does (the run outlived even the coarsest ring), the coarsest
  // non-empty level is still the best available answer.
  std::size_t chosen = levels_.size();
  std::size_t coarsest_nonempty = levels_.size();
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].written == 0) continue;
    coarsest_nonempty = level;
    if (chosen == levels_.size() && retained_from(level) <= t_min) {
      chosen = level;
    }
  }
  if (chosen == levels_.size()) chosen = coarsest_nonempty;
  if (chosen == levels_.size()) {
    if (level_out != nullptr) *level_out = 0;
    return {};
  }
  if (level_out != nullptr) *level_out = chosen;
  std::vector<TsSample> out;
  for (const TsSample& s : samples(chosen)) {
    if (s.t_end >= t_min && s.t_start <= t_max) out.push_back(s);
  }
  return out;
}

void TimeSeries::save(snapshot::Writer& w) const {
  w.u64(capacity_);
  w.u64(levels_.size());
  w.u64(downsample_);
  w.u64(appended_);
  for (const Level& l : levels_) {
    w.u64(l.written);
    const std::uint64_t retained =
        std::min<std::uint64_t>(l.written, capacity_);
    // Retained samples oldest-first; the restore side recomputes each
    // one's ring slot from its ordinal, so future wrap-around overwrites
    // land exactly where an uninterrupted run would have put them.
    for (std::uint64_t i = l.written - retained; i < l.written; ++i) {
      save_sample(w, l.ring[static_cast<std::size_t>(i % capacity_)]);
    }
    save_sample(w, l.open);
    w.u64(l.open_children);
  }
}

void TimeSeries::restore(snapshot::Reader& r) {
  const std::uint64_t capacity = r.count(1);
  const std::uint64_t levels = r.count(kSampleBytes + 16);
  const std::uint64_t downsample = r.u64();
  if (capacity < 1 || levels < 1 || downsample < 2) {
    throw snapshot::SnapshotError("time-series shape out of range");
  }
  // Allocation guard: the rings are preallocated at capacity × levels
  // slots, so a corrupt shape must be rejected before it turns into an
  // out-of-memory crash (the count() guards above only bound each field
  // against the payload size individually).
  if (levels > (std::uint64_t{1} << 22) / capacity) {
    throw snapshot::SnapshotError(
        "time-series shape implausibly large (capacity × levels)");
  }
  capacity_ = static_cast<std::size_t>(capacity);
  downsample_ = static_cast<std::size_t>(downsample);
  appended_ = r.u64();
  levels_.assign(static_cast<std::size_t>(levels), Level{});
  for (Level& l : levels_) {
    l.ring.assign(capacity_, TsSample{});
    l.written = r.u64();
    const std::uint64_t retained =
        std::min<std::uint64_t>(l.written, capacity_);
    if (retained > r.remaining() / kSampleBytes) {
      throw snapshot::SnapshotError(
          "time-series sample count exceeds snapshot payload");
    }
    for (std::uint64_t i = l.written - retained; i < l.written; ++i) {
      l.ring[static_cast<std::size_t>(i % capacity_)] = restore_sample(r);
    }
    l.open = restore_sample(r);
    l.open_children = r.u64();
    if (l.open_children >= downsample_) {
      throw snapshot::SnapshotError(
          "time-series open aggregate larger than the downsample factor");
    }
  }
}

// ----------------------------------------------------------------- store

TimeSeriesStore::TimeSeriesStore(bool enabled, TimeSeriesConfig cfg,
                                 Registry* registry)
    : enabled_(enabled),
      cfg_(cfg),
      samples_metric_(&resolve(registry).counter("timeseries.samples")),
      evictions_metric_(&resolve(registry).counter("timeseries.evictions")),
      series_metric_(&resolve(registry).gauge("timeseries.series")) {
  PARM_CHECK(cfg_.capacity >= 1,
             "TimeSeriesStore: capacity must be at least 1");
  PARM_CHECK(cfg_.levels >= 1, "TimeSeriesStore: levels must be at least 1");
  PARM_CHECK(cfg_.downsample >= 2,
             "TimeSeriesStore: downsample factor must be at least 2");
}

TimeSeries& TimeSeriesStore::series(std::string_view name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::string(name),
                      std::make_unique<TimeSeries>(cfg_))
             .first;
    series_metric_->set(static_cast<double>(series_.size()));
  }
  return *it->second;
}

const TimeSeries* TimeSeriesStore::find(std::string_view name) const {
  const auto it = series_.find(name);
  return it != series_.end() ? it->second.get() : nullptr;
}

void TimeSeriesStore::append(std::string_view name, double t, double value) {
  if (!enabled_) return;
  const std::size_t evicted = series(name).append(t, value);
  ++samples_total_;
  samples_metric_->inc();
  if (evicted != 0) {
    evictions_total_ += evicted;
    evictions_metric_->inc(evicted);
  }
}

void TimeSeriesStore::note_appends(std::size_t appended,
                                   std::size_t evicted) {
  samples_total_ += appended;
  samples_metric_->inc(appended);
  if (evicted != 0) {
    evictions_total_ += evicted;
    evictions_metric_->inc(evicted);
  }
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ts] : series_) names.push_back(name);
  return names;
}

void TimeSeriesStore::dump_jsonl(std::ostream& os) const {
  const auto old_precision = os.precision(15);
  for (const auto& [name, ts] : series_) {
    for (std::size_t level = 0; level < ts->level_count(); ++level) {
      for (const TsSample& s : ts->samples(level)) {
        os << "{\"series\":";
        json_string(os, name);
        os << ",\"level\":" << level << ",\"t_start\":" << s.t_start
           << ",\"t_end\":" << s.t_end << ",\"min\":" << s.min
           << ",\"max\":" << s.max << ",\"mean\":" << s.mean()
           << ",\"count\":" << s.count << "}\n";
      }
    }
  }
  os.precision(old_precision);
}

void TimeSeriesStore::write_csv(std::ostream& os) const {
  const auto old_precision = os.precision(15);
  os << "series,level,t_start,t_end,min,max,mean,count\n";
  for (const auto& [name, ts] : series_) {
    for (std::size_t level = 0; level < ts->level_count(); ++level) {
      for (const TsSample& s : ts->samples(level)) {
        os << name << ',' << level << ',' << s.t_start << ',' << s.t_end
           << ',' << s.min << ',' << s.max << ',' << s.mean() << ','
           << s.count << '\n';
      }
    }
  }
  os.precision(old_precision);
}

void TimeSeriesStore::merge_from(const TimeSeriesStore& other, int chip) {
  PARM_CHECK(&other != this, "TimeSeriesStore: cannot merge from itself");
  PARM_CHECK(chip >= 0, "TimeSeriesStore: chip stamp must be non-negative");
  const std::string prefix = "chip" + std::to_string(chip) + ".";
  for (const auto& [name, ts] : other.series_) {
    series_[prefix + name] = std::make_unique<TimeSeries>(*ts);
  }
  series_metric_->set(static_cast<double>(series_.size()));
  samples_total_ += other.samples_total_;
  evictions_total_ += other.evictions_total_;
}

void TimeSeriesStore::save(snapshot::Writer& w) const {
  w.begin_section("TSDB");
  w.u64(samples_total_);
  w.u64(evictions_total_);
  w.u64(series_.size());
  for (const auto& [name, ts] : series_) {  // std::map: sorted, stable
    w.str(name);
    ts->save(w);
  }
}

void TimeSeriesStore::restore(snapshot::Reader& r) {
  r.expect_section("TSDB");
  const std::uint64_t samples_total = r.u64();
  const std::uint64_t evictions_total = r.u64();
  const std::uint64_t n = r.count(4 + 32);
  std::map<std::string, std::unique_ptr<TimeSeries>, std::less<>> restored;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = r.str();
    auto ts = std::make_unique<TimeSeries>(cfg_);
    ts->restore(r);
    if (!restored.emplace(name, std::move(ts)).second) {
      throw snapshot::SnapshotError("duplicate time-series name \"" + name +
                                    "\" in snapshot");
    }
  }
  series_ = std::move(restored);
  samples_total_ = samples_total;
  evictions_total_ = evictions_total;
  // Rewrite the self-metrics so exposition resumes mid-stream exactly
  // (the telemetry-watermark pattern).
  samples_metric_->reset();
  samples_metric_->inc(samples_total_);
  evictions_metric_->reset();
  evictions_metric_->inc(evictions_total_);
  series_metric_->set(static_cast<double>(series_.size()));
}

}  // namespace parm::obs
