// Bounded, snapshot-aware time-series store: the droop-waveform channel
// of the obs stack.
//
// Counters summarize, events punctuate — but the question a post-mortem
// actually asks ("what did the domain's droop look like in the 50 ms
// before the emergency?") needs the waveform itself. The store keeps, per
// named series, a fixed-capacity ring of (time, value) samples plus
// RRD-style hierarchical downsampling: level 0 holds the most recent
// `capacity` raw samples; every `downsample` level-k samples fold into
// one level-k+1 aggregate carrying min/max/sum/count over its time span.
// A million-epoch run therefore retains full-resolution recent history
// and progressively coarser long history in O(levels × capacity) memory
// per series — the memory bound is fixed at construction and documented
// in DESIGN.md (§ observability).
//
// Ownership mirrors obs::Registry and obs::FlightRecorder: every
// simulator owns one store, fleet chips never interleave, and the fleet
// driver merges per-chip stores under a "chip<k>." series-name prefix.
//
// Observe-only contract: append() touches nothing but the store itself
// (no RNG, no simulation state), so enabling capture cannot perturb a
// run — tests/engine_equivalence_test pins this bit-for-bit. Unlike the
// flight recorder, store contents ARE snapshotted (save/restore): the
// retained waveform history is exactly the evidence a resumed run must
// still be able to explain itself with, so it survives a crash/resume
// cycle byte-for-byte.
//
// The store observes itself: timeseries.samples / timeseries.evictions
// counters and a timeseries.series gauge are registered in the owning
// registry.
//
// Concurrency: none. The engine appends from serial phase code only (the
// same property that makes event sequence numbers deterministic); the
// store is deliberately lock-free-by-exclusion rather than sharded.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "snapshot/serializer.hpp"

namespace parm::obs {

/// Shape of every series in a store: ring capacity per level, number of
/// downsampling levels (level 0 is full resolution), and the aggregation
/// fan-in between consecutive levels. Level k spans up to
/// capacity × downsample^k raw samples.
struct TimeSeriesConfig {
  std::size_t capacity = 512;
  std::size_t levels = 3;
  std::size_t downsample = 8;
};

/// One retained aggregate. At level 0 every sample covers a single
/// observation (t_start == t_end, min == max == sum, count == 1); at
/// level k it summarizes up to downsample^k raw observations.
struct TsSample {
  double t_start = 0.0;  ///< time of the first folded observation (s)
  double t_end = 0.0;    ///< time of the last folded observation (s)
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;
  double mean() const {
    return count != 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// One named series: a ring per downsample level plus, per level >= 1,
/// the open (partially filled) aggregate the next fold will close.
/// Copyable by design — the fleet merge clones chip series wholesale.
class TimeSeries {
 public:
  explicit TimeSeries(const TimeSeriesConfig& cfg);

  /// Appends one raw observation, cascading closed aggregates upward.
  /// Returns the number of retained samples overwritten by ring
  /// wrap-around across all levels (the store's eviction accounting).
  std::size_t append(double t, double value);

  std::size_t level_count() const { return levels_.size(); }
  /// Raw observations ever appended (including evicted ones).
  std::uint64_t appended() const { return appended_; }

  /// Retained closed samples of one level, oldest first. Open (partial)
  /// aggregates are internal state — they surface once closed, but are
  /// serialized so a restored series continues folding mid-block.
  std::vector<TsSample> samples(std::size_t level) const;

  /// Oldest retained time at `level` (+inf when the level is empty).
  double retained_from(std::size_t level) const;

  /// Best-resolution view of [t_min, t_max]: the finest level whose
  /// retained history reaches back to t_min (falling back to the
  /// coarsest non-empty level), filtered to samples overlapping the
  /// window. `level_out` (optional) receives the chosen level.
  std::vector<TsSample> query(double t_min, double t_max,
                              std::size_t* level_out = nullptr) const;

  void save(snapshot::Writer& w) const;
  /// Restores the serialized state, adopting the snapshot's shape (the
  /// shape is observe-only configuration, so the donor's wins — this is
  /// what makes a resume with a different capacity well-defined).
  void restore(snapshot::Reader& r);

 private:
  struct Level {
    std::vector<TsSample> ring;  ///< capacity slots, written % cap cursor
    std::uint64_t written = 0;   ///< closed samples ever stored here
    TsSample open;               ///< partial aggregate (levels >= 1)
    std::uint64_t open_children = 0;
  };

  std::size_t push(std::size_t level, const TsSample& s);

  std::vector<Level> levels_;
  std::size_t capacity_;
  std::size_t downsample_;
  std::uint64_t appended_ = 0;
};

/// Name → series table with a fixed per-series memory bound and
/// store-level self-metrics. Series references stay valid for the life
/// of the store. std::map keys keep every export and merge
/// deterministic.
class TimeSeriesStore {
 public:
  /// A disabled store ignores append() entirely (one branch). `registry`
  /// receives the self-metrics (null selects the process-default
  /// registry, as everywhere in obs).
  explicit TimeSeriesStore(bool enabled = false, TimeSeriesConfig cfg = {},
                           Registry* registry = nullptr);

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  bool enabled() const { return enabled_; }
  const TimeSeriesConfig& config() const { return cfg_; }

  /// Registers (or returns) a series. Unlike append(), usable on a
  /// disabled store (handles may be resolved eagerly).
  TimeSeries& series(std::string_view name);
  /// Looks a series up without registering; null when absent.
  const TimeSeries* find(std::string_view name) const;

  /// Appends one observation to `name` (registering it on first sight).
  /// No-op when the store is disabled.
  void append(std::string_view name, double t, double value);

  /// Accounting hook for hot paths that append through pre-resolved
  /// TimeSeries handles (bypassing the name lookup in append()): folds
  /// `appended` raw observations and `evicted` ring overwrites into the
  /// lifetime totals and self-metrics in one step.
  void note_appends(std::size_t appended, std::size_t evicted);

  std::size_t series_count() const { return series_.size(); }
  std::vector<std::string> series_names() const;
  /// Raw observations appended / retained samples evicted, over the
  /// store's lifetime (mirrors the self-metric counters, but readable
  /// without a registry walk and restored by snapshots).
  std::uint64_t samples_total() const { return samples_total_; }
  std::uint64_t evictions_total() const { return evictions_total_; }

  /// One JSON object per line per retained sample:
  /// {"series":"psn.domain9.peak_percent","level":0,"t_start":...,
  ///  "t_end":...,"min":...,"max":...,"mean":...,"count":1}
  /// Series in name order, levels fine→coarse, samples oldest first.
  void dump_jsonl(std::ostream& os) const;
  /// The same data as CSV with a header row (series,level,t_start,t_end,
  /// min,max,mean,count) — the plot-me export.
  void write_csv(std::ostream& os) const;

  /// Clones every series of `other` into this store under a
  /// "chip<chip>." name prefix (the fleet driver's chip stamp) and folds
  /// the sample/eviction totals. Self-metric counters are NOT advanced:
  /// the fleet's registry merge already aggregates the chips' counters,
  /// and advancing them here would double-count.
  void merge_from(const TimeSeriesStore& other, int chip);

  /// Serializes shape + every series (section "TSDB"). Contents survive
  /// resume — see the header block for why this differs from the
  /// recorder.
  void save(snapshot::Writer& w) const;
  /// Replaces this store's series wholesale with the snapshot's,
  /// adopting the snapshot's shape, and restores the lifetime totals
  /// (self-metric counters are rewritten to match, so exposition resumes
  /// mid-stream exactly, like the telemetry watermarks).
  void restore(snapshot::Reader& r);

 private:
  bool enabled_;
  TimeSeriesConfig cfg_;
  std::map<std::string, std::unique_ptr<TimeSeries>, std::less<>> series_;
  std::uint64_t samples_total_ = 0;
  std::uint64_t evictions_total_ = 0;
  Counter* samples_metric_;
  Counter* evictions_metric_;
  Gauge* series_metric_;
};

}  // namespace parm::obs
