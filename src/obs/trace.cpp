#include "obs/trace.hpp"

#include <cmath>
#include <sstream>

#include "obs/json_util.hpp"

namespace parm::obs {

namespace {

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::open_chrome(const std::string& path) {
  auto f = std::make_unique<std::ofstream>(path);
  if (!*f) return false;
  std::lock_guard<std::mutex> lk(mu_);
  *f << "{\"traceEvents\":[\n";
  chrome_ = std::move(f);
  chrome_first_event_ = true;
  // Re-announce track names for sinks opened after tracks were created.
  const auto tracks = track_tids_;
  for (const auto& [track, tid] : tracks) {
    std::ostringstream ev;
    ev << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":";
    json_string(ev, track);
    ev << "}}";
    emit(ev.str());
  }
  return true;
}

bool Tracer::open_jsonl(const std::string& path) {
  auto f = std::make_unique<std::ofstream>(path);
  if (!*f) return false;
  std::lock_guard<std::mutex> lk(mu_);
  jsonl_ = std::move(f);
  return true;
}

void Tracer::close() {
  std::lock_guard<std::mutex> lk(mu_);
  if (chrome_) {
    *chrome_ << "\n]}\n";
    chrome_.reset();
  }
  jsonl_.reset();
}

double Tracer::now_us() const {
  const auto d = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::micro>(d).count();
}

int Tracer::tid_for(std::string_view track) {
  const auto it = track_tids_.find(track);
  if (it != track_tids_.end()) return it->second;
  const int tid = static_cast<int>(track_tids_.size()) + 1;
  track_tids_.emplace(std::string(track), tid);
  std::ostringstream ev;
  ev << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << tid
     << ",\"args\":{\"name\":";
  json_string(ev, track);
  ev << "}}";
  emit(ev.str());
  return tid;
}

void Tracer::emit(const std::string& line) {
  if (chrome_) {
    if (!chrome_first_event_) *chrome_ << ",\n";
    chrome_first_event_ = false;
    *chrome_ << line;
  }
  if (jsonl_) *jsonl_ << line << '\n';
}

void Tracer::emit_event(std::string_view track, std::string_view name,
                        char phase, double ts_us, double dur_us,
                        std::initializer_list<TraceArg> args) {
  // One lock per event covers track-id assignment and the sink write, so
  // concurrent emitters never interleave partial lines.
  std::lock_guard<std::mutex> lk(mu_);
  const int tid = tid_for(track);
  std::ostringstream ev;
  ev.precision(15);  // keep µs timestamps exact over multi-minute runs
  ev << "{\"ph\":\"" << phase << "\",\"name\":";
  json_string(ev, name);
  ev << ",\"cat\":";
  json_string(ev, track);
  ev << ",\"pid\":1,\"tid\":" << tid
     << ",\"ts\":" << finite_or_zero(ts_us);
  if (phase == 'X') ev << ",\"dur\":" << finite_or_zero(dur_us);
  if (phase == 'i') ev << ",\"s\":\"t\"";  // instant scope: thread
  if (args.size() > 0) {
    ev << ",\"args\":{";
    bool first = true;
    for (const TraceArg& a : args) {
      if (!first) ev << ',';
      first = false;
      json_string(ev, a.key);
      ev << ':';
      if (a.is_string) {
        json_string(ev, a.str);
      } else {
        ev << finite_or_zero(a.num);
      }
    }
    ev << '}';
  }
  ev << '}';
  emit(ev.str());
}

void Tracer::complete(std::string_view track, std::string_view name,
                      double ts_us, double dur_us,
                      std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  emit_event(track, name, 'X', ts_us, dur_us, args);
}

void Tracer::instant(std::string_view track, std::string_view name,
                     std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  emit_event(track, name, 'i', now_us(), 0.0, args);
}

}  // namespace parm::obs
