// Event tracer emitting Chrome trace-event JSON (load in Perfetto or
// chrome://tracing) and/or a JSONL stream (one event object per line).
//
// Two event kinds cover the PARM stack:
//   - complete ("ph":"X") duration events — solver solves, mapper
//     placements, NoC windows, whole simulator epochs — each on a named
//     track (pdn / mapper / noc / sim), and
//   - instant ("ph":"i") events — voltage emergencies, app arrivals /
//     admissions / completions / drops, migrations.
//
// Timestamps are wall-clock microseconds since the tracer was created
// (Chrome's expected unit); events carry simulation time as an arg where
// it matters. Tracks map to Chrome "threads" of one process, named via
// thread_name metadata events.
//
// Zero-cost when disabled: with no sink open, enabled() is false and
// every emit path returns before touching the clock or formatting
// anything. ScopedTrace latches enabled() at construction so a scope
// costs a single bool test when tracing is off.
//
// Thread-safe: events may be emitted from ThreadPool workers (the PDN
// solver traces its solves, and per-domain PSN estimates run in
// parallel); a single mutex serializes sink writes and track-id
// assignment. Event formatting happens outside the lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace parm::obs {

/// One key/value pair for an event's "args" object. Values are numbers or
/// strings; string_views must outlive the emit call only.
struct TraceArg {
  TraceArg(std::string_view k, double v)
      : key(k), num(v), is_string(false) {}
  TraceArg(std::string_view k, int v)
      : key(k), num(static_cast<double>(v)), is_string(false) {}
  TraceArg(std::string_view k, std::int64_t v)
      : key(k), num(static_cast<double>(v)), is_string(false) {}
  TraceArg(std::string_view k, std::uint64_t v)
      : key(k), num(static_cast<double>(v)), is_string(false) {}
  TraceArg(std::string_view k, std::string_view v)
      : key(k), str(v), is_string(true) {}
  TraceArg(std::string_view k, const char* v)
      : key(k), str(v), is_string(true) {}

  std::string_view key;
  double num = 0.0;
  std::string_view str;
  bool is_string;
};

class Tracer {
 public:
  static Tracer& instance();

  /// True iff at least one sink is open. Emit calls short-circuit on
  /// false before any formatting work.
  bool enabled() const { return chrome_ != nullptr || jsonl_ != nullptr; }

  /// Opens the Chrome-format sink ({"traceEvents":[...]}). Returns false
  /// if the file cannot be created.
  bool open_chrome(const std::string& path);
  /// Opens the JSONL sink (one event object per line).
  bool open_jsonl(const std::string& path);
  /// Finalizes and closes both sinks (writes the Chrome array footer).
  /// Safe to call repeatedly; also runs at process exit.
  void close();

  /// Wall-clock microseconds since the tracer singleton was created.
  double now_us() const;

  /// Complete duration event ("ph":"X") on `track`.
  void complete(std::string_view track, std::string_view name, double ts_us,
                double dur_us, std::initializer_list<TraceArg> args = {});
  /// Instant event ("ph":"i") stamped now.
  void instant(std::string_view track, std::string_view name,
               std::initializer_list<TraceArg> args = {});

 private:
  Tracer() : start_(std::chrono::steady_clock::now()) {}
  ~Tracer() { close(); }

  int tid_for(std::string_view track);
  void emit(const std::string& line);
  void emit_event(std::string_view track, std::string_view name, char phase,
                  double ts_us, double dur_us,
                  std::initializer_list<TraceArg> args);

  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;  ///< guards the sinks and the track table
  std::unique_ptr<std::ofstream> chrome_;
  std::unique_ptr<std::ofstream> jsonl_;
  bool chrome_first_event_ = true;
  std::map<std::string, int, std::less<>> track_tids_;
};

/// RAII complete-event emitter: measures its scope and emits one "X"
/// event on destruction. No-op (one bool read) when tracing is off at
/// construction. The track/name string data must outlive the scope —
/// pass string literals.
class ScopedTrace {
 public:
  ScopedTrace(std::string_view track, std::string_view name)
      : track_(track), name_(name), armed_(Tracer::instance().enabled()) {
    if (armed_) start_us_ = Tracer::instance().now_us();
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  ~ScopedTrace() {
    if (!armed_) return;
    Tracer& t = Tracer::instance();
    t.complete(track_, name_, start_us_, t.now_us() - start_us_);
  }

 private:
  std::string_view track_;
  std::string_view name_;
  bool armed_;
  double start_us_ = 0.0;
};

}  // namespace parm::obs
