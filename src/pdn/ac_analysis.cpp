#include "pdn/ac_analysis.hpp"

#include <cmath>
#include <numbers>

namespace parm::pdn {

namespace {

using Cplx = std::complex<double>;

/// Dense complex LU with partial pivoting — the AC twin of
/// LuFactorization (kept private to this translation unit; the real-
/// valued path stays allocation-lean for the transient hot loop).
class ComplexLu {
 public:
  ComplexLu(std::vector<Cplx> a, std::size_t n) : a_(std::move(a)), n_(n) {
    perm_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
    constexpr double kTol = 1e-18;
    for (std::size_t k = 0; k < n_; ++k) {
      std::size_t pivot = k;
      double best = std::abs(at(k, k));
      for (std::size_t r = k + 1; r < n_; ++r) {
        if (std::abs(at(r, k)) > best) {
          best = std::abs(at(r, k));
          pivot = r;
        }
      }
      PARM_CHECK(best > kTol, "singular AC system");
      if (pivot != k) {
        for (std::size_t c = 0; c < n_; ++c) {
          std::swap(at(k, c), at(pivot, c));
        }
        std::swap(perm_[k], perm_[pivot]);
      }
      for (std::size_t r = k + 1; r < n_; ++r) {
        const Cplx f = at(r, k) / at(k, k);
        at(r, k) = f;
        for (std::size_t c = k + 1; c < n_; ++c) at(r, c) -= f * at(k, c);
      }
    }
  }

  std::vector<Cplx> solve(const std::vector<Cplx>& b) const {
    std::vector<Cplx> x(n_);
    for (std::size_t r = 0; r < n_; ++r) {
      Cplx acc = b[perm_[r]];
      for (std::size_t c = 0; c < r; ++c) acc -= at(r, c) * x[c];
      x[r] = acc;
    }
    for (std::size_t ri = n_; ri-- > 0;) {
      Cplx acc = x[ri];
      for (std::size_t c = ri + 1; c < n_; ++c) acc -= at(ri, c) * x[c];
      x[ri] = acc / at(ri, ri);
    }
    return x;
  }

 private:
  Cplx& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  const Cplx& at(std::size_t r, std::size_t c) const {
    return a_[r * n_ + c];
  }
  std::vector<Cplx> a_;
  std::size_t n_;
  std::vector<std::size_t> perm_;
};

inline std::size_t vidx(NodeId n) {
  return n == kGround ? static_cast<std::size_t>(-1)
                      : static_cast<std::size_t>(n - 1);
}
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

double ImpedancePoint::phase_deg() const {
  return std::arg(z) * 180.0 / std::numbers::pi;
}

AcAnalysis::AcAnalysis(const Circuit& circuit) : ckt_(circuit) {}

std::complex<double> AcAnalysis::input_impedance(NodeId probe,
                                                 double freq_hz) const {
  PARM_CHECK(freq_hz > 0.0, "AC frequency must be positive");
  PARM_CHECK(probe != kGround, "cannot probe the ground node");
  PARM_CHECK(probe > 0 && probe < ckt_.node_count(), "unknown probe node");

  const std::size_t n_nodes = static_cast<std::size_t>(ckt_.node_count() - 1);
  const std::size_t n_l = ckt_.inductor_count();
  const std::size_t n_v = ckt_.voltage_source_count();
  const std::size_t n = n_nodes + n_l + n_v;
  const double w = 2.0 * std::numbers::pi * freq_hz;

  std::vector<Cplx> a(n * n, Cplx{0.0, 0.0});
  auto at = [&](std::size_t r, std::size_t c) -> Cplx& {
    return a[r * n + c];
  };
  auto stamp_admittance = [&](NodeId n1, NodeId n2, Cplx y) {
    const std::size_t i = vidx(n1);
    const std::size_t j = vidx(n2);
    if (i != kNone) at(i, i) += y;
    if (j != kNone) at(j, j) += y;
    if (i != kNone && j != kNone) {
      at(i, j) -= y;
      at(j, i) -= y;
    }
  };

  // Access element lists through a tiny DC solve? No — AcAnalysis is a
  // friend-free design: re-stamp from the public element counts is not
  // possible, so the Circuit exposes its elements to this analysis via
  // friendship (declared in circuit.hpp).
  for (const auto& r : ckt_.resistors_) {
    stamp_admittance(r.a, r.b, Cplx{1.0 / r.ohms, 0.0});
  }
  for (const auto& c : ckt_.capacitors_) {
    stamp_admittance(c.a, c.b, Cplx{0.0, w * c.farads});
  }
  for (std::size_t k = 0; k < n_l; ++k) {
    const auto& l = ckt_.inductors_[k];
    const std::size_t row = n_nodes + k;
    const std::size_t i = vidx(l.a);
    const std::size_t j = vidx(l.b);
    // Branch: v_a − v_b − jωL·i = 0; KCL: i leaves a, enters b.
    at(row, row) -= Cplx{0.0, w * l.henries};
    if (i != kNone) {
      at(i, row) += 1.0;
      at(row, i) += 1.0;
    }
    if (j != kNone) {
      at(j, row) -= 1.0;
      at(row, j) -= 1.0;
    }
  }
  for (std::size_t k = 0; k < n_v; ++k) {
    const auto& v = ckt_.vsources_[k];
    const std::size_t row = n_nodes + n_l + k;
    const std::size_t i = vidx(v.pos);
    const std::size_t j = vidx(v.neg);
    if (i != kNone) {
      at(i, row) += 1.0;
      at(row, i) += 1.0;
    }
    if (j != kNone) {
      at(j, row) -= 1.0;
      at(row, j) -= 1.0;
    }
    // RHS stays 0: AC-shorted source.
  }
  // Existing current sources are AC-opened: no stamp.

  std::vector<Cplx> b(n, Cplx{0.0, 0.0});
  b[vidx(probe)] = Cplx{1.0, 0.0};  // 1 A test injection into the probe

  ComplexLu lu(std::move(a), n);
  const std::vector<Cplx> x = lu.solve(b);
  return x[vidx(probe)];  // V/I with I = 1 A
}

std::vector<ImpedancePoint> AcAnalysis::sweep(NodeId probe, double f_lo,
                                              double f_hi,
                                              int points) const {
  PARM_CHECK(f_lo > 0.0 && f_hi > f_lo, "invalid sweep range");
  PARM_CHECK(points >= 2, "sweep needs at least two points");
  std::vector<ImpedancePoint> out;
  out.reserve(static_cast<std::size_t>(points));
  const double ratio = std::log(f_hi / f_lo);
  for (int i = 0; i < points; ++i) {
    const double f =
        f_lo * std::exp(ratio * static_cast<double>(i) / (points - 1));
    out.push_back({f, input_impedance(probe, f)});
  }
  return out;
}

ImpedancePoint AcAnalysis::peak(const std::vector<ImpedancePoint>& sweep) {
  PARM_CHECK(!sweep.empty(), "empty sweep");
  const ImpedancePoint* best = &sweep.front();
  for (const auto& p : sweep) {
    if (p.magnitude() > best->magnitude()) best = &p;
  }
  return *best;
}

}  // namespace parm::pdn
