// Small-signal AC analysis of the PDN: input impedance vs frequency.
//
// The classic PDN sign-off view: the impedance Z(f) a tile's switching
// current sees, looking into the power-delivery network. The bump
// inductance and the decoupling capacitance form a parallel resonant tank
// whose anti-resonance peak is exactly where workload ripple is most
// dangerous — if a task's dominant switching frequency lands on the peak,
// PSN is maximal (this is why the transient results depend on
// ripple_freq_hz). The analysis solves the complex-valued MNA system
//   (G + jωC + branch terms) · x = b
// at each frequency with a 1 A test current injected at the probe node;
// the resulting node voltage is the input impedance.
//
// DC voltage sources are AC-shorted (ideal regulators); existing current
// sources are AC-opened, per standard small-signal practice.
#pragma once

#include <complex>
#include <vector>

#include "pdn/circuit.hpp"

namespace parm::pdn {

/// One point of an impedance sweep.
struct ImpedancePoint {
  double freq_hz = 0.0;
  std::complex<double> z;  ///< Input impedance at the probe node (ohm).

  double magnitude() const { return std::abs(z); }
  double phase_deg() const;
};

class AcAnalysis {
 public:
  /// Prepares the analysis for `circuit` (stores a reference; the circuit
  /// must outlive the analysis).
  explicit AcAnalysis(const Circuit& circuit);

  /// Input impedance at `probe` for a single frequency (> 0).
  std::complex<double> input_impedance(NodeId probe, double freq_hz) const;

  /// Sweeps `points` frequencies, logarithmically spaced over
  /// [f_lo, f_hi].
  std::vector<ImpedancePoint> sweep(NodeId probe, double f_lo, double f_hi,
                                    int points) const;

  /// Frequency of the largest impedance magnitude in a sweep — the
  /// anti-resonance peak of the bump-L / decap-C tank.
  static ImpedancePoint peak(const std::vector<ImpedancePoint>& sweep);

 private:
  const Circuit& ckt_;
};

}  // namespace parm::pdn
