#include "pdn/chip_pdn.hpp"

#include <algorithm>
#include <string>

namespace parm::pdn {

ChipPdnModel::ChipPdnModel(const power::TechnologyNode& tech,
                           int domain_count, PackageRail rail,
                           PsnEstimatorConfig cfg)
    : tech_(tech), domain_count_(domain_count), rail_(rail), cfg_(cfg) {
  PARM_CHECK(domain_count >= 1, "need at least one domain");
  PARM_CHECK(rail.resistance >= 0.0 && rail.inductance >= 0.0,
             "rail impedance must be non-negative");
}

ChipPsn ChipPdnModel::estimate(
    double vdd,
    const std::vector<std::array<TileLoad, 4>>& loads) const {
  PARM_CHECK(static_cast<int>(loads.size()) == domain_count_,
             "loads size must match domain count");
  PARM_CHECK(vdd > 0.0, "supply must be positive");

  // Build one big circuit: source → optional shared rail → per-domain
  // bump branch → per-domain tile grid (same topology as
  // build_domain_circuit, inlined so all domains share the rail node).
  Circuit ckt;
  const NodeId src = ckt.add_node("src");
  ckt.add_voltage_source(src, kGround, vdd);

  NodeId rail = src;
  const bool has_rail = rail_.resistance > 0.0 || rail_.inductance > 0.0;
  if (has_rail) {
    const NodeId mid = ckt.add_node("pkg_mid");
    rail = ckt.add_node("rail");
    if (rail_.resistance > 0.0) {
      ckt.add_resistor(src, mid, rail_.resistance);
    } else {
      ckt.add_resistor(src, mid, 1e-9);  // keep the node connected
    }
    if (rail_.inductance > 0.0) {
      ckt.add_inductor(mid, rail, rail_.inductance);
    } else {
      ckt.add_resistor(mid, rail, 1e-9);
    }
  }

  std::vector<std::array<NodeId, 4>> tile_nodes(
      static_cast<std::size_t>(domain_count_));
  for (int d = 0; d < domain_count_; ++d) {
    const std::string prefix = "d" + std::to_string(d) + "_";
    const NodeId pkg = ckt.add_node(prefix + "pkg");
    const NodeId bump = ckt.add_node(prefix + "bump");
    ckt.add_resistor(rail, pkg, tech_.pdn_r_bump);
    ckt.add_inductor(pkg, bump, tech_.pdn_l_bump);
    auto& tn = tile_nodes[static_cast<std::size_t>(d)];
    for (int k = 0; k < 4; ++k) {
      tn[static_cast<std::size_t>(k)] =
          ckt.add_node(prefix + "tile" + std::to_string(k));
      ckt.add_resistor(bump, tn[static_cast<std::size_t>(k)],
                       tech_.pdn_r_wire);
      ckt.add_capacitor(tn[static_cast<std::size_t>(k)], kGround,
                        tech_.pdn_c_decap);
    }
    ckt.add_resistor(tn[0], tn[1], tech_.pdn_r_wire);
    ckt.add_resistor(tn[0], tn[2], tech_.pdn_r_wire);
    ckt.add_resistor(tn[1], tn[3], tech_.pdn_r_wire);
    ckt.add_resistor(tn[2], tn[3], tech_.pdn_r_wire);

    for (int k = 0; k < 4; ++k) {
      const TileLoad& load = loads[static_cast<std::size_t>(d)]
                                  [static_cast<std::size_t>(k)];
      PARM_CHECK(load.i_avg >= 0.0, "tile current must be non-negative");
      if (load.i_avg <= 0.0) continue;
      const CurrentWaveform w =
          load.modulation > 0.0
              ? CurrentWaveform::ripple(load.i_avg, load.modulation,
                                        tech_.ripple_freq_hz, load.phase)
              : CurrentWaveform::dc(load.i_avg);
      ckt.add_current_source(tn[static_cast<std::size_t>(k)], kGround, w);
    }
  }

  const double period = 1.0 / tech_.ripple_freq_hz;
  const double dt = period / cfg_.steps_per_period;
  const double t_end = period * (cfg_.warmup_periods + cfg_.measure_periods);
  const double record_from = period * cfg_.warmup_periods;

  std::vector<NodeId> record;
  record.reserve(static_cast<std::size_t>(domain_count_) * 4);
  for (const auto& tn : tile_nodes) {
    record.insert(record.end(), tn.begin(), tn.end());
  }

  TransientSolver solver(ckt, dt);
  const TransientTrace trace = solver.run(t_end, record, record_from);

  ChipPsn out;
  out.domains.resize(static_cast<std::size_t>(domain_count_));
  for (int d = 0; d < domain_count_; ++d) {
    DomainPsn& dom = out.domains[static_cast<std::size_t>(d)];
    for (std::size_t k = 0; k < 4; ++k) {
      const auto& v =
          trace.of(tile_nodes[static_cast<std::size_t>(d)][k]);
      double peak = 0.0, sum = 0.0;
      for (double volt : v) {
        const double psn = (vdd - volt) / vdd * 100.0;
        peak = std::max(peak, psn);
        sum += psn;
      }
      dom.tiles[k].peak_percent = peak;
      dom.tiles[k].avg_percent = sum / static_cast<double>(v.size());
      dom.peak_percent = std::max(dom.peak_percent, peak);
      dom.avg_percent += dom.tiles[k].avg_percent / 4.0;
    }
    out.peak_percent = std::max(out.peak_percent, dom.peak_percent);
    out.avg_percent += dom.avg_percent / domain_count_;
  }
  return out;
}

}  // namespace parm::pdn
