#include "pdn/chip_pdn.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"

namespace parm::pdn {

namespace {

struct ChipTopology {
  Circuit circuit;
  std::vector<std::array<NodeId, 4>> tile_nodes;
};

CurrentWaveform slot_waveform(const TileLoad& load, double ripple_freq_hz) {
  PARM_CHECK(load.i_avg >= 0.0, "tile current must be non-negative");
  if (load.i_avg <= 0.0) return CurrentWaveform::dc(0.0);
  return load.modulation > 0.0
             ? CurrentWaveform::ripple(load.i_avg, load.modulation,
                                       ripple_freq_hz, load.phase)
             : CurrentWaveform::dc(load.i_avg);
}

/// Builds the chip circuit: source → optional shared rail → per-domain
/// bump branch → per-domain tile grid (same topology as
/// build_domain_circuit, inlined so all domains share the rail node).
///
/// Degenerate rails collapse structurally instead of via placeholder
/// resistors: a zero-R or zero-L branch is simply omitted (direct
/// connection), and a fully zero-impedance rail aliases the source node,
/// making "ideal isolation" exact rather than approximated through 1 nΩ.
///
/// `loads == nullptr` builds the reusable engine form, where every slot
/// gets a (dummy) current source so source index d·4+k always maps to
/// slot k of domain d; values are rebound per estimate.
ChipTopology build_chip_circuit(
    const power::TechnologyNode& tech, int domain_count,
    const PackageRail& rail_cfg, double vdd,
    const std::vector<std::array<TileLoad, 4>>* loads) {
  ChipTopology out;
  Circuit& ckt = out.circuit;
  const NodeId src = ckt.add_node("src");
  ckt.add_voltage_source(src, kGround, vdd);

  NodeId rail = src;
  const bool has_r = rail_cfg.resistance > 0.0;
  const bool has_l = rail_cfg.inductance > 0.0;
  if (has_r && has_l) {
    const NodeId mid = ckt.add_node("pkg_mid");
    rail = ckt.add_node("rail");
    ckt.add_resistor(src, mid, rail_cfg.resistance);
    ckt.add_inductor(mid, rail, rail_cfg.inductance);
  } else if (has_r) {
    rail = ckt.add_node("rail");
    ckt.add_resistor(src, rail, rail_cfg.resistance);
  } else if (has_l) {
    rail = ckt.add_node("rail");
    ckt.add_inductor(src, rail, rail_cfg.inductance);
  }

  out.tile_nodes.resize(static_cast<std::size_t>(domain_count));
  for (int d = 0; d < domain_count; ++d) {
    const std::string prefix = "d" + std::to_string(d) + "_";
    const NodeId pkg = ckt.add_node(prefix + "pkg");
    const NodeId bump = ckt.add_node(prefix + "bump");
    ckt.add_resistor(rail, pkg, tech.pdn_r_bump);
    ckt.add_inductor(pkg, bump, tech.pdn_l_bump);
    auto& tn = out.tile_nodes[static_cast<std::size_t>(d)];
    for (int k = 0; k < 4; ++k) {
      tn[static_cast<std::size_t>(k)] =
          ckt.add_node(prefix + "tile" + std::to_string(k));
      ckt.add_resistor(bump, tn[static_cast<std::size_t>(k)],
                       tech.pdn_r_wire);
      ckt.add_capacitor(tn[static_cast<std::size_t>(k)], kGround,
                        tech.pdn_c_decap);
    }
    ckt.add_resistor(tn[0], tn[1], tech.pdn_r_wire);
    ckt.add_resistor(tn[0], tn[2], tech.pdn_r_wire);
    ckt.add_resistor(tn[1], tn[3], tech.pdn_r_wire);
    ckt.add_resistor(tn[2], tn[3], tech.pdn_r_wire);

    for (int k = 0; k < 4; ++k) {
      if (loads == nullptr) {
        ckt.add_current_source(tn[static_cast<std::size_t>(k)], kGround,
                               CurrentWaveform::dc(1.0));
        continue;
      }
      const TileLoad& load = (*loads)[static_cast<std::size_t>(d)]
                                     [static_cast<std::size_t>(k)];
      PARM_CHECK(load.i_avg >= 0.0, "tile current must be non-negative");
      if (load.i_avg <= 0.0) continue;
      ckt.add_current_source(tn[static_cast<std::size_t>(k)], kGround,
                             slot_waveform(load, tech.ripple_freq_hz));
    }
  }
  return out;
}

/// Shared per-tile reduction; accumulation order matches the original
/// implementation exactly (equivalence tests compare bitwise-close).
ChipPsn reduce_chip_psn(double vdd, int domain_count,
                        const std::vector<std::array<NodeId, 4>>& tile_nodes,
                        const TransientTrace& trace) {
  ChipPsn out;
  out.domains.resize(static_cast<std::size_t>(domain_count));
  for (int d = 0; d < domain_count; ++d) {
    DomainPsn& dom = out.domains[static_cast<std::size_t>(d)];
    for (std::size_t k = 0; k < 4; ++k) {
      const auto& v = trace.of(tile_nodes[static_cast<std::size_t>(d)][k]);
      double peak = 0.0, sum = 0.0;
      for (double volt : v) {
        const double psn = (vdd - volt) / vdd * 100.0;
        peak = std::max(peak, psn);
        sum += psn;
      }
      dom.tiles[k].peak_percent = peak;
      dom.tiles[k].avg_percent = sum / static_cast<double>(v.size());
      dom.peak_percent = std::max(dom.peak_percent, peak);
      dom.avg_percent += dom.tiles[k].avg_percent / 4.0;
    }
    out.peak_percent = std::max(out.peak_percent, dom.peak_percent);
    out.avg_percent += dom.avg_percent / domain_count;
  }
  return out;
}

}  // namespace

/// Cached chip solver: all-sources circuit plus the shared factorizations
/// (valid for every (vdd, loads) because those are RHS-only).
struct ChipPdnModel::Engine {
  ChipTopology topo;
  TransientSolver solver;

  Engine(ChipTopology t, double dt, obs::Registry* registry)
      : topo(std::move(t)),
        solver(topo.circuit, dt,
               std::make_shared<const LuFactorization>(
                   TransientSolver::factorize(topo.circuit, dt, registry)),
               std::make_shared<const LuFactorization>(
                   DcSolver::factorize(topo.circuit)),
               registry) {}
};

ChipPdnModel::ChipPdnModel(const power::TechnologyNode& tech,
                           int domain_count, PackageRail rail,
                           PsnEstimatorConfig cfg, obs::Registry* registry)
    : tech_(tech),
      domain_count_(domain_count),
      rail_(rail),
      cfg_(cfg),
      registry_(registry),
      cache_hits_(
          &obs::resolve(registry).counter("pdn.factorization_cache_hits")),
      cache_misses_(
          &obs::resolve(registry).counter("pdn.factorization_cache_misses")) {
  PARM_CHECK(domain_count >= 1, "need at least one domain");
  PARM_CHECK(rail.resistance >= 0.0 && rail.inductance >= 0.0,
             "rail impedance must be non-negative");
}

ChipPdnModel::~ChipPdnModel() = default;

ChipPsn ChipPdnModel::estimate(
    double vdd,
    const std::vector<std::array<TileLoad, 4>>& loads) const {
  PARM_CHECK(static_cast<int>(loads.size()) == domain_count_,
             "loads size must match domain count");
  PARM_CHECK(vdd > 0.0, "supply must be positive");
  if (!cfg_.reuse_factorization) return estimate_cold(vdd, loads);

  const double period = 1.0 / tech_.ripple_freq_hz;
  const double dt = period / cfg_.steps_per_period;
  const double t_end = period * (cfg_.warmup_periods + cfg_.measure_periods);
  const double record_from = period * cfg_.warmup_periods;

  // One engine serialized by the model's mutex: chip-level analyses solve
  // one big circuit, so the win is the cached factorization, not
  // intra-model parallelism.
  std::lock_guard<std::mutex> lk(mu_);
  if (engine_ == nullptr) {
    cache_misses_->inc();
    engine_ = std::make_unique<Engine>(
        build_chip_circuit(tech_, domain_count_, rail_, 1.0, nullptr), dt,
        registry_);
  } else {
    cache_hits_->inc();
  }

  Circuit& ckt = engine_->topo.circuit;
  ckt.set_voltage_source(0, vdd);
  for (int d = 0; d < domain_count_; ++d) {
    for (int k = 0; k < 4; ++k) {
      ckt.set_current_source(
          static_cast<std::size_t>(d * 4 + k),
          slot_waveform(loads[static_cast<std::size_t>(d)]
                             [static_cast<std::size_t>(k)],
                        tech_.ripple_freq_hz));
    }
  }

  std::vector<NodeId> record;
  record.reserve(static_cast<std::size_t>(domain_count_) * 4);
  for (const auto& tn : engine_->topo.tile_nodes) {
    record.insert(record.end(), tn.begin(), tn.end());
  }
  const TransientTrace trace = engine_->solver.run(t_end, record, record_from);
  return reduce_chip_psn(vdd, domain_count_, engine_->topo.tile_nodes, trace);
}

ChipPsn ChipPdnModel::estimate_cold(
    double vdd,
    const std::vector<std::array<TileLoad, 4>>& loads) const {
  PARM_CHECK(static_cast<int>(loads.size()) == domain_count_,
             "loads size must match domain count");
  PARM_CHECK(vdd > 0.0, "supply must be positive");

  ChipTopology topo =
      build_chip_circuit(tech_, domain_count_, rail_, vdd, &loads);

  const double period = 1.0 / tech_.ripple_freq_hz;
  const double dt = period / cfg_.steps_per_period;
  const double t_end = period * (cfg_.warmup_periods + cfg_.measure_periods);
  const double record_from = period * cfg_.warmup_periods;

  std::vector<NodeId> record;
  record.reserve(static_cast<std::size_t>(domain_count_) * 4);
  for (const auto& tn : topo.tile_nodes) {
    record.insert(record.end(), tn.begin(), tn.end());
  }

  TransientSolver solver(topo.circuit, dt, registry_);
  const TransientTrace trace = solver.run(t_end, record, record_from);
  return reduce_chip_psn(vdd, domain_count_, topo.tile_nodes, trace);
}

}  // namespace parm::pdn
