// Chip-level PDN with a shared package rail (sensitivity analysis).
//
// The paper assumes power domains are "physically separated so that there
// is no interference between tiles from different domains" (section 3.3)
// — each domain has its own VRM. Real packages still share impedance
// upstream of the VRMs. This model quantifies how much that assumption
// matters: all domains hang off one package node
//
//   Vsrc ──Rpkg──Lpkg──(rail)──[per-domain Rb+Lb──bump──...]×D
//
// so high current in one domain sags the rail every other domain feeds
// from. With Rpkg = Lpkg = 0 the model degenerates to D independent
// domains and must match the per-domain estimator exactly — that identity
// is a regression test.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "pdn/psn_estimator.hpp"

namespace parm::pdn {

/// Shared-rail impedance upstream of the per-domain regulators.
struct PackageRail {
  double resistance = 0.5e-3;  ///< Rpkg (ohm)
  double inductance = 3e-12;   ///< Lpkg (H)
};

/// Per-domain PSN results for a whole chip solved as one circuit.
struct ChipPsn {
  std::vector<DomainPsn> domains;
  double peak_percent = 0.0;  ///< max over all domains
  double avg_percent = 0.0;   ///< mean of domain averages
};

class ChipPdnModel {
 public:
  /// `domain_count` domains at the same supply, optionally coupled
  /// through `rail`. Pass a zero-impedance rail for ideal isolation.
  /// Metrics go to `registry`; null selects the process-default.
  ChipPdnModel(const power::TechnologyNode& tech, int domain_count,
               PackageRail rail, PsnEstimatorConfig cfg = {},
               obs::Registry* registry = nullptr);
  ~ChipPdnModel();

  /// Estimates PSN for the whole chip. `loads[d][k]` is the load of slot
  /// k in domain d; vdd applies to every domain (shared-rail analyses use
  /// one DVS level to isolate the coupling effect).
  ///
  /// The chip MNA matrices depend only on (tech, rail, domain_count, dt),
  /// so the factorizations are computed on first use and reused for every
  /// later call (unless the config disables reuse). Thread-safe.
  ChipPsn estimate(double vdd,
                   const std::vector<std::array<TileLoad, 4>>& loads) const;

  /// The pre-cache path: rebuilds and refactorizes the chip circuit from
  /// scratch. Kept as the golden reference for equivalence tests.
  ChipPsn estimate_cold(
      double vdd, const std::vector<std::array<TileLoad, 4>>& loads) const;

  int domain_count() const { return domain_count_; }
  const PackageRail& rail() const { return rail_; }

 private:
  struct Engine;

  power::TechnologyNode tech_;
  int domain_count_;
  PackageRail rail_;
  PsnEstimatorConfig cfg_;
  obs::Registry* registry_;  ///< nullable; threaded into the cached solver
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;

  mutable std::mutex mu_;                   ///< guards engine_
  mutable std::unique_ptr<Engine> engine_;  ///< lazily built cached solver
};

}  // namespace parm::pdn
