#include "pdn/circuit.hpp"

namespace parm::pdn {

Circuit::Circuit() { node_names_.push_back("gnd"); }

NodeId Circuit::add_node(std::string name) {
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(node_names_.size() - 1);
}

void Circuit::check_node(NodeId n) const {
  PARM_CHECK(n >= 0 && n < node_count(), "unknown node id");
}

void Circuit::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  PARM_CHECK(ohms > 0.0, "resistance must be positive");
  PARM_CHECK(a != b, "resistor terminals must differ");
  resistors_.push_back({a, b, ohms});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a);
  check_node(b);
  PARM_CHECK(farads > 0.0, "capacitance must be positive");
  PARM_CHECK(a != b, "capacitor terminals must differ");
  capacitors_.push_back({a, b, farads});
}

void Circuit::add_inductor(NodeId a, NodeId b, double henries) {
  check_node(a);
  check_node(b);
  PARM_CHECK(henries > 0.0, "inductance must be positive");
  PARM_CHECK(a != b, "inductor terminals must differ");
  inductors_.push_back({a, b, henries});
}

void Circuit::add_voltage_source(NodeId pos, NodeId neg, double volts) {
  check_node(pos);
  check_node(neg);
  PARM_CHECK(pos != neg, "voltage source terminals must differ");
  vsources_.push_back({pos, neg, volts});
}

void Circuit::add_current_source(NodeId pos, NodeId neg,
                                 CurrentWaveform waveform) {
  check_node(pos);
  check_node(neg);
  PARM_CHECK(pos != neg, "current source terminals must differ");
  isources_.push_back({pos, neg, waveform});
}

void Circuit::set_voltage_source(std::size_t index, double volts) {
  PARM_CHECK(index < vsources_.size(), "voltage source index out of range");
  vsources_[index].volts = volts;
}

void Circuit::set_current_source(std::size_t index, CurrentWaveform waveform) {
  PARM_CHECK(index < isources_.size(), "current source index out of range");
  isources_[index].waveform = waveform;
}

const std::string& Circuit::node_name(NodeId n) const {
  check_node(n);
  return node_names_[static_cast<std::size_t>(n)];
}

std::size_t Circuit::unknown_count() const {
  return static_cast<std::size_t>(node_count() - 1) + inductors_.size() +
         vsources_.size();
}

namespace {

// Index of a node's voltage unknown, or SIZE_MAX for ground.
inline std::size_t vidx(NodeId n) {
  return n == kGround ? static_cast<std::size_t>(-1)
                      : static_cast<std::size_t>(n - 1);
}

inline void stamp_conductance(Matrix& a, NodeId n1, NodeId n2, double g) {
  const std::size_t i = vidx(n1);
  const std::size_t j = vidx(n2);
  if (i != static_cast<std::size_t>(-1)) a(i, i) += g;
  if (j != static_cast<std::size_t>(-1)) a(j, j) += g;
  if (i != static_cast<std::size_t>(-1) && j != static_cast<std::size_t>(-1)) {
    a(i, j) -= g;
    a(j, i) -= g;
  }
}

inline void stamp_rhs_current(std::vector<double>& z, NodeId into,
                              double amps) {
  const std::size_t i = vidx(into);
  if (i != static_cast<std::size_t>(-1)) z[i] += amps;
}

}  // namespace

LuFactorization DcSolver::factorize(const Circuit& ckt) {
  const std::size_t n_nodes = static_cast<std::size_t>(ckt.node_count() - 1);
  const std::size_t n_l = ckt.inductors_.size();
  const std::size_t n_v = ckt.vsources_.size();
  const std::size_t n = n_nodes + n_l + n_v;
  PARM_CHECK(n > 0, "empty circuit");

  Matrix a(n, n);
  for (const auto& r : ckt.resistors_) {
    stamp_conductance(a, r.a, r.b, 1.0 / r.ohms);
  }
  // Capacitors: open at DC — no stamp.
  // Inductors: 0 V branch (short) with unknown current.
  for (std::size_t k = 0; k < n_l; ++k) {
    const auto& l = ckt.inductors_[k];
    const std::size_t row = n_nodes + k;
    const std::size_t i = vidx(l.a);
    const std::size_t j = vidx(l.b);
    if (i != static_cast<std::size_t>(-1)) {
      a(i, row) += 1.0;  // branch current leaves node a
      a(row, i) += 1.0;
    }
    if (j != static_cast<std::size_t>(-1)) {
      a(j, row) -= 1.0;
      a(row, j) -= 1.0;
    }
    // row equation: v_a − v_b = 0
  }
  for (std::size_t k = 0; k < n_v; ++k) {
    const auto& v = ckt.vsources_[k];
    const std::size_t row = n_nodes + n_l + k;
    const std::size_t i = vidx(v.pos);
    const std::size_t j = vidx(v.neg);
    if (i != static_cast<std::size_t>(-1)) {
      a(i, row) += 1.0;
      a(row, i) += 1.0;
    }
    if (j != static_cast<std::size_t>(-1)) {
      a(j, row) -= 1.0;
      a(row, j) -= 1.0;
    }
  }
  return LuFactorization(std::move(a));
}

DcSolver::DcSolver(const Circuit& ckt) : DcSolver(ckt, factorize(ckt)) {}

DcSolver::DcSolver(const Circuit& ckt, const LuFactorization& lu) {
  const std::size_t n_nodes = static_cast<std::size_t>(ckt.node_count() - 1);
  const std::size_t n_l = ckt.inductors_.size();
  const std::size_t n_v = ckt.vsources_.size();
  const std::size_t n = n_nodes + n_l + n_v;
  PARM_CHECK(lu.size() == n, "factorization does not match this circuit");

  std::vector<double> z(n, 0.0);
  for (std::size_t k = 0; k < n_v; ++k) {
    z[n_nodes + n_l + k] = ckt.vsources_[k].volts;
  }
  for (const auto& s : ckt.isources_) {
    const double i0 = s.waveform.average();
    stamp_rhs_current(z, s.pos, -i0);
    stamp_rhs_current(z, s.neg, +i0);
  }

  const std::vector<double> x = lu.solve(z);

  voltages_.assign(static_cast<std::size_t>(ckt.node_count()), 0.0);
  for (std::size_t i = 0; i < n_nodes; ++i) voltages_[i + 1] = x[i];
  inductor_currents_.resize(n_l);
  for (std::size_t k = 0; k < n_l; ++k) inductor_currents_[k] = x[n_nodes + k];
}

double DcSolver::voltage(NodeId n) const {
  PARM_CHECK(n >= 0 && n < static_cast<NodeId>(voltages_.size()),
             "unknown node id");
  return voltages_[static_cast<std::size_t>(n)];
}

}  // namespace parm::pdn
