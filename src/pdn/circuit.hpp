// Linear circuit netlist with modified-nodal-analysis (MNA) stamps.
//
// This is the "SPICE-lite" substrate that replaces the SPICE PDN simulation
// of the paper. Supported elements: resistors, capacitors, inductors, DC
// voltage sources, and time-varying current sources (workloads). Node 0 is
// ground. Unknowns are the non-ground node voltages plus one branch current
// per inductor and per voltage source.
//
// Sign conventions:
//  - add_current_source(pos, neg): the source pulls its instantaneous
//    current out of `pos` and returns it into `neg` (a load hangs between
//    the supply node and ground as (supply, ground)).
//  - Voltage source branch current is positive when flowing from the +
//    terminal through the external circuit back to the − terminal appears
//    negative; only used internally / for tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdn/linalg.hpp"
#include "pdn/waveform.hpp"

namespace parm::pdn {

using NodeId = std::int32_t;
inline constexpr NodeId kGround = 0;

/// Immutable-after-build linear circuit. Build with the add_* calls, then
/// hand to DcSolver / TransientSolver.
class Circuit {
 public:
  Circuit();

  /// Adds a named node and returns its id (> 0; ground is pre-created).
  NodeId add_node(std::string name);

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  void add_inductor(NodeId a, NodeId b, double henries);
  void add_voltage_source(NodeId pos, NodeId neg, double volts);
  void add_current_source(NodeId pos, NodeId neg, CurrentWaveform waveform);

  /// Updates the value of voltage source `index` (in add order). Source
  /// values enter the MNA system only through the right-hand side, so any
  /// cached LU factorization of this circuit stays valid.
  void set_voltage_source(std::size_t index, double volts);
  /// Replaces the waveform of current source `index` (in add order).
  /// Current sources stamp nothing into the MNA matrix, so any cached LU
  /// factorization of this circuit stays valid.
  void set_current_source(std::size_t index, CurrentWaveform waveform);

  std::int32_t node_count() const {
    return static_cast<std::int32_t>(node_names_.size());
  }
  const std::string& node_name(NodeId n) const;

  std::size_t resistor_count() const { return resistors_.size(); }
  std::size_t capacitor_count() const { return capacitors_.size(); }
  std::size_t inductor_count() const { return inductors_.size(); }
  std::size_t voltage_source_count() const { return vsources_.size(); }
  std::size_t current_source_count() const { return isources_.size(); }

  /// Number of MNA unknowns: (nodes − 1) + inductors + voltage sources.
  std::size_t unknown_count() const;

 private:
  friend class DcSolver;
  friend class TransientSolver;
  friend class AcAnalysis;
  friend std::string to_spice(const Circuit& circuit,
                              const std::string& title);

  struct Resistor {
    NodeId a, b;
    double ohms;
  };
  struct Capacitor {
    NodeId a, b;
    double farads;
  };
  struct Inductor {
    NodeId a, b;
    double henries;
  };
  struct VoltageSource {
    NodeId pos, neg;
    double volts;
  };
  struct CurrentSource {
    NodeId pos, neg;
    CurrentWaveform waveform;
  };

  void check_node(NodeId n) const;

  std::vector<std::string> node_names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
};

/// DC operating point: capacitors open, inductors shorted (0 V sources),
/// current sources at their average value.
class DcSolver {
 public:
  explicit DcSolver(const Circuit& circuit);

  /// Operating point reusing a factorization obtained from factorize().
  /// Valid across set_voltage_source / set_current_source updates, since
  /// source values only reach the right-hand side.
  DcSolver(const Circuit& circuit, const LuFactorization& lu);

  /// Stamps and factorizes the DC MNA matrix of `circuit`. The matrix
  /// depends only on the topology and element values, never on source
  /// values, so one factorization serves every operating point of a
  /// fixed-topology circuit.
  static LuFactorization factorize(const Circuit& circuit);

  /// Node voltages indexed by NodeId (ground = 0.0).
  const std::vector<double>& node_voltages() const { return voltages_; }
  double voltage(NodeId n) const;

  /// Branch currents of the inductors, in add order.
  const std::vector<double>& inductor_currents() const {
    return inductor_currents_;
  }

 private:
  std::vector<double> voltages_;
  std::vector<double> inductor_currents_;
};

}  // namespace parm::pdn
