#include "pdn/linalg.hpp"

#include <cmath>

namespace parm::pdn {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  PARM_CHECK(x.size() == cols_, "dimension mismatch in multiply");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  PARM_CHECK(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  constexpr double kSingularTol = 1e-14;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: find the largest |entry| in column k at/below row k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    PARM_CHECK(best > kSingularTol,
               "singular MNA matrix (floating node or V-source loop?)");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot, c));
      }
      std::swap(perm_[k], perm_[pivot]);
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / lu_(k, k);
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  std::vector<double> x;
  solve_inplace(b, x);
  return x;
}

void LuFactorization::solve_inplace(const std::vector<double>& b,
                                    std::vector<double>& x) const {
  const std::size_t n = size();
  PARM_CHECK(b.size() == n, "dimension mismatch in solve");
  PARM_DCHECK(&b != &x, "solve_inplace aliasing");
  x.resize(n);
  // Forward substitution with permuted RHS (L has unit diagonal).
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
}

}  // namespace parm::pdn
