// Minimal dense linear algebra for the MNA circuit solver.
//
// PDN domain circuits are small (tens of unknowns), so a dense LU with
// partial pivoting is the right tool: factorize the (constant) MNA matrix
// once per transient analysis and back-substitute once per timestep.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace parm::pdn {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    PARM_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    PARM_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// y = A·x (sizes must agree).
  std::vector<double> multiply(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
///
/// Throws CheckError if the matrix is numerically singular (pivot below
/// a tiny absolute tolerance), which for MNA means a floating node or a
/// short-circuited voltage-source loop in the netlist.
class LuFactorization {
 public:
  explicit LuFactorization(Matrix a);

  /// Solves A·x = b, returning x.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A·x = b into caller-provided `x` (resized to n) without
  /// allocating when x already has capacity. `x` must not alias `b` —
  /// forward substitution reads b through the row permutation while x is
  /// being written. This is the transient solver's per-timestep path.
  void solve_inplace(const std::vector<double>& b,
                     std::vector<double>& x) const;

  std::size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;                ///< Combined L (unit diag) and U factors.
  std::vector<std::size_t> perm_;  ///< Row permutation.
};

}  // namespace parm::pdn
