#include "pdn/pdn_netlist.hpp"

#include <string>

namespace parm::pdn {

DomainCircuit build_domain_circuit(const power::TechnologyNode& tech,
                                   double vdd,
                                   const std::array<TileLoad, 4>& loads) {
  PARM_CHECK(vdd > 0.0, "supply must be positive");
  DomainCircuit out;
  Circuit& ckt = out.circuit;

  const NodeId src = ckt.add_node("src");
  const NodeId pkg = ckt.add_node("pkg");
  const NodeId bump = ckt.add_node("bump");
  out.bump_node = bump;

  ckt.add_voltage_source(src, kGround, vdd);
  ckt.add_resistor(src, pkg, tech.pdn_r_bump);
  ckt.add_inductor(pkg, bump, tech.pdn_l_bump);

  for (int k = 0; k < 4; ++k) {
    const NodeId t = ckt.add_node("tile" + std::to_string(k));
    out.tile_nodes[static_cast<std::size_t>(k)] = t;
    ckt.add_resistor(bump, t, tech.pdn_r_wire);
    ckt.add_capacitor(t, kGround, tech.pdn_c_decap);
  }

  // Lateral grid wires between mesh-adjacent tiles of the 2x2 block.
  const auto tn = [&](int k) {
    return out.tile_nodes[static_cast<std::size_t>(k)];
  };
  ckt.add_resistor(tn(0), tn(1), tech.pdn_r_wire);
  ckt.add_resistor(tn(0), tn(2), tech.pdn_r_wire);
  ckt.add_resistor(tn(1), tn(3), tech.pdn_r_wire);
  ckt.add_resistor(tn(2), tn(3), tech.pdn_r_wire);

  for (int k = 0; k < 4; ++k) {
    const TileLoad& load = loads[static_cast<std::size_t>(k)];
    PARM_CHECK(load.i_avg >= 0.0, "tile current must be non-negative");
    if (load.i_avg <= 0.0) continue;
    const CurrentWaveform w =
        load.modulation > 0.0
            ? CurrentWaveform::ripple(load.i_avg, load.modulation,
                                      tech.ripple_freq_hz, load.phase)
            : CurrentWaveform::dc(load.i_avg);
    ckt.add_current_source(tn(k), kGround, w);
  }
  return out;
}

DomainCircuit build_partition_circuit(const power::TechnologyNode& tech,
                                      double vdd,
                                      const std::vector<TileLoad>& loads,
                                      const std::string& partition_name) {
  PARM_CHECK(!loads.empty(),
             "PDN partition " + partition_name + " is empty; a power "
             "domain needs at least one tile");
  PARM_CHECK(loads.size() <= 4,
             "PDN partition " + partition_name + " has " +
                 std::to_string(loads.size()) +
                 " tiles; domains are at most 2x2 (4 tiles) — "
                 "repartition the topology into blocks of <= 4");
  std::array<TileLoad, 4> slots{};  // trailing slots stay dark
  for (std::size_t k = 0; k < loads.size(); ++k) slots[k] = loads[k];
  return build_domain_circuit(tech, vdd, slots);
}

}  // namespace parm::pdn
