// Per-domain PDN netlist builder (paper Fig. 2 topology).
//
// Each 2×2-tile power domain has its own voltage regulator and is
// physically isolated from other domains, so the PDN is modeled one domain
// at a time:
//
//   Vsrc ──Rb──┬──Lb──(bump)──Rc──(tile k)───┐   per tile k = 0..3
//              │                             ├─ Cdecap to ground
//              │                             └─ I_load(t) to ground
//   lateral Rc between mesh-adjacent tiles of the domain
//
// Tile slots follow MeshGeometry::domain_tiles order: 0=SW, 1=SE, 2=NW,
// 3=NE; slots (0,1), (0,2), (1,3), (2,3) are 1-hop adjacent, (0,3) and
// (1,2) are the 2-hop diagonals. The lateral wire graph is what makes
// tile-to-tile interference fall off with Manhattan distance (Fig. 3(b)).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "pdn/circuit.hpp"
#include "power/technology.hpp"

namespace parm::pdn {

/// Current load of one tile of a domain (core + router aggregated).
struct TileLoad {
  double i_avg = 0.0;      ///< Average supply current (A).
  double modulation = 0.0; ///< Ripple depth in [0, 1): High≈0.7, Low≈0.25.
  double phase = 0.0;      ///< Ripple phase offset in periods [0, 1).
};

/// A built domain circuit plus the node ids needed to observe it.
struct DomainCircuit {
  Circuit circuit;
  NodeId bump_node = kGround;
  std::array<NodeId, 4> tile_nodes{};
};

/// Maps a task's switching-activity factor (in [0, 1]) to the ripple
/// modulation depth of its current waveform. More active tasks both draw
/// more current (via the power model) and swing it harder; the affine map
/// is calibrated so the Fig. 3(b) H-L interference excess lands near the
/// paper's ~35 %.
constexpr double activity_to_modulation(double activity) {
  const double m = 0.3 + 0.5 * activity;
  return m > 0.85 ? 0.85 : m;
}

/// Representative modulation depths of the two activity classes (used by
/// worst-case characterization benches; runtime code uses the continuous
/// mapping above).
inline constexpr double kHighActivityModulation = activity_to_modulation(0.85);
inline constexpr double kLowActivityModulation = activity_to_modulation(0.4);

/// Builds the RLC circuit of one power domain at supply `vdd` with the
/// given per-slot tile loads. Slots with i_avg == 0 (dark tiles) get no
/// current source but keep their decap.
DomainCircuit build_domain_circuit(const power::TechnologyNode& tech,
                                   double vdd,
                                   const std::array<TileLoad, 4>& loads);

/// Topology-partition entry point: builds the domain circuit for a
/// partition of 1..4 tiles (short partitions of irregular topologies
/// leave the trailing slots dark — decap only, no current source).
/// Throws CheckError naming `partition_name` (e.g. "file:ring.topo
/// domain 3") when the partition cannot be realized as a 2x2 PDN block
/// — empty, or more than 4 tiles. This is the descriptive replacement
/// for the old hard even-mesh-dimensions assumption: any topology whose
/// partitioner emits oversized domains is rejected here with the
/// offending partition spelled out.
DomainCircuit build_partition_circuit(const power::TechnologyNode& tech,
                                      double vdd,
                                      const std::vector<TileLoad>& loads,
                                      const std::string& partition_name);

}  // namespace parm::pdn
