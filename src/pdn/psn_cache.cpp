#include "pdn/psn_cache.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace parm::pdn {

namespace {

/// FNV-1a over the bytes of one quantized integer.
inline void fnv_add(std::uint64_t& h, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint64_t>(v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
}

inline void fnv_add_quantized(std::uint64_t& h, double x, double step) {
  fnv_add(h, static_cast<std::int64_t>(std::llround(x / step)));
}

}  // namespace

PsnCache::PsnCache(std::size_t capacity, obs::Registry* registry)
    : capacity_(capacity),
      hits_(&obs::resolve(registry).counter("pdn.psn_cache_hits")),
      misses_(&obs::resolve(registry).counter("pdn.psn_cache_misses")),
      evictions_(&obs::resolve(registry).counter("pdn.psn_cache_evictions")) {
  PARM_CHECK(capacity_ > 0, "cache capacity must be positive");
}

std::uint64_t PsnCache::key(double vdd,
                            const std::array<TileLoad, 4>& loads) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv_add_quantized(h, vdd, kVddStep);
  for (const TileLoad& l : loads) {
    fnv_add_quantized(h, l.i_avg, kCurrentStep);
    fnv_add_quantized(h, l.modulation, kModulationStep);
    fnv_add_quantized(h, l.phase, kPhaseStep);
  }
  return h;
}

std::array<TileLoad, 4> PsnCache::quantize(
    const std::array<TileLoad, 4>& loads) {
  std::array<TileLoad, 4> q = loads;
  for (TileLoad& l : q) {
    l.i_avg = std::round(l.i_avg / kCurrentStep) * kCurrentStep;
    l.modulation = std::round(l.modulation / kModulationStep) *
                   kModulationStep;
    l.phase = std::round(l.phase / kPhaseStep) * kPhaseStep;
  }
  return q;
}

bool PsnCache::get(std::uint64_t key, DomainPsn& out) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_->inc();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  out = it->second->value;
  hits_->inc();
  return true;
}

bool PsnCache::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.find(key) != index_.end();
}

void PsnCache::put(std::uint64_t key, const DomainPsn& value) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_->inc();
  }
  lru_.push_front(Entry{key, value});
  index_.emplace(key, lru_.begin());
}

std::size_t PsnCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

void PsnCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
}

void PsnCache::save(snapshot::Writer& w) const {
  std::lock_guard<std::mutex> lk(mu_);
  w.begin_section("PSNC");
  w.u64(capacity_);
  w.u64(lru_.size());
  for (const Entry& e : lru_) {  // most recently used first
    w.u64(e.key);
    for (const TilePsn& t : e.value.tiles) {
      w.f64(t.peak_percent);
      w.f64(t.avg_percent);
    }
    w.f64(e.value.peak_percent);
    w.f64(e.value.avg_percent);
  }
}

void PsnCache::restore(snapshot::Reader& r) {
  std::lock_guard<std::mutex> lk(mu_);
  r.expect_section("PSNC");
  const std::uint64_t capacity = r.u64();
  if (capacity != capacity_) {
    throw snapshot::SnapshotError(
        "PSN cache capacity mismatch between snapshot and config (the "
        "eviction sequence would diverge)");
  }
  const std::uint64_t n = r.count(88);
  if (n > capacity_) {
    throw snapshot::SnapshotError("PSN cache snapshot exceeds its capacity");
  }
  lru_.clear();
  index_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry e;
    e.key = r.u64();
    for (TilePsn& t : e.value.tiles) {
      t.peak_percent = r.f64();
      t.avg_percent = r.f64();
    }
    e.value.peak_percent = r.f64();
    e.value.avg_percent = r.f64();
    // Entries were written most-recent-first; appending at the back
    // reproduces the exact recency order.
    lru_.push_back(e);
    if (!index_.emplace(e.key, std::prev(lru_.end())).second) {
      throw snapshot::SnapshotError("PSN cache snapshot holds a duplicate key");
    }
  }
}

}  // namespace parm::pdn
