// Shared bounded LRU memo for domain PSN estimates.
//
// A domain's PSN depends only on (vdd, per-slot loads). Quantizing that
// signature — supply to 10 mV, currents to 2 mA, modulation to 0.02,
// phase to 0.05 periods — collapses the continuum of nearly identical
// operating points onto a small set of keys, so steady phases of a run
// (and admission's repeated candidate probes) hit the memo instead of
// re-running a transient. Loads must be quantized with quantize() before
// estimating on a miss, so hits and misses see identical physics.
//
// Thread-safe (single mutex; the protected work is pointer shuffling, far
// cheaper than the transient solve it saves) and bounded: least recently
// used entries are evicted at capacity. Hit/miss/eviction counts are
// exported as pdn.psn_cache_{hits,misses,evictions}.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "pdn/psn_estimator.hpp"
#include "snapshot/serializer.hpp"

namespace parm::pdn {

class PsnCache {
 public:
  /// Quantization steps of the key signature.
  static constexpr double kVddStep = 0.01;
  static constexpr double kCurrentStep = 0.002;
  static constexpr double kModulationStep = 0.02;
  static constexpr double kPhaseStep = 0.05;

  /// Default capacity: comfortably covers the distinct operating points
  /// of a long mixed-workload run while bounding memory to a few MB.
  static constexpr std::size_t kDefaultCapacity = 16384;

  /// Hit/miss/eviction counters go to `registry`; null selects the
  /// process-default.
  explicit PsnCache(std::size_t capacity = kDefaultCapacity,
                    obs::Registry* registry = nullptr);

  /// FNV-1a over the quantized (vdd, loads) signature. Stable across
  /// platforms and runs — safe to persist alongside results.
  static std::uint64_t key(double vdd, const std::array<TileLoad, 4>& loads);

  /// Loads rounded onto the key grid; estimate these on a miss so the
  /// stored result is exact for every later hit of the same key.
  static std::array<TileLoad, 4> quantize(
      const std::array<TileLoad, 4>& loads);

  /// Looks up `key`, refreshing its recency. True (and fills `out`) on a
  /// hit. Counts pdn.psn_cache_hits / _misses.
  bool get(std::uint64_t key, DomainPsn& out);

  /// Presence probe: no recency refresh, no metric ticks. Used to plan an
  /// epoch's solver work (sim::PsnSamplingPhase) without perturbing the
  /// hit/miss/eviction sequence the replayed get/put calls produce.
  bool contains(std::uint64_t key) const;

  /// Inserts or refreshes `key`, evicting the least recently used entry
  /// at capacity. Concurrent puts of the same key are benign (the values
  /// are identical by construction).
  void put(std::uint64_t key, const DomainPsn& value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

  // --- Snapshot hooks ---
  /// Serializes the entries in exact LRU order (most recent first), so a
  /// restored cache produces the identical hit/miss/eviction sequence —
  /// and therefore identical pdn.solves telemetry — as the original run.
  /// Neither path ticks the hit/miss metrics.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  struct Entry {
    std::uint64_t key;
    DomainPsn value;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace parm::pdn
