#include "pdn/psn_estimator.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace parm::pdn {

namespace {

/// Waveform for one tile slot. Dark slots (i_avg == 0) become dc(0)
/// sources, which contribute exactly nothing to the RHS at every instant
/// and to the DC average — bitwise identical to omitting the source, but
/// they keep the engine circuit's source count fixed so one factorization
/// serves every load pattern.
CurrentWaveform slot_waveform(const TileLoad& load, double ripple_freq_hz) {
  PARM_CHECK(load.i_avg >= 0.0, "tile current must be non-negative");
  if (load.i_avg <= 0.0) return CurrentWaveform::dc(0.0);
  return load.modulation > 0.0
             ? CurrentWaveform::ripple(load.i_avg, load.modulation,
                                       ripple_freq_hz, load.phase)
             : CurrentWaveform::dc(load.i_avg);
}

/// Per-tile PSN reduction shared by the cold and cached paths; the
/// accumulation order matches the original implementation exactly.
void accumulate_psn(double vdd, const std::array<NodeId, 4>& tile_nodes,
                    const TransientTrace& trace, DomainPsn& out) {
  for (std::size_t k = 0; k < 4; ++k) {
    const std::vector<double>& v = trace.of(tile_nodes[k]);
    PARM_CHECK(!v.empty(), "empty transient trace");
    double peak = 0.0;
    double sum = 0.0;
    for (double volt : v) {
      const double psn = (vdd - volt) / vdd * 100.0;
      peak = std::max(peak, psn);
      sum += psn;
    }
    out.tiles[k].peak_percent = peak;
    out.tiles[k].avg_percent = sum / static_cast<double>(v.size());
    out.peak_percent = std::max(out.peak_percent, peak);
    out.avg_percent += out.tiles[k].avg_percent / 4.0;
  }
}

}  // namespace

namespace {

/// Engine circuit: every tile slot gets a (dummy) current source so that
/// source index k always maps to tile slot k; the values are rebound per
/// estimate. The placeholder vdd/current values never survive to a solve.
DomainCircuit build_engine_circuit(const power::TechnologyNode& tech) {
  const std::array<TileLoad, 4> dummy{TileLoad{1.0, 0.0, 0.0},
                                      TileLoad{1.0, 0.0, 0.0},
                                      TileLoad{1.0, 0.0, 0.0},
                                      TileLoad{1.0, 0.0, 0.0}};
  return build_domain_circuit(tech, 1.0, dummy);
}

}  // namespace

/// One reusable solve context: a domain circuit with all four current
/// sources present (source k ↔ tile slot k) whose values are rebound per
/// estimate, plus a solver adopting the shared factorizations.
struct PsnEstimator::Engine {
  DomainCircuit dom;
  TransientSolver solver;

  Engine(DomainCircuit d, double dt,
         std::shared_ptr<const LuFactorization> transient_lu,
         std::shared_ptr<const LuFactorization> dc_lu,
         obs::Registry* registry)
      : dom(std::move(d)),
        solver(dom.circuit, dt, std::move(transient_lu), std::move(dc_lu),
               registry) {}
};

PsnEstimator::PsnEstimator(const power::TechnologyNode& tech,
                           PsnEstimatorConfig cfg, obs::Registry* registry)
    : tech_(tech),
      cfg_(cfg),
      registry_(registry),
      cache_hits_(
          &obs::resolve(registry).counter("pdn.factorization_cache_hits")),
      cache_misses_(
          &obs::resolve(registry).counter("pdn.factorization_cache_misses")) {
  PARM_CHECK(cfg.warmup_periods >= 0, "warmup must be non-negative");
  PARM_CHECK(cfg.measure_periods > 0, "must measure at least one period");
  PARM_CHECK(cfg.steps_per_period >= 8, "too few steps per period");
}

PsnEstimator::~PsnEstimator() = default;

PsnEstimator::PsnEstimator(const PsnEstimator& other)
    : PsnEstimator(other.tech_, other.cfg_, other.registry_) {}

PsnEstimator& PsnEstimator::operator=(const PsnEstimator& other) {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> lk(mu_);
  tech_ = other.tech_;
  cfg_ = other.cfg_;
  registry_ = other.registry_;
  cache_hits_ = other.cache_hits_;
  cache_misses_ = other.cache_misses_;
  idle_engines_.clear();
  transient_lu_.reset();
  dc_lu_.reset();
  return *this;
}

std::unique_ptr<PsnEstimator::Engine> PsnEstimator::acquire_engine() const {
  const double period = 1.0 / tech_.ripple_freq_hz;
  const double dt = period / cfg_.steps_per_period;

  std::shared_ptr<const LuFactorization> transient_lu;
  std::shared_ptr<const LuFactorization> dc_lu;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!idle_engines_.empty()) {
      std::unique_ptr<Engine> engine = std::move(idle_engines_.back());
      idle_engines_.pop_back();
      cache_hits_->inc();
      return engine;
    }
    transient_lu = transient_lu_;
    dc_lu = dc_lu_;
  }

  DomainCircuit dom = build_engine_circuit(tech_);
  if (transient_lu && dc_lu) {
    // New engine for a busy pool: cached factorizations, no O(n³) work,
    // just stamping a fresh circuit for this caller.
    cache_hits_->inc();
  } else {
    // First use: factorize outside the lock. Concurrent first calls may
    // race here; the factorizations are identical, the first publisher
    // wins, and losers adopt the published copy.
    cache_misses_->inc();
    transient_lu = std::make_shared<const LuFactorization>(
        TransientSolver::factorize(dom.circuit, dt, registry_));
    dc_lu = std::make_shared<const LuFactorization>(
        DcSolver::factorize(dom.circuit));
    std::lock_guard<std::mutex> lk(mu_);
    if (!transient_lu_) {
      transient_lu_ = transient_lu;
      dc_lu_ = dc_lu;
    } else {
      transient_lu = transient_lu_;
      dc_lu = dc_lu_;
    }
  }
  return std::make_unique<Engine>(std::move(dom), dt, std::move(transient_lu),
                                  std::move(dc_lu), registry_);
}

void PsnEstimator::release_engine(std::unique_ptr<Engine> engine) const {
  std::lock_guard<std::mutex> lk(mu_);
  idle_engines_.push_back(std::move(engine));
}

DomainPsn PsnEstimator::estimate(
    double vdd, const std::array<TileLoad, 4>& loads) const {
  DomainPsn out;
  const bool any_active =
      std::any_of(loads.begin(), loads.end(),
                  [](const TileLoad& l) { return l.i_avg > 0.0; });
  if (!any_active) return out;
  if (!cfg_.reuse_factorization) return estimate_cold(vdd, loads);

  std::unique_ptr<Engine> engine = acquire_engine();
  Circuit& ckt = engine->dom.circuit;
  ckt.set_voltage_source(0, vdd);
  for (std::size_t k = 0; k < 4; ++k) {
    ckt.set_current_source(k, slot_waveform(loads[k], tech_.ripple_freq_hz));
  }

  const double period = 1.0 / tech_.ripple_freq_hz;
  const double t_end =
      period * (cfg_.warmup_periods + cfg_.measure_periods);
  const double record_from = period * cfg_.warmup_periods;

  const std::vector<NodeId> record(engine->dom.tile_nodes.begin(),
                                   engine->dom.tile_nodes.end());
  const TransientTrace trace = engine->solver.run(t_end, record, record_from);
  accumulate_psn(vdd, engine->dom.tile_nodes, trace, out);
  release_engine(std::move(engine));
  return out;
}

DomainPsn PsnEstimator::estimate_cold(
    double vdd, const std::array<TileLoad, 4>& loads) const {
  DomainPsn out;
  const bool any_active =
      std::any_of(loads.begin(), loads.end(),
                  [](const TileLoad& l) { return l.i_avg > 0.0; });
  if (!any_active) return out;

  DomainCircuit dom = build_domain_circuit(tech_, vdd, loads);

  const double period = 1.0 / tech_.ripple_freq_hz;
  const double dt = period / cfg_.steps_per_period;
  const double t_end =
      period * (cfg_.warmup_periods + cfg_.measure_periods);
  const double record_from = period * cfg_.warmup_periods;

  TransientSolver solver(dom.circuit, dt, registry_);
  const std::vector<NodeId> record(dom.tile_nodes.begin(),
                                   dom.tile_nodes.end());
  const TransientTrace trace = solver.run(t_end, record, record_from);
  accumulate_psn(vdd, dom.tile_nodes, trace, out);
  return out;
}

}  // namespace parm::pdn
