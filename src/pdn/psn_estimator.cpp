#include "pdn/psn_estimator.hpp"

#include <algorithm>

namespace parm::pdn {

PsnEstimator::PsnEstimator(const power::TechnologyNode& tech,
                           PsnEstimatorConfig cfg)
    : tech_(tech), cfg_(cfg) {
  PARM_CHECK(cfg.warmup_periods >= 0, "warmup must be non-negative");
  PARM_CHECK(cfg.measure_periods > 0, "must measure at least one period");
  PARM_CHECK(cfg.steps_per_period >= 8, "too few steps per period");
}

DomainPsn PsnEstimator::estimate(
    double vdd, const std::array<TileLoad, 4>& loads) const {
  DomainPsn out;
  const bool any_active =
      std::any_of(loads.begin(), loads.end(),
                  [](const TileLoad& l) { return l.i_avg > 0.0; });
  if (!any_active) return out;

  DomainCircuit dom = build_domain_circuit(tech_, vdd, loads);

  const double period = 1.0 / tech_.ripple_freq_hz;
  const double dt = period / cfg_.steps_per_period;
  const double t_end =
      period * (cfg_.warmup_periods + cfg_.measure_periods);
  const double record_from = period * cfg_.warmup_periods;

  TransientSolver solver(dom.circuit, dt);
  const std::vector<NodeId> record(dom.tile_nodes.begin(),
                                   dom.tile_nodes.end());
  const TransientTrace trace = solver.run(t_end, record, record_from);

  for (std::size_t k = 0; k < 4; ++k) {
    const std::vector<double>& v = trace.of(dom.tile_nodes[k]);
    PARM_CHECK(!v.empty(), "empty transient trace");
    double peak = 0.0;
    double sum = 0.0;
    for (double volt : v) {
      const double psn = (vdd - volt) / vdd * 100.0;
      peak = std::max(peak, psn);
      sum += psn;
    }
    out.tiles[k].peak_percent = peak;
    out.tiles[k].avg_percent = sum / static_cast<double>(v.size());
    out.peak_percent = std::max(out.peak_percent, peak);
    out.avg_percent += out.tiles[k].avg_percent / 4.0;
  }
  return out;
}

}  // namespace parm::pdn
