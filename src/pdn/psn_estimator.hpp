// Power-supply-noise estimation for one power domain.
//
// Runs a short transient analysis of the domain PDN circuit under the
// given tile loads and reports per-tile and domain-level PSN as a
// percentage of the supply:  PSN(t) = (Vdd − V_tile(t)) / Vdd · 100.
// Peak PSN is the maximum over the measurement window after a warm-up
// prefix is discarded; average PSN is the time average. This is the
// quantity the paper's on-die sensors expose to PARM/PANR and the one
// plotted in Figs. 1, 3 and 7.
//
// Hot path: the domain topology is fixed per technology node, and the MNA
// matrices depend only on (tech, dt) — never on vdd or the tile loads
// (those are RHS-only; see transient.hpp). The estimator therefore stamps
// and LU-factorizes the transient + DC systems once, and every estimate()
// call just rebinds the source values on a pooled per-thread engine and
// re-runs the (allocation-free) stepping loop. Cache effectiveness is
// exported as pdn.factorization_cache_hits / _misses.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "pdn/pdn_netlist.hpp"
#include "pdn/transient.hpp"

namespace parm::pdn {

/// PSN statistics for a single tile, in percent of Vdd.
struct TilePsn {
  double peak_percent = 0.0;
  double avg_percent = 0.0;
};

/// PSN statistics for one domain (4 tiles).
struct DomainPsn {
  std::array<TilePsn, 4> tiles{};
  double peak_percent = 0.0;  ///< max over tiles of tile peaks
  double avg_percent = 0.0;   ///< mean over tiles of tile averages
};

/// Transient-analysis knobs for PSN estimation.
struct PsnEstimatorConfig {
  int warmup_periods = 2;      ///< ripple periods discarded before measuring
  int measure_periods = 4;     ///< ripple periods measured
  int steps_per_period = 96;   ///< timesteps per ripple period
  /// Reuse the cached LU factorizations across estimate() calls (the
  /// default hot path). false forces the cold rebuild-and-refactorize
  /// path on every call — for golden-equivalence tests and benchmarks.
  bool reuse_factorization = true;
};

class PsnEstimator {
 public:
  /// Metrics (pdn.factorization_cache_hits/misses, the solver's
  /// pdn.solves/steps/solve_us) go to `registry`; null selects the
  /// process-default.
  explicit PsnEstimator(const power::TechnologyNode& tech,
                        PsnEstimatorConfig cfg = {},
                        obs::Registry* registry = nullptr);
  ~PsnEstimator();

  /// Copying shares nothing: the copy starts with an empty engine pool
  /// and factorizes on first use (the mutex and pool are not copyable).
  PsnEstimator(const PsnEstimator& other);
  PsnEstimator& operator=(const PsnEstimator& other);

  /// Estimates PSN for one domain at supply `vdd` with the given loads.
  /// All-dark domains (every i_avg == 0) report zero PSN without running
  /// a transient. Thread-safe: concurrent calls draw distinct engines
  /// from the pool and share only the immutable LU factorizations.
  DomainPsn estimate(double vdd, const std::array<TileLoad, 4>& loads) const;

  /// The pre-cache path: builds the domain circuit and factorizes from
  /// scratch. Kept as the golden reference for equivalence tests.
  DomainPsn estimate_cold(double vdd,
                          const std::array<TileLoad, 4>& loads) const;

  const power::TechnologyNode& technology() const { return tech_; }
  const PsnEstimatorConfig& config() const { return cfg_; }

 private:
  struct Engine;

  std::unique_ptr<Engine> acquire_engine() const;
  void release_engine(std::unique_ptr<Engine> engine) const;

  power::TechnologyNode tech_;
  PsnEstimatorConfig cfg_;
  obs::Registry* registry_;     ///< nullable; threaded into pooled engines
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;

  // Engine pool. The LU factorizations are computed once (first estimate)
  // and shared by every engine; each engine owns a mutable circuit whose
  // source values are rebound per call, plus the solver's scratch state.
  mutable std::mutex mu_;
  mutable std::vector<std::unique_ptr<Engine>> idle_engines_;
  mutable std::shared_ptr<const LuFactorization> transient_lu_;
  mutable std::shared_ptr<const LuFactorization> dc_lu_;
};

}  // namespace parm::pdn
