// Power-supply-noise estimation for one power domain.
//
// Runs a short transient analysis of the domain PDN circuit under the
// given tile loads and reports per-tile and domain-level PSN as a
// percentage of the supply:  PSN(t) = (Vdd − V_tile(t)) / Vdd · 100.
// Peak PSN is the maximum over the measurement window after a warm-up
// prefix is discarded; average PSN is the time average. This is the
// quantity the paper's on-die sensors expose to PARM/PANR and the one
// plotted in Figs. 1, 3 and 7.
#pragma once

#include <array>

#include "pdn/pdn_netlist.hpp"
#include "pdn/transient.hpp"

namespace parm::pdn {

/// PSN statistics for a single tile, in percent of Vdd.
struct TilePsn {
  double peak_percent = 0.0;
  double avg_percent = 0.0;
};

/// PSN statistics for one domain (4 tiles).
struct DomainPsn {
  std::array<TilePsn, 4> tiles{};
  double peak_percent = 0.0;  ///< max over tiles of tile peaks
  double avg_percent = 0.0;   ///< mean over tiles of tile averages
};

/// Transient-analysis knobs for PSN estimation.
struct PsnEstimatorConfig {
  int warmup_periods = 2;      ///< ripple periods discarded before measuring
  int measure_periods = 4;     ///< ripple periods measured
  int steps_per_period = 96;   ///< timesteps per ripple period
};

class PsnEstimator {
 public:
  explicit PsnEstimator(const power::TechnologyNode& tech,
                        PsnEstimatorConfig cfg = {});

  /// Estimates PSN for one domain at supply `vdd` with the given loads.
  /// All-dark domains (every i_avg == 0) report zero PSN without running
  /// a transient.
  DomainPsn estimate(double vdd, const std::array<TileLoad, 4>& loads) const;

  const power::TechnologyNode& technology() const { return tech_; }
  const PsnEstimatorConfig& config() const { return cfg_; }

 private:
  power::TechnologyNode tech_;
  PsnEstimatorConfig cfg_;
};

}  // namespace parm::pdn
