#include "pdn/spice_export.hpp"

#include <iomanip>
#include <sstream>

namespace parm::pdn {

namespace {
std::string node_name(const Circuit& ckt, NodeId n) {
  return n == kGround ? "0" : ckt.node_name(n);
}
}  // namespace

std::string to_spice(const Circuit& ckt, const std::string& title) {
  std::ostringstream os;
  os << "* " << title << "\n";
  os << std::scientific << std::setprecision(6);

  int idx = 1;
  for (const auto& r : ckt.resistors_) {
    os << "R" << idx++ << " " << node_name(ckt, r.a) << " "
       << node_name(ckt, r.b) << " " << r.ohms << "\n";
  }
  idx = 1;
  for (const auto& c : ckt.capacitors_) {
    os << "C" << idx++ << " " << node_name(ckt, c.a) << " "
       << node_name(ckt, c.b) << " " << c.farads << "\n";
  }
  idx = 1;
  for (const auto& l : ckt.inductors_) {
    os << "L" << idx++ << " " << node_name(ckt, l.a) << " "
       << node_name(ckt, l.b) << " " << l.henries << "\n";
  }
  idx = 1;
  for (const auto& v : ckt.vsources_) {
    os << "V" << idx++ << " " << node_name(ckt, v.pos) << " "
       << node_name(ckt, v.neg) << " DC " << v.volts << "\n";
  }
  idx = 1;
  for (const auto& s : ckt.isources_) {
    os << "I" << idx << " " << node_name(ckt, s.pos) << " "
       << node_name(ckt, s.neg) << " DC " << s.waveform.average();
    if (s.waveform.modulation() > 0.0) {
      os << " ; ripple m=" << s.waveform.modulation()
         << " f=" << s.waveform.frequency() << "Hz";
    }
    os << "\n";
    ++idx;
  }
  os << ".end\n";
  return os.str();
}

}  // namespace parm::pdn
