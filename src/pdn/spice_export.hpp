// SPICE netlist export.
//
// Dumps a Circuit as a standard .sp deck so the PDN models built by this
// library can be cross-checked in any external SPICE (ngspice, HSPICE,
// Spectre). Time-varying current sources are emitted as their DC average
// with the ripple parameters in a trailing comment (SPICE PWL/PULSE
// equivalents depend on simulator dialect, so we leave the waveform
// reconstruction to the reader — the parameters are complete).
#pragma once

#include <string>

#include "pdn/circuit.hpp"

namespace parm::pdn {

/// Renders `circuit` as a SPICE deck titled `title`.
std::string to_spice(const Circuit& circuit,
                     const std::string& title = "parm pdn netlist");

}  // namespace parm::pdn
