#include "pdn/transient.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace parm::pdn {

namespace {
inline std::size_t vidx(NodeId n) {
  return n == kGround ? static_cast<std::size_t>(-1)
                      : static_cast<std::size_t>(n - 1);
}
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

const std::vector<double>& TransientTrace::of(NodeId n) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == n) return voltages[i];
  }
  PARM_CHECK(false, "node was not recorded in this trace");
}

TransientSolver::TransientSolver(const Circuit& ckt, double dt)
    : ckt_(ckt), dt_(dt) {
  PARM_CHECK(dt > 0.0, "timestep must be positive");
  n_nodes_ = static_cast<std::size_t>(ckt.node_count() - 1);
  n_l_ = ckt.inductor_count();
  n_v_ = ckt.voltage_source_count();
  const std::size_t n = n_nodes_ + n_l_ + n_v_;
  PARM_CHECK(n > 0, "empty circuit");

  Matrix a(n, n);
  // Resistors.
  for (const auto& r : ckt_.resistors_) {
    const double g = 1.0 / r.ohms;
    const std::size_t i = vidx(r.a);
    const std::size_t j = vidx(r.b);
    if (i != kNone) a(i, i) += g;
    if (j != kNone) a(j, j) += g;
    if (i != kNone && j != kNone) {
      a(i, j) -= g;
      a(j, i) -= g;
    }
  }
  // Capacitor trapezoidal companions: conductance 2C/dt.
  for (const auto& c : ckt_.capacitors_) {
    const double g = 2.0 * c.farads / dt_;
    const std::size_t i = vidx(c.a);
    const std::size_t j = vidx(c.b);
    if (i != kNone) a(i, i) += g;
    if (j != kNone) a(j, j) += g;
    if (i != kNone && j != kNone) {
      a(i, j) -= g;
      a(j, i) -= g;
    }
  }
  // Inductor branches: i_{n+1} − (dt/2L)(v_a − v_b)_{n+1} = rhs.
  for (std::size_t k = 0; k < n_l_; ++k) {
    const auto& l = ckt_.inductors_[k];
    const std::size_t row = n_nodes_ + k;
    const std::size_t i = vidx(l.a);
    const std::size_t j = vidx(l.b);
    const double gl = dt_ / (2.0 * l.henries);
    a(row, row) += 1.0;
    if (i != kNone) {
      a(i, row) += 1.0;  // branch current leaves node a
      a(row, i) -= gl;
    }
    if (j != kNone) {
      a(j, row) -= 1.0;
      a(row, j) += gl;
    }
  }
  // Voltage sources.
  for (std::size_t k = 0; k < n_v_; ++k) {
    const auto& v = ckt_.vsources_[k];
    const std::size_t row = n_nodes_ + n_l_ + k;
    const std::size_t i = vidx(v.pos);
    const std::size_t j = vidx(v.neg);
    if (i != kNone) {
      a(i, row) += 1.0;
      a(row, i) += 1.0;
    }
    if (j != kNone) {
      a(j, row) -= 1.0;
      a(row, j) -= 1.0;
    }
  }
  lu_.emplace(std::move(a));
  static obs::Counter& factorizations =
      obs::Registry::instance().counter("pdn.factorizations");
  factorizations.inc();
}

TransientTrace TransientSolver::run(double t_end,
                                    const std::vector<NodeId>& record_nodes,
                                    double record_from) {
  PARM_CHECK(t_end > 0.0, "t_end must be positive");
  PARM_CHECK(record_from >= 0.0 && record_from < t_end,
             "record window must lie within the run");

  static obs::Counter& solves =
      obs::Registry::instance().counter("pdn.solves");
  static obs::Counter& steps = obs::Registry::instance().counter("pdn.steps");
  static obs::Histogram& solve_us =
      obs::Registry::instance().histogram("pdn.solve_us");
  solves.inc();
  obs::ScopedTimer solve_timer(solve_us);
  obs::ScopedTrace solve_trace("pdn", "pdn.solve");

  // --- Initial conditions from the DC operating point. ---
  DcSolver dc(ckt_);
  std::vector<double> v_node(static_cast<std::size_t>(ckt_.node_count()));
  for (NodeId n = 0; n < ckt_.node_count(); ++n)
    v_node[static_cast<std::size_t>(n)] = dc.voltage(n);

  // Capacitor state: voltage across and current through (0 at DC).
  std::vector<double> cap_v(ckt_.capacitors_.size());
  std::vector<double> cap_i(ckt_.capacitors_.size(), 0.0);
  for (std::size_t k = 0; k < ckt_.capacitors_.size(); ++k) {
    const auto& c = ckt_.capacitors_[k];
    cap_v[k] = v_node[static_cast<std::size_t>(c.a)] -
               v_node[static_cast<std::size_t>(c.b)];
  }
  // Inductor state: branch current and voltage across (0 at DC).
  std::vector<double> ind_i = dc.inductor_currents();
  std::vector<double> ind_v(ckt_.inductors_.size(), 0.0);

  TransientTrace trace;
  trace.nodes = record_nodes;
  trace.voltages.resize(record_nodes.size());
  const std::size_t n_steps = static_cast<std::size_t>(t_end / dt_);
  const std::size_t est_rec = n_steps + 2;
  trace.times.reserve(est_rec);
  for (auto& v : trace.voltages) v.reserve(est_rec);

  auto record = [&](double t) {
    if (t < record_from) return;
    trace.times.push_back(t);
    for (std::size_t i = 0; i < record_nodes.size(); ++i) {
      trace.voltages[i].push_back(
          v_node[static_cast<std::size_t>(record_nodes[i])]);
    }
  };
  record(0.0);

  const std::size_t n = lu_->size();
  std::vector<double> z(n);

  double t = 0.0;
  for (std::size_t step = 0; step < n_steps; ++step) {
    t += dt_;
    std::fill(z.begin(), z.end(), 0.0);

    // Capacitor companion RHS: Ieq = (2C/dt)·v_prev + i_prev into node a.
    for (std::size_t k = 0; k < ckt_.capacitors_.size(); ++k) {
      const auto& c = ckt_.capacitors_[k];
      const double ieq = (2.0 * c.farads / dt_) * cap_v[k] + cap_i[k];
      const std::size_t i = vidx(c.a);
      const std::size_t j = vidx(c.b);
      if (i != kNone) z[i] += ieq;
      if (j != kNone) z[j] -= ieq;
    }
    // Inductor companion RHS.
    for (std::size_t k = 0; k < ckt_.inductors_.size(); ++k) {
      const auto& l = ckt_.inductors_[k];
      const std::size_t row = n_nodes_ + k;
      z[row] = ind_i[k] + (dt_ / (2.0 * l.henries)) * ind_v[k];
    }
    // Voltage sources (DC).
    for (std::size_t k = 0; k < n_v_; ++k) {
      z[n_nodes_ + n_l_ + k] = ckt_.vsources_[k].volts;
    }
    // Current sources at time t.
    for (const auto& s : ckt_.isources_) {
      const double i_t = s.waveform.value(t);
      const std::size_t i = vidx(s.pos);
      const std::size_t j = vidx(s.neg);
      if (i != kNone) z[i] -= i_t;
      if (j != kNone) z[j] += i_t;
    }

    const std::vector<double> x = lu_->solve(z);

    // Unpack node voltages and update element state.
    for (std::size_t i = 0; i < n_nodes_; ++i) v_node[i + 1] = x[i];
    v_node[0] = 0.0;
    for (std::size_t k = 0; k < ckt_.capacitors_.size(); ++k) {
      const auto& c = ckt_.capacitors_[k];
      const double v_new = v_node[static_cast<std::size_t>(c.a)] -
                           v_node[static_cast<std::size_t>(c.b)];
      const double i_new =
          (2.0 * c.farads / dt_) * (v_new - cap_v[k]) - cap_i[k];
      cap_v[k] = v_new;
      cap_i[k] = i_new;
    }
    for (std::size_t k = 0; k < ckt_.inductors_.size(); ++k) {
      const auto& l = ckt_.inductors_[k];
      ind_i[k] = x[n_nodes_ + k];
      ind_v[k] = v_node[static_cast<std::size_t>(l.a)] -
                 v_node[static_cast<std::size_t>(l.b)];
    }

    record(t);
  }
  steps.inc(n_steps);
  return trace;
}

}  // namespace parm::pdn
