#include "pdn/transient.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace parm::pdn {

namespace {
inline std::size_t vidx(NodeId n) {
  return n == kGround ? static_cast<std::size_t>(-1)
                      : static_cast<std::size_t>(n - 1);
}
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

const std::vector<double>& TransientTrace::of(NodeId n) const {
  if (!node_row_.empty()) {
    if (n >= 0 && static_cast<std::size_t>(n) < node_row_.size()) {
      const std::int32_t row = node_row_[static_cast<std::size_t>(n)];
      if (row >= 0) return voltages[static_cast<std::size_t>(row)];
    }
  } else {
    // Hand-assembled trace without an index: scan the recorded ids.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == n) return voltages[i];
    }
  }
  std::string msg = "node " + std::to_string(n) +
                    " was not recorded in this trace (recorded nodes:";
  if (nodes.empty()) msg += " none";
  for (const NodeId rec : nodes) msg += ' ' + std::to_string(rec);
  msg += ')';
  PARM_CHECK(false, msg);
}

LuFactorization TransientSolver::factorize(const Circuit& ckt, double dt,
                                           obs::Registry* registry) {
  PARM_CHECK(dt > 0.0, "timestep must be positive");
  const std::size_t n_nodes = static_cast<std::size_t>(ckt.node_count() - 1);
  const std::size_t n_l = ckt.inductor_count();
  const std::size_t n_v = ckt.voltage_source_count();
  const std::size_t n = n_nodes + n_l + n_v;
  PARM_CHECK(n > 0, "empty circuit");

  Matrix a(n, n);
  // Resistors.
  for (const auto& r : ckt.resistors_) {
    const double g = 1.0 / r.ohms;
    const std::size_t i = vidx(r.a);
    const std::size_t j = vidx(r.b);
    if (i != kNone) a(i, i) += g;
    if (j != kNone) a(j, j) += g;
    if (i != kNone && j != kNone) {
      a(i, j) -= g;
      a(j, i) -= g;
    }
  }
  // Capacitor trapezoidal companions: conductance 2C/dt.
  for (const auto& c : ckt.capacitors_) {
    const double g = 2.0 * c.farads / dt;
    const std::size_t i = vidx(c.a);
    const std::size_t j = vidx(c.b);
    if (i != kNone) a(i, i) += g;
    if (j != kNone) a(j, j) += g;
    if (i != kNone && j != kNone) {
      a(i, j) -= g;
      a(j, i) -= g;
    }
  }
  // Inductor branches: i_{n+1} − (dt/2L)(v_a − v_b)_{n+1} = rhs.
  for (std::size_t k = 0; k < n_l; ++k) {
    const auto& l = ckt.inductors_[k];
    const std::size_t row = n_nodes + k;
    const std::size_t i = vidx(l.a);
    const std::size_t j = vidx(l.b);
    const double gl = dt / (2.0 * l.henries);
    a(row, row) += 1.0;
    if (i != kNone) {
      a(i, row) += 1.0;  // branch current leaves node a
      a(row, i) -= gl;
    }
    if (j != kNone) {
      a(j, row) -= 1.0;
      a(row, j) += gl;
    }
  }
  // Voltage sources.
  for (std::size_t k = 0; k < n_v; ++k) {
    const auto& v = ckt.vsources_[k];
    const std::size_t row = n_nodes + n_l + k;
    const std::size_t i = vidx(v.pos);
    const std::size_t j = vidx(v.neg);
    if (i != kNone) {
      a(i, row) += 1.0;
      a(row, i) += 1.0;
    }
    if (j != kNone) {
      a(j, row) -= 1.0;
      a(row, j) -= 1.0;
    }
  }

  obs::resolve(registry).counter("pdn.factorizations").inc();
  return LuFactorization(std::move(a));
}

TransientSolver::TransientSolver(const Circuit& ckt, double dt,
                                 obs::Registry* registry)
    : TransientSolver(
          ckt, dt,
          std::make_shared<const LuFactorization>(
              factorize(ckt, dt, registry)),
          std::make_shared<const LuFactorization>(DcSolver::factorize(ckt)),
          registry) {}

TransientSolver::TransientSolver(const Circuit& ckt, double dt,
                                 std::shared_ptr<const LuFactorization>
                                     transient_lu,
                                 std::shared_ptr<const LuFactorization> dc_lu,
                                 obs::Registry* registry)
    : ckt_(ckt),
      dt_(dt),
      lu_(std::move(transient_lu)),
      dc_lu_(std::move(dc_lu)),
      solves_(&obs::resolve(registry).counter("pdn.solves")),
      steps_(&obs::resolve(registry).counter("pdn.steps")),
      solve_us_(&obs::resolve(registry).histogram("pdn.solve_us")) {
  PARM_CHECK(dt > 0.0, "timestep must be positive");
  PARM_CHECK(lu_ != nullptr && dc_lu_ != nullptr,
             "prefactorized systems must be non-null");
  n_nodes_ = static_cast<std::size_t>(ckt.node_count() - 1);
  n_l_ = ckt.inductor_count();
  n_v_ = ckt.voltage_source_count();
  const std::size_t n = n_nodes_ + n_l_ + n_v_;
  PARM_CHECK(n > 0, "empty circuit");
  PARM_CHECK(lu_->size() == n && dc_lu_->size() == n,
             "factorization does not match this circuit");
}

TransientTrace TransientSolver::run(double t_end,
                                    const std::vector<NodeId>& record_nodes,
                                    double record_from) {
  PARM_CHECK(t_end > 0.0, "t_end must be positive");
  PARM_CHECK(record_from >= 0.0 && record_from < t_end,
             "record window must lie within the run");

  solves_->inc();
  obs::ScopedTimer solve_timer(*solve_us_);
  obs::ScopedTrace solve_trace("pdn", "pdn.solve");

  // --- Initial conditions from the DC operating point. ---
  // The DC factorization was computed once in the constructor; only the
  // RHS depends on the current source values.
  DcSolver dc(ckt_, *dc_lu_);
  v_node_.resize(static_cast<std::size_t>(ckt_.node_count()));
  for (NodeId n = 0; n < ckt_.node_count(); ++n)
    v_node_[static_cast<std::size_t>(n)] = dc.voltage(n);

  // Capacitor state: voltage across and current through (0 at DC).
  const std::size_t n_c = ckt_.capacitors_.size();
  cap_v_.resize(n_c);
  cap_i_.assign(n_c, 0.0);
  for (std::size_t k = 0; k < n_c; ++k) {
    const auto& c = ckt_.capacitors_[k];
    cap_v_[k] = v_node_[static_cast<std::size_t>(c.a)] -
                v_node_[static_cast<std::size_t>(c.b)];
  }
  // Inductor state: branch current and voltage across (0 at DC).
  ind_i_ = dc.inductor_currents();
  ind_v_.assign(n_l_, 0.0);

  TransientTrace trace;
  trace.nodes = record_nodes;
  trace.voltages.resize(record_nodes.size());
  trace.node_row_.assign(static_cast<std::size_t>(ckt_.node_count()), -1);
  for (std::size_t i = 0; i < record_nodes.size(); ++i) {
    auto& row = trace.node_row_[static_cast<std::size_t>(record_nodes[i])];
    if (row < 0) row = static_cast<std::int32_t>(i);  // first mention wins
  }
  const std::size_t n_steps = static_cast<std::size_t>(t_end / dt_);
  const std::size_t est_rec = n_steps + 2;
  trace.times.reserve(est_rec);
  for (auto& v : trace.voltages) v.reserve(est_rec);

  auto record = [&](double t) {
    if (t < record_from) return;
    trace.times.push_back(t);
    for (std::size_t i = 0; i < record_nodes.size(); ++i) {
      trace.voltages[i].push_back(
          v_node_[static_cast<std::size_t>(record_nodes[i])]);
    }
  };
  record(0.0);

  const std::size_t n = lu_->size();
  z_.resize(n);

  double t = 0.0;
  for (std::size_t step = 0; step < n_steps; ++step) {
    t += dt_;
    std::fill(z_.begin(), z_.end(), 0.0);

    // Capacitor companion RHS: Ieq = (2C/dt)·v_prev + i_prev into node a.
    for (std::size_t k = 0; k < n_c; ++k) {
      const auto& c = ckt_.capacitors_[k];
      const double ieq = (2.0 * c.farads / dt_) * cap_v_[k] + cap_i_[k];
      const std::size_t i = vidx(c.a);
      const std::size_t j = vidx(c.b);
      if (i != kNone) z_[i] += ieq;
      if (j != kNone) z_[j] -= ieq;
    }
    // Inductor companion RHS.
    for (std::size_t k = 0; k < n_l_; ++k) {
      const auto& l = ckt_.inductors_[k];
      const std::size_t row = n_nodes_ + k;
      z_[row] = ind_i_[k] + (dt_ / (2.0 * l.henries)) * ind_v_[k];
    }
    // Voltage sources (DC).
    for (std::size_t k = 0; k < n_v_; ++k) {
      z_[n_nodes_ + n_l_ + k] = ckt_.vsources_[k].volts;
    }
    // Current sources at time t.
    for (const auto& s : ckt_.isources_) {
      const double i_t = s.waveform.value(t);
      const std::size_t i = vidx(s.pos);
      const std::size_t j = vidx(s.neg);
      if (i != kNone) z_[i] -= i_t;
      if (j != kNone) z_[j] += i_t;
    }

    lu_->solve_inplace(z_, x_);

    // Unpack node voltages and update element state.
    for (std::size_t i = 0; i < n_nodes_; ++i) v_node_[i + 1] = x_[i];
    v_node_[0] = 0.0;
    for (std::size_t k = 0; k < n_c; ++k) {
      const auto& c = ckt_.capacitors_[k];
      const double v_new = v_node_[static_cast<std::size_t>(c.a)] -
                           v_node_[static_cast<std::size_t>(c.b)];
      const double i_new =
          (2.0 * c.farads / dt_) * (v_new - cap_v_[k]) - cap_i_[k];
      cap_v_[k] = v_new;
      cap_i_[k] = i_new;
    }
    for (std::size_t k = 0; k < n_l_; ++k) {
      const auto& l = ckt_.inductors_[k];
      ind_i_[k] = x_[n_nodes_ + k];
      ind_v_[k] = v_node_[static_cast<std::size_t>(l.a)] -
                  v_node_[static_cast<std::size_t>(l.b)];
    }

    record(t);
  }
  steps_->inc(n_steps);
  return trace;
}

}  // namespace parm::pdn
