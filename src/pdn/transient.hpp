// Fixed-timestep transient analysis with trapezoidal integration.
//
// The MNA matrix is constant for a fixed timestep, so it is LU-factorized
// once; each step only rebuilds the right-hand side from the companion
// models (capacitor/inductor history) and the time-varying current sources.
// Initial conditions come from the DC operating point (sources at their
// average), which keeps the startup transient small; callers additionally
// discard a warm-up prefix before measuring PSN.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "pdn/circuit.hpp"

namespace parm::pdn {

/// Recorded node-voltage traces from a transient run.
struct TransientTrace {
  std::vector<double> times;                       ///< Recorded instants (s).
  std::vector<NodeId> nodes;                       ///< Recorded node ids.
  std::vector<std::vector<double>> voltages;       ///< [node index][step].

  /// Trace row for a node id; throws if the node was not recorded.
  const std::vector<double>& of(NodeId n) const;
};

class TransientSolver {
 public:
  /// Prepares (stamps + factorizes) the solver for circuit `ckt` with
  /// timestep `dt` seconds.
  TransientSolver(const Circuit& ckt, double dt);

  /// Runs from t = 0 to `t_end`, recording voltages of `record_nodes` for
  /// t >= record_from. Node voltages at t = 0 are the DC operating point.
  TransientTrace run(double t_end, const std::vector<NodeId>& record_nodes,
                     double record_from = 0.0);

  double dt() const { return dt_; }

 private:
  const Circuit& ckt_;
  double dt_;
  std::size_t n_nodes_;  ///< non-ground node count
  std::size_t n_l_;
  std::size_t n_v_;
  std::optional<LuFactorization> lu_;
};

}  // namespace parm::pdn
