// Fixed-timestep transient analysis with trapezoidal integration.
//
// The MNA matrix is constant for a fixed timestep, so it is LU-factorized
// once; each step only rebuilds the right-hand side from the companion
// models (capacitor/inductor history) and the time-varying current sources.
// Initial conditions come from the DC operating point (sources at their
// average), which keeps the startup transient small; callers additionally
// discard a warm-up prefix before measuring PSN.
//
// Solver-reuse invariant: neither the transient nor the DC MNA matrix
// depends on source *values* — voltage-source volts and current-source
// waveforms enter only the right-hand side. Factorize once per
// (topology, element values, dt) via factorize() / DcSolver::factorize(),
// then rebind source values with Circuit::set_voltage_source /
// set_current_source and reuse the factorizations for every run. The
// prefactorized constructor below is that reusable form; run() itself is
// allocation-free after the first call (scratch vectors are members).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "pdn/circuit.hpp"

namespace parm::pdn {

/// Recorded node-voltage traces from a transient run.
struct TransientTrace {
  std::vector<double> times;                       ///< Recorded instants (s).
  std::vector<NodeId> nodes;                       ///< Recorded node ids.
  std::vector<std::vector<double>> voltages;       ///< [node index][step].

  /// Trace row for a node id — O(1) via the node→row index built by the
  /// solver. Throws CheckError listing the recorded nodes if `n` was not
  /// recorded. Traces assembled by hand (no index) fall back to a scan.
  const std::vector<double>& of(NodeId n) const;

 private:
  friend class TransientSolver;
  /// node id → row in `voltages`, −1 when the node was not recorded.
  /// Empty for hand-assembled traces.
  std::vector<std::int32_t> node_row_;
};

class TransientSolver {
 public:
  /// Prepares (stamps + factorizes) the solver for circuit `ckt` with
  /// timestep `dt` seconds. Metrics (pdn.solves/steps/solve_us) go to
  /// `registry`; null selects the process-default.
  TransientSolver(const Circuit& ckt, double dt,
                  obs::Registry* registry = nullptr);

  /// Reusable form: adopts prefactorized transient and DC systems (from
  /// factorize() and DcSolver::factorize() on an identically-shaped
  /// circuit). Because source values are RHS-only, the same pair of
  /// factorizations stays valid across Circuit::set_voltage_source /
  /// set_current_source updates — this is the cached hot path.
  TransientSolver(const Circuit& ckt, double dt,
                  std::shared_ptr<const LuFactorization> transient_lu,
                  std::shared_ptr<const LuFactorization> dc_lu,
                  obs::Registry* registry = nullptr);

  /// Stamps and factorizes the trapezoidal MNA matrix for (ckt, dt).
  /// Depends only on topology, element values, and dt — never on source
  /// values (the solver-reuse invariant). Ticks pdn.factorizations on
  /// `registry` (null → process-default).
  static LuFactorization factorize(const Circuit& ckt, double dt,
                                   obs::Registry* registry = nullptr);

  /// Runs from t = 0 to `t_end`, recording voltages of `record_nodes` for
  /// t >= record_from. Node voltages at t = 0 are the DC operating point.
  TransientTrace run(double t_end, const std::vector<NodeId>& record_nodes,
                     double record_from = 0.0);

  double dt() const { return dt_; }

 private:
  const Circuit& ckt_;
  double dt_;
  std::size_t n_nodes_;  ///< non-ground node count
  std::size_t n_l_;
  std::size_t n_v_;
  std::shared_ptr<const LuFactorization> lu_;
  std::shared_ptr<const LuFactorization> dc_lu_;
  obs::Counter* solves_;       ///< resolved once from the injected registry
  obs::Counter* steps_;
  obs::Histogram* solve_us_;
  // Scratch reused across steps and run() calls (allocation-free stepping).
  std::vector<double> z_;       ///< RHS for the current step
  std::vector<double> x_;       ///< solution of the current step
  std::vector<double> v_node_;  ///< node voltages incl. ground
  std::vector<double> cap_v_, cap_i_, ind_i_, ind_v_;
};

}  // namespace parm::pdn
