#include "pdn/waveform.hpp"

#include <cmath>

#include "common/check.hpp"

namespace parm::pdn {

CurrentWaveform::CurrentWaveform(double i_avg, double m, double freq_hz,
                                 double phase, double rise_fraction)
    : i_avg_(i_avg),
      m_(m),
      freq_hz_(freq_hz),
      phase_(phase),
      rise_fraction_(rise_fraction) {
  PARM_CHECK(i_avg >= 0.0, "average current must be non-negative");
  PARM_CHECK(m >= 0.0 && m < 1.0, "modulation depth must be in [0,1)");
  PARM_CHECK(m == 0.0 || freq_hz > 0.0, "ripple needs positive frequency");
  PARM_CHECK(rise_fraction > 0.0 && rise_fraction < 0.25,
             "rise fraction must be in (0, 0.25)");
}

CurrentWaveform CurrentWaveform::dc(double i_avg) {
  return CurrentWaveform(i_avg, 0.0, 1.0, 0.0, 0.05);
}

CurrentWaveform CurrentWaveform::ripple(double i_avg, double m,
                                        double freq_hz, double phase,
                                        double rise_fraction) {
  return CurrentWaveform(i_avg, m, freq_hz, phase, rise_fraction);
}

double CurrentWaveform::value(double t) const {
  if (m_ == 0.0) return i_avg_;
  // Normalized position within the period, shifted by phase.
  double u = t * freq_hz_ + phase_;
  u -= std::floor(u);
  const double hi = i_avg_ * (1.0 + m_);
  const double lo = i_avg_ * (1.0 - m_);
  const double r = rise_fraction_;
  // Piecewise: rise [0,r), high [r,0.5), fall [0.5,0.5+r), low [0.5+r,1).
  if (u < r) {
    return lo + (hi - lo) * (u / r);
  }
  if (u < 0.5) return hi;
  if (u < 0.5 + r) {
    return hi - (hi - lo) * ((u - 0.5) / r);
  }
  return lo;
}

double CurrentWaveform::max_slew() const {
  if (m_ == 0.0) return 0.0;
  const double swing = 2.0 * m_ * i_avg_;
  const double edge_time = rise_fraction_ / freq_hz_;
  return swing / edge_time;
}

double CompositeWaveform::value(double t) const {
  double acc = 0.0;
  for (const auto& p : parts_) acc += p.value(t);
  return acc;
}

double CompositeWaveform::average() const {
  double acc = 0.0;
  for (const auto& p : parts_) acc += p.average();
  return acc;
}

}  // namespace parm::pdn
