// Time-domain source waveforms for the PDN transient solver.
//
// A tile's workload appears to the PDN as a current source (paper
// section 3.4, following [19]-[21]). We synthesize it as a DC component
// (average supply current from the power model) modulated by a trapezoidal
// square ripple whose depth reflects the task's switching-activity class:
//
//   i(t) = i_avg · (1 ± m)         alternating at ripple_freq,
//   with linear edges of rise_fraction · period.
//
// The finite edge slew gives the inductive L·di/dt droop a well-defined
// magnitude. Phase is per-task (random at runtime, aligned for worst-case
// characterization benches).
#pragma once

#include <vector>

namespace parm::pdn {

/// Piecewise-trapezoidal periodic current waveform.
class CurrentWaveform {
 public:
  /// DC-only waveform (no ripple).
  static CurrentWaveform dc(double i_avg);

  /// Ripple waveform: average `i_avg` (A), modulation depth `m` in [0, 1)
  /// (high phase = i_avg·(1+m), low phase = i_avg·(1−m)), frequency
  /// `freq_hz`, phase offset in [0, 1) periods, and linear transition edges
  /// of `rise_fraction` of the period (must be < 0.25).
  static CurrentWaveform ripple(double i_avg, double m, double freq_hz,
                                double phase = 0.0,
                                double rise_fraction = 0.05);

  /// Instantaneous current at time t (seconds).
  double value(double t) const;

  double average() const { return i_avg_; }
  double modulation() const { return m_; }
  double frequency() const { return freq_hz_; }

  /// Peak |di/dt| of the waveform (A/s); zero for DC.
  double max_slew() const;

 private:
  CurrentWaveform(double i_avg, double m, double freq_hz, double phase,
                  double rise_fraction);

  double i_avg_;
  double m_;
  double freq_hz_;
  double phase_;
  double rise_fraction_;
};

/// Sum of waveforms (e.g. core + router share of a tile).
class CompositeWaveform {
 public:
  void add(CurrentWaveform w) { parts_.push_back(w); }
  double value(double t) const;
  double average() const;
  bool empty() const { return parts_.empty(); }

 private:
  std::vector<CurrentWaveform> parts_;
};

}  // namespace parm::pdn
