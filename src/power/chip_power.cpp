#include "power/chip_power.hpp"

#include <algorithm>
#include <vector>

namespace parm::power {

PowerLedger::PowerLedger(double budget_w) : budget_w_(budget_w) {
  PARM_CHECK(budget_w > 0.0, "power budget must be positive");
}

bool PowerLedger::reserve(std::int64_t app_instance_id, double power_w) {
  PARM_CHECK(power_w >= 0.0, "reservation must be non-negative");
  PARM_CHECK(!reservations_.contains(app_instance_id),
             "application already holds a reservation");
  if (!fits(power_w)) return false;
  reservations_.emplace(app_instance_id, power_w);
  reserved_w_ += power_w;
  return true;
}

void PowerLedger::release(std::int64_t app_instance_id) {
  auto it = reservations_.find(app_instance_id);
  if (it == reservations_.end()) return;
  reserved_w_ -= it->second;
  if (reserved_w_ < 0.0) reserved_w_ = 0.0;  // guard FP drift
  reservations_.erase(it);
}

void PowerLedger::save(snapshot::Writer& w) const {
  w.begin_section("LDGR");
  w.f64(budget_w_);
  w.f64(reserved_w_);
  std::vector<std::pair<std::int64_t, double>> entries(
      reservations_.begin(), reservations_.end());
  std::sort(entries.begin(), entries.end());
  w.u64(entries.size());
  for (const auto& [id, watts] : entries) {
    w.i64(id);
    w.f64(watts);
  }
}

void PowerLedger::restore(snapshot::Reader& r) {
  r.expect_section("LDGR");
  const double budget = r.f64();
  if (budget != budget_w_) {
    throw snapshot::SnapshotError(
        "power ledger budget mismatch: snapshot was taken under a "
        "different dark-silicon budget");
  }
  reserved_w_ = r.f64();
  reservations_.clear();
  const std::uint64_t n = r.count(16);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t id = r.i64();
    const double watts = r.f64();
    reservations_.emplace(id, watts);
  }
}

}  // namespace parm::power
