#include "power/chip_power.hpp"

namespace parm::power {

PowerLedger::PowerLedger(double budget_w) : budget_w_(budget_w) {
  PARM_CHECK(budget_w > 0.0, "power budget must be positive");
}

bool PowerLedger::reserve(std::int64_t app_instance_id, double power_w) {
  PARM_CHECK(power_w >= 0.0, "reservation must be non-negative");
  PARM_CHECK(!reservations_.contains(app_instance_id),
             "application already holds a reservation");
  if (!fits(power_w)) return false;
  reservations_.emplace(app_instance_id, power_w);
  reserved_w_ += power_w;
  return true;
}

void PowerLedger::release(std::int64_t app_instance_id) {
  auto it = reservations_.find(app_instance_id);
  if (it == reservations_.end()) return;
  reserved_w_ -= it->second;
  if (reserved_w_ < 0.0) reserved_w_ = 0.0;  // guard FP drift
  reservations_.erase(it);
}

}  // namespace parm::power
