// Chip-level power accounting against the dark-silicon power budget (DsPB).
//
// The DsPB is the thermally safe chip power limit (65 W for the paper's
// 60-tile CMP). PowerLedger tracks reserved power per running application
// so the runtime manager (Algorithm 1/2) can reject mappings that would
// exceed the budget. Idle tiles are power-gated and charged a small
// retention power.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/check.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"
#include "snapshot/serializer.hpp"

namespace parm::power {

/// Estimated steady-state power of one tile running one task.
struct TilePowerEstimate {
  double core_w = 0.0;
  double router_w = 0.0;
  double total() const { return core_w + router_w; }
};

/// Tracks power reservations of admitted applications against the DsPB.
class PowerLedger {
 public:
  explicit PowerLedger(double budget_w);

  double budget() const { return budget_w_; }
  double reserved() const { return reserved_w_; }
  double headroom() const { return budget_w_ - reserved_w_; }

  /// True if `power_w` more watts still fit under the budget.
  bool fits(double power_w) const { return power_w <= headroom() + 1e-12; }

  /// Reserves power for an application. Returns false (and reserves
  /// nothing) if the budget would be exceeded.
  bool reserve(std::int64_t app_instance_id, double power_w);

  /// Releases the reservation of a finished/dropped application.
  /// No-op when the id holds no reservation.
  void release(std::int64_t app_instance_id);

  std::size_t reservation_count() const { return reservations_.size(); }

  /// Snapshot hooks. Reservations are serialized sorted by instance id so
  /// the byte stream is independent of hash-map iteration order; the
  /// accumulated reserved_w_ double is stored verbatim (not re-summed) so
  /// restore is bit-identical regardless of reservation history order.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  double budget_w_;
  double reserved_w_ = 0.0;
  std::unordered_map<std::int64_t, double> reservations_;
};

}  // namespace parm::power
