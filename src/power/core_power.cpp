#include "power/core_power.hpp"

#include <cmath>

#include "common/check.hpp"

namespace parm::power {

const char* to_string(ActivityClass c) {
  return c == ActivityClass::High ? "High" : "Low";
}

CorePowerModel::CorePowerModel(const TechnologyNode& node) : node_(node) {}

double CorePowerModel::dynamic_power(double vdd, double f_hz,
                                     double activity) const {
  PARM_CHECK(vdd > 0.0 && f_hz >= 0.0, "invalid operating point");
  PARM_CHECK(activity >= 0.0 && activity <= 1.0,
             "activity factor must be in [0,1]");
  return activity * node_.core_ceff * vdd * vdd * f_hz;
}

double CorePowerModel::leakage_power(double vdd) const {
  PARM_CHECK(vdd > 0.0, "invalid supply");
  const double ileak = node_.core_ileak_ref *
                       std::exp(node_.leak_vdd_slope *
                                (vdd - node_.vdd_nominal));
  return vdd * ileak;
}

double CorePowerModel::total_power(double vdd, double f_hz,
                                   double activity) const {
  return dynamic_power(vdd, f_hz, activity) + leakage_power(vdd);
}

double CorePowerModel::supply_current(double vdd, double f_hz,
                                      double activity) const {
  return total_power(vdd, f_hz, activity) / vdd;
}

}  // namespace parm::power
