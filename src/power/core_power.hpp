// Analytical core power model (McPAT-style abstraction).
//
//   P_dyn  = activity · Ceff · Vdd² · f
//   P_leak = Vdd · Ileak_ref · exp(slope · (Vdd − Vdd_nominal))
//
// `activity` is the task's switching-activity factor in [0, 1] from the
// offline profile; it also decides the High/Low activity class used by the
// mapping heuristic (paper section 3.5 bins tasks into two classes).
#pragma once

#include "power/technology.hpp"
#include "power/vf_model.hpp"

namespace parm::power {

/// Switching-activity class of a task (paper section 3.5, Fig. 3(b)).
enum class ActivityClass { Low, High };

/// Activity factor at or above which a task is classified High.
inline constexpr double kHighActivityThreshold = 0.5;

constexpr ActivityClass classify_activity(double activity_factor) {
  return activity_factor >= kHighActivityThreshold ? ActivityClass::High
                                                   : ActivityClass::Low;
}

const char* to_string(ActivityClass c);

class CorePowerModel {
 public:
  explicit CorePowerModel(const TechnologyNode& node);

  /// Dynamic power (W) at the given supply, clock, and activity factor.
  double dynamic_power(double vdd, double f_hz, double activity) const;

  /// Leakage power (W) at the given supply.
  double leakage_power(double vdd) const;

  /// Total core power (W).
  double total_power(double vdd, double f_hz, double activity) const;

  /// Average supply current (A) drawn by the core, I = P / Vdd; this is the
  /// DC component of the tile's PDN current source.
  double supply_current(double vdd, double f_hz, double activity) const;

  const TechnologyNode& node() const { return node_; }

 private:
  TechnologyNode node_;
};

}  // namespace parm::power
