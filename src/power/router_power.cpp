#include "power/router_power.hpp"

#include "common/check.hpp"

namespace parm::power {

RouterPowerModel::RouterPowerModel(const TechnologyNode& node)
    : node_(node) {}

double RouterPowerModel::energy_per_flit(double vdd) const {
  PARM_CHECK(vdd > 0.0, "invalid supply");
  const double scale = (vdd / node_.vdd_nominal);
  return node_.router_eflit * scale * scale;
}

double RouterPowerModel::static_power(double vdd) const {
  PARM_CHECK(vdd > 0.0, "invalid supply");
  // Static power is dominated by leakage; scale linearly with Vdd around
  // the reference point (adequate over the 0.4-0.8 V DVS range).
  return node_.router_pstatic * (vdd / node_.vdd_nominal);
}

double RouterPowerModel::total_power(double vdd, double flit_rate,
                                     bool panr_enabled) const {
  PARM_CHECK(flit_rate >= 0.0, "flit rate must be non-negative");
  double p = energy_per_flit(vdd) * flit_rate + static_power(vdd);
  if (panr_enabled) p += panr_overhead_power();
  return p;
}

double RouterPowerModel::supply_current(double vdd, double flit_rate,
                                        bool panr_enabled) const {
  return total_power(vdd, flit_rate, panr_enabled) / vdd;
}

}  // namespace parm::power
