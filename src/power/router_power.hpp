// Analytical NoC router power model.
//
//   P_router = E_flit(Vdd) · flit_rate + P_static(Vdd)
//
// E_flit covers buffer write/read, crossbar traversal, and the outgoing
// link at the node's reference supply, scaled quadratically with Vdd.
// Flit rate is measured by the cycle-level NoC simulator (flits/second
// through the router). The model also exposes the PANR adaptive-logic
// overhead numbers reported in paper section 4.4.
#pragma once

#include "power/technology.hpp"

namespace parm::power {

class RouterPowerModel {
 public:
  explicit RouterPowerModel(const TechnologyNode& node);

  /// Energy per flit hop (J) at the given supply.
  double energy_per_flit(double vdd) const;

  /// Static (clock + leakage) router power (W) at the given supply.
  double static_power(double vdd) const;

  /// Total router power (W): `flit_rate` in flits/second through the router.
  /// `panr_enabled` adds the adaptive route-selection logic overhead.
  double total_power(double vdd, double flit_rate,
                     bool panr_enabled = false) const;

  /// Average supply current (A), the router's share of the tile's PDN
  /// current source.
  double supply_current(double vdd, double flit_rate,
                        bool panr_enabled = false) const;

  /// PANR logic power overhead (W) — ~1 mW at 7 nm (paper section 4.4).
  double panr_overhead_power() const { return node_.panr_logic_power_w; }

  /// PANR logic area overhead as a fraction of the baseline router area
  /// (~0.5 % at 7 nm).
  double panr_area_overhead_fraction() const {
    return node_.panr_logic_area_um2 / node_.router_area_um2;
  }

  const TechnologyNode& node() const { return node_; }

 private:
  TechnologyNode node_;
};

}  // namespace parm::power
