#include "power/technology.hpp"

#include "common/check.hpp"

namespace parm::power {

namespace {

// One row per node. PSN-relevant trends with scaling (ITRS-style):
//  - NTC supply and Vth drop, shrinking the noise headroom;
//  - grid wire resistance rises (thinner metal);
//  - per-tile decap falls (less white space);
//  - switched capacitance per core falls slower than supply, so the
//    per-tile current at NTC stays roughly flat while margins shrink.
std::vector<TechnologyNode> make_nodes() {
  std::vector<TechnologyNode> nodes;

  TechnologyNode n45;
  n45.feature_nm = 45;
  n45.name = "45nm planar";
  n45.vth = 0.34;
  n45.vdd_nominal = 1.0;
  n45.vdd_ntc = 0.60;
  n45.f_at_nominal = 1.6e9;
  n45.core_ceff = 1.6e-9;
  n45.core_ileak_ref = 0.10;
  n45.router_eflit = 1.0e-9;
  n45.router_pstatic = 16e-3;
  n45.pdn_r_bump = 1.2e-3;
  n45.pdn_l_bump = 5e-12;
  n45.pdn_r_wire = 5e-3;
  n45.pdn_c_decap = 90e-9;
  n45.ripple_freq_hz = 60e6;
  n45.core_area_um2 = 3.0e7;
  n45.router_area_um2 = 5.2e5;
  nodes.push_back(n45);

  TechnologyNode n32;
  n32.feature_nm = 32;
  n32.name = "32nm planar";
  n32.vth = 0.32;
  n32.vdd_nominal = 0.95;
  n32.vdd_ntc = 0.55;
  n32.f_at_nominal = 1.8e9;
  n32.core_ceff = 1.45e-9;
  n32.core_ileak_ref = 0.12;
  n32.router_eflit = 850e-12;
  n32.router_pstatic = 14e-3;
  n32.pdn_r_bump = 1.4e-3;
  n32.pdn_l_bump = 5.4e-12;
  n32.pdn_r_wire = 6.6e-3;
  n32.pdn_c_decap = 60e-9;
  n32.ripple_freq_hz = 70e6;
  n32.core_area_um2 = 1.7e7;
  n32.router_area_um2 = 3.1e5;
  nodes.push_back(n32);

  TechnologyNode n22;
  n22.feature_nm = 22;
  n22.name = "22nm FinFET";
  n22.vth = 0.30;
  n22.vdd_nominal = 0.90;
  n22.vdd_ntc = 0.50;
  n22.f_at_nominal = 1.9e9;
  n22.core_ceff = 1.3e-9;
  n22.core_ileak_ref = 0.13;
  n22.router_eflit = 700e-12;
  n22.router_pstatic = 12e-3;
  n22.pdn_r_bump = 1.6e-3;
  n22.pdn_l_bump = 6e-12;
  n22.pdn_r_wire = 8.4e-3;
  n22.pdn_c_decap = 40e-9;
  n22.ripple_freq_hz = 80e6;
  n22.core_area_um2 = 9.5e6;
  n22.router_area_um2 = 1.9e5;
  nodes.push_back(n22);

  TechnologyNode n14;
  n14.feature_nm = 14;
  n14.name = "14nm FinFET";
  n14.vth = 0.28;
  n14.vdd_nominal = 0.85;
  n14.vdd_ntc = 0.45;
  n14.f_at_nominal = 2.0e9;
  n14.core_ceff = 1.15e-9;
  n14.core_ileak_ref = 0.15;
  n14.router_eflit = 560e-12;
  n14.router_pstatic = 10e-3;
  n14.pdn_r_bump = 1.8e-3;
  n14.pdn_l_bump = 6.6e-12;
  n14.pdn_r_wire = 10.8e-3;
  n14.pdn_c_decap = 26e-9;
  n14.ripple_freq_hz = 90e6;
  n14.core_area_um2 = 6.2e6;
  n14.router_area_um2 = 1.3e5;
  nodes.push_back(n14);

  TechnologyNode n10;
  n10.feature_nm = 10;
  n10.name = "10nm FinFET";
  n10.vth = 0.26;
  n10.vdd_nominal = 0.82;
  n10.vdd_ntc = 0.42;
  n10.f_at_nominal = 2.0e9;
  n10.core_ceff = 1.05e-9;
  n10.core_ileak_ref = 0.17;
  n10.router_eflit = 450e-12;
  n10.router_pstatic = 9e-3;
  n10.pdn_r_bump = 1.9e-3;
  n10.pdn_l_bump = 7e-12;
  n10.pdn_r_wire = 12.6e-3;
  n10.pdn_c_decap = 18e-9;
  n10.ripple_freq_hz = 95e6;
  n10.core_area_um2 = 4.9e6;
  n10.router_area_um2 = 9.4e4;
  nodes.push_back(n10);

  TechnologyNode n7;  // paper's evaluation node; struct defaults already
  n7.feature_nm = 7;  // carry the 7 nm values, restated here for clarity.
  n7.name = "7nm FinFET";
  n7.vth = 0.25;
  n7.vdd_nominal = 0.8;
  n7.vdd_ntc = 0.40;
  n7.f_at_nominal = 2.0e9;
  n7.core_ceff = 1.0e-9;
  n7.core_ileak_ref = 0.19;
  n7.router_eflit = 400e-12;
  n7.router_pstatic = 8e-3;
  n7.pdn_r_bump = 2.0e-3;
  n7.pdn_l_bump = 7.2e-12;
  n7.pdn_r_wire = 15e-3;
  n7.pdn_c_decap = 12e-9;
  n7.ripple_freq_hz = 100e6;
  n7.core_area_um2 = 4.0e6;
  n7.router_area_um2 = 71300.0;
  nodes.push_back(n7);

  return nodes;
}

}  // namespace

const std::vector<TechnologyNode>& all_technology_nodes() {
  static const std::vector<TechnologyNode> nodes = make_nodes();
  return nodes;
}

const TechnologyNode& technology_node(int feature_nm) {
  for (const auto& n : all_technology_nodes()) {
    if (n.feature_nm == feature_nm) return n;
  }
  PARM_CHECK(false, "unsupported technology node: " +
                        std::to_string(feature_nm) + " nm");
}

}  // namespace parm::power
