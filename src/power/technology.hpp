// Per-technology-node device and PDN parameters.
//
// The paper evaluates a 7 nm FinFET CMP and motivates the problem (Fig. 1)
// with PSN growth across process nodes. This table substitutes for the
// McPAT + ITRS data used in the paper: each node carries the constants the
// power models and the PDN netlist builder need. Values are calibrated so
// that (i) the 7 nm core matches the paper's anchors (ARM Cortex-A73-class
// mobile core, ~1.3 W at 0.8 V / 2 GHz, DsPB = 65 W binds for 60 tiles at
// nominal Vdd), and (ii) peak PSN relative to the NTC supply grows across
// nodes and crosses the 5 % noise margin near 14/10 nm (paper Fig. 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parm::power {

/// Device, power, and PDN constants for one fabrication node.
struct TechnologyNode {
  int feature_nm = 7;          ///< Feature size in nanometres.
  std::string name;            ///< e.g. "7nm FinFET".

  // --- Voltage / frequency ---
  double vth = 0.25;           ///< Threshold voltage (V).
  double vdd_nominal = 0.8;    ///< Nominal (super-threshold) supply (V).
  double vdd_ntc = 0.4;        ///< Near-threshold operating point (V).
  double f_at_nominal = 2.0e9; ///< Core f_max at vdd_nominal (Hz).

  // --- Core power ---
  double core_ceff = 1.0e-9;   ///< Effective switched capacitance (F).
  double core_ileak_ref = 0.19;///< Leakage current at vdd_nominal (A).
  double leak_vdd_slope = 2.0; ///< d(ln I_leak)/dV (1/V), DIBL-style.

  // --- Router power (input-buffered 5-port wormhole router) ---
  double router_eflit = 400e-12;  ///< Energy per flit hop at vdd_nominal (J).
  double router_pstatic = 8e-3;   ///< Router static power at vdd_nominal (W).

  // --- PDN (per 2x2-tile domain, Fig. 2 topology) ---
  double pdn_r_bump = 2e-3;    ///< Bump resistance Rb (ohm).
  double pdn_l_bump = 7.2e-12;  ///< Bump + package inductance Lb (H).
  double pdn_r_wire = 15e-3;   ///< On-chip grid wire resistance Rc/segment (ohm).
  double pdn_c_decap = 12e-9;  ///< Decoupling capacitance per tile (F).

  // --- Workload current ripple ---
  double ripple_freq_hz = 100e6;  ///< Dominant switching-ripple frequency.

  // --- Area (for the overhead report, paper section 4.4) ---
  double core_area_um2 = 4.0e6;      ///< ~4 mm^2 core.
  double router_area_um2 = 71300.0;  ///< Baseline NoC router.
  double panr_logic_area_um2 = 115.0;///< PANR comparators/registers.
  double panr_logic_power_w = 1e-3;  ///< PANR added logic power.
  double sensor_network_area_um2 = 413.0;  ///< Digital PSN sensors [16].
};

/// Returns the parameter set for a supported node (45/32/22/14/10/7 nm).
/// Throws CheckError for unsupported feature sizes.
const TechnologyNode& technology_node(int feature_nm);

/// All supported nodes in decreasing feature size (45 ... 7 nm), the order
/// used by the Fig. 1 reproduction.
const std::vector<TechnologyNode>& all_technology_nodes();

}  // namespace parm::power
