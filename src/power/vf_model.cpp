#include "power/vf_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace parm::power {

VoltageFrequencyModel::VoltageFrequencyModel(const TechnologyNode& node,
                                             double alpha)
    : vth_(node.vth), alpha_(alpha) {
  PARM_CHECK(alpha > 0.0, "alpha must be positive");
  PARM_CHECK(node.vdd_nominal > node.vth, "nominal vdd must exceed vth");
  const double shape =
      std::pow(node.vdd_nominal - vth_, alpha_) / node.vdd_nominal;
  k_ = node.f_at_nominal / shape;
}

double VoltageFrequencyModel::fmax(double vdd) const {
  PARM_CHECK(vdd > vth_, "supply must exceed threshold voltage");
  return k_ * std::pow(vdd - vth_, alpha_) / vdd;
}

double VoltageFrequencyModel::min_vdd_for_frequency(double f_hz,
                                                    double vdd_max) const {
  PARM_CHECK(f_hz > 0.0, "frequency must be positive");
  PARM_CHECK(vdd_max > vth_, "vdd_max must exceed threshold");
  PARM_CHECK(fmax(vdd_max) >= f_hz,
             "requested frequency unreachable at vdd_max");
  double lo = vth_ + 1e-6;
  double hi = vdd_max;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (fmax(mid) >= f_hz) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double VoltageFrequencyModel::frequency_sensitivity(double vdd) const {
  PARM_CHECK(vdd > vth_, "supply must exceed threshold voltage");
  // d/dV [ k (V-Vth)^a / V ] / fmax = a/(V-Vth) - 1/V
  return alpha_ / (vdd - vth_) - 1.0 / vdd;
}

}  // namespace parm::power
