// Voltage–frequency model (alpha-power law).
//
// Near/sub-threshold frequency scaling follows the alpha-power law
//   f_max(V) = k * (V - Vth)^alpha / V
// with alpha ≈ 1.5 for FinFET nodes. k is calibrated per technology node so
// that f_max(vdd_nominal) equals the node's rated frequency. This is the
// model PARM uses both for WCET estimation (offline profiles) and to set
// tile clock frequency after a DVS decision.
#pragma once

#include "power/technology.hpp"

namespace parm::power {

class VoltageFrequencyModel {
 public:
  /// Builds the model for a node, calibrating k to f_at_nominal.
  explicit VoltageFrequencyModel(const TechnologyNode& node,
                                 double alpha = 1.5);

  /// Maximum stable clock frequency (Hz) at supply `vdd` (V).
  /// vdd must exceed Vth; at or below threshold the core cannot run.
  double fmax(double vdd) const;

  /// Smallest supply that sustains frequency `f_hz`, found by bisection on
  /// the (monotone) fmax curve. Returns vdd in (vth, vdd_max]; throws if
  /// even vdd_max cannot reach f_hz.
  double min_vdd_for_frequency(double f_hz, double vdd_max) const;

  /// Relative slowdown of fmax per volt of supply droop around `vdd`
  /// (d fmax / d vdd) * (1 / fmax); used to translate PSN into critical-path
  /// latency degradation.
  double frequency_sensitivity(double vdd) const;

  double vth() const { return vth_; }
  double alpha() const { return alpha_; }

 private:
  double vth_;
  double alpha_;
  double k_;  ///< Calibration constant (Hz · V^(1-alpha)).
};

}  // namespace parm::power
