#include "sched/checkpoint.hpp"

#include <cmath>

namespace parm::sched {

CheckpointModel::CheckpointModel(CheckpointConfig cfg) : cfg_(cfg) {
  PARM_CHECK(cfg.period_s > 0.0, "checkpoint period must be positive");
  PARM_CHECK(cfg.checkpoint_cycles >= 0.0 && cfg.rollback_cycles >= 0.0,
             "checkpoint costs must be non-negative");
}

double CheckpointModel::overhead_fraction(double f_hz) const {
  PARM_CHECK(f_hz > 0.0, "frequency must be positive");
  return cfg_.checkpoint_cycles / (cfg_.period_s * f_hz);
}

double CheckpointModel::rollback_cost_cycles(
    double elapsed_since_checkpoint_s, double progress_rate_cps) const {
  PARM_CHECK(elapsed_since_checkpoint_s >= 0.0, "negative elapsed time");
  PARM_CHECK(progress_rate_cps >= 0.0, "negative progress rate");
  return elapsed_since_checkpoint_s * progress_rate_cps +
         cfg_.rollback_cycles;
}

double CheckpointModel::last_checkpoint_time(double start_s, double t) const {
  PARM_CHECK(t >= start_s, "query before start");
  const double k = std::floor((t - start_s) / cfg_.period_s);
  return start_s + k * cfg_.period_s;
}

}  // namespace parm::sched
