// Checkpoint / rollback cost model (paper sections 4.5 and 5.1).
//
// Applications checkpoint every `period_s` (1 ms) at a cost of
// `checkpoint_cycles` (256). A voltage emergency rolls the affected task
// back to its last checkpoint: it loses all progress since then and pays a
// `rollback_cycles` (10 000) restart penalty. The same machinery is
// charged to every framework, including the HM/ICON baselines (paper
// section 5.2, fairness assumption).
#pragma once

#include "common/check.hpp"

namespace parm::sched {

struct CheckpointConfig {
  double period_s = 1e-3;
  double checkpoint_cycles = 256.0;
  double rollback_cycles = 10000.0;
};

class CheckpointModel {
 public:
  explicit CheckpointModel(CheckpointConfig cfg = {});

  const CheckpointConfig& config() const { return cfg_; }

  /// Fraction of throughput lost to periodic checkpointing at clock
  /// `f_hz` (256 cycles per 1 ms ≈ 0.0256 % at 1 GHz).
  double overhead_fraction(double f_hz) const;

  /// Cycles of useful progress destroyed by a rollback that strikes
  /// `elapsed_since_checkpoint_s` after the last checkpoint, for a task
  /// progressing at `progress_rate_cps` useful cycles/second — plus the
  /// restart penalty.
  double rollback_cost_cycles(double elapsed_since_checkpoint_s,
                              double progress_rate_cps) const;

  /// Time of the last checkpoint at or before `t` (checkpoints at integer
  /// multiples of the period, starting from `start_s`).
  double last_checkpoint_time(double start_s, double t) const;

 private:
  CheckpointConfig cfg_;
};

}  // namespace parm::sched
