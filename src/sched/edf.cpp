#include "sched/edf.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace parm::sched {

std::vector<double> assign_task_deadlines(
    const appmodel::DopVariant& variant, double app_start_s,
    double app_deadline_s) {
  PARM_CHECK(app_deadline_s > app_start_s,
             "application deadline must lie after its start");
  const std::size_t n = variant.tasks.size();

  // Longest (work-weighted) path from any source up to and including each
  // task, via one topological sweep. Generator graphs have src < dst, and
  // TaskGraph::validate() guarantees acyclicity for hand-built ones, so a
  // repeated relaxation over edges sorted by src works; we instead do a
  // proper Kahn ordering for generality.
  std::vector<std::vector<std::pair<appmodel::TaskIndex, double>>> succ(n);
  std::vector<int> indeg(n, 0);
  for (const auto& e : variant.graph.edges()) {
    succ[static_cast<std::size_t>(e.src)].emplace_back(e.dst,
                                                       e.volume_flits);
    ++indeg[static_cast<std::size_t>(e.dst)];
  }
  std::vector<double> reach(n);
  for (std::size_t i = 0; i < n; ++i) {
    reach[i] = variant.tasks[i].work_cycles;
  }
  std::vector<appmodel::TaskIndex> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<appmodel::TaskIndex>(i));
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const appmodel::TaskIndex u = ready.back();
    ready.pop_back();
    ++processed;
    for (const auto& [v, vol] : succ[static_cast<std::size_t>(u)]) {
      reach[static_cast<std::size_t>(v)] = std::max(
          reach[static_cast<std::size_t>(v)],
          reach[static_cast<std::size_t>(u)] +
              variant.tasks[static_cast<std::size_t>(v)].work_cycles);
      if (--indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  PARM_CHECK(processed == n, "task graph contains a cycle");

  const double critical = *std::max_element(reach.begin(), reach.end());
  PARM_CHECK(critical > 0.0, "degenerate task graph (no work)");

  // Deadline of task t: start + span × (critical-path prefix fraction).
  const double span = app_deadline_s - app_start_s;
  std::vector<double> deadlines(n);
  for (std::size_t i = 0; i < n; ++i) {
    deadlines[i] = app_start_s + span * (reach[i] / critical);
  }
  return deadlines;
}

void EdfQueue::push(std::int64_t id, double deadline_s) {
  heap_.push(Item{{id, deadline_s}, next_seq_++});
}

EdfQueue::Entry EdfQueue::pop() {
  PARM_CHECK(!heap_.empty(), "pop from empty EDF queue");
  Entry e = heap_.top().entry;
  heap_.pop();
  return e;
}

const EdfQueue::Entry& EdfQueue::peek() const {
  PARM_CHECK(!heap_.empty(), "peek at empty EDF queue");
  return heap_.top().entry;
}

}  // namespace parm::sched
