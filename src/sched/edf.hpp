// Earliest-deadline-first scheduling support (paper section 4.2).
//
// After mapping, PARM schedules the tasks of an application with EDF,
// assigning each task a deadline derived from the application deadline via
// the task-graph technique of [23]: a task's deadline is the application
// deadline scaled by its cumulative critical-path fraction, so upstream
// tasks get proportionally earlier deadlines.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "appmodel/application.hpp"

namespace parm::sched {

/// Per-task absolute deadlines (seconds), index-aligned with the variant's
/// tasks. `app_deadline_s` is the absolute application deadline;
/// `app_start_s` is when execution begins.
std::vector<double> assign_task_deadlines(
    const appmodel::DopVariant& variant, double app_start_s,
    double app_deadline_s);

/// A generic EDF ready-queue: pop always returns the entry with the
/// earliest deadline; FIFO among equal deadlines (stable).
class EdfQueue {
 public:
  struct Entry {
    std::int64_t id = 0;
    double deadline_s = 0.0;
  };

  void push(std::int64_t id, double deadline_s);

  /// Removes and returns the earliest-deadline entry. Queue must be
  /// non-empty.
  Entry pop();

  const Entry& peek() const;

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Item {
    Entry entry;
    std::uint64_t seq = 0;  ///< insertion order for stable ties
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.entry.deadline_s != b.entry.deadline_s) {
        return a.entry.deadline_s > b.entry.deadline_s;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace parm::sched
