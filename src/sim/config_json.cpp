#include "sim/config_json.hpp"

#include <ostream>

#include "obs/build_info.hpp"
#include "obs/json_util.hpp"

namespace parm::sim {

namespace {

void key(std::ostream& os, const char* name) {
  os << '"' << name << "\":";
}

void str(std::ostream& os, const char* name, std::string_view value) {
  key(os, name);
  obs::json_string(os, value);
}

}  // namespace

void write_config_json(std::ostream& os, const SimConfig& cfg) {
  const auto old_precision = os.precision(15);
  const obs::BuildInfo& bi = obs::build_info();

  os << "{\"build\":{";
  str(os, "version", bi.version);
  os << ',';
  str(os, "compiler", bi.compiler);
  os << ',';
  str(os, "build_type", bi.build_type);
  os << "},\"platform\":{";
  key(os, "mesh_width");
  os << cfg.platform.mesh_width << ',';
  key(os, "mesh_height");
  os << cfg.platform.mesh_height << ',';
  str(os, "topology", cfg.platform.topology);
  os << ',';
  key(os, "technology_nm");
  os << cfg.platform.technology_nm << ',';
  key(os, "vdd_levels");
  os << '[';
  for (std::size_t i = 0; i < cfg.platform.vdd_levels.size(); ++i) {
    if (i != 0) os << ',';
    os << cfg.platform.vdd_levels[i];
  }
  os << "],";
  key(os, "dark_silicon_budget_w");
  os << cfg.platform.dark_silicon_budget_w << ',';
  key(os, "ve_threshold_percent");
  os << cfg.platform.ve_threshold_percent;
  os << "},\"framework\":{";
  str(os, "mapping", cfg.framework.mapping);
  os << ',';
  str(os, "routing", cfg.framework.routing);
  os << ',';
  str(os, "display_name", cfg.framework.display_name());
  os << ',';
  key(os, "panr_threshold");
  os << cfg.framework.panr_threshold;
  os << "},\"engine\":{";
  key(os, "epoch_s");
  os << cfg.epoch_s << ',';
  key(os, "noc_every_epochs");
  os << cfg.noc_every_epochs << ',';
  key(os, "max_sim_time_s");
  os << cfg.max_sim_time_s << ',';
  key(os, "seed");
  os << cfg.seed << ',';
  key(os, "parallel_psn");
  os << (cfg.parallel_psn ? "true" : "false") << ',';
  key(os, "parallel_noc");
  os << (cfg.parallel_noc ? "true" : "false") << ',';
  key(os, "noc_shards");
  os << cfg.noc_shards << ',';
  key(os, "proactive_throttle");
  os << (cfg.proactive_throttle ? "true" : "false") << ',';
  key(os, "enable_migration");
  os << (cfg.enable_migration ? "true" : "false") << ',';
  key(os, "faults_enabled");
  os << (cfg.faults.enabled ? "true" : "false");
  os << "},\"observability\":{";
  key(os, "record_telemetry");
  os << (cfg.record_telemetry ? "true" : "false") << ',';
  key(os, "record_events");
  os << (cfg.record_events ? "true" : "false") << ',';
  key(os, "events_capacity");
  os << cfg.events_capacity << ',';
  key(os, "record_timeseries");
  os << (cfg.record_timeseries ? "true" : "false") << ',';
  key(os, "timeseries_capacity");
  os << cfg.timeseries_capacity << ',';
  key(os, "timeseries_levels");
  os << cfg.timeseries_levels << ',';
  key(os, "timeseries_downsample");
  os << cfg.timeseries_downsample << ',';
  key(os, "profile_phases");
  os << (cfg.profile_phases ? "true" : "false") << ',';
  key(os, "track_slo");
  os << (cfg.track_slo ? "true" : "false");
  os << "},\"slo\":{";
  key(os, "short_window_epochs");
  os << cfg.slo.short_window_epochs << ',';
  key(os, "long_window_epochs");
  os << cfg.slo.long_window_epochs << ',';
  key(os, "ve_rate_slo");
  os << cfg.slo.ve_rate_slo << ',';
  key(os, "deadline_miss_rate_slo");
  os << cfg.slo.deadline_miss_rate_slo << ',';
  key(os, "delivery_ratio_slo");
  os << cfg.slo.delivery_ratio_slo << ',';
  key(os, "admit_p99_slo_s");
  os << cfg.slo.admit_p99_slo_s << ',';
  key(os, "burn_warn");
  os << cfg.slo.burn_warn << ',';
  key(os, "burn_crit");
  os << cfg.slo.burn_crit;
  os << "}}";
  os.precision(old_precision);
}

}  // namespace parm::sim
