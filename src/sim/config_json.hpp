// JSON export of a resolved SimConfig — the /varz document.
//
// Lives in sim (not obs) because obs cannot depend on the engine's
// config types; the obs HTTP server only sees an opaque write closure.
// The export is a faithful dump of the *resolved* configuration the
// engine actually runs with (after SimConfig preparation), plus build
// identity, so a scrape answers "what exactly is this process running?"
// without access to its command line.
#pragma once

#include <iosfwd>

#include "sim/sim_config.hpp"

namespace parm::sim {

/// {"build":{"version":...,"compiler":...,"build_type":...},
///  "platform":{...},"framework":{...},"engine":{...},"observability":
///  {...},"slo":{...}}
void write_config_json(std::ostream& os, const SimConfig& cfg);

}  // namespace parm::sim
