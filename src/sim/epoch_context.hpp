// Shared per-run state threaded through the epoch-phase pipeline.
//
// The engine (SystemSimulator) owns one EpochContext per run and hands it
// to each phase in turn. The context carries exactly the state that
// crosses phase boundaries:
//   - the wiring block: config, platform, instance metrics registry, RNG
//     and arrival list, set once at construction and never reseated;
//   - the simulation clock (t, epoch);
//   - app lifecycle state (running apps, outcomes) written by the
//     admission phase and advanced by the progress phase;
//   - the sensor/actuator vectors that implement the paper's feedback
//     loop (NoC activity → PDN loads → PSN sensors → routing/throttle);
//   - per-epoch scratch (peak/avg PSN, chip power, NoC latency, VE
//     count) recomputed every epoch and read only by the telemetry phase.
//
// State a single phase owns outright (the service queue, the PSN cache,
// aggregate statistics, watermark counters) lives in that phase, not
// here; the context is deliberately limited to the cross-phase surface.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "appmodel/workload.hpp"
#include "cmp/platform.hpp"
#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/sim_config.hpp"

namespace parm::sim {

/// One task of a running application, pinned to a tile.
struct RunningTask {
  appmodel::TaskIndex index = 0;
  TileId tile = kInvalidTile;
  double remaining_cycles = 0.0;
  double activity = 0.0;
  double phase = 0.0;  ///< ripple phase of this task's current draw
  double progress_rate_cps = 0.0;  ///< useful cycles/s achieved last
                                   ///< epoch; throttles NoC injection
  double edf_deadline_s = 0.0;  ///< per-task deadline (EDF, [23])
  double finish_s = -1.0;       ///< completion time, -1 while running
  int hot_epochs = 0;  ///< consecutive epochs over the VE margin
  bool done() const { return remaining_cycles <= 0.0; }
};

/// An admitted application currently occupying the platform.
struct RunningApp {
  cmp::AppInstanceId instance = cmp::kNoApp;
  int outcome_index = -1;
  std::shared_ptr<const appmodel::ApplicationProfile> profile;
  double vdd = 0.0;
  int dop = 0;
  std::vector<RunningTask> tasks;
  double latency_cycles = 0.0;  ///< last measured NoC packet latency
};

struct EpochContext {
  // --- Wiring (set once by the engine, immutable thereafter) ---
  const SimConfig* cfg = nullptr;
  cmp::Platform* platform = nullptr;
  obs::Registry* metrics = nullptr;  ///< this simulator's registry
  obs::FlightRecorder* recorder = nullptr;  ///< this simulator's recorder
  obs::TimeSeriesStore* timeseries = nullptr;  ///< this simulator's store
  obs::SloEngine* slo = nullptr;  ///< this simulator's SLO engine
  Rng* rng = nullptr;
  const std::vector<appmodel::AppArrival>* arrivals = nullptr;

  /// Emission shorthand for the phases: records a typed event at the
  /// current simulation time. Observe-only by construction — touches
  /// nothing but the recorder — and a single branch when recording is
  /// off.
  void emit(obs::EventType type, std::int32_t app = -1,
            std::int32_t tile = -1, std::int32_t domain = -1, double a = 0.0,
            double b = 0.0) const {
    if (recorder == nullptr || !recorder->enabled()) return;
    obs::Event e;
    e.t = t;
    e.type = type;
    e.app = app;
    e.tile = tile;
    e.domain = domain;
    e.a = a;
    e.b = b;
    recorder->emit(e);
  }

  /// Waveform-capture gate for the phases: true when time-series capture
  /// is live. Phases check this once per epoch, resolve their series
  /// handles lazily on the first live epoch, and append through the
  /// handles — observe-only by the same construction as emit().
  bool capture_on() const {
    return timeseries != nullptr && timeseries->enabled();
  }

  // --- Simulation clock ---
  // Context members (not run() locals) so snapshots taken at the bottom
  // of an epoch capture "epoch epochs completed at t".
  double t = 0.0;
  std::uint64_t epoch = 0;

  // --- App lifecycle ---
  std::vector<RunningApp> running;
  std::vector<AppOutcome> outcomes;

  // --- Sensor/actuator vectors (the paper's feedback loop) ---
  std::vector<double> router_activity;  ///< flits/cycle per tile
  /// Ordered so snapshot serialization and any future iteration are
  /// deterministic regardless of hash seeding.
  std::map<std::int32_t, double> app_latency;
  std::vector<double> tile_psn_peak;
  std::vector<double> tile_psn_avg;
  /// What the management layer *believes* the per-tile peak PSN is. The
  /// fault phase copies tile_psn_peak here and then perturbs it (sensor
  /// dropout holds the stale reading), so physics keeps acting on the
  /// true values while throttling/admission act on the sensed ones.
  /// Equal to tile_psn_peak whenever faults are disabled.
  std::vector<double> tile_psn_sensed;
  /// Tiles whose router/core is currently failed: tasks stranded there
  /// make no progress and are exempt from VE accounting until repair.
  std::vector<char> tile_dead;
  /// Tiles throttled this epoch by the proactive guard (from last
  /// epoch's sensor readings).
  std::vector<bool> tile_throttled;
  /// Sensor view handed to the NoC: each tile reports its domain's peak
  /// PSN, since injecting router current anywhere in a domain disturbs
  /// the domain's most-stressed tile through the shared PDN.
  std::vector<double> noc_psn_sensor;

  // --- Per-epoch scratch (derived; rewritten each epoch) ---
  double epoch_peak_psn = 0.0;
  double epoch_avg_psn = 0.0;
  double epoch_chip_power = 0.0;
  double epoch_noc_latency = 0.0;
  std::int32_t epoch_ves = 0;
};

}  // namespace parm::sim
