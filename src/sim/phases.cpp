#include "sim/phases.hpp"

#include <algorithm>
#include <array>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "noc/traffic.hpp"
#include "obs/trace.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"
#include "sched/edf.hpp"

namespace parm::sim {

namespace {

void save_stats(snapshot::Writer& w, const RunningStats& st) {
  const RunningStats::State s = st.state();
  w.u64(s.n);
  w.f64(s.min);
  w.f64(s.max);
  w.f64(s.mean);
  w.f64(s.m2);
}

void restore_stats(snapshot::Reader& r, RunningStats& st) {
  RunningStats::State s;
  s.n = r.u64();
  s.min = r.f64();
  s.max = r.f64();
  s.mean = r.f64();
  s.m2 = r.f64();
  st.restore(s);
}

}  // namespace

// ---------------------------------------------------------------- admission

AdmissionPhase::AdmissionPhase(const core::FrameworkConfig& framework,
                               int queue_max_stalls, obs::Registry* registry)
    : policy_(core::make_admission_policy(framework, registry)),
      queue_(queue_max_stalls, registry),
      completed_(&obs::resolve(registry).counter("sim.apps_completed")),
      deadline_misses_(
          &obs::resolve(registry).counter("sim.deadline_misses")),
      admit_wait_s_(&obs::resolve(registry).histogram(
          "admission.time_to_admit_s",
          obs::Histogram::exponential_bounds(1e-3, 2.0, 18))) {}

void AdmissionPhase::commit(EpochContext& ctx,
                            const core::ServiceQueue::Admitted& adm,
                            double now) {
  cmp::Platform& platform = *ctx.platform;
  const cmp::AppInstanceId inst = next_instance_++;
  PARM_CHECK(platform.ledger().reserve(inst, adm.decision.estimated_power_w),
             "admission committed without power headroom");
  platform.occupy(inst, adm.decision.mapping, adm.decision.vdd);

  RunningApp app;
  app.instance = inst;
  app.profile = adm.app.profile;
  app.vdd = adm.decision.vdd;
  app.dop = adm.decision.dop;
  app.outcome_index = adm.app.id;
  const appmodel::DopVariant& variant =
      adm.app.profile->variant(adm.decision.dop);
  // EDF priorities: distribute the application deadline over the APG
  // (paper section 4.2 via [23]).
  const std::vector<double> task_deadlines =
      sched::assign_task_deadlines(variant, now, adm.app.deadline_s);
  app.tasks.reserve(adm.decision.mapping.size());
  for (const auto& p : adm.decision.mapping) {
    RunningTask t;
    t.index = p.task_index;
    t.tile = p.tile;
    t.remaining_cycles =
        variant.tasks[static_cast<std::size_t>(p.task_index)].work_cycles;
    t.activity = p.activity;
    t.phase = ctx.rng->uniform01();
    t.progress_rate_cps = platform.vf_model().fmax(adm.decision.vdd);
    t.edf_deadline_s =
        task_deadlines[static_cast<std::size_t>(p.task_index)];
    app.tasks.push_back(t);
  }
  ctx.running.push_back(std::move(app));

  AppOutcome& out = ctx.outcomes[static_cast<std::size_t>(adm.app.id)];
  out.admitted = true;
  out.admit_s = now;
  out.vdd = adm.decision.vdd;
  out.dop = adm.decision.dop;

  // Time-to-admit: histogram for exposition, SLO engine for the rolling
  // p99 objective. Both observe-only.
  const double wait_s = std::max(0.0, now - out.arrival_s);
  admit_wait_s_->observe(wait_s);
  if (ctx.slo != nullptr) ctx.slo->observe_admit(wait_s);

  obs::Tracer::instance().instant(
      "sim", "app.admit",
      {{"app", adm.app.id},
       {"bench", std::string_view(adm.app.bench->name)},
       {"vdd", adm.decision.vdd},
       {"dop", adm.decision.dop},
       {"sim_time_s", now}});
  ctx.emit(obs::EventType::kAppAdmit, adm.app.id, -1, -1, adm.decision.vdd,
           static_cast<double>(adm.decision.dop));
  if (!adm.decision.mapping.empty()) {
    const TileId first = adm.decision.mapping.front().tile;
    ctx.emit(obs::EventType::kAppMap, adm.app.id,
             static_cast<std::int32_t>(first),
             static_cast<std::int32_t>(ctx.platform->domain_of(first)),
             static_cast<double>(adm.decision.mapping.size()),
             static_cast<double>(ctx.platform->domain_of(first)));
  }
}

void AdmissionPhase::admit_pending(EpochContext& ctx, double now) {
  const std::size_t dropped_before = queue_.dropped().size();
  while (auto adm = queue_.pump(now, *ctx.platform, *policy_)) {
    commit(ctx, *adm, now);
  }
  // Mirror newly dropped apps into their outcome records.
  for (std::size_t i = dropped_before; i < queue_.dropped().size(); ++i) {
    const auto& app = queue_.dropped()[i];
    AppOutcome& out = ctx.outcomes[static_cast<std::size_t>(app.id)];
    out.dropped = true;
    obs::Tracer::instance().instant(
        "sim", "app.drop", {{"app", app.id}, {"sim_time_s", now}});
    ctx.emit(obs::EventType::kAppReject, app.id);
  }
}

void AdmissionPhase::process_arrivals(EpochContext& ctx) {
  const std::vector<appmodel::AppArrival>& arrivals = *ctx.arrivals;
  while (next_arrival_ < arrivals.size() &&
         arrivals[next_arrival_].arrival_s <= ctx.t + 1e-12) {
    obs::Tracer::instance().instant(
        "sim", "app.arrival",
        {{"app", arrivals[next_arrival_].id},
         {"bench",
          std::string_view(arrivals[next_arrival_].bench->name)},
         {"sim_time_s", arrivals[next_arrival_].arrival_s}});
    ctx.emit(obs::EventType::kAppArrival, arrivals[next_arrival_].id, -1, -1,
             arrivals[next_arrival_].deadline_s);
    queue_.enqueue(arrivals[next_arrival_]);
    ++next_arrival_;
    admit_pending(ctx, ctx.t);
  }
  admit_pending(ctx, ctx.t);
}

void AdmissionPhase::finish_and_readmit(EpochContext& ctx, double now) {
  bool any = false;
  for (auto it = ctx.running.begin(); it != ctx.running.end();) {
    const bool done = std::all_of(it->tasks.begin(), it->tasks.end(),
                                  [](const RunningTask& t) {
                                    return t.done();
                                  });
    if (!done) {
      ++it;
      continue;
    }
    ctx.platform->release(it->instance);
    ctx.platform->ledger().release(it->instance);
    AppOutcome& out =
        ctx.outcomes[static_cast<std::size_t>(it->outcome_index)];
    out.completed = true;
    out.finish_s = now;
    obs::Tracer::instance().instant(
        "sim", "app.complete",
        {{"app", out.id}, {"ve_count", out.ve_count}, {"sim_time_s", now}});
    out.missed_deadline = now > out.deadline_s;
    completed_->inc();
    ctx.emit(obs::EventType::kAppComplete, out.id, -1, -1,
             static_cast<double>(out.ve_count), out.deadline_s - now);
    if (out.missed_deadline) {
      deadline_misses_->inc();
      ctx.emit(obs::EventType::kAppDeadlineMiss, out.id, -1, -1,
               now - out.deadline_s);
    }
    for (const RunningTask& task : it->tasks) {
      if (task.finish_s > task.edf_deadline_s) ++out.task_deadline_misses;
    }
    it = ctx.running.erase(it);
    any = true;
  }
  if (any) {
    admit_pending(ctx, now);  // Alg. 1 line 9: retry on app exit
  }
}

void AdmissionPhase::save(snapshot::Writer& w) const {
  w.begin_section("ADMP");
  w.u64(next_arrival_);
  w.i64(next_instance_);
  queue_.save(w);
}

void AdmissionPhase::restore(snapshot::Reader& r, const EpochContext& ctx,
                             const ArrivalById& arrival_by_id) {
  r.expect_section("ADMP");
  next_arrival_ = r.u64();
  if (next_arrival_ > ctx.arrivals->size()) {
    throw snapshot::SnapshotError("snapshot arrival cursor out of range");
  }
  next_instance_ = r.i64();
  queue_.restore(r, arrival_by_id);
}

// ------------------------------------------------------------ NoC sampling

NocSamplingPhase::NocSamplingPhase(std::shared_ptr<const noc::Topology> topo,
                                   const noc::NocConfig& noc,
                                   const std::string& routing,
                                   double panr_threshold, bool parallel_noc,
                                   int noc_shards, obs::Registry* registry)
    : network_(std::make_unique<noc::Network>(
          topo, noc,
          noc::make_routing_for(topo, routing, panr_threshold, registry))),
      window_metrics_(registry) {
  if (parallel_noc) {
    network_->set_shards(noc::Network::auto_shard_count(noc_shards));
  }
}

std::vector<noc::TrafficFlow> NocSamplingPhase::build_flows(
    const EpochContext& ctx) const {
  std::vector<noc::TrafficFlow> flows;
  for (const RunningApp& app : ctx.running) {
    const appmodel::DopVariant& variant = app.profile->variant(app.dop);
    std::vector<TileId> tile_of(variant.tasks.size(), kInvalidTile);
    std::vector<bool> done(variant.tasks.size(), false);
    std::vector<double> rate_of(variant.tasks.size(), 0.0);
    for (const RunningTask& t : app.tasks) {
      tile_of[static_cast<std::size_t>(t.index)] = t.tile;
      done[static_cast<std::size_t>(t.index)] = t.done();
      rate_of[static_cast<std::size_t>(t.index)] = t.progress_rate_cps;
    }
    for (const auto& e : variant.graph.edges()) {
      if (done[static_cast<std::size_t>(e.src)]) continue;
      const TileId src = tile_of[static_cast<std::size_t>(e.src)];
      const TileId dst = tile_of[static_cast<std::size_t>(e.dst)];
      if (src == dst || src == kInvalidTile || dst == kInvalidTile) continue;
      // The edge's total volume drains over the source task's lifetime:
      // flits/s = volume × (source's achieved progress rate) / source
      // work. Using the achieved rate (not fmax) models the core
      // self-throttling when it stalls on the network — saturation
      // lowers injection, which is what keeps real wormhole NoCs stable.
      const double src_work =
          variant.tasks[static_cast<std::size_t>(e.src)].work_cycles;
      const double rate_fps =
          e.volume_flits * rate_of[static_cast<std::size_t>(e.src)] /
          src_work;
      noc::TrafficFlow flow;
      flow.src = src;
      flow.dst = dst;
      flow.flits_per_cycle = rate_fps / units::kRefClockHz;
      flow.app_id = static_cast<std::int32_t>(app.instance);
      flows.push_back(flow);
    }
  }
  return flows;
}

void NocSamplingPhase::run(EpochContext& ctx) {
  // Resolve the capture handles once, on the first window with the
  // time-series store live (the store belongs to the engine, so the
  // constructor cannot).
  if (ctx.capture_on() && ts_delivery_ == nullptr) {
    obs::TimeSeriesStore& store = *ctx.timeseries;
    const std::size_t n_tiles = ctx.router_activity.size();
    ts_router_.resize(n_tiles);
    for (std::size_t t = 0; t < n_tiles; ++t) {
      ts_router_[t] =
          &store.series("noc.router" + std::to_string(t) + ".activity");
    }
    ts_delivery_ = &store.series("noc.delivery_ratio");
    ts_latency_ = &store.series("noc.avg_latency_cycles");
  }

  std::vector<noc::TrafficFlow> flows = build_flows(ctx);
  if (flows.empty()) {
    std::fill(ctx.router_activity.begin(), ctx.router_activity.end(), 0.0);
    ctx.app_latency.clear();
    // An idle network cannot be congested: close any open onset.
    if (congested_) {
      congested_ = false;
      ctx.emit(obs::EventType::kNocCongestionClear, -1, -1, -1, 1.0, 0.0);
    }
    return;
  }
  network_->set_tile_psn(ctx.noc_psn_sensor);
  noc::TrafficGenerator traffic(std::move(flows));
  const noc::WindowResult w =
      noc::run_window(*network_, traffic, ctx.cfg->noc_window,
                      window_metrics_);
  ctx.router_activity = w.router_activity;
  ctx.app_latency = w.app_latency;
  if (w.avg_latency > 0.0) latency_stats_.add(w.avg_latency);
  delivery_stats_.add(w.delivery_ratio);
  // Deadlock oracle: a full measurement window in which nothing moved —
  // no forwards, no deliveries — while flits stayed buffered means the
  // network can no longer drain (impossible under healthy dimension-order
  // or spanning-tree routing; pinned by tests/property_test.cpp).
  double total_forwarded = 0.0;
  for (const double a : w.router_activity) total_forwarded += a;
  if (network_->in_flight_flits() > 0 && w.delivered_flits == 0 &&
      total_forwarded == 0.0) {
    ++deadlock_windows_;
  }
  ctx.epoch_noc_latency = w.avg_latency;
  const bool congested =
      w.delivery_ratio < ctx.cfg->noc_congestion_delivery_ratio;
  if (congested != congested_) {
    congested_ = congested;
    ctx.emit(congested ? obs::EventType::kNocCongestionOnset
                       : obs::EventType::kNocCongestionClear,
             -1, -1, -1, w.delivery_ratio, w.avg_latency);
  }
  for (RunningApp& app : ctx.running) {
    auto it = ctx.app_latency.find(static_cast<std::int32_t>(app.instance));
    if (it != ctx.app_latency.end()) app.latency_cycles = it->second;
  }

  // Per-router congestion waveforms: one point per measured window
  // (observe-only; plain writes through pre-resolved handles).
  if (ctx.capture_on()) {
    obs::TimeSeriesStore& store = *ctx.timeseries;
    std::size_t evicted = 0;
    for (std::size_t t = 0; t < ctx.router_activity.size(); ++t) {
      evicted += ts_router_[t]->append(ctx.t, ctx.router_activity[t]);
    }
    evicted += ts_delivery_->append(ctx.t, w.delivery_ratio);
    evicted += ts_latency_->append(ctx.t, w.avg_latency);
    store.note_appends(ctx.router_activity.size() + 2, evicted);
  }
}

void NocSamplingPhase::save(snapshot::Writer& w) const {
  w.begin_section("NOCS");
  save_stats(w, latency_stats_);
  save_stats(w, delivery_stats_);
  w.u64(deadlock_windows_);
  network_->save(w);
}

void NocSamplingPhase::restore(snapshot::Reader& r) {
  r.expect_section("NOCS");
  restore_stats(r, latency_stats_);
  restore_stats(r, delivery_stats_);
  deadlock_windows_ = r.u64();
  network_->restore(r);
}

// ------------------------------------------------------------ PSN sampling

PsnSamplingPhase::PsnSamplingPhase(const power::TechnologyNode& tech,
                                   const pdn::PsnEstimatorConfig& cfg,
                                   obs::Registry* registry)
    : psn_estimator_(tech, cfg, registry),
      psn_cache_(pdn::PsnCache::kDefaultCapacity, registry) {}

void PsnSamplingPhase::run(EpochContext& ctx) {
  const SimConfig& cfg = *ctx.cfg;
  cmp::Platform& platform = *ctx.platform;
  const power::CorePowerModel core_model(platform.technology());
  const power::RouterPowerModel router_model(platform.technology());
  const bool panr =
      cfg.framework.routing == "PANR";  // adds router logic power

  // Proactive guard: last epoch's sensor readings decide which tiles run
  // throttled during this epoch (both their current draw and progress).
  if (cfg.proactive_throttle) {
    const double limit = platform.config().ve_threshold_percent -
                         cfg.throttle_guard_percent;
    for (std::size_t t = 0; t < ctx.tile_throttled.size(); ++t) {
      const bool was_throttled = ctx.tile_throttled[t];
      // Management decision, so it reads the *sensed* PSN (equal to the
      // true peak unless the fault phase dropped this tile's sensor).
      ctx.tile_throttled[t] = ctx.tile_psn_sensed[t] > limit;
      if (ctx.tile_throttled[t]) ++total_throttle_epochs_;
      if (ctx.tile_throttled[t] && !was_throttled &&
          ctx.recorder != nullptr && ctx.recorder->enabled()) {
        // Engagement edge only (a sustained throttle is one event, not
        // one per epoch); the owning-app lookup is skipped entirely when
        // recording is off.
        std::int32_t app_id = -1;
        for (const RunningApp& app : ctx.running) {
          for (const RunningTask& rt : app.tasks) {
            if (rt.tile == static_cast<TileId>(t)) app_id = app.outcome_index;
          }
        }
        ctx.emit(obs::EventType::kAppThrottle, app_id,
                 static_cast<std::int32_t>(t), -1, ctx.tile_psn_sensed[t]);
      }
    }
  }

  // Phase 1 (serial): per-domain supply and loads from the power models,
  // walked in domain order so the chip-power accumulation is
  // deterministic.
  const std::size_t n_domains =
      static_cast<std::size_t>(platform.domain_count());
  std::vector<double> domain_vdd(n_domains);
  std::vector<std::array<pdn::TileLoad, 4>> domain_loads(n_domains);
  std::vector<char> domain_active(n_domains, 0);
  double chip_power = 0.0;
  for (DomainId d = 0; d < platform.domain_count(); ++d) {
    const auto tiles = platform.domain_tiles(d);
    const double vdd =
        platform.domain_vdd(d).value_or(cfg.dark_router_vdd);

    std::array<pdn::TileLoad, 4> loads{};
    bool any_load = false;
    for (std::size_t k = 0; k < 4; ++k) {
      const TileId t = tiles[k];
      if (t == kInvalidTile) continue;  // short domain: slot stays dark
      const auto& asg = platform.tile(t);
      double i_avg = 0.0;
      double modulation = 0.0;
      double phase = 0.25;
      if (asg.app != cmp::kNoApp) {
        const double f = platform.vf_model().fmax(vdd);
        double core_i = core_model.supply_current(vdd, f, asg.activity);
        if (ctx.tile_throttled[static_cast<std::size_t>(t)]) {
          core_i *= cfg.throttle_factor;
        }
        i_avg += core_i;
        modulation = pdn::activity_to_modulation(asg.activity);
        // Phase of the owning task's ripple.
        for (const RunningApp& app : ctx.running) {
          if (app.instance != asg.app) continue;
          for (const RunningTask& rt : app.tasks) {
            if (rt.tile == t) phase = rt.phase;
          }
        }
      }
      const double flit_rate =
          ctx.router_activity[static_cast<std::size_t>(t)] *
          units::kRefClockHz;
      if (flit_rate > 0.0 || asg.app != cmp::kNoApp) {
        i_avg += router_model.supply_current(vdd, flit_rate, panr);
        if (modulation == 0.0 && flit_rate > 1e6) modulation = 0.2;
      }
      chip_power += i_avg * vdd;
      if (i_avg > 0.0) any_load = true;
      loads[k] = pdn::TileLoad{i_avg, modulation, phase};
    }
    domain_vdd[static_cast<std::size_t>(d)] = vdd;
    domain_loads[static_cast<std::size_t>(d)] = loads;
    domain_active[static_cast<std::size_t>(d)] = any_load ? 1 : 0;
  }

  // Phase 2 — plan / solve / replay. A naive parallel loop over domains
  // would let two domains with the same memo key miss the cache
  // concurrently and both invoke the solver: the values are identical,
  // but the pdn.solves count (and so the telemetry deltas) would depend
  // on thread interleaving. Instead the epoch is split so every cache
  // decision stays serial and only the solver work fans out:
  //
  //   2a (serial)   predict each active domain's hit/miss without
  //                 touching the cache (contains() + the keys already
  //                 planned for solving this epoch);
  //   2b (parallel) run the transient solver for the first occurrence of
  //                 every missing key, each into its own slot;
  //   2c (serial)   replay get/put in domain order — exactly the call
  //                 sequence of a fully serial epoch, so LRU recency,
  //                 evictions, and hit/miss/solve counts are
  //                 bit-identical regardless of parallel_psn or load.
  std::vector<pdn::DomainPsn> domain_psn(n_domains);
  std::vector<std::uint64_t> domain_key(n_domains, 0);
  std::vector<char> solve_here(n_domains, 0);
  std::vector<std::uint64_t> planned_keys;
  for (std::size_t d = 0; d < n_domains; ++d) {
    if (!domain_active[d]) continue;
    domain_key[d] = pdn::PsnCache::key(domain_vdd[d], domain_loads[d]);
    if (psn_cache_.contains(domain_key[d])) continue;
    if (std::find(planned_keys.begin(), planned_keys.end(),
                  domain_key[d]) == planned_keys.end()) {
      solve_here[d] = 1;
      planned_keys.push_back(domain_key[d]);
    }
  }
  const auto solve_domain = [&](std::size_t d) {
    if (!solve_here[d]) return;
    // Quantize the loads the same way the key does, so cache hits and
    // misses see identical physics.
    domain_psn[d] = psn_estimator_.estimate(
        domain_vdd[d], pdn::PsnCache::quantize(domain_loads[d]));
  };
  if (cfg.parallel_psn) {
    ThreadPool::shared().parallel_for(n_domains, solve_domain);
  } else {
    for (std::size_t d = 0; d < n_domains; ++d) solve_domain(d);
  }
  for (std::size_t d = 0; d < n_domains; ++d) {
    if (!domain_active[d]) continue;
    pdn::DomainPsn psn;
    if (psn_cache_.get(domain_key[d], psn)) {
      domain_psn[d] = psn;
    } else {
      // First occurrence of a missing key uses its pre-solved slot; a
      // miss the plan did not foresee (an eviction triggered by this
      // epoch's own puts) solves inline, as the serial loop would.
      if (!solve_here[d]) {
        domain_psn[d] = psn_estimator_.estimate(
            domain_vdd[d], pdn::PsnCache::quantize(domain_loads[d]));
      }
      psn_cache_.put(domain_key[d], domain_psn[d]);
    }
  }

  // Phase 3 (serial): sensors and statistics reduced in domain order.
  ctx.epoch_peak_psn = 0.0;
  RunningStats epoch_domain_psn;
  const double ve_margin = platform.config().ve_threshold_percent;
  if (domain_over_margin_.size() != n_domains) {
    domain_over_margin_.assign(n_domains, 0);
  }
  // Resolve the capture handles once, on the first epoch with the store
  // live. The per-domain peak series name (psn.domain<d>.peak_percent) is
  // a contract with the blackbox analyzer's droop-window lookup.
  if (ctx.capture_on() && ts_margin_ == nullptr) {
    obs::TimeSeriesStore& store = *ctx.timeseries;
    ts_domain_peak_.resize(n_domains);
    ts_domain_avg_.resize(n_domains);
    for (std::size_t d = 0; d < n_domains; ++d) {
      const std::string base = "psn.domain" + std::to_string(d);
      ts_domain_peak_[d] = &store.series(base + ".peak_percent");
      ts_domain_avg_[d] = &store.series(base + ".avg_percent");
    }
    ts_chip_peak_ = &store.series("psn.chip.peak_percent");
    ts_chip_power_ = &store.series("power.chip_watts");
    ts_margin_ = &store.series("psn.ve_margin_percent");
  }
  const bool capture = ctx.capture_on();
  std::size_t captured = 0;
  std::size_t evicted = 0;
  for (DomainId d = 0; d < platform.domain_count(); ++d) {
    const auto tiles = platform.domain_tiles(d);
    const pdn::DomainPsn& psn = domain_psn[static_cast<std::size_t>(d)];
    for (std::size_t k = 0; k < 4; ++k) {
      if (tiles[k] == kInvalidTile) continue;  // short domain slot
      ctx.tile_psn_peak[static_cast<std::size_t>(tiles[k])] =
          psn.tiles[k].peak_percent;
      ctx.tile_psn_avg[static_cast<std::size_t>(tiles[k])] =
          psn.tiles[k].avg_percent;
      ctx.noc_psn_sensor[static_cast<std::size_t>(tiles[k])] =
          psn.peak_percent;
    }
    // Only powered (occupied) domains contribute to the chip PSN figures,
    // matching the paper's "PSN observed" in active regions.
    const bool powered = platform.domain_vdd(d).has_value();
    if (powered) {
      psn_peak_stats_.add(psn.peak_percent);
      psn_avg_stats_.add(psn.avg_percent);
      ctx.epoch_peak_psn = std::max(ctx.epoch_peak_psn, psn.peak_percent);
      epoch_domain_psn.add(psn.avg_percent);
      // Droop waveform capture, powered domains only — dark domains carry
      // no PDN load, and skipping them keeps the rings dense with signal.
      if (capture) {
        const std::size_t di = static_cast<std::size_t>(d);
        evicted += ts_domain_peak_[di]->append(ctx.t, psn.peak_percent);
        evicted += ts_domain_avg_[di]->append(ctx.t, psn.avg_percent);
        captured += 2;
      }
    }
    // VE-margin crossing events: a powered domain whose peak PSN exceeds
    // the margin is at emergency risk (the emergency phase rolls the
    // dice next); falling back under the margin clears the condition.
    const bool over = powered && psn.peak_percent > ve_margin;
    if (over != (domain_over_margin_[static_cast<std::size_t>(d)] != 0)) {
      domain_over_margin_[static_cast<std::size_t>(d)] = over ? 1 : 0;
      ctx.emit(over ? obs::EventType::kVeOnset : obs::EventType::kVeClear,
               -1, -1, static_cast<std::int32_t>(d), psn.peak_percent);
    }
  }
  platform.set_tile_psn(ctx.tile_psn_peak);
  chip_power_stats_.add(chip_power);
  ctx.epoch_avg_psn = epoch_domain_psn.mean();
  ctx.epoch_chip_power = chip_power;
  if (capture) {
    evicted += ts_chip_peak_->append(ctx.t, ctx.epoch_peak_psn);
    evicted += ts_chip_power_->append(ctx.t, chip_power);
    evicted += ts_margin_->append(ctx.t, ve_margin);
    ctx.timeseries->note_appends(captured + 3, evicted);
  }
}

void PsnSamplingPhase::save(snapshot::Writer& w) const {
  w.begin_section("PSNS");
  save_stats(w, psn_peak_stats_);
  save_stats(w, psn_avg_stats_);
  save_stats(w, chip_power_stats_);
  w.u64(total_throttle_epochs_);
  psn_cache_.save(w);
}

void PsnSamplingPhase::restore(snapshot::Reader& r) {
  r.expect_section("PSNS");
  restore_stats(r, psn_peak_stats_);
  restore_stats(r, psn_avg_stats_);
  restore_stats(r, chip_power_stats_);
  total_throttle_epochs_ = r.u64();
  psn_cache_.restore(r);
}

// ----------------------------------------------- emergencies and progress

EmergencyAndProgressPhase::EmergencyAndProgressPhase(
    const sched::CheckpointConfig& cfg, obs::Registry* registry)
    : checkpoint_(cfg), ves_(&obs::resolve(registry).counter("sim.ves")) {}

void EmergencyAndProgressPhase::run(EpochContext& ctx, double now) {
  const SimConfig& cfg = *ctx.cfg;
  const cmp::Platform& platform = *ctx.platform;
  const double margin = platform.config().ve_threshold_percent;
  ctx.epoch_ves = 0;
  // Collect the tiles with a forced (injected) emergency this epoch.
  std::vector<TileId> forced;
  while (next_fault_ < cfg.fault_injections.size() &&
         cfg.fault_injections[next_fault_].time_s <
             now + cfg.epoch_s) {
    if (cfg.fault_injections[next_fault_].time_s >= now) {
      forced.push_back(cfg.fault_injections[next_fault_].tile);
    }
    ++next_fault_;
  }
  for (RunningApp& app : ctx.running) {
    const appmodel::BenchmarkProfile& bench = app.profile->benchmark();
    const double f = platform.vf_model().fmax(app.vdd);
    const double packets_per_work_cycle =
        bench.comm_intensity / 1000.0 /
        static_cast<double>(cfg.noc.flits_per_packet);
    // Packet latency is measured in NoC cycles (1 GHz). A core running at
    // f waits latency × f/1GHz of *its own* cycles per blocking packet —
    // fast cores burn proportionally more cycles per network round trip.
    const double stall_per_work = cfg.stall_alpha * app.latency_cycles *
                                  (f / units::kRefClockHz) *
                                  packets_per_work_cycle;
    AppOutcome& out =
        ctx.outcomes[static_cast<std::size_t>(app.outcome_index)];

    for (RunningTask& task : app.tasks) {
      if (task.done()) continue;
      const std::size_t ti = static_cast<std::size_t>(task.tile);
      // A task stranded on a dead router is frozen: no progress, no VE
      // rolls, no heat accounting, until repair frees (or re-maps) it.
      if (ctx.tile_dead[ti] != 0) {
        task.progress_rate_cps = 0.0;
        task.hot_epochs = 0;
        continue;
      }
      const double peak = ctx.tile_psn_peak[ti];
      const double avg = ctx.tile_psn_avg[ti];

      const bool injected =
          std::find(forced.begin(), forced.end(), task.tile) !=
          forced.end();
      task.hot_epochs = peak > margin ? task.hot_epochs + 1 : 0;
      if (injected || peak > margin) {
        const double p =
            injected ? 1.0
                     : std::min(cfg.ve_probability_cap,
                                cfg.ve_probability_slope *
                                    (peak - margin));
        if (ctx.rng->bernoulli(p)) {
          // Voltage emergency: roll back to the checkpoint taken at the
          // start of this epoch — the epoch's progress is lost and the
          // restart penalty is added. A restarting core barely injects.
          task.remaining_cycles += checkpoint_.config().rollback_cycles;
          task.progress_rate_cps = 0.05 * f;
          ++out.ve_count;
          ++total_ves_;
          ++ctx.epoch_ves;
          ves_->inc();
          obs::Tracer::instance().instant(
              "sim", "voltage_emergency",
              {{"app", out.id},
               {"tile", static_cast<int>(task.tile)},
               {"psn_percent", peak},
               {"injected", injected ? 1 : 0},
               {"sim_time_s", now}});
          ctx.emit(obs::EventType::kAppVe, out.id,
                   static_cast<std::int32_t>(task.tile), -1, peak,
                   injected ? 1.0 : 0.0);
          continue;
        }
      }
      double derate = std::max(
          0.2, 1.0 - cfg.psn_slowdown_per_percent * avg);
      if (ctx.tile_throttled[ti]) derate *= cfg.throttle_factor;
      const double progress_rate = f * derate / (1.0 + stall_per_work);
      task.progress_rate_cps = progress_rate;
      const double progress =
          progress_rate * cfg.epoch_s - checkpoint_.config().checkpoint_cycles;
      task.remaining_cycles -= std::max(0.0, progress);
      if (task.done() && task.finish_s < 0.0) {
        task.finish_s = now + cfg.epoch_s;
      }
    }
  }
}

void EmergencyAndProgressPhase::save(snapshot::Writer& w) const {
  w.begin_section("EMRG");
  w.u64(next_fault_);
  w.u64(total_ves_);
}

void EmergencyAndProgressPhase::restore(snapshot::Reader& r,
                                        const EpochContext& ctx) {
  r.expect_section("EMRG");
  next_fault_ = r.u64();
  if (next_fault_ > ctx.cfg->fault_injections.size()) {
    throw snapshot::SnapshotError("snapshot fault cursor out of range");
  }
  total_ves_ = r.u64();
}

// ---------------------------------------------------------------- migration

void MigrationPhase::run(EpochContext& ctx) {
  const SimConfig& cfg = *ctx.cfg;
  cmp::Platform& platform = *ctx.platform;
  for (RunningApp& app : ctx.running) {
    // At most one migration per app per epoch: move the hottest
    // persistently-stressed task to the coolest free domain.
    RunningTask* worst = nullptr;
    for (RunningTask& task : app.tasks) {
      if (task.done() || task.hot_epochs < cfg.migration_hot_epochs) {
        continue;
      }
      if (worst == nullptr ||
          ctx.tile_psn_peak[static_cast<std::size_t>(task.tile)] >
              ctx.tile_psn_peak[static_cast<std::size_t>(worst->tile)]) {
        worst = &task;
      }
    }
    if (worst == nullptr) continue;
    const std::vector<DomainId> free = platform.free_domains();
    if (free.empty()) continue;
    // Closest free domain to the task's current one keeps paths short.
    DomainId best = free.front();
    double best_dist = 1e18;
    const DomainId from_d = platform.domain_of(worst->tile);
    for (DomainId d : free) {
      const double dist = platform.domain_distance(d, from_d);
      if (dist < best_dist) {
        best_dist = dist;
        best = d;
      }
    }
    // First live slot of the target domain (== slot 0 on grid domains;
    // short irregular domains pad trailing slots with kInvalidTile).
    TileId target = kInvalidTile;
    for (const TileId t : platform.domain_tiles(best)) {
      if (t != kInvalidTile) {
        target = t;
        break;
      }
    }
    if (target == kInvalidTile) continue;
    obs::Tracer::instance().instant(
        "sim", "app.migrate",
        {{"app", app.outcome_index},
         {"from_tile", static_cast<int>(worst->tile)},
         {"to_tile", static_cast<int>(target)}});
    ctx.emit(obs::EventType::kAppMigrate, app.outcome_index,
             static_cast<std::int32_t>(worst->tile), -1,
             static_cast<double>(target),
             ctx.tile_psn_peak[static_cast<std::size_t>(worst->tile)]);
    platform.migrate(app.instance, worst->tile, target);
    worst->tile = target;
    worst->remaining_cycles += cfg.migration_cost_cycles;
    worst->hot_epochs = 0;
    ++total_migrations_;
  }
}

void MigrationPhase::save(snapshot::Writer& w) const {
  w.begin_section("MIGR");
  w.u64(total_migrations_);
}

void MigrationPhase::restore(snapshot::Reader& r) {
  r.expect_section("MIGR");
  total_migrations_ = r.u64();
}

// ---------------------------------------------------------------- telemetry

TelemetryPhase::TelemetryPhase(obs::Registry* registry)
    : solves_(&obs::resolve(registry).counter("pdn.solves")),
      cands_(&obs::resolve(registry).counter("mapper.candidates_evaluated")),
      reroutes_(&obs::resolve(registry).counter("noc.panr_reroutes")),
      epochs_(&obs::resolve(registry).counter("sim.epochs")),
      queue_depth_(&obs::resolve(registry).gauge("sim.queue_depth")),
      running_apps_(&obs::resolve(registry).gauge("sim.running_apps")) {}

void TelemetryPhase::run(EpochContext& ctx, std::size_t queued_apps) {
  // Health-rule inputs: epoch count (rate denominator) and the live
  // occupancy gauges, refreshed every epoch whether or not per-epoch
  // telemetry samples are being recorded.
  epochs_->inc();
  queue_depth_->set(static_cast<double>(queued_apps));
  running_apps_->set(static_cast<double>(ctx.running.size()));
  if (ctx.cfg->record_telemetry) {
    EpochSample sample;
    sample.time_s = ctx.t;
    sample.peak_psn_percent = ctx.epoch_peak_psn;
    sample.avg_psn_percent = ctx.epoch_avg_psn;
    sample.chip_power_w = ctx.epoch_chip_power;
    sample.running_apps = static_cast<std::int32_t>(ctx.running.size());
    sample.queued_apps = static_cast<std::int32_t>(queued_apps);
    sample.busy_tiles =
        ctx.platform->tile_count() - ctx.platform->free_tile_count();
    sample.noc_latency_cycles = ctx.epoch_noc_latency;
    sample.ve_count = ctx.epoch_ves;
    sample.pdn_solves =
        static_cast<std::int64_t>(solves_->value() - prev_solves_);
    sample.mapper_candidates =
        static_cast<std::int64_t>(cands_->value() - prev_cands_);
    sample.panr_reroutes =
        static_cast<std::int64_t>(reroutes_->value() - prev_reroutes_);
    recorder_.record(sample);
  }
  prev_solves_ = solves_->value();
  prev_cands_ = cands_->value();
  prev_reroutes_ = reroutes_->value();

  // Occupancy waveforms — the queue-depth / running-app trajectories the
  // blackbox correlates against droop and congestion.
  if (ctx.capture_on()) {
    obs::TimeSeriesStore& store = *ctx.timeseries;
    if (ts_queue_ == nullptr) {
      ts_queue_ = &store.series("admission.queue_depth");
      ts_running_ = &store.series("sim.running_apps");
    }
    std::size_t evicted =
        ts_queue_->append(ctx.t, static_cast<double>(queued_apps));
    evicted +=
        ts_running_->append(ctx.t, static_cast<double>(ctx.running.size()));
    store.note_appends(2, evicted);
  }
}

void TelemetryPhase::save(snapshot::Writer& w) const {
  w.begin_section("TELE");
  w.u64(prev_solves_);
  w.u64(prev_cands_);
  w.u64(prev_reroutes_);
  // Absolute counter values: restore writes them back into the instance
  // registry so the next epoch's deltas (value − prev) resume mid-stream
  // exactly, including ticks pending from the snapshot epoch's tail.
  w.u64(solves_->value());
  w.u64(cands_->value());
  w.u64(reroutes_->value());
  recorder_.save(w);
}

void TelemetryPhase::restore(snapshot::Reader& r) {
  r.expect_section("TELE");
  prev_solves_ = r.u64();
  prev_cands_ = r.u64();
  prev_reroutes_ = r.u64();
  for (obs::Counter* c : {solves_, cands_, reroutes_}) {
    c->reset();
    c->inc(r.u64());
  }
  recorder_.restore(r);
}

}  // namespace parm::sim
