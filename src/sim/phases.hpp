// The six phase components of the epoch engine.
//
// SystemSimulator::run() drives one EpochContext through this pipeline
// every control epoch:
//
//   AdmissionPhase           arrivals → FCFS queue → Alg. 1 admission
//   NocSamplingPhase         APG flows → cycle-accurate window (gated)
//   PsnSamplingPhase         power models → PDN transients → sensors
//   EmergencyAndProgressPhase  VEs, rollback, task progress
//   MigrationPhase           hot-task migration (optional extension)
//   TelemetryPhase           per-epoch sample + counter watermarks
//
// Each phase owns its private state (queue, network, estimator/cache,
// aggregate statistics, watermarks), its metric handles — resolved once,
// at construction, from the engine's instance registry — and its snapshot
// section. Cross-phase state travels exclusively through EpochContext;
// the engine owns the context's serialization, each phase its own.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/framework.hpp"
#include "core/service_queue.hpp"
#include "noc/window_sim.hpp"
#include "pdn/psn_cache.hpp"
#include "pdn/psn_estimator.hpp"
#include "sched/checkpoint.hpp"
#include "sim/epoch_context.hpp"
#include "sim/telemetry.hpp"
#include "snapshot/serializer.hpp"

namespace parm::sim {

/// Resolves an arrival id back to the simulator's immutable arrival list
/// during snapshot restore (profiles are reconstruction inputs, never
/// snapshot payload).
using ArrivalById =
    std::function<const appmodel::AppArrival&(int)>;

/// Phase 1 — arrivals, FCFS queueing, and the framework's admission
/// policy (Algorithm 1 + mapper). Owns the service queue, the arrival
/// cursor, and the instance-id allocator; commits admitted apps onto the
/// platform and into ctx.running.
class AdmissionPhase {
 public:
  AdmissionPhase(const core::FrameworkConfig& framework, int queue_max_stalls,
                 obs::Registry* registry);

  /// Loop top: enqueue every arrival due at ctx.t (pumping admissions
  /// after each, then once more — an arrival is a scheduling event).
  void process_arrivals(EpochContext& ctx);

  /// Epoch bottom: release completed apps and, if any exited, retry
  /// queued admissions (Alg. 1 line 9's "app exit event").
  void finish_and_readmit(EpochContext& ctx, double now);

  std::size_t next_arrival() const { return next_arrival_; }
  std::size_t queue_size() const { return queue_.size(); }
  bool queue_empty() const { return queue_.empty(); }

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r, const EpochContext& ctx,
               const ArrivalById& arrival_by_id);

 private:
  void admit_pending(EpochContext& ctx, double now);
  void commit(EpochContext& ctx, const core::ServiceQueue::Admitted& adm,
              double now);

  std::unique_ptr<core::AdmissionPolicy> policy_;
  core::ServiceQueue queue_;
  std::size_t next_arrival_ = 0;
  cmp::AppInstanceId next_instance_ = 1;
  obs::Counter* completed_;         ///< sim.apps_completed
  obs::Counter* deadline_misses_;   ///< sim.deadline_misses
  /// admission.time_to_admit_s — arrival→commit wait of every admitted
  /// app (the SLO engine's fourth objective reads the same waits through
  /// EpochContext::slo).
  obs::Histogram* admit_wait_s_;
};

/// Phase 2 — the cycle-accurate NoC window. Owns the network (routers,
/// routing scheme) and the run-wide latency statistic; translates APG
/// edge volumes and task progress into injection rates, measures
/// per-router activity and per-app packet latency.
class NocSamplingPhase {
 public:
  /// `parallel_noc`/`noc_shards` select the sharded cycle engine
  /// (SimConfig fields of the same names); any setting is bit-identical.
  /// The routing policy comes from make_routing_for: the legacy
  /// turn-model algorithms on a plain mesh, table-based ones elsewhere.
  NocSamplingPhase(std::shared_ptr<const noc::Topology> topo,
                   const noc::NocConfig& noc, const std::string& routing,
                   double panr_threshold, bool parallel_noc, int noc_shards,
                   obs::Registry* registry);

  void run(EpochContext& ctx);

  const RunningStats& latency_stats() const { return latency_stats_; }
  /// Delivery ratio of every measured window (min is the run's floor).
  const RunningStats& delivery_stats() const { return delivery_stats_; }
  /// Measured windows with zero forwards and zero deliveries while flits
  /// stayed buffered in the network — the routing-deadlock oracle.
  std::uint64_t deadlock_windows() const { return deadlock_windows_; }

  /// The phase's network — the fault phase steers topology faults and
  /// bit-error rates into it.
  noc::Network& network() { return *network_; }
  const noc::Network& network() const { return *network_; }

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  std::vector<noc::TrafficFlow> build_flows(const EpochContext& ctx) const;

  std::unique_ptr<noc::Network> network_;
  /// Window instruments resolved once at construction (the phase runs a
  /// window per sampled epoch; see noc::WindowMetrics).
  noc::WindowMetrics window_metrics_;
  RunningStats latency_stats_;
  RunningStats delivery_stats_;
  std::uint64_t deadlock_windows_ = 0;
  /// Congestion edge detector for noc.congestion_onset/_clear events.
  /// Observe-only and deliberately not snapshotted: a resumed run
  /// re-detects the level from its first window, like the recorder
  /// itself starting empty.
  bool congested_ = false;
  /// Time-series capture handles (noc.router<t>.activity per tile plus
  /// the window's delivery ratio and latency), resolved lazily on the
  /// first captured window — the store lives in the engine and reaches
  /// the phase through the context.
  std::vector<obs::TimeSeries*> ts_router_;
  obs::TimeSeries* ts_delivery_ = nullptr;
  obs::TimeSeries* ts_latency_ = nullptr;
};

/// Phase 3 — PDN transient sampling. Owns the PSN estimator, the memo
/// cache, the run-wide PSN/power statistics, and the proactive-throttle
/// ledger; updates the per-tile sensors the NoC and the emergency phase
/// read.
class PsnSamplingPhase {
 public:
  PsnSamplingPhase(const power::TechnologyNode& tech,
                   const pdn::PsnEstimatorConfig& cfg,
                   obs::Registry* registry);

  void run(EpochContext& ctx);

  const RunningStats& psn_peak_stats() const { return psn_peak_stats_; }
  const RunningStats& psn_avg_stats() const { return psn_avg_stats_; }
  const RunningStats& chip_power_stats() const { return chip_power_stats_; }
  std::uint64_t throttle_tile_epochs() const {
    return total_throttle_epochs_;
  }

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  pdn::PsnEstimator psn_estimator_;
  // PSN memoization: quantized domain load signature -> result (bounded
  // LRU, shared key scheme with admission via pdn::PsnCache).
  pdn::PsnCache psn_cache_;
  RunningStats psn_peak_stats_;
  RunningStats psn_avg_stats_;
  RunningStats chip_power_stats_;
  std::uint64_t total_throttle_epochs_ = 0;
  /// Per-domain VE-margin edge detector for ve.onset/_clear events.
  /// Observe-only, not snapshotted (see NocSamplingPhase::congested_).
  std::vector<char> domain_over_margin_;
  /// Time-series capture handles (psn.domain<d>.{peak,avg}_percent per
  /// domain, the chip-level peak/power, and the VE margin), resolved
  /// lazily on the first captured epoch.
  std::vector<obs::TimeSeries*> ts_domain_peak_;
  std::vector<obs::TimeSeries*> ts_domain_avg_;
  obs::TimeSeries* ts_chip_peak_ = nullptr;
  obs::TimeSeries* ts_chip_power_ = nullptr;
  obs::TimeSeries* ts_margin_ = nullptr;
};

/// Phase 4 — voltage emergencies (measured and injected), checkpoint
/// rollback, and task progress. Owns the checkpoint model, the
/// fault-injection cursor, and the run-wide VE total.
class EmergencyAndProgressPhase {
 public:
  EmergencyAndProgressPhase(const sched::CheckpointConfig& cfg,
                            obs::Registry* registry);

  void run(EpochContext& ctx, double now);

  std::uint64_t total_ves() const { return total_ves_; }

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r, const EpochContext& ctx);

 private:
  sched::CheckpointModel checkpoint_;
  std::size_t next_fault_ = 0;
  std::uint64_t total_ves_ = 0;
  obs::Counter* ves_;  ///< sim.ves
};

/// Phase 5 — hot-task migration (extension, gated on
/// SimConfig::enable_migration). Owns the run-wide migration count.
class MigrationPhase {
 public:
  void run(EpochContext& ctx);

  std::uint64_t total_migrations() const { return total_migrations_; }

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  std::uint64_t total_migrations_ = 0;
};

/// Phase 6 — per-epoch telemetry. Owns the recorder, the three activity
/// counter handles (pdn.solves, mapper.candidates_evaluated,
/// noc.panr_reroutes) resolved once from the instance registry, and their
/// previous-epoch watermarks: with instance-scoped metrics a per-epoch
/// delta is a plain subtraction of two local reads. Snapshots store the
/// watermarks plus the absolute counter values; restore writes the
/// absolutes back into the registry so deltas resume mid-stream exactly.
class TelemetryPhase {
 public:
  explicit TelemetryPhase(obs::Registry* registry);

  /// Records one EpochSample (when ctx.cfg->record_telemetry) and then
  /// advances the watermarks to the live counter values.
  void run(EpochContext& ctx, std::size_t queued_apps);

  const TelemetryRecorder& recorder() const { return recorder_; }

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  obs::Counter* solves_;
  obs::Counter* cands_;
  obs::Counter* reroutes_;
  obs::Counter* epochs_;        ///< sim.epochs (health-rule denominator)
  obs::Gauge* queue_depth_;     ///< sim.queue_depth
  obs::Gauge* running_apps_;    ///< sim.running_apps
  std::uint64_t prev_solves_ = 0;
  std::uint64_t prev_cands_ = 0;
  std::uint64_t prev_reroutes_ = 0;
  TelemetryRecorder recorder_;
  /// Time-series capture handles (admission.queue_depth and
  /// sim.running_apps — the queue-depth waveform the blackbox correlates
  /// against droop), resolved lazily on the first captured epoch.
  obs::TimeSeries* ts_queue_ = nullptr;
  obs::TimeSeries* ts_running_ = nullptr;
};

}  // namespace parm::sim
