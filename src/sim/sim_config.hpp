// Configuration and result types of the epoch-phase simulation engine.
//
// Split from system_sim.hpp so the phase components (sim/phases.hpp) can
// consume SimConfig without depending on the engine class itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cmp/platform.hpp"
#include "core/framework.hpp"
#include "fault/fault_model.hpp"
#include "noc/window_sim.hpp"
#include "obs/slo.hpp"
#include "pdn/psn_estimator.hpp"
#include "sched/checkpoint.hpp"
#include "sim/telemetry.hpp"

namespace parm::sim {

struct SimConfig {
  cmp::PlatformConfig platform;
  core::FrameworkConfig framework;

  double epoch_s = 1e-3;  ///< Control epoch == checkpoint period (1 ms).
  /// NoC is re-simulated every `noc_every_epochs` epochs (activity and
  /// latency are reused in between); each window runs warmup + measure
  /// cycles at the 1 GHz NoC clock.
  int noc_every_epochs = 2;
  noc::WindowConfig noc_window{64, 256};
  noc::NocConfig noc;
  sched::CheckpointConfig checkpoint;
  pdn::PsnEstimatorConfig psn;
  /// Evaluate the independent per-domain PSN estimates on the shared
  /// thread pool. Results are bit-identical to the serial path (per-domain
  /// slots, serial reduction); disable to pin the whole epoch to one
  /// thread.
  bool parallel_psn = true;
  /// Step NoC windows on the sharded parallel cycle engine. Like
  /// parallel_psn, the parallel path is bit-identical to serial stepping
  /// (pinned by engine_equivalence_test), so this is a throughput knob
  /// only and is excluded from the snapshot fingerprint.
  bool parallel_noc = true;
  /// Shard count for the parallel NoC engine: 0 = auto (pool width capped
  /// at 8, serial on single-threaded hosts). Ignored when parallel_noc is
  /// off. Any value yields identical results.
  int noc_shards = 0;

  double max_sim_time_s = 30.0;

  /// VE probability per task-epoch: slope × (domain peak PSN % − margin),
  /// capped. The margin is platform.ve_threshold_percent (5 %).
  double ve_probability_slope = 0.32;
  double ve_probability_cap = 0.88;
  /// Critical-path slowdown per percent of average PSN (guardband loss).
  double psn_slowdown_per_percent = 0.01;
  /// Fraction of measured packet latency visible as a compute stall.
  double stall_alpha = 0.35;
  /// Supply of the always-on router rail in otherwise dark domains.
  double dark_router_vdd = 0.4;

  int queue_max_stalls = 8;
  std::uint64_t seed = 42;

  /// Sensor-guided proactive throttling (extension; cf. the paper's
  /// related work on pipeline throttling [9] and reactive schemes [16]):
  /// when a tile's sensor reads within `throttle_guard_percent` of the VE
  /// margin, its core is throttled to `throttle_factor` of full speed for
  /// the next epoch — trading throughput for supply current before an
  /// emergency strikes. Off by default (the paper's PARM avoids the need
  /// for it; bench/ablation_throttle quantifies that claim).
  bool proactive_throttle = false;
  double throttle_guard_percent = 1.0;
  double throttle_factor = 0.6;

  /// Thread migration (extension; cf. [19]): a task whose tile sensor
  /// stays above the VE margin for `migration_hot_epochs` consecutive
  /// epochs is moved to the coolest free domain (same Vdd), paying
  /// `migration_cost_cycles` of state-transfer work. Off by default.
  bool enable_migration = false;
  int migration_hot_epochs = 3;
  double migration_cost_cycles = 50000.0;

  /// Record one EpochSample per epoch into SimResult::telemetry.
  bool record_telemetry = false;

  /// Record structured lifecycle/VE/congestion events into the
  /// simulator's flight recorder (obs/flight_recorder.hpp). Observe-only:
  /// enabling it never changes simulation results (pinned by
  /// tests/engine_equivalence_test), so — like parallel_psn — it is
  /// excluded from the snapshot fingerprint and may differ across a
  /// save/resume pair.
  bool record_events = false;
  /// Retained-event bound of the flight recorder (older events are
  /// overwritten and counted in recorder.events_dropped).
  std::size_t events_capacity = 16384;
  /// When non-empty and record_events is set: dump the recorder to this
  /// path (JSONL) at the end of the first epoch with a voltage emergency
  /// — the black-box read-out for the incident that matters most.
  std::string events_dump_on_ve;
  /// A NoC window whose delivery ratio (delivered/offered flits) falls
  /// below this emits noc.congestion_onset; recovering emits _clear.
  /// Event threshold only — never feeds back into the simulation.
  double noc_congestion_delivery_ratio = 0.9;

  /// Capture bounded droop/congestion waveforms into the simulator's
  /// time-series store (obs/timeseries.hpp): per-domain peak/mean PSN
  /// and the VE margin from the PSN phase, per-router activity and
  /// delivery ratio from the NoC phase, queue depth and running apps
  /// from the telemetry phase. Observe-only like record_events (pinned
  /// by tests/engine_equivalence_test) and excluded from the snapshot
  /// fingerprint — but unlike the recorder, the store's *contents* are
  /// snapshotted, so the retained history survives a resume.
  bool record_timeseries = false;
  /// Ring capacity per downsample level of every series.
  std::size_t timeseries_capacity = 512;
  /// Downsample levels per series (level 0 = full resolution).
  std::size_t timeseries_levels = 3;
  /// Aggregation fan-in between consecutive downsample levels.
  std::size_t timeseries_downsample = 8;

  /// Time the six engine phases with the per-epoch self-profiler
  /// (obs/phase_profiler.hpp): per-phase wall-clock histograms land in
  /// the simulator's registry (profile.phase.*_us) and surface on
  /// /profilez. Observe-only like record_events (pinned by
  /// tests/obs_server_test.cpp) and excluded from the snapshot
  /// fingerprint.
  bool profile_phases = false;

  /// Feed the rolling SLO engine (obs/slo.hpp): multi-window burn-rate
  /// tracking over ve_rate, deadline-miss rate, NoC delivery ratio, and
  /// time-to-admit p99, surfaced on /slo and foldable into the health
  /// verdict. Observe-only like record_events (pinned by
  /// tests/obs_server_test.cpp), excluded from the snapshot fingerprint,
  /// and — like the flight recorder — not snapshotted: a resumed run's
  /// windows refill within slo.long_window_epochs.
  bool track_slo = false;
  /// Window shape and objective targets of the SLO engine.
  obs::SloConfig slo;

  /// Forced voltage emergencies for failure-injection testing: the task
  /// running on `tile` during the epoch containing `time_s` rolls back
  /// regardless of the measured PSN. Entries must be sorted by time.
  struct FaultInjection {
    double time_s = 0.0;
    TileId tile = kInvalidTile;
  };
  std::vector<FaultInjection> fault_injections;

  /// Hardware fault injection (fault/fault_model.hpp): scheduled/random
  /// link and router failures, per-epoch sensor dropout, and
  /// droop-dependent flit bit-errors. Off by default; with
  /// `faults.enabled == false` the engine is bit-identical to a build
  /// without the fault subsystem (pinned by tests/fault_test.cpp).
  fault::FaultConfig faults;

  /// Throws CheckError with a descriptive message when any field is out
  /// of range (non-positive epoch or time limits, throttle/migration
  /// parameters outside their domains, unsorted fault injections).
  /// SystemSimulator and fleet::FleetSimulator call this on construction;
  /// front-ends (examples/parm_runner) call it right after parsing flags
  /// so a bad command line fails before any platform is built.
  void validate() const;
};

/// Per-application outcome record.
struct AppOutcome {
  int id = -1;
  std::string bench;
  double arrival_s = 0.0;
  double deadline_s = 0.0;
  bool admitted = false;
  bool completed = false;
  bool dropped = false;
  double admit_s = 0.0;
  double finish_s = 0.0;
  bool missed_deadline = false;
  /// Tasks that finished after their EDF-assigned intermediate deadline
  /// (paper section 4.2: per-task deadlines derived from the application
  /// deadline via the task-graph technique of [23]).
  int task_deadline_misses = 0;
  double vdd = 0.0;
  int dop = 0;
  int ve_count = 0;
};

struct SimResult {
  std::vector<AppOutcome> apps;
  double makespan_s = 0.0;  ///< Last completion time ("total time to
                            ///< execute the sequence", Fig. 6).
  double peak_psn_percent = 0.0;   ///< Fig. 7 (peak bars)
  double avg_psn_percent = 0.0;    ///< Fig. 7 (average bars)
  int completed_count = 0;         ///< Fig. 8
  int dropped_count = 0;
  std::uint64_t total_ve_count = 0;
  /// Tile-epochs spent throttled by the proactive guard (0 unless
  /// SimConfig::proactive_throttle).
  std::uint64_t throttle_tile_epochs = 0;
  /// Task migrations performed (0 unless SimConfig::enable_migration).
  std::uint64_t migration_count = 0;
  double avg_noc_latency_cycles = 0.0;
  double peak_chip_power_w = 0.0;
  double avg_chip_power_w = 0.0;
  /// Total chip energy over the run (J) and its ratio per completed app
  /// — the dark-silicon efficiency view (NTC operation wins big here).
  double total_energy_j = 0.0;
  double energy_per_completed_app_j = 0.0;
  bool timed_out = false;  ///< hit max_sim_time_s with work remaining
  TelemetryRecorder telemetry;  ///< filled when record_telemetry is set

  // --- NoC window health over the run (campaign property inputs) ---
  /// Mean/minimum delivery ratio over the measured NoC windows (1.0 when
  /// no window ran).
  double avg_delivery_ratio = 1.0;
  double min_delivery_ratio = 1.0;
  /// Measured NoC windows that made no forward progress while flits were
  /// buffered — the routing-deadlock oracle (0 on a live network).
  std::uint64_t deadlock_windows = 0;

  // --- Fault-injection counters (all 0 unless SimConfig::faults.enabled) ---
  std::uint64_t fault_dropped_flits = 0;   ///< purged/misdelivered/corrupt
  std::uint64_t corrupt_packets = 0;       ///< bit-error at ejection
  std::uint64_t retransmitted_packets = 0;
  std::uint64_t link_fault_events = 0;     ///< link down+up transitions
  std::uint64_t router_fault_events = 0;   ///< router down+up transitions
  std::uint64_t sensor_dropout_epochs = 0; ///< tile-epochs of stale sensing
  std::uint64_t fault_task_remaps = 0;     ///< tasks moved off dead routers
  std::uint64_t fault_stranded_tasks = 0;  ///< tasks with nowhere to go
};

}  // namespace parm::sim
