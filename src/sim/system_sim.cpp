#include "sim/system_sim.hpp"

#include <algorithm>
#include <bit>
#include <fstream>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "snapshot/snapshot_file.hpp"

namespace parm::sim {

namespace {

// FNV-1a mixing, shared digest primitive of the snapshot layer.
void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
}

void mix_f64(std::uint64_t& h, double v) {
  mix(h, std::bit_cast<std::uint64_t>(v));
}

void mix_str(std::uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  mix(h, s.size());
}

/// Config preparation shared by every construction path: validate, then
/// mirror the framework's PANR occupancy threshold into the NoC config
/// the network is built from.
SimConfig prepare(SimConfig cfg) {
  cfg.validate();
  cfg.noc.panr_occupancy_threshold = cfg.framework.panr_threshold;
  return cfg;
}

}  // namespace

void SimConfig::validate() const {
  // Building the topology exercises every construction-time check (spec
  // syntax, dimension constraints, file parsing, graph connectivity), so
  // a bad --topology fails here with its own descriptive CheckError
  // before any platform is built.
  noc::Topology::make(platform.topology, platform.mesh_width,
                      platform.mesh_height);
  PARM_CHECK(epoch_s > 0.0, "SimConfig: epoch_s must be positive");
  PARM_CHECK(noc_every_epochs > 0,
             "SimConfig: noc_every_epochs must be positive");
  PARM_CHECK(max_sim_time_s > 0.0,
             "SimConfig: max_sim_time_s must be positive");
  PARM_CHECK(ve_probability_slope >= 0.0,
             "SimConfig: ve_probability_slope must be non-negative");
  PARM_CHECK(ve_probability_cap >= 0.0 && ve_probability_cap <= 1.0,
             "SimConfig: ve_probability_cap must be a probability in [0, 1]");
  PARM_CHECK(psn_slowdown_per_percent >= 0.0,
             "SimConfig: psn_slowdown_per_percent must be non-negative");
  PARM_CHECK(stall_alpha >= 0.0,
             "SimConfig: stall_alpha must be non-negative");
  PARM_CHECK(dark_router_vdd > 0.0,
             "SimConfig: dark_router_vdd must be positive");
  PARM_CHECK(queue_max_stalls >= 1,
             "SimConfig: queue_max_stalls must be at least 1");
  PARM_CHECK(throttle_guard_percent >= 0.0,
             "SimConfig: throttle_guard_percent must be non-negative");
  PARM_CHECK(throttle_factor > 0.0 && throttle_factor <= 1.0,
             "SimConfig: throttle_factor must be in (0, 1]");
  PARM_CHECK(migration_hot_epochs >= 1,
             "SimConfig: migration_hot_epochs must be at least 1");
  PARM_CHECK(migration_cost_cycles >= 0.0,
             "SimConfig: migration_cost_cycles must be non-negative");
  PARM_CHECK(events_capacity >= 1,
             "SimConfig: events_capacity must be at least 1");
  PARM_CHECK(timeseries_capacity >= 1,
             "SimConfig: timeseries_capacity must be at least 1");
  PARM_CHECK(timeseries_levels >= 1,
             "SimConfig: timeseries_levels must be at least 1");
  PARM_CHECK(timeseries_downsample >= 2,
             "SimConfig: timeseries_downsample must be at least 2");
  PARM_CHECK(noc_congestion_delivery_ratio > 0.0 &&
                 noc_congestion_delivery_ratio <= 1.0,
             "SimConfig: noc_congestion_delivery_ratio must be in (0, 1]");
  PARM_CHECK(noc_shards >= 0 && noc_shards <= 256,
             "SimConfig: noc_shards must be in [0, 256] (0 = auto)");
  slo.validate();
  PARM_CHECK(std::is_sorted(fault_injections.begin(), fault_injections.end(),
                            [](const auto& a, const auto& b) {
                              return a.time_s < b.time_s;
                            }),
             "SimConfig: fault injections must be sorted by time");
  faults.validate();
}

SystemSimulator::SystemSimulator(SimConfig cfg,
                                 std::vector<appmodel::AppArrival> arrivals)
    : cfg_(prepare(std::move(cfg))),
      recorder_(cfg_.record_events, cfg_.events_capacity,
                obs::FlightRecorder::kDefaultShards, &metrics_),
      timeseries_(cfg_.record_timeseries,
                  obs::TimeSeriesConfig{cfg_.timeseries_capacity,
                                        cfg_.timeseries_levels,
                                        cfg_.timeseries_downsample},
                  &metrics_),
      profiler_(cfg_.profile_phases, &metrics_),
      slo_(cfg_.track_slo, cfg_.slo),
      platform_(cfg_.platform),
      arrivals_(std::move(arrivals)),
      rng_(cfg_.seed),
      admission_(cfg_.framework, cfg_.queue_max_stalls, &metrics_),
      noc_(platform_.topology_ptr(), cfg_.noc, cfg_.framework.routing,
           cfg_.framework.panr_threshold, cfg_.parallel_noc, cfg_.noc_shards,
           &metrics_),
      psn_(platform_.technology(), cfg_.psn, &metrics_),
      emergency_(cfg_.checkpoint, &metrics_),
      telemetry_(&metrics_),
      fault_(cfg_.faults, platform_.topology_ptr(), cfg_.seed) {
  PARM_CHECK(std::is_sorted(arrivals_.begin(), arrivals_.end(),
                            [](const auto& a, const auto& b) {
                              return a.arrival_s < b.arrival_s;
                            }),
             "arrivals must be sorted by time");
  ctx_.cfg = &cfg_;
  ctx_.platform = &platform_;
  ctx_.metrics = &metrics_;
  ctx_.recorder = &recorder_;
  ctx_.timeseries = &timeseries_;
  ctx_.rng = &rng_;
  ctx_.arrivals = &arrivals_;
  ctx_.slo = &slo_;
  const std::size_t n = static_cast<std::size_t>(platform_.tile_count());
  ctx_.router_activity.assign(n, 0.0);
  ctx_.tile_psn_peak.assign(n, 0.0);
  ctx_.tile_psn_avg.assign(n, 0.0);
  ctx_.tile_throttled.assign(n, false);
  ctx_.noc_psn_sensor.assign(n, 0.0);
  ctx_.tile_psn_sensed.assign(n, 0.0);
  ctx_.tile_dead.assign(n, 0);
  ctx_.outcomes.resize(arrivals_.size());
  // The counter-based bit-error hash shares the fault stream's salt so
  // corruption is a pure function of (seed, packet id, tile).
  noc_.network().set_fault_seed(cfg_.seed ^ fault::kFaultSeedSalt);
}

SystemSimulator::~SystemSimulator() = default;

std::uint64_t SystemSimulator::config_fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, cfg_.framework.fingerprint());
  mix(h, static_cast<std::uint64_t>(cfg_.platform.mesh_width));
  mix(h, static_cast<std::uint64_t>(cfg_.platform.mesh_height));
  // Mixed only when non-default so every fingerprint of a plain-mesh
  // config (including pre-topology snapshots) is unchanged.
  if (cfg_.platform.topology != "mesh") {
    mix_str(h, cfg_.platform.topology);
  }
  mix(h, static_cast<std::uint64_t>(cfg_.platform.technology_nm));
  mix(h, cfg_.platform.vdd_levels.size());
  for (double v : cfg_.platform.vdd_levels) mix_f64(h, v);
  mix_f64(h, cfg_.platform.dark_silicon_budget_w);
  mix_f64(h, cfg_.platform.ve_threshold_percent);
  mix_f64(h, cfg_.epoch_s);
  mix(h, static_cast<std::uint64_t>(cfg_.noc_every_epochs));
  mix(h, cfg_.noc_window.warmup_cycles);
  mix(h, cfg_.noc_window.measure_cycles);
  mix(h, static_cast<std::uint64_t>(cfg_.noc.buffer_depth));
  mix(h, static_cast<std::uint64_t>(cfg_.noc.flits_per_packet));
  mix_f64(h, cfg_.noc.rate_ewma_alpha);
  mix_f64(h, cfg_.checkpoint.period_s);
  mix_f64(h, cfg_.checkpoint.checkpoint_cycles);
  mix_f64(h, cfg_.checkpoint.rollback_cycles);
  mix(h, static_cast<std::uint64_t>(cfg_.psn.warmup_periods));
  mix(h, static_cast<std::uint64_t>(cfg_.psn.measure_periods));
  mix(h, static_cast<std::uint64_t>(cfg_.psn.steps_per_period));
  // cfg_.parallel_psn deliberately excluded: both paths are bit-identical.
  // cfg_.parallel_noc / cfg_.noc_shards likewise: the sharded NoC engine
  // is bit-identical to serial stepping for every shard count, so a
  // snapshot may be resumed under a different engine configuration.
  // record_events / events_capacity / events_dump_on_ve /
  // noc_congestion_delivery_ratio likewise excluded: the event pipeline
  // is observe-only (pinned by tests/engine_equivalence_test), so a
  // snapshot taken without recording may be resumed with it on, and vice
  // versa — events before the resume point are simply absent.
  // record_timeseries and the timeseries_* shape are excluded for the
  // same reason; a restored store adopts the snapshot's shape (see
  // obs::TimeSeriesStore::restore), so even shape changes resume
  // cleanly.
  // profile_phases, track_slo, and the slo targets are excluded for the
  // same reason again: the self-profiler and SLO engine are observe-only
  // (pinned by tests/obs_server_test.cpp), so a snapshot taken without
  // them may be resumed with them on — their histories simply start at
  // the resume point.
  mix_f64(h, cfg_.max_sim_time_s);
  mix_f64(h, cfg_.ve_probability_slope);
  mix_f64(h, cfg_.ve_probability_cap);
  mix_f64(h, cfg_.psn_slowdown_per_percent);
  mix_f64(h, cfg_.stall_alpha);
  mix_f64(h, cfg_.dark_router_vdd);
  mix(h, static_cast<std::uint64_t>(cfg_.queue_max_stalls));
  mix(h, cfg_.seed);
  mix(h, cfg_.proactive_throttle ? 1u : 0u);
  mix_f64(h, cfg_.throttle_guard_percent);
  mix_f64(h, cfg_.throttle_factor);
  mix(h, cfg_.enable_migration ? 1u : 0u);
  mix(h, static_cast<std::uint64_t>(cfg_.migration_hot_epochs));
  mix_f64(h, cfg_.migration_cost_cycles);
  mix(h, cfg_.record_telemetry ? 1u : 0u);
  mix(h, cfg_.fault_injections.size());
  for (const auto& f : cfg_.fault_injections) {
    mix_f64(h, f.time_s);
    mix(h, static_cast<std::uint64_t>(f.tile));
  }
  // Hardware fault injection changes dynamics, so every knob (and the
  // explicit schedule) pins the snapshot.
  mix(h, cfg_.faults.enabled ? 1u : 0u);
  mix(h, cfg_.faults.schedule.events.size());
  for (const auto& e : cfg_.faults.schedule.events) {
    mix(h, static_cast<std::uint64_t>(e.kind));
    mix_f64(h, e.time_s);
    mix(h, static_cast<std::uint64_t>(e.tile));
    mix(h, static_cast<std::uint64_t>(e.dir));
  }
  mix(h, static_cast<std::uint64_t>(cfg_.faults.random_link_failures));
  mix(h, static_cast<std::uint64_t>(cfg_.faults.random_router_failures));
  mix_f64(h, cfg_.faults.random_fail_window_s);
  mix_f64(h, cfg_.faults.repair_after_s);
  mix_f64(h, cfg_.faults.sensor_dropout_per_epoch);
  mix_f64(h, cfg_.faults.bit_error_base);
  mix_f64(h, cfg_.faults.bit_error_psn_slope);
  mix_f64(h, cfg_.faults.bit_error_psn_onset_percent);
  mix_f64(h, cfg_.faults.bit_error_cap);
  mix(h, arrivals_.size());
  for (const auto& a : arrivals_) {
    mix(h, static_cast<std::uint64_t>(a.id));
    mix_str(h, a.bench->name);
    mix(h, a.profile_seed);
    mix_f64(h, a.arrival_s);
    mix_f64(h, a.deadline_s);
  }
  return h;
}

void SystemSimulator::save_state(snapshot::Writer& w) const {
  w.begin_section("SIMS");
  w.u64(config_fingerprint());
  w.f64(ctx_.t);
  w.u64(ctx_.epoch);

  w.begin_section("RNG0");
  const Rng::State rs = rng_.state();
  for (std::uint64_t word : rs.s) w.u64(word);
  w.b(rs.have_cached_normal);
  w.f64(rs.cached_normal);

  // Phase-owned sections.
  admission_.save(w);
  noc_.save(w);
  psn_.save(w);
  emergency_.save(w);
  migration_.save(w);
  telemetry_.save(w);
  fault_.save(w);

  platform_.save(w);

  // Engine-owned: the context's cross-phase state.
  w.begin_section("EPCH");
  w.f64(ctx_.epoch_peak_psn);
  w.f64(ctx_.epoch_avg_psn);
  w.f64(ctx_.epoch_chip_power);
  w.f64(ctx_.epoch_noc_latency);
  w.i32(ctx_.epoch_ves);
  w.vec_f64(ctx_.router_activity);
  w.vec_f64(ctx_.tile_psn_peak);
  w.vec_f64(ctx_.tile_psn_avg);
  w.vec_bool(ctx_.tile_throttled);
  w.vec_f64(ctx_.noc_psn_sensor);
  w.vec_f64(ctx_.tile_psn_sensed);
  {
    std::vector<bool> dead(ctx_.tile_dead.size());
    for (std::size_t i = 0; i < ctx_.tile_dead.size(); ++i) {
      dead[i] = ctx_.tile_dead[i] != 0;
    }
    w.vec_bool(dead);
  }
  w.u64(ctx_.app_latency.size());
  for (const auto& [app, lat] : ctx_.app_latency) {  // std::map: sorted
    w.i32(app);
    w.f64(lat);
  }

  w.begin_section("APPS");
  w.u64(ctx_.running.size());
  for (const RunningApp& app : ctx_.running) {
    w.i64(app.instance);
    w.i32(app.outcome_index);
    w.f64(app.vdd);
    w.i32(app.dop);
    w.f64(app.latency_cycles);
    w.u64(app.tasks.size());
    for (const RunningTask& task : app.tasks) {
      w.i32(task.index);
      w.i32(task.tile);
      w.f64(task.remaining_cycles);
      w.f64(task.activity);
      w.f64(task.phase);
      w.f64(task.progress_rate_cps);
      w.f64(task.edf_deadline_s);
      w.f64(task.finish_s);
      w.i32(task.hot_epochs);
    }
  }

  w.begin_section("OUTC");
  w.u64(ctx_.outcomes.size());
  for (const AppOutcome& o : ctx_.outcomes) {
    w.b(o.admitted);
    w.b(o.completed);
    w.b(o.dropped);
    w.f64(o.admit_s);
    w.f64(o.finish_s);
    w.b(o.missed_deadline);
    w.i32(o.task_deadline_misses);
    w.f64(o.vdd);
    w.i32(o.dop);
    w.i32(o.ve_count);
  }

  timeseries_.save(w);
}

void SystemSimulator::restore_state(snapshot::Reader& r) {
  r.expect_section("SIMS");
  const std::uint64_t fp = r.u64();
  if (fp != config_fingerprint()) {
    throw snapshot::SnapshotError(
        "snapshot was taken under a different configuration or workload "
        "(fingerprint mismatch) — resume requires the identical SimConfig "
        "and arrival list");
  }
  ctx_.t = r.f64();
  ctx_.epoch = r.u64();

  r.expect_section("RNG0");
  Rng::State rs;
  for (std::uint64_t& word : rs.s) word = r.u64();
  rs.have_cached_normal = r.b();
  rs.cached_normal = r.f64();
  rng_.restore(rs);

  // Arrival lookup shared by the queue and the running-app rebuild: the
  // profiles are reconstruction inputs resolved from this simulator's
  // immutable arrival list, never snapshot payload.
  const auto arrival_by_id =
      [this](int id) -> const appmodel::AppArrival& {
    for (const appmodel::AppArrival& a : arrivals_) {
      if (a.id == id) return a;
    }
    throw snapshot::SnapshotError(
        "snapshot references arrival id " + std::to_string(id) +
        " absent from this workload");
  };

  admission_.restore(r, ctx_, arrival_by_id);
  noc_.restore(r);
  psn_.restore(r);
  emergency_.restore(r, ctx_);
  migration_.restore(r);
  telemetry_.restore(r);
  fault_.restore(r);

  platform_.restore(r);

  const std::size_t n_tiles =
      static_cast<std::size_t>(platform_.tile_count());
  r.expect_section("EPCH");
  ctx_.epoch_peak_psn = r.f64();
  ctx_.epoch_avg_psn = r.f64();
  ctx_.epoch_chip_power = r.f64();
  ctx_.epoch_noc_latency = r.f64();
  ctx_.epoch_ves = r.i32();
  ctx_.router_activity = r.vec_f64();
  ctx_.tile_psn_peak = r.vec_f64();
  ctx_.tile_psn_avg = r.vec_f64();
  ctx_.tile_throttled = r.vec_bool();
  ctx_.noc_psn_sensor = r.vec_f64();
  ctx_.tile_psn_sensed = r.vec_f64();
  const std::vector<bool> dead = r.vec_bool();
  if (ctx_.router_activity.size() != n_tiles ||
      ctx_.tile_psn_peak.size() != n_tiles ||
      ctx_.tile_psn_avg.size() != n_tiles ||
      ctx_.tile_throttled.size() != n_tiles ||
      ctx_.noc_psn_sensor.size() != n_tiles ||
      ctx_.tile_psn_sensed.size() != n_tiles || dead.size() != n_tiles) {
    throw snapshot::SnapshotError(
        "snapshot per-tile state does not match the platform's tile count");
  }
  for (std::size_t i = 0; i < dead.size(); ++i) {
    ctx_.tile_dead[i] = dead[i] ? 1 : 0;
  }
  ctx_.app_latency.clear();
  const std::uint64_t n_lat = r.count(12);
  for (std::uint64_t i = 0; i < n_lat; ++i) {
    const std::int32_t app = r.i32();
    ctx_.app_latency[app] = r.f64();
  }

  r.expect_section("APPS");
  ctx_.running.clear();
  const std::uint64_t n_apps = r.count(32);
  ctx_.running.reserve(n_apps);
  for (std::uint64_t i = 0; i < n_apps; ++i) {
    RunningApp app;
    app.instance = r.i64();
    app.outcome_index = r.i32();
    if (app.outcome_index < 0 ||
        static_cast<std::size_t>(app.outcome_index) >=
            ctx_.outcomes.size()) {
      throw snapshot::SnapshotError(
          "snapshot running app references an out-of-range outcome");
    }
    app.profile = arrival_by_id(app.outcome_index).profile;
    app.vdd = r.f64();
    app.dop = r.i32();
    app.latency_cycles = r.f64();
    const std::uint64_t n_tasks = r.count(48);
    app.tasks.reserve(n_tasks);
    for (std::uint64_t k = 0; k < n_tasks; ++k) {
      RunningTask task;
      task.index = r.i32();
      task.tile = r.i32();
      if (task.tile < 0 ||
          static_cast<std::size_t>(task.tile) >= n_tiles) {
        throw snapshot::SnapshotError(
            "snapshot running task references an out-of-range tile");
      }
      task.remaining_cycles = r.f64();
      task.activity = r.f64();
      task.phase = r.f64();
      task.progress_rate_cps = r.f64();
      task.edf_deadline_s = r.f64();
      task.finish_s = r.f64();
      task.hot_epochs = r.i32();
      app.tasks.push_back(task);
    }
    ctx_.running.push_back(std::move(app));
  }

  r.expect_section("OUTC");
  const std::uint64_t n_out = r.count(23);
  if (n_out != ctx_.outcomes.size()) {
    throw snapshot::SnapshotError(
        "snapshot outcome count does not match the workload size");
  }
  for (std::size_t i = 0; i < ctx_.outcomes.size(); ++i) {
    AppOutcome& o = ctx_.outcomes[i];
    o.admitted = r.b();
    o.completed = r.b();
    o.dropped = r.b();
    o.admit_s = r.f64();
    o.finish_s = r.f64();
    o.missed_deadline = r.b();
    o.task_deadline_misses = r.i32();
    o.vdd = r.f64();
    o.dop = r.i32();
    o.ve_count = r.i32();
  }

  // Unlike the recorder, the time-series store is part of the snapshot:
  // the retained droop history is forensic state a resumed run must
  // still carry (section order mirrors save_state — last).
  timeseries_.restore(r);

  // The immutable outcome fields are reconstruction inputs, filled from
  // the arrival list (run() repeats this; doing it here makes the
  // restored state complete on its own).
  for (const appmodel::AppArrival& a : arrivals_) {
    PARM_CHECK(a.id >= 0 &&
                   static_cast<std::size_t>(a.id) < ctx_.outcomes.size(),
               "arrival ids must be dense 0..N-1");
    AppOutcome& o = ctx_.outcomes[static_cast<std::size_t>(a.id)];
    o.id = a.id;
    o.bench = a.bench->name;
    o.arrival_s = a.arrival_s;
    o.deadline_s = a.deadline_s;
  }
}

void SystemSimulator::enable_periodic_snapshots(std::uint64_t every_epochs,
                                                std::string dir) {
  snapshot_every_ = every_epochs;
  snapshot_dir_ = std::move(dir);
}

void SystemSimulator::save_snapshot(const std::string& path) const {
  snapshot::Writer w;
  save_state(w);
  snapshot::write_file(path, w);
}

void SystemSimulator::restore_snapshot(const std::string& path) {
  snapshot::Reader r = snapshot::read_file(path);
  restore_state(r);
  r.expect_end();
}

SimResult SystemSimulator::run() {
  // Initialize outcome records from the arrival list.
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    const auto& a = arrivals_[i];
    PARM_CHECK(a.id >= 0 &&
                   static_cast<std::size_t>(a.id) < ctx_.outcomes.size(),
               "arrival ids must be dense 0..N-1");
    AppOutcome& out = ctx_.outcomes[static_cast<std::size_t>(a.id)];
    out.id = a.id;
    out.bench = a.bench->name;
    out.arrival_s = a.arrival_s;
    out.deadline_s = a.deadline_s;
  }

  SimResult result;
  while (true) {
    // Scrape barrier: the obs server's handlers lock this same mutex, so
    // holding it across the epoch body lands every scrape of the
    // non-thread-safe obs structures (time-series store, SLO engine) on
    // an epoch boundary. A mutex cannot perturb simulation state, so the
    // serve-while-running path stays bit-identical (pinned by
    // tests/obs_server_test.cpp).
    std::lock_guard<std::mutex> obs_lock(obs_mu_);
    obs::ScopedTrace epoch_trace("sim", "sim.epoch");
    using ProfScope = obs::PhaseProfiler::Scope;
    // Topology faults fire first so admission, the NoC window, and the
    // power models all see this epoch's (possibly degraded) hardware.
    fault_.apply_topology(ctx_, noc_.network());
    {
      ProfScope ps(profiler_, obs::PhaseProfiler::kAdmission);
      admission_.process_arrivals(ctx_);
    }
    {
      // The scope sits outside the reuse gate so skipped windows record
      // as near-zero samples — the histogram then shows the true
      // per-epoch cost including the noc_every_epochs amortization.
      ProfScope ps(profiler_, obs::PhaseProfiler::kNoc);
      if (ctx_.epoch % static_cast<std::uint64_t>(cfg_.noc_every_epochs) ==
          0) {
        noc_.run(ctx_);
      }
    }
    {
      ProfScope ps(profiler_, obs::PhaseProfiler::kPsn);
      psn_.run(ctx_);
    }
    // Observe-then-perturb: the PSN phase wrote the truth; the fault
    // phase derives what the sensors *report* before any consumer acts.
    fault_.perturb_sensors(ctx_, noc_.network());
    {
      ProfScope ps(profiler_, obs::PhaseProfiler::kEmergency);
      emergency_.run(ctx_, ctx_.t);
    }
    {
      // Outside the gate for the same reason as the NoC scope: a
      // disabled migration phase still shows up (as ~0 µs samples).
      ProfScope ps(profiler_, obs::PhaseProfiler::kMigration);
      if (cfg_.enable_migration) migration_.run(ctx_);
    }
    {
      ProfScope ps(profiler_, obs::PhaseProfiler::kTelemetry);
      telemetry_.run(ctx_, admission_.queue_size());
    }
    profiler_.note_epoch();

    // Black-box read-out: on the first epoch that sees a voltage
    // emergency, dump everything the recorder retained leading up to it.
    if (!cfg_.events_dump_on_ve.empty() && !ve_dump_done_ &&
        ctx_.epoch_ves > 0 && recorder_.enabled()) {
      ve_dump_done_ = true;
      std::ofstream out(cfg_.events_dump_on_ve);
      if (out) recorder_.dump_jsonl(out);
    }

    ctx_.t += cfg_.epoch_s;
    ++ctx_.epoch;
    admission_.finish_and_readmit(ctx_, ctx_.t);
    // After the exits and exit-triggered admissions so this epoch's SLO
    // delta includes its own completions and admission waits.
    slo_.observe_epoch(metrics_);

    const bool idle = admission_.next_arrival() == arrivals_.size() &&
                      admission_.queue_empty() && ctx_.running.empty();
    if (idle) break;
    if (ctx_.t >= cfg_.max_sim_time_s) {
      result.timed_out = !ctx_.running.empty() ||
                         !admission_.queue_empty() ||
                         admission_.next_arrival() < arrivals_.size();
      break;
    }

    // Snapshot point: "epoch epochs completed" — after the epoch's exits
    // and exit-triggered admissions, before the next epoch begins. A
    // resumed process re-enters the loop top in exactly this state.
    if (snapshot_every_ != 0 && ctx_.epoch % snapshot_every_ == 0) {
      save_snapshot(snapshot_dir_ + "/epoch_" +
                    std::to_string(ctx_.epoch) + ".parmsnap");
    }
  }

  result.apps = ctx_.outcomes;
  for (const AppOutcome& o : ctx_.outcomes) {
    if (o.completed) {
      ++result.completed_count;
      result.makespan_s = std::max(result.makespan_s, o.finish_s);
    }
    if (o.dropped) ++result.dropped_count;
  }
  result.peak_psn_percent = psn_.psn_peak_stats().max();
  result.avg_psn_percent = psn_.psn_avg_stats().mean();
  result.total_ve_count = emergency_.total_ves();
  result.avg_noc_latency_cycles = noc_.latency_stats().mean();
  result.peak_chip_power_w = psn_.chip_power_stats().max();
  result.avg_chip_power_w = psn_.chip_power_stats().mean();
  result.throttle_tile_epochs = psn_.throttle_tile_epochs();
  result.migration_count = migration_.total_migrations();
  result.total_energy_j =
      psn_.chip_power_stats().mean() *
      static_cast<double>(psn_.chip_power_stats().count()) * cfg_.epoch_s;
  result.energy_per_completed_app_j =
      result.completed_count > 0
          ? result.total_energy_j / result.completed_count
          : 0.0;
  if (noc_.delivery_stats().count() > 0) {
    result.avg_delivery_ratio = noc_.delivery_stats().mean();
    result.min_delivery_ratio = noc_.delivery_stats().min();
  }
  result.deadlock_windows = noc_.deadlock_windows();
  const noc::Network& net = noc_.network();
  result.fault_dropped_flits = net.fault_dropped_flits();
  result.corrupt_packets = net.corrupt_packets();
  result.retransmitted_packets = net.retransmitted_packets();
  result.link_fault_events = fault_.link_fault_events();
  result.router_fault_events = fault_.router_fault_events();
  result.sensor_dropout_epochs = fault_.sensor_dropout_epochs();
  result.fault_task_remaps = fault_.task_remaps();
  result.fault_stranded_tasks = fault_.stranded_tasks();
  result.telemetry = telemetry_.recorder();
  return result;
}

}  // namespace parm::sim
